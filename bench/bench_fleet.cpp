// Fleet simulator benchmark: streaming throughput (devices/s), the
// constant-memory claim, and the event-driven fast-path claims. The first
// table runs the same study at 1e5 and 1e6 devices and reports the process
// peak RSS after each — the aggregator lattice depends only on the study
// dimensions, so a 10x fleet must not move the high-water mark. The second
// table runs a year-long unaccelerated (field-rate) study in both sampling
// modes — the regime the skip-ahead walk targets — and reports the
// event/dense speedup; the third scales the event walk across shard
// counts. CI archives the JSON (BENCH_fleet.json) as the acceptance
// artifact for the RSS bound and the mode_speedup >= 5 gate.

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/simulator.hpp"
#include "fleet/spec.hpp"

namespace {

using tnr::fleet::FleetRunOptions;
using tnr::fleet::FleetSpec;
using tnr::fleet::FleetTally;
using tnr::fleet::ResolvedFleet;

FleetSpec study(std::uint64_t devices) {
    FleetSpec spec;
    spec.devices = devices;
    spec.days = 30;
    spec.bucket_hours = 24;
    spec.seed = 2020;
    spec.sites.push_back({tnr::environment::nyc_datacenter(), 2.0, {}});
    spec.sites.back().policy.scrub_interval_h = 24.0;
    spec.sites.back().policy.rain_probability = 0.25;
    spec.sites.push_back({tnr::environment::leadville_datacenter(), 1.0, {}});
    spec.sites.back().policy.repair_hours = 48;
    spec.sites.back().policy.rain_probability = 0.25;
    spec.mix.push_back({"NVIDIA K20", 2.0});
    spec.mix.push_back({"Intel Xeon Phi", 1.0});
    return spec;
}

/// Peak RSS of this process in KiB (Linux ru_maxrss unit). A high-water
/// mark: it can only grow, which is exactly what the scaling table needs.
long peak_rss_kb() {
    rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    return usage.ru_maxrss;
}

/// The regime the event-driven walk targets: a year of unaccelerated
/// field-rate operation, where almost every dense per-bucket Poisson draw
/// returns zero.
FleetSpec year_study(std::uint64_t devices, tnr::fleet::FleetMode mode) {
    FleetSpec spec = study(devices);
    spec.days = 365;
    spec.acceleration = 1.0;
    spec.mode = mode;
    return spec;
}

struct ScalingRun {
    std::uint64_t devices = 0;
    double seconds = 0.0;
    double devices_per_s = 0.0;
    long peak_rss_kb = 0;
};

struct ModeRun {
    const char* mode = "";
    double seconds = 0.0;
    double devices_per_s = 0.0;
};

struct ShardRun {
    unsigned shards = 0;
    double seconds = 0.0;
    double devices_per_s = 0.0;
    double efficiency = 0.0;
};

// NOLINTBEGIN(*-avoid-non-const-global-variables)
std::vector<ScalingRun> g_runs;
std::vector<ModeRun> g_modes;
std::vector<ShardRun> g_shards;
// NOLINTEND(*-avoid-non-const-global-variables)

double timed_run(const ResolvedFleet& fleet, unsigned shards) {
    FleetRunOptions opts;
    opts.shards = shards;
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = tnr::fleet::run_fleet(fleet, opts);
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    benchmark::DoNotOptimize(result.tally.grand_total().sdc);
    return s;
}

void emit_table(std::ostream& os) {
    os << "streaming walk, 30-day study, 2 sites x 2 classes, 4 shards\n\n";
    os << "devices    wall [s]   devices/s   peak RSS [KiB]\n";
    for (const std::uint64_t devices : {100'000ULL, 1'000'000ULL}) {
        const ResolvedFleet fleet(study(devices));
        FleetRunOptions opts;
        opts.shards = 4;
        const auto t0 = std::chrono::steady_clock::now();
        const auto result = tnr::fleet::run_fleet(fleet, opts);
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        ScalingRun run;
        run.devices = devices;
        run.seconds = s;
        run.devices_per_s = static_cast<double>(devices) / s;
        run.peak_rss_kb = peak_rss_kb();
        g_runs.push_back(run);
        os << devices << "   " << s << "   " << run.devices_per_s << "   "
           << run.peak_rss_kb << '\n';
        // Touch the result so the walk cannot be elided.
        benchmark::DoNotOptimize(result.tally.grand_total().sdc);
    }
    if (g_runs.size() == 2) {
        os << "\npeak RSS growth for 10x devices: "
           << g_runs[1].peak_rss_kb - g_runs[0].peak_rss_kb << " KiB\n";
    }

    os << "\nsampling modes, 365-day unaccelerated study, 200k devices, "
          "4 shards\n\n";
    os << "mode    wall [s]   devices/s\n";
    constexpr std::uint64_t kModeDevices = 200'000;
    for (const auto mode : {tnr::fleet::FleetMode::kDense,
                            tnr::fleet::FleetMode::kEventDriven}) {
        const ResolvedFleet fleet(year_study(kModeDevices, mode));
        const double s = timed_run(fleet, 4);
        ModeRun run;
        run.mode = tnr::fleet::to_string(mode);
        run.seconds = s;
        run.devices_per_s = static_cast<double>(kModeDevices) / s;
        g_modes.push_back(run);
        os << run.mode << "   " << s << "   " << run.devices_per_s << '\n';
    }
    if (g_modes.size() == 2 && g_modes[0].devices_per_s > 0.0) {
        os << "\nevent/dense speedup: "
           << g_modes[1].devices_per_s / g_modes[0].devices_per_s << "x\n";
    }

    os << "\nevent-mode shard scaling, 365-day unaccelerated study, "
          "1M devices\n\n";
    os << "shards   wall [s]   devices/s   efficiency\n";
    constexpr std::uint64_t kScaleDevices = 1'000'000;
    const ResolvedFleet event_fleet(
        year_study(kScaleDevices, tnr::fleet::FleetMode::kEventDriven));
    for (const unsigned shards : {1u, 4u, 8u}) {
        const double s = timed_run(event_fleet, shards);
        ShardRun run;
        run.shards = shards;
        run.seconds = s;
        run.devices_per_s = static_cast<double>(kScaleDevices) / s;
        run.efficiency =
            g_shards.empty()
                ? 1.0
                : run.devices_per_s /
                      (g_shards.front().devices_per_s * shards);
        g_shards.push_back(run);
        os << shards << "   " << s << "   " << run.devices_per_s << "   "
           << run.efficiency << '\n';
    }
}

std::string extra_json() {
    namespace json = tnr::core::obs::json;
    std::ostringstream fragment;
    fragment << "\"fleet\":{\"runs\":[";
    bool first = true;
    for (const auto& run : g_runs) {
        if (!first) fragment << ',';
        first = false;
        fragment << "{\"devices\":" << run.devices
                 << ",\"seconds\":" << json::number(run.seconds)
                 << ",\"devices_per_s\":" << json::number(run.devices_per_s)
                 << ",\"peak_rss_kb\":" << run.peak_rss_kb << '}';
    }
    fragment << ']';
    if (g_runs.size() == 2) {
        fragment << ",\"rss_growth_kb\":"
                 << g_runs[1].peak_rss_kb - g_runs[0].peak_rss_kb;
    }
    fragment << ",\"modes\":{";
    first = true;
    for (const auto& run : g_modes) {
        if (!first) fragment << ',';
        first = false;
        fragment << '"' << run.mode
                 << "\":{\"seconds\":" << json::number(run.seconds)
                 << ",\"devices_per_s\":" << json::number(run.devices_per_s)
                 << '}';
    }
    if (g_modes.size() == 2 && g_modes[0].devices_per_s > 0.0) {
        fragment << ",\"mode_speedup\":"
                 << json::number(g_modes[1].devices_per_s /
                                 g_modes[0].devices_per_s);
    }
    fragment << "},\"scaling\":[";
    first = true;
    for (const auto& run : g_shards) {
        if (!first) fragment << ',';
        first = false;
        fragment << "{\"shards\":" << run.shards
                 << ",\"seconds\":" << json::number(run.seconds)
                 << ",\"devices_per_s\":" << json::number(run.devices_per_s)
                 << ",\"efficiency\":" << json::number(run.efficiency)
                 << '}';
    }
    fragment << "]}";
    return fragment.str();
}

void BM_FleetWalk10k(benchmark::State& state) {
    const ResolvedFleet fleet(study(10'000));
    FleetRunOptions opts;
    opts.shards = 1;
    std::uint64_t devices = 0;
    for (auto _ : state) {
        const auto result = tnr::fleet::run_fleet(fleet, opts);
        benchmark::DoNotOptimize(result.tally.grand_total().device_hours);
        devices += 10'000;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(devices));
}
BENCHMARK(BM_FleetWalk10k)->Unit(benchmark::kMillisecond);

void BM_DeviceStreamOpen(benchmark::State& state) {
    std::uint64_t i = 0;
    for (auto _ : state) {
        auto rng = tnr::fleet::device_stream(2020, i++);
        benchmark::DoNotOptimize(rng.uniform());
    }
}
BENCHMARK(BM_DeviceStreamOpen);

void BM_TallyMerge(benchmark::State& state) {
    // A realistic lattice: 10 sites x 8 classes x 30 buckets.
    FleetTally a(10, 8, 30);
    const FleetTally b(10, 8, 30);
    for (auto _ : state) {
        a.merge(b);
        benchmark::DoNotOptimize(a.cells().data());
    }
}
BENCHMARK(BM_TallyMerge);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(argc, argv, "fleet", emit_table,
                                      extra_json);
}

// Fleet simulator benchmark: streaming throughput (devices/s) and the
// constant-memory claim. The table runs the same study at 1e5 and 1e6
// devices and reports the process peak RSS after each — the aggregator
// lattice depends only on the study dimensions, so a 10x fleet must not
// move the high-water mark. CI archives the JSON (BENCH_fleet.json) as the
// acceptance artifact for that claim.

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/simulator.hpp"
#include "fleet/spec.hpp"

namespace {

using tnr::fleet::FleetRunOptions;
using tnr::fleet::FleetSpec;
using tnr::fleet::FleetTally;
using tnr::fleet::ResolvedFleet;

FleetSpec study(std::uint64_t devices) {
    FleetSpec spec;
    spec.devices = devices;
    spec.days = 30;
    spec.bucket_hours = 24;
    spec.seed = 2020;
    spec.sites.push_back({tnr::environment::nyc_datacenter(), 2.0, {}});
    spec.sites.back().policy.scrub_interval_h = 24.0;
    spec.sites.back().policy.rain_probability = 0.25;
    spec.sites.push_back({tnr::environment::leadville_datacenter(), 1.0, {}});
    spec.sites.back().policy.repair_hours = 48;
    spec.sites.back().policy.rain_probability = 0.25;
    spec.mix.push_back({"NVIDIA K20", 2.0});
    spec.mix.push_back({"Intel Xeon Phi", 1.0});
    return spec;
}

/// Peak RSS of this process in KiB (Linux ru_maxrss unit). A high-water
/// mark: it can only grow, which is exactly what the scaling table needs.
long peak_rss_kb() {
    rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    return usage.ru_maxrss;
}

struct ScalingRun {
    std::uint64_t devices = 0;
    double seconds = 0.0;
    double devices_per_s = 0.0;
    long peak_rss_kb = 0;
};

std::vector<ScalingRun> g_runs;  // NOLINT(*-avoid-non-const-global-variables)

void emit_table(std::ostream& os) {
    os << "streaming walk, 30-day study, 2 sites x 2 classes, 4 shards\n\n";
    os << "devices    wall [s]   devices/s   peak RSS [KiB]\n";
    for (const std::uint64_t devices : {100'000ULL, 1'000'000ULL}) {
        const ResolvedFleet fleet(study(devices));
        FleetRunOptions opts;
        opts.shards = 4;
        const auto t0 = std::chrono::steady_clock::now();
        const auto result = tnr::fleet::run_fleet(fleet, opts);
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        ScalingRun run;
        run.devices = devices;
        run.seconds = s;
        run.devices_per_s = static_cast<double>(devices) / s;
        run.peak_rss_kb = peak_rss_kb();
        g_runs.push_back(run);
        os << devices << "   " << s << "   " << run.devices_per_s << "   "
           << run.peak_rss_kb << '\n';
        // Touch the result so the walk cannot be elided.
        benchmark::DoNotOptimize(result.tally.grand_total().sdc);
    }
    if (g_runs.size() == 2) {
        os << "\npeak RSS growth for 10x devices: "
           << g_runs[1].peak_rss_kb - g_runs[0].peak_rss_kb << " KiB\n";
    }
}

std::string extra_json() {
    namespace json = tnr::core::obs::json;
    std::ostringstream fragment;
    fragment << "\"fleet\":{\"runs\":[";
    bool first = true;
    for (const auto& run : g_runs) {
        if (!first) fragment << ',';
        first = false;
        fragment << "{\"devices\":" << run.devices
                 << ",\"seconds\":" << json::number(run.seconds)
                 << ",\"devices_per_s\":" << json::number(run.devices_per_s)
                 << ",\"peak_rss_kb\":" << run.peak_rss_kb << '}';
    }
    fragment << ']';
    if (g_runs.size() == 2) {
        fragment << ",\"rss_growth_kb\":"
                 << g_runs[1].peak_rss_kb - g_runs[0].peak_rss_kb;
    }
    fragment << '}';
    return fragment.str();
}

void BM_FleetWalk10k(benchmark::State& state) {
    const ResolvedFleet fleet(study(10'000));
    FleetRunOptions opts;
    opts.shards = 1;
    std::uint64_t devices = 0;
    for (auto _ : state) {
        const auto result = tnr::fleet::run_fleet(fleet, opts);
        benchmark::DoNotOptimize(result.tally.grand_total().device_hours);
        devices += 10'000;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(devices));
}
BENCHMARK(BM_FleetWalk10k)->Unit(benchmark::kMillisecond);

void BM_DeviceStreamOpen(benchmark::State& state) {
    std::uint64_t i = 0;
    for (auto _ : state) {
        auto rng = tnr::fleet::device_stream(2020, i++);
        benchmark::DoNotOptimize(rng.uniform());
    }
}
BENCHMARK(BM_DeviceStreamOpen);

void BM_TallyMerge(benchmark::State& state) {
    // A realistic lattice: 10 sites x 8 classes x 30 buckets.
    FleetTally a(10, 8, 30);
    const FleetTally b(10, 8, 30);
    for (auto _ : state) {
        a.merge(b);
        benchmark::DoNotOptimize(a.cells().data());
    }
}
BENCHMARK(BM_TallyMerge);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(argc, argv, "fleet", emit_table,
                                      extra_json);
}

// Ablation — field data vs beam data (the related-work methodology of
// Sridharan et al.): simulate a year of error logs for identical fleets at
// different sites and weather climates, then mine the logs and compare the
// recovered rates against the beam-derived predictions. Also shows the
// ablation the paper implies: a boron-free part has no weather signature.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/fieldstudy.hpp"
#include "core/fit.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "environment/site.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    const auto device =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto depleted = device.with_thermal_scale(0.0);

    core::FleetLogConfig cfg;
    cfg.nodes = 5000;
    cfg.days = 365.0;
    cfg.rain_probability = 0.3;

    const struct {
        const char* label;
        const devices::Device* part;
        environment::Site site;
    } fleets[] = {
        {"K20 fleet, NYC DC", &device, environment::nyc_datacenter()},
        {"K20 fleet, Leadville DC", &device,
         environment::leadville_datacenter()},
        {"boron-free fleet, Leadville DC", &depleted,
         environment::leadville_datacenter()},
    };

    os << "One year, 5000 nodes per fleet, 30% rainy days — log-mined vs "
          "beam-predicted:\n\n";
    core::TablePrinter table({"fleet", "events", "mined SDC FIT",
                              "predicted (weather-weighted)",
                              "rainy/sunny rate ratio"});
    std::uint64_t seed = 42000;
    for (const auto& fleet : fleets) {
        const auto log = core::simulate_fleet_log(*fleet.part, fleet.site, cfg,
                                                  ++seed);
        const auto analysis = core::analyze_fleet_log(log);
        environment::Site rainy_site = fleet.site;
        rainy_site.environment.weather = environment::Weather::kRainy;
        const double predicted =
            0.7 * core::device_fit(*fleet.part, devices::ErrorType::kSdc,
                                   fleet.site)
                      .total() +
            0.3 * core::device_fit(*fleet.part, devices::ErrorType::kSdc,
                                   rainy_site)
                      .total();
        table.add_row(
            {fleet.label, std::to_string(log.events.size()),
             core::format_fixed(analysis.node_fit_sdc, 1),
             core::format_fixed(predicted, 1),
             core::format_fixed(analysis.rain_ratio.ratio, 3) + " [" +
                 core::format_fixed(analysis.rain_ratio.ci.lower, 3) + ", " +
                 core::format_fixed(analysis.rain_ratio.ci.upper, 3) + "]"});
    }
    table.print(os);
    os << "\n(The boron-heavy fleet's logs carry a clear weather signature "
          "— rainy days\nrun ~25-30% hotter at altitude — while the "
          "boron-free fleet's ratio pins 1.0.\nMining production logs for "
          "exactly this signature is how a site could detect\n10B-heavy "
          "parts without beam time.)\n";
}

void BM_SimulateYearLog(benchmark::State& state) {
    const auto device =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    core::FleetLogConfig cfg;
    cfg.nodes = static_cast<std::size_t>(state.range(0));
    cfg.days = 365.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::simulate_fleet_log(
            device, environment::leadville_datacenter(), cfg, 1));
    }
}
BENCHMARK(BM_SimulateYearLog)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_AnalyzeLog(benchmark::State& state) {
    const auto device =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    core::FleetLogConfig cfg;
    cfg.nodes = 5000;
    cfg.days = 365.0;
    const auto log = core::simulate_fleet_log(
        device, environment::leadville_datacenter(), cfg, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::analyze_fleet_log(log));
    }
}
BENCHMARK(BM_AnalyzeLog)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Ablation — field logs vs beam predictions",
        emit_table);
}

// Ablation — FPGA configuration-memory persistence and mitigation (§IV's
// FPGA discussion): compares scrub policies under a thermal beam, showing
// error streams without mitigation, the paper's reprogram-on-error
// protocol, and periodic scrubbing; plus the essential-bit area sweep that
// underlies the MNIST single/double build scaling.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "fpga/beam_run.hpp"
#include "workloads/mnist.hpp"

namespace {

using namespace tnr;

fpga::FpgaBeamConfig base_config(fpga::ScrubPolicy policy) {
    fpga::FpgaBeamConfig cfg;
    cfg.policy = policy;
    cfg.sigma_bit_cm2 = 4.0e-16;
    cfg.flux_n_cm2_s = 2.72e6;  // ROTAX.
    cfg.seconds_per_run = 30.0;
    return cfg;
}

void emit_table(std::ostream& os) {
    os << "MNIST design on a Zynq-class fabric under the ROTAX thermal beam "
          "(6000 runs):\n\n";
    core::TablePrinter table({"policy", "output errors", "distinct events",
                              "repeated (stream) runs", "DUEs", "reprograms",
                              "scrubs"});
    const struct {
        const char* label;
        fpga::ScrubPolicy policy;
        bool tmr;
    } rows[] = {
        {"none", fpga::ScrubPolicy::kNone, false},
        {"reprogram-on-error", fpga::ScrubPolicy::kReprogramOnError, false},
        {"periodic-scrub", fpga::ScrubPolicy::kPeriodicScrub, false},
        {"TMR + periodic-scrub", fpga::ScrubPolicy::kPeriodicScrub, true},
    };
    for (const auto& row : rows) {
        auto cfg = base_config(row.policy);
        cfg.scrub_period_runs = 8;
        cfg.tmr = row.tmr;
        fpga::FpgaBeamRun run(cfg, workloads::make_mnist(), 9000);
        const auto r = run.run(6000);
        table.add_row({row.label, std::to_string(r.output_errors),
                       std::to_string(r.distinct_error_events),
                       std::to_string(r.repeated_error_runs),
                       std::to_string(r.dues), std::to_string(r.reprograms),
                       std::to_string(r.scrubs)});
    }
    table.print(os);
    os << "\n(Paper: without reloading, a configuration upset persists and "
          "the same wrong\noutput streams out; the experimenters reprogram "
          "at each observed error, and\nDUEs are very rare because the "
          "functionality only collapses after heavy\naccumulation. TMR "
          "voting suppresses even the residual errors — at 3x the\narea "
          "and upset arrival rate — as long as scrubbing clears single-"
          "replica hits\nbefore their partners land.)\n\n";

    os << "Essential-bit (design area) sweep, reprogram-on-error:\n";
    core::TablePrinter area({"essential fraction", "distinct events",
                             "observed sigma_SDC [cm^2]"});
    for (const double f : {0.05, 0.10, 0.20, 0.40}) {
        auto cfg = base_config(fpga::ScrubPolicy::kReprogramOnError);
        cfg.layout.essential_fraction = f;
        fpga::FpgaBeamRun run(cfg, workloads::make_mnist(), 9100);
        const auto r = run.run(6000);
        area.add_row({core::format_fixed(f, 2),
                      std::to_string(r.distinct_error_events),
                      core::format_scientific(r.sigma_sdc())});
    }
    area.print(os);
    os << "\n(Observed sigma scales with the design's essential bits — the "
          "resource-usage\nargument behind the double-precision MNIST build "
          "showing ~2x HE / ~4x thermal\nsigma of the single build.)\n";
}

void BM_FpgaBeamRun(benchmark::State& state) {
    for (auto _ : state) {
        fpga::FpgaBeamRun run(
            base_config(fpga::ScrubPolicy::kReprogramOnError),
            workloads::make_mnist(), 1);
        benchmark::DoNotOptimize(run.run(static_cast<std::uint64_t>(state.range(0))));
    }
}
BENCHMARK(BM_FpgaBeamRun)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_ConfigMemoryIrradiate(benchmark::State& state) {
    fpga::ConfigMemory mem;
    stats::Rng rng(1);
    for (auto _ : state) {
        mem.irradiate(100, rng);
        benchmark::DoNotOptimize(mem.essential_upsets());
        mem.reprogram();
    }
}
BENCHMARK(BM_ConfigMemoryIrradiate)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv,
        "Ablation — FPGA configuration memory: persistence & scrub policies",
        emit_table);
}

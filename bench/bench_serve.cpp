// Serve engine benchmark: throughput and latency of `tnr serve` request
// handling, cold (computed) versus cache-hit, plus microbenchmarks of the
// cache and canonicalization layers underneath.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using tnr::serve::ResponseCache;
using tnr::serve::Server;
using tnr::serve::ServeOptions;

std::string fit_request(std::size_t i) {
    const char* sites[] = {"nyc", "leadville"};
    return R"({"id":"b)" + std::to_string(i) +
           R"(","method":"fit","params":{"site":")" + sites[i % 2] +
           R"(","rainy":)" + (i % 4 < 2 ? "true" : "false") +
           R"(,"csv":)" + (i % 8 < 4 ? "true" : "false") + "}}";
}

std::string detector_request(std::size_t seed) {
    return R"({"id":"d)" + std::to_string(seed) +
           R"(","method":"detector","params":{"seed":)" +
           std::to_string(seed) + "}}";
}

/// Serves one request line and returns its wall-clock latency.
double serve_one_us(Server& server, const std::string& request) {
    std::istringstream in(request + "\n");
    std::ostringstream out;
    std::ostringstream diag;
    const auto t0 = std::chrono::steady_clock::now();
    server.serve(in, out, diag);
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

double percentile(std::vector<double> v, double q) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
    return v[idx];
}

/// JSON fragment for BENCH_serve.json, filled by emit_table's obs_overhead
/// experiment and spliced in by run_bench_main's extra hook at shutdown.
std::string g_obs_overhead_json;  // NOLINT(*-avoid-non-const-global-variables)

/// The observability tax on the hottest path: cache-hit latency with the
/// slow-request log disarmed (slow_ms 0, the check compiles down to one
/// branch) vs armed at a threshold a cache hit never crosses (the
/// steady-state production configuration — clock reads and the compare run,
/// no line is ever formatted). The armed/unarmed p99 ratio is CI's hard
/// gate on instrumentation creep (<= 1.10).
void emit_obs_overhead(std::ostream& os) {
    constexpr std::size_t kSamples = 2000;
    constexpr std::size_t kRepeats = 3;
    constexpr double kArmedThresholdMs = 100.0;
    const std::string request = detector_request(1);

    const auto run = [&request](double slow_ms, std::ostream* log) {
        ServeOptions options;
        options.slow_ms = slow_ms;
        options.slow_log = log;
        Server server(options);
        serve_one_us(server, request);  // compute once; the rest are hits.
        std::vector<double> us;
        us.reserve(kSamples);
        for (std::size_t i = 0; i < kSamples; ++i) {
            us.push_back(serve_one_us(server, request));
        }
        return us;
    };

    // Alternate the arms and take per-arm median percentiles: tail noise
    // from a shared CI box must not decide the gate.
    std::vector<double> unarmed_p50s;
    std::vector<double> unarmed_p99s;
    std::vector<double> armed_p50s;
    std::vector<double> armed_p99s;
    std::ostringstream sink;
    for (std::size_t r = 0; r < kRepeats; ++r) {
        const auto unarmed = run(0.0, nullptr);
        unarmed_p50s.push_back(percentile(unarmed, 0.5));
        unarmed_p99s.push_back(percentile(unarmed, 0.99));
        const auto armed = run(kArmedThresholdMs, &sink);
        armed_p50s.push_back(percentile(armed, 0.5));
        armed_p99s.push_back(percentile(armed, 0.99));
    }
    const double unarmed_p50 = percentile(unarmed_p50s, 0.5);
    const double unarmed_p99 = percentile(unarmed_p99s, 0.5);
    const double armed_p50 = percentile(armed_p50s, 0.5);
    const double armed_p99 = percentile(armed_p99s, 0.5);
    const double ratio = unarmed_p99 > 0.0 ? armed_p99 / unarmed_p99 : 0.0;

    os << "obs_overhead: cache-hit latency, slow-log armed ("
       << kArmedThresholdMs << " ms threshold) vs unarmed, " << kSamples
       << " samples x " << kRepeats << " repeats (median)\n\n";
    os << "slow-log   p50 [us]  p99 [us]\n";
    os << "unarmed    " << unarmed_p50 << "  " << unarmed_p99 << '\n';
    os << "armed      " << armed_p50 << "  " << armed_p99 << '\n';
    os << "\narmed/unarmed p99 ratio: " << ratio << '\n';

    namespace json = tnr::core::obs::json;
    std::ostringstream fragment;
    fragment << "\"obs_overhead\":{\"samples\":" << kSamples
             << ",\"unarmed\":{\"p50_us\":" << json::number(unarmed_p50)
             << ",\"p99_us\":" << json::number(unarmed_p99)
             << "},\"armed\":{\"slow_ms\":" << json::number(kArmedThresholdMs)
             << ",\"p50_us\":" << json::number(armed_p50)
             << ",\"p99_us\":" << json::number(armed_p99)
             << "},\"p99_ratio\":" << json::number(ratio) << '}';
    g_obs_overhead_json = fragment.str();
}

/// The reproduction table: cold vs cache-hit latency percentiles and the
/// batched throughput of one serve session.
void emit_table(std::ostream& os) {
    constexpr std::size_t kUnique = 48;
    constexpr std::size_t kHits = 200;

    Server server({});
    std::vector<double> cold_us;
    for (std::size_t i = 0; i < kUnique; ++i) {
        cold_us.push_back(serve_one_us(server, detector_request(i)));
    }
    std::vector<double> hit_us;
    for (std::size_t i = 0; i < kHits; ++i) {
        hit_us.push_back(serve_one_us(server, detector_request(i % kUnique)));
    }

    // Batched throughput: every request in one session, served hot.
    std::string batch;
    for (std::size_t i = 0; i < kHits; ++i) {
        batch += detector_request(i % kUnique) + "\n";
    }
    std::istringstream in(batch);
    std::ostringstream out;
    std::ostringstream diag;
    const auto t0 = std::chrono::steady_clock::now();
    const auto stats = server.serve(in, out, diag);
    const double batch_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    os << "detector requests, " << kUnique << " unique / " << kHits
       << " repeats\n\n";
    os << "path       p50 [us]  p99 [us]\n";
    os << "cold       " << percentile(cold_us, 0.5) << "  "
       << percentile(cold_us, 0.99) << '\n';
    os << "cache-hit  " << percentile(hit_us, 0.5) << "  "
       << percentile(hit_us, 0.99) << '\n';
    os << "\nbatched session: " << stats.requests << " requests in " << batch_s
       << " s (" << static_cast<double>(stats.requests) / batch_s
       << " req/s, " << stats.cache_hits << " cache hits)\n";
    os << '\n';
    emit_obs_overhead(os);
}

void BM_ServeColdDetector(benchmark::State& state) {
    // Cache disabled: every iteration recomputes the detector run.
    ServeOptions options;
    options.cache_capacity = 0;
    Server server(options);
    const std::string request = detector_request(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(serve_one_us(server, request));
    }
}
BENCHMARK(BM_ServeColdDetector)->Unit(benchmark::kMillisecond);

void BM_ServeCacheHit(benchmark::State& state) {
    Server server({});
    const std::string request = detector_request(1);
    serve_one_us(server, request);  // warm the cache.
    for (auto _ : state) {
        benchmark::DoNotOptimize(serve_one_us(server, request));
    }
}
BENCHMARK(BM_ServeCacheHit)->Unit(benchmark::kMicrosecond);

void BM_ServeErrorResponse(benchmark::State& state) {
    Server server({});
    const std::string request = R"({"id":"e","method":"frobnicate"})";
    for (auto _ : state) {
        benchmark::DoNotOptimize(serve_one_us(server, request));
    }
}
BENCHMARK(BM_ServeErrorResponse)->Unit(benchmark::kMicrosecond);

void BM_CanonicalizeRequest(benchmark::State& state) {
    const auto doc = tnr::core::obs::json::parse(fit_request(3));
    const auto req = tnr::serve::parse_request(*doc);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tnr::serve::canonical_request(req));
    }
}
BENCHMARK(BM_CanonicalizeRequest);

void BM_CacheLookupHit(benchmark::State& state) {
    ResponseCache cache(128);
    for (std::size_t i = 0; i < 128; ++i) {
        const std::string canonical = "entry-" + std::to_string(i);
        cache.put(tnr::serve::canonical_hash(canonical), canonical,
                  "body-" + std::to_string(i));
    }
    const std::string canonical = "entry-64";
    const auto key = tnr::serve::canonical_hash(canonical);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.get(key, canonical));
    }
}
BENCHMARK(BM_CacheLookupHit);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(argc, argv, "Serve", emit_table,
                                      [] { return g_obs_overhead_json; });
}

// Serve engine benchmark: throughput and latency of `tnr serve` request
// handling, cold (computed) versus cache-hit, plus microbenchmarks of the
// cache and canonicalization layers underneath.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using tnr::serve::ResponseCache;
using tnr::serve::Server;
using tnr::serve::ServeOptions;

std::string fit_request(std::size_t i) {
    const char* sites[] = {"nyc", "leadville"};
    return R"({"id":"b)" + std::to_string(i) +
           R"(","method":"fit","params":{"site":")" + sites[i % 2] +
           R"(","rainy":)" + (i % 4 < 2 ? "true" : "false") +
           R"(,"csv":)" + (i % 8 < 4 ? "true" : "false") + "}}";
}

std::string detector_request(std::size_t seed) {
    return R"({"id":"d)" + std::to_string(seed) +
           R"(","method":"detector","params":{"seed":)" +
           std::to_string(seed) + "}}";
}

/// Serves one request line and returns its wall-clock latency.
double serve_one_us(Server& server, const std::string& request) {
    std::istringstream in(request + "\n");
    std::ostringstream out;
    std::ostringstream diag;
    const auto t0 = std::chrono::steady_clock::now();
    server.serve(in, out, diag);
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

double percentile(std::vector<double> v, double q) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
    return v[idx];
}

/// The reproduction table: cold vs cache-hit latency percentiles and the
/// batched throughput of one serve session.
void emit_table(std::ostream& os) {
    constexpr std::size_t kUnique = 48;
    constexpr std::size_t kHits = 200;

    Server server({});
    std::vector<double> cold_us;
    for (std::size_t i = 0; i < kUnique; ++i) {
        cold_us.push_back(serve_one_us(server, detector_request(i)));
    }
    std::vector<double> hit_us;
    for (std::size_t i = 0; i < kHits; ++i) {
        hit_us.push_back(serve_one_us(server, detector_request(i % kUnique)));
    }

    // Batched throughput: every request in one session, served hot.
    std::string batch;
    for (std::size_t i = 0; i < kHits; ++i) {
        batch += detector_request(i % kUnique) + "\n";
    }
    std::istringstream in(batch);
    std::ostringstream out;
    std::ostringstream diag;
    const auto t0 = std::chrono::steady_clock::now();
    const auto stats = server.serve(in, out, diag);
    const double batch_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    os << "detector requests, " << kUnique << " unique / " << kHits
       << " repeats\n\n";
    os << "path       p50 [us]  p99 [us]\n";
    os << "cold       " << percentile(cold_us, 0.5) << "  "
       << percentile(cold_us, 0.99) << '\n';
    os << "cache-hit  " << percentile(hit_us, 0.5) << "  "
       << percentile(hit_us, 0.99) << '\n';
    os << "\nbatched session: " << stats.requests << " requests in " << batch_s
       << " s (" << static_cast<double>(stats.requests) / batch_s
       << " req/s, " << stats.cache_hits << " cache hits)\n";
}

void BM_ServeColdDetector(benchmark::State& state) {
    // Cache disabled: every iteration recomputes the detector run.
    ServeOptions options;
    options.cache_capacity = 0;
    Server server(options);
    const std::string request = detector_request(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(serve_one_us(server, request));
    }
}
BENCHMARK(BM_ServeColdDetector)->Unit(benchmark::kMillisecond);

void BM_ServeCacheHit(benchmark::State& state) {
    Server server({});
    const std::string request = detector_request(1);
    serve_one_us(server, request);  // warm the cache.
    for (auto _ : state) {
        benchmark::DoNotOptimize(serve_one_us(server, request));
    }
}
BENCHMARK(BM_ServeCacheHit)->Unit(benchmark::kMicrosecond);

void BM_ServeErrorResponse(benchmark::State& state) {
    Server server({});
    const std::string request = R"({"id":"e","method":"frobnicate"})";
    for (auto _ : state) {
        benchmark::DoNotOptimize(serve_one_us(server, request));
    }
}
BENCHMARK(BM_ServeErrorResponse)->Unit(benchmark::kMicrosecond);

void BM_CanonicalizeRequest(benchmark::State& state) {
    const auto doc = tnr::core::obs::json::parse(fit_request(3));
    const auto req = tnr::serve::parse_request(*doc);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tnr::serve::canonical_request(req));
    }
}
BENCHMARK(BM_CanonicalizeRequest);

void BM_CacheLookupHit(benchmark::State& state) {
    ResponseCache cache(128);
    for (std::size_t i = 0; i < 128; ++i) {
        const std::string canonical = "entry-" + std::to_string(i);
        cache.put(tnr::serve::canonical_hash(canonical), canonical,
                  "body-" + std::to_string(i));
    }
    const std::string canonical = "entry-64";
    const auto key = tnr::serve::canonical_hash(canonical);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.get(key, canonical));
    }
}
BENCHMARK(BM_CacheLookupHit);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(argc, argv, "Serve", emit_table);
}

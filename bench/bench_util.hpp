#pragma once
// Shared helper for the reproduction benches: every bench binary prints its
// paper-figure table first (the actual reproduction artifact), then runs its
// google-benchmark timings of the underlying machinery.

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>

namespace tnr::bench {

/// Prints a banner, runs the table emitter, then hands off to
/// google-benchmark. Call from each bench's main().
inline int run_bench_main(int argc, char** argv, const char* title,
                          const std::function<void(std::ostream&)>& emit_table) {
    std::cout << "==== " << title << " ====\n\n";
    emit_table(std::cout);
    std::cout << std::endl;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

}  // namespace tnr::bench

#pragma once
// Shared helper for the reproduction benches: every bench binary prints its
// paper-figure table first (the actual reproduction artifact), then runs its
// google-benchmark timings of the underlying machinery. Timings are also
// written to a machine-readable BENCH_<slug>.json so CI can diff runs.

#include <benchmark/benchmark.h>

#include <cctype>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/obs/json.hpp"

namespace tnr::bench {

namespace detail {

/// Console output plus a record of every finished run, so the JSON sink
/// sees exactly what the table showed.
class RecordingReporter final : public benchmark::ConsoleReporter {
public:
    struct Row {
        std::string name;
        std::int64_t iterations = 0;
        double ns_per_op = 0.0;
        double cpu_ns_per_op = 0.0;
    };

    void ReportRuns(const std::vector<Run>& reports) override {
        for (const auto& run : reports) {
            if (run.error_occurred) continue;
            Row row;
            row.name = run.benchmark_name();
            row.iterations = run.iterations;
            if (run.iterations > 0) {
                const auto iters = static_cast<double>(run.iterations);
                row.ns_per_op = run.real_accumulated_time * 1e9 / iters;
                row.cpu_ns_per_op = run.cpu_accumulated_time * 1e9 / iters;
            }
            rows_.push_back(std::move(row));
        }
        ConsoleReporter::ReportRuns(reports);
    }

    [[nodiscard]] const std::vector<Row>& rows() const noexcept {
        return rows_;
    }

private:
    std::vector<Row> rows_;
};

/// "Fig. 4 — transport kernels" -> "fig_4_transport_kernels".
inline std::string slug(const std::string& title) {
    std::string out;
    for (const unsigned char c : title) {
        if (std::isalnum(c)) {
            out.push_back(static_cast<char>(std::tolower(c)));
        } else if (!out.empty() && out.back() != '_') {
            out.push_back('_');
        }
    }
    while (!out.empty() && out.back() == '_') out.pop_back();
    return out;
}

inline void write_json(const std::string& path, const char* title,
                       const std::vector<RecordingReporter::Row>& rows,
                       const std::string& extra_json) {
    std::ofstream file(path);
    if (!file) {
        std::cerr << "bench: cannot open " << path << '\n';
        return;
    }
    namespace json = tnr::core::obs::json;
    file << "{\"title\":\"" << json::escape(title) << "\",";
    if (!extra_json.empty()) file << extra_json << ',';
    file << "\"benchmarks\":[";
    bool first = true;
    for (const auto& row : rows) {
        if (!first) file << ',';
        first = false;
        file << "{\"name\":\"" << json::escape(row.name)
             << "\",\"iterations\":" << row.iterations
             << ",\"ns_per_op\":" << json::number(row.ns_per_op)
             << ",\"cpu_ns_per_op\":" << json::number(row.cpu_ns_per_op)
             << '}';
    }
    file << "]}\n";
    std::cout << "wrote " << path << '\n';
}

}  // namespace detail

/// Prints a banner, runs the table emitter, then hands off to
/// google-benchmark; timing rows land in BENCH_<slug(title)>.json in the
/// working directory. Call from each bench's main(). `extra_json` (optional)
/// supplies extra top-level JSON members — `"key":{...}` fragments, comma
/// separated — spliced into the file after `title`; it runs at shutdown, so
/// it may report results the table emitter stashed aside (the pattern
/// bench_serve's obs_overhead experiment uses).
inline int run_bench_main(
    int argc, char** argv, const char* title,
    const std::function<void(std::ostream&)>& emit_table,
    const std::function<std::string()>& extra_json = {}) {
    std::cout << "==== " << title << " ====\n\n";
    emit_table(std::cout);
    std::cout << std::endl;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    detail::RecordingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    detail::write_json("BENCH_" + detail::slug(title) + ".json", title,
                       reporter.rows(), extra_json ? extra_json() : "");
    benchmark::Shutdown();
    return 0;
}

}  // namespace tnr::bench

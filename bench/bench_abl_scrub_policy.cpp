// Ablation — DRAM patrol scrubbing vs thermal single-bit faults: how often
// do two independent faults align in one SECDED word before a scrub clears
// them? Quantifies the paper's §IV conclusion from the operations side:
// with all thermal transients/intermittents single-bit and uniform, SECDED
// plus *any* scrub cadence is safe — the surviving DUE channel is SEFIs.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "environment/site.hpp"
#include "memory/scrub_policy.hpp"
#include "stats/rng.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    const double flux = environment::leadville_datacenter().thermal_flux();

    os << "DDR3 module at a Leadville data center (thermal flux "
       << core::format_fixed(flux, 1) << " n/cm^2/h):\n\n";
    core::TablePrinter table({"scrub interval", "faults/interval",
                              "P(word collision)/interval",
                              "uncorrectable / year"});
    const struct {
        const char* label;
        double seconds;
    } intervals[] = {
        {"1 hour", 3600.0},
        {"1 day", 86400.0},
        {"1 week", 7.0 * 86400.0},
        {"1 month", 30.0 * 86400.0},
        {"1 year (no patrol)", 365.0 * 86400.0},
    };
    for (const auto& iv : intervals) {
        const auto a = memory::analyze_scrub_interval(memory::ddr3_module(),
                                                      flux, iv.seconds);
        table.add_row({iv.label,
                       core::format_scientific(a.faults_per_interval, 2),
                       core::format_scientific(a.collision_probability, 2),
                       core::format_scientific(a.uncorrectable_per_year, 2)});
    }
    table.print(os);

    os << "\nMonte Carlo validation on an accelerated synthetic module "
          "(3000 trials):\n";
    memory::DramConfig tiny = memory::ddr3_module();
    tiny.capacity_gbit = 0.01;
    stats::Rng rng(3030);
    const auto analytic =
        memory::analyze_scrub_interval(tiny, 3.3e13, 3600.0);
    const double mc = memory::simulate_collision_probability(tiny, 3.3e13,
                                                             3600.0, 3000, rng);
    core::TablePrinter check({"model", "P(collision)"});
    check.add_row({"analytic birthday bound",
                   core::format_fixed(analytic.collision_probability, 4)});
    check.add_row({"Monte Carlo", core::format_fixed(mc, 4)});
    check.print(os);
    os << "\n(At realistic fluxes even a yearly scrub leaves "
          "word-collision DUEs below\n1e-6 per module-year: the thermal "
          "single-bit population is fully handled by\nSECDED, so the "
          "residual DRAM DUE budget belongs to SEFIs — matching the\n"
          "paper's observation that only SEFIs were multi-bit.)\n";
}

void BM_ScrubAnalysis(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(memory::analyze_scrub_interval(
            memory::ddr3_module(), 130.0, 86400.0));
    }
}
BENCHMARK(BM_ScrubAnalysis);

void BM_ScrubMonteCarlo(benchmark::State& state) {
    memory::DramConfig tiny = memory::ddr3_module();
    tiny.capacity_gbit = 0.01;
    stats::Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(memory::simulate_collision_probability(
            tiny, 3.3e13, 3600.0, 100, rng));
    }
}
BENCHMARK(BM_ScrubMonteCarlo)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Ablation — patrol scrubbing vs thermal single-bit faults",
        emit_table);
}

// Txt-1 (§V) — thermal-flux environment modifiers: rain doubles the thermal
// flux, a concrete slab adds +20%, cooling water +24%, the paper's combined
// data-center adjustment is +44%. Prints the modifier table for reference
// scenarios and the resulting fluxes at NYC and Leadville.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "environment/location.hpp"
#include "environment/modifiers.hpp"
#include "environment/site.hpp"

namespace {

using namespace tnr;
using environment::ThermalEnvironment;
using environment::Weather;

void emit_table(std::ostream& os) {
    struct Scenario {
        const char* label;
        ThermalEnvironment env;
        const char* paper;
    };
    const Scenario scenarios[] = {
        {"open field, sunny", ThermalEnvironment::open_field(), "1.00 (ref)"},
        {"concrete slab", {Weather::kSunny, true, false, 0.0}, "+20%"},
        {"water cooling", {Weather::kSunny, false, true, 0.0}, "+24%"},
        {"slab + cooling (data center)", ThermalEnvironment::datacenter(),
         "+44%"},
        {"rainy day, open field", {Weather::kRainy, false, false, 0.0},
         "x2 [ziegler2003]"},
        {"rainy day, data center", {Weather::kRainy, true, true, 0.0},
         "x2 on top of +44%"},
        {"car with passengers (+10%)", {Weather::kSunny, false, false, 0.1},
         "humans are moderators"},
    };

    os << "Thermal flux multiplier per environment:\n";
    core::TablePrinter table({"environment", "multiplier", "paper"});
    for (const auto& s : scenarios) {
        table.add_row({s.label,
                       core::format_fixed(s.env.thermal_multiplier(), 2),
                       s.paper});
    }
    table.print(os);

    os << "\nResulting fluxes [n/cm^2/h]:\n";
    core::TablePrinter fluxes(
        {"location", "Phi_HE (>10MeV)", "Phi_th open field", "Phi_th datacenter",
         "Phi_th datacenter+rain"});
    for (const auto& loc : {environment::Location::new_york_city(),
                            environment::Location::leadville_co(),
                            environment::Location::los_alamos_nm()}) {
        ThermalEnvironment dc = ThermalEnvironment::datacenter();
        ThermalEnvironment rain = dc;
        rain.weather = Weather::kRainy;
        fluxes.add_row(
            {loc.name(), core::format_fixed(loc.high_energy_flux(), 1),
             core::format_fixed(loc.thermal_flux_baseline(), 1),
             core::format_fixed(
                 loc.thermal_flux_baseline() * dc.thermal_multiplier(), 1),
             core::format_fixed(
                 loc.thermal_flux_baseline() * rain.thermal_multiplier(), 1)});
    }
    fluxes.print(os);
}

void BM_ThermalMultiplier(benchmark::State& state) {
    ThermalEnvironment env = ThermalEnvironment::datacenter();
    for (auto _ : state) {
        benchmark::DoNotOptimize(env.thermal_multiplier());
    }
}
BENCHMARK(BM_ThermalMultiplier);

void BM_LocationFlux(benchmark::State& state) {
    const auto lead = environment::Location::leadville_co();
    for (auto _ : state) {
        benchmark::DoNotOptimize(lead.high_energy_flux());
        benchmark::DoNotOptimize(lead.thermal_flux_baseline());
    }
}
BENCHMARK(BM_LocationFlux);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Txt-1 — thermal neutron flux environment modifiers",
        emit_table);
}

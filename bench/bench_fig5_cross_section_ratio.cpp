// Fig. 5 — "Average cross section ratio for all devices": runs the full
// simulated ChipIR+ROTAX campaign and prints the HE/thermal cross-section
// ratio per device and error type next to the paper's values.

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "beam/campaign.hpp"
#include "bench_util.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"

namespace {

using namespace tnr;

const beam::CampaignResult& campaign() {
    static const beam::CampaignResult result = [] {
        beam::CampaignConfig cfg;
        cfg.beam_time_per_run_s = 3600.0 * 24.0;
        cfg.seed = 2020;
        return beam::Campaign(cfg).run();
    }();
    return result;
}

std::string paper_value(const std::string& device, devices::ErrorType type) {
    static const std::map<std::pair<std::string, int>, std::string> known = {
        {{"Intel Xeon Phi", 0}, "10.14"},
        {{"Intel Xeon Phi", 1}, "6.37"},
        {{"NVIDIA K20", 0}, "~2"},
        {{"NVIDIA K20", 1}, "~3"},
        {{"NVIDIA TitanX", 0}, "~3"},
        {{"NVIDIA TitanX", 1}, "~7"},
        {{"NVIDIA TitanV", 0}, "~5 [jsc2020]"},
        {{"NVIDIA TitanV", 1}, "~8 [jsc2020]"},
        {{"AMD APU (CPU)", 0}, "~2.2"},
        {{"AMD APU (CPU)", 1}, "~2"},
        {{"AMD APU (GPU)", 0}, "~2.8"},
        {{"AMD APU (GPU)", 1}, "~1.3"},
        {{"AMD APU (CPU+GPU)", 0}, "~2.5"},
        {{"AMD APU (CPU+GPU)", 1}, "1.18"},
        {{"Xilinx Zynq-7000 FPGA", 0}, "2.33"},
        {{"Xilinx Zynq-7000 FPGA", 1}, "(DUE never observed)"},
    };
    const auto it = known.find({device, type == devices::ErrorType::kDue});
    return it != known.end() ? it->second : "-";
}

void emit_table(std::ostream& os) {
    os << "HE / thermal cross-section ratio per device (pooled over its "
          "workload suite,\n24 h of simulated beam per run, 95% CI):\n\n";
    core::TablePrinter table({"device", "type", "measured ratio", "95% CI",
                              "paper"});
    for (const auto& row : campaign().ratio_rows) {
        const auto ratio = row.ratio();
        std::string measured = "no thermal errors";
        std::string ci = "-";
        if (ratio.has_value()) {
            measured = core::format_fixed(ratio->ratio, 2);
            ci = "[" + core::format_fixed(ratio->ci.lower, 2) + ", " +
                 core::format_fixed(ratio->ci.upper, 2) + "]";
        }
        table.add_row({row.device, devices::to_string(row.type), measured, ci,
                       paper_value(row.device, row.type)});
    }
    table.print(os);
}

void BM_FullCampaign(benchmark::State& state) {
    beam::CampaignConfig cfg;
    cfg.beam_time_per_run_s = static_cast<double>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(beam::Campaign(cfg).run());
    }
}
BENCHMARK(BM_FullCampaign)->Arg(600)->Arg(3600)->Unit(benchmark::kMillisecond);

void BM_DeviceCalibration(benchmark::State& state) {
    const auto& spec = devices::standard_specs().front();
    for (auto _ : state) {
        benchmark::DoNotOptimize(devices::build_calibrated(spec));
    }
}
BENCHMARK(BM_DeviceCalibration)->Unit(benchmark::kMillisecond);

void BM_FoldedCrossSection(benchmark::State& state) {
    const auto device = devices::build_calibrated(
        devices::spec_by_name("NVIDIA K20"));
    const auto spectrum = physics::chipir_spectrum();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            device.folded_cross_section(devices::ErrorType::kSdc, *spectrum));
    }
}
BENCHMARK(BM_FoldedCrossSection);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv,
        "Fig. 5 — average HE/thermal cross-section ratio for all devices",
        emit_table);
}

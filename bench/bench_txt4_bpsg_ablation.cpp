// Txt-4 (§II) — the boron story as an ablation over the 10B content:
//   * BPSG-era insulation raised upset rates ~8x [baumann1995boron];
//   * purified (depleted 11B) boron makes a device immune to thermals.
// Sweeps the thermal-channel scale of a modern device and prints the ROTAX
// error rate and the data-center FIT at each level.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/fit.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "environment/site.hpp"
#include "physics/beamline_spectra.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    const auto k20 =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto rotax = physics::rotax_spectrum();
    const auto site = environment::leadville_datacenter();

    struct Level {
        const char* label;
        double scale;
    };
    const Level levels[] = {
        {"purified 11B (depleted boron)", 0.0},
        {"modern COTS (as calibrated)", 1.0},
        {"2x boron contamination", 2.0},
        {"BPSG-era insulation (~8x)", 8.0},
    };

    os << "10B ablation on NVIDIA K20 (SDC channel):\n";
    core::TablePrinter table({"boron level", "ROTAX error rate [1/s]",
                              "thermal FIT @ Leadville DC", "total FIT",
                              "thermal share"});
    for (const auto& level : levels) {
        const auto device = k20.with_thermal_scale(level.scale);
        const double rate = device.error_rate(devices::ErrorType::kSdc, *rotax);
        const auto fit = core::device_fit(device, devices::ErrorType::kSdc, site);
        table.add_row({level.label, core::format_scientific(rate),
                       core::format_fixed(fit.thermal, 1),
                       core::format_fixed(fit.total(), 1),
                       core::format_percent(fit.thermal_share())});
    }
    table.print(os);
    os << "\n(8x the thermal channel multiplies the thermal FIT exactly 8x; "
          "removing boron\nzeroes it — the paper's §II history in one "
          "sweep.)\n";
}

void BM_ThermalScaling(benchmark::State& state) {
    const auto k20 =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            k20.with_thermal_scale(static_cast<double>(state.range(0))));
    }
}
BENCHMARK(BM_ThermalScaling)->Arg(0)->Arg(8);

void BM_DeviceFit(benchmark::State& state) {
    const auto k20 =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto site = environment::leadville_datacenter();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::device_fit(k20, devices::ErrorType::kSdc, site));
    }
}
BENCHMARK(BM_DeviceFit)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Txt-4 — 10B content ablation (BPSG history, depleted boron)",
        emit_table);
}

// Kernel throughput: google-benchmark timings of the nine workload kernels
// themselves — the substrate every SWIFI trial and FPGA beam run executes.
// No paper table here; this is the performance card of the suite.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstddef>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "physics/materials.hpp"
#include "physics/spectrum.hpp"
#include "physics/transport.hpp"
#include "physics/xs_table.hpp"
#include "stats/rng.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    core::TablePrinter table({"kernel", "injectable state [bytes]",
                              "segments"});
    for (const auto& entry : workloads::full_suite()) {
        auto w = entry.make();
        w->reset();
        table.add_row({entry.name, std::to_string(w->state_bytes()),
                       std::to_string(w->segments().size())});
    }
    table.print(os);
}

void BM_Kernel(benchmark::State& state, const std::string& name) {
    auto w = workloads::entry_by_name(name).make();
    w->reset();
    for (auto _ : state) {
        w->run();
        benchmark::DoNotOptimize(w->verify());
    }
}

#define TNR_KERNEL_BENCH(name, label)                                  \
    void BM_##name(benchmark::State& state) { BM_Kernel(state, label); } \
    BENCHMARK(BM_##name)->Unit(benchmark::kMicrosecond)

TNR_KERNEL_BENCH(MxM, "MxM");
TNR_KERNEL_BENCH(Lud, "LUD");
TNR_KERNEL_BENCH(LavaMd, "LavaMD");
TNR_KERNEL_BENCH(HotSpot, "HotSpot");
TNR_KERNEL_BENCH(Sc, "SC");
TNR_KERNEL_BENCH(Ced, "CED");
TNR_KERNEL_BENCH(Bfs, "BFS");
TNR_KERNEL_BENCH(Yolo, "YOLO");
TNR_KERNEL_BENCH(Mnist, "MNIST");
TNR_KERNEL_BENCH(MnistDp, "MNIST-dp");

#undef TNR_KERNEL_BENCH

void BM_ResetCost(benchmark::State& state) {
    auto w = workloads::entry_by_name("MxM").make();
    for (auto _ : state) {
        w->reset();
        benchmark::DoNotOptimize(w->state_bytes());
    }
}
BENCHMARK(BM_ResetCost)->Unit(benchmark::kMicrosecond);

// --- Parallel engine: serial loop vs shared pool ----------------------------
// One spectrum run per iteration; arguments are {workers, use_xs_table}.
// workers == 1 is the historical serial path, bitwise identical to pre-pool
// builds; the {1, 0} row is the exact-formula baseline for the table row.

void BM_SpectrumTransport(benchmark::State& state) {
    physics::TransportConfig cfg;
    cfg.threads = static_cast<unsigned>(state.range(0));
    cfg.use_xs_table = state.range(1) != 0;
    const physics::SlabTransport slab(physics::Material::concrete(), 10.0, cfg);
    const physics::MaxwellianSpectrum spectrum(1.0, 0.0253);
    spectrum.prepare_sampling();
    stats::Rng rng(2020);
    for (auto _ : state) {
        benchmark::DoNotOptimize(slab.run_spectrum(spectrum, 20'000, rng));
    }
    state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_SpectrumTransport)
    ->Args({1, 0})->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- Cross-section cache: exact formulas vs MaterialXsTable -----------------

// Pre-drawn energies (1 meV .. 10 MeV, log-uniform) so the timed loop holds
// only the evaluation under test.
std::vector<double> sigma_bench_energies() {
    stats::Rng rng(7);
    std::vector<double> energies(4096);
    for (auto& e : energies) e = 1.0e-3 * std::pow(1.0e10, rng.uniform());
    return energies;
}

void BM_SigmaExact(benchmark::State& state) {
    const auto material = physics::Material::concrete();
    const auto energies = sigma_bench_energies();
    std::size_t i = 0;
    for (auto _ : state) {
        const double e = energies[i++ & (energies.size() - 1)];
        benchmark::DoNotOptimize(material.sigma_scatter(e) +
                                 material.sigma_absorb(e));
    }
}
BENCHMARK(BM_SigmaExact);

void BM_SigmaTable(benchmark::State& state) {
    const auto material = physics::Material::concrete();
    const physics::MaterialXsTable table(material);
    const auto energies = sigma_bench_energies();
    std::size_t i = 0;
    for (auto _ : state) {
        const double e = energies[i++ & (energies.size() - 1)];
        const auto lk = table.lookup(e);
        benchmark::DoNotOptimize(lk.sigma_scatter + lk.sigma_absorb);
    }
}
BENCHMARK(BM_SigmaTable);

void BM_TransportExactXs(benchmark::State& state) {
    physics::TransportConfig cfg;
    cfg.use_xs_table = false;
    const physics::SlabTransport slab(physics::Material::concrete(), 10.0, cfg);
    stats::Rng rng(2020);
    for (auto _ : state) {
        benchmark::DoNotOptimize(slab.run_monoenergetic(1.0e6, 5'000, rng));
    }
    state.SetItemsProcessed(state.iterations() * 5'000);
}
BENCHMARK(BM_TransportExactXs)->Unit(benchmark::kMillisecond);

void BM_TransportTableXs(benchmark::State& state) {
    physics::TransportConfig cfg;
    cfg.use_xs_table = true;
    const physics::SlabTransport slab(physics::Material::concrete(), 10.0, cfg);
    stats::Rng rng(2020);
    for (auto _ : state) {
        benchmark::DoNotOptimize(slab.run_monoenergetic(1.0e6, 5'000, rng));
    }
    state.SetItemsProcessed(state.iterations() * 5'000);
}
BENCHMARK(BM_TransportTableXs)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Kernel suite throughput (the SWIFI substrate)",
        emit_table);
}

// Kernel throughput: google-benchmark timings of the nine workload kernels
// themselves — the substrate every SWIFI trial and FPGA beam run executes.
// No paper table here; this is the performance card of the suite.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/obs/json.hpp"
#include "core/report.hpp"
#include "physics/materials.hpp"
#include "physics/spectrum.hpp"
#include "physics/transport.hpp"
#include "physics/xs_table.hpp"
#include "stats/rng.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    core::TablePrinter table({"kernel", "injectable state [bytes]",
                              "segments"});
    for (const auto& entry : workloads::full_suite()) {
        auto w = entry.make();
        w->reset();
        table.add_row({entry.name, std::to_string(w->state_bytes()),
                       std::to_string(w->segments().size())});
    }
    table.print(os);
}

void BM_Kernel(benchmark::State& state, const std::string& name) {
    auto w = workloads::entry_by_name(name).make();
    w->reset();
    for (auto _ : state) {
        w->run();
        benchmark::DoNotOptimize(w->verify());
    }
}

#define TNR_KERNEL_BENCH(name, label)                                  \
    void BM_##name(benchmark::State& state) { BM_Kernel(state, label); } \
    BENCHMARK(BM_##name)->Unit(benchmark::kMicrosecond)

TNR_KERNEL_BENCH(MxM, "MxM");
TNR_KERNEL_BENCH(Lud, "LUD");
TNR_KERNEL_BENCH(LavaMd, "LavaMD");
TNR_KERNEL_BENCH(HotSpot, "HotSpot");
TNR_KERNEL_BENCH(Sc, "SC");
TNR_KERNEL_BENCH(Ced, "CED");
TNR_KERNEL_BENCH(Bfs, "BFS");
TNR_KERNEL_BENCH(Yolo, "YOLO");
TNR_KERNEL_BENCH(Mnist, "MNIST");
TNR_KERNEL_BENCH(MnistDp, "MNIST-dp");

#undef TNR_KERNEL_BENCH

void BM_ResetCost(benchmark::State& state) {
    auto w = workloads::entry_by_name("MxM").make();
    for (auto _ : state) {
        w->reset();
        benchmark::DoNotOptimize(w->state_bytes());
    }
}
BENCHMARK(BM_ResetCost)->Unit(benchmark::kMicrosecond);

// --- Parallel engine: serial loop vs shared pool ----------------------------
// One spectrum run per iteration; arguments are {workers, use_xs_table}.
// workers == 1 is the historical serial path, bitwise identical to pre-pool
// builds; the {1, 0} row is the exact-formula baseline for the table row.

void BM_SpectrumTransport(benchmark::State& state) {
    physics::TransportConfig cfg;
    cfg.threads = static_cast<unsigned>(state.range(0));
    cfg.use_xs_table = state.range(1) != 0;
    const physics::SlabTransport slab(physics::Material::concrete(), 10.0, cfg);
    const physics::MaxwellianSpectrum spectrum(1.0, 0.0253);
    spectrum.prepare_sampling();
    stats::Rng rng(2020);
    for (auto _ : state) {
        benchmark::DoNotOptimize(slab.run_spectrum(spectrum, 20'000, rng));
    }
    state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_SpectrumTransport)
    ->Args({1, 0})->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- Cross-section cache: exact formulas vs MaterialXsTable -----------------

// Pre-drawn energies (1 meV .. 10 MeV, log-uniform) so the timed loop holds
// only the evaluation under test.
std::vector<double> sigma_bench_energies() {
    stats::Rng rng(7);
    std::vector<double> energies(4096);
    for (auto& e : energies) e = 1.0e-3 * std::pow(1.0e10, rng.uniform());
    return energies;
}

void BM_SigmaExact(benchmark::State& state) {
    const auto material = physics::Material::concrete();
    const auto energies = sigma_bench_energies();
    std::size_t i = 0;
    for (auto _ : state) {
        const double e = energies[i++ & (energies.size() - 1)];
        benchmark::DoNotOptimize(material.sigma_scatter(e) +
                                 material.sigma_absorb(e));
    }
}
BENCHMARK(BM_SigmaExact);

void BM_SigmaTable(benchmark::State& state) {
    const auto material = physics::Material::concrete();
    const physics::MaterialXsTable table(material);
    const auto energies = sigma_bench_energies();
    std::size_t i = 0;
    for (auto _ : state) {
        const double e = energies[i++ & (energies.size() - 1)];
        const auto lk = table.lookup(e);
        benchmark::DoNotOptimize(lk.sigma_scatter + lk.sigma_absorb);
    }
}
BENCHMARK(BM_SigmaTable);

void BM_TransportExactXs(benchmark::State& state) {
    physics::TransportConfig cfg;
    cfg.use_xs_table = false;
    const physics::SlabTransport slab(physics::Material::concrete(), 10.0, cfg);
    stats::Rng rng(2020);
    for (auto _ : state) {
        benchmark::DoNotOptimize(slab.run_monoenergetic(1.0e6, 5'000, rng));
    }
    state.SetItemsProcessed(state.iterations() * 5'000);
}
BENCHMARK(BM_TransportExactXs)->Unit(benchmark::kMillisecond);

void BM_TransportTableXs(benchmark::State& state) {
    physics::TransportConfig cfg;
    cfg.use_xs_table = true;
    const physics::SlabTransport slab(physics::Material::concrete(), 10.0, cfg);
    stats::Rng rng(2020);
    for (auto _ : state) {
        benchmark::DoNotOptimize(slab.run_monoenergetic(1.0e6, 5'000, rng));
    }
    state.SetItemsProcessed(state.iterations() * 5'000);
}
BENCHMARK(BM_TransportTableXs)->Unit(benchmark::kMillisecond);

// --- Analog vs batched implicit-capture kernel ------------------------------
// The thermal-capture slab benchmark: a room-temperature Maxwellian beam on
// a thin water slab, where absorption is the rare channel the implicit-
// capture kernel exists to resolve.

constexpr double kFomSlabThicknessCm = 0.5;
constexpr std::uint64_t kFomHistories = 20'000;

physics::SlabTransport fom_slab(
    physics::TransportMode mode,
    core::simd::Policy simd = core::simd::Policy::kAuto) {
    physics::TransportConfig cfg;
    cfg.mode = mode;
    cfg.simd = simd;
    return physics::SlabTransport(physics::Material::water(),
                                  kFomSlabThicknessCm, cfg);
}

void BM_TransportAnalog(benchmark::State& state) {
    const auto slab = fom_slab(physics::TransportMode::kAnalog);
    const physics::MaxwellianSpectrum spectrum(1.0, 0.0253);
    stats::Rng rng(2020);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            slab.run_spectrum(spectrum, kFomHistories, rng));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kFomHistories));
}
BENCHMARK(BM_TransportAnalog)->Unit(benchmark::kMillisecond);

void BM_TransportImplicit(benchmark::State& state) {
    const auto slab = fom_slab(physics::TransportMode::kImplicitCapture);
    const physics::MaxwellianSpectrum spectrum(1.0, 0.0253);
    stats::Rng rng(2020);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            slab.run_spectrum(spectrum, kFomHistories, rng));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kFomHistories));
}
BENCHMARK(BM_TransportImplicit)->Unit(benchmark::kMillisecond);

void BM_TransportImplicitScalar(benchmark::State& state) {
    // The forced-scalar tier of the same kernel: the SIMD speedup is this
    // row vs BM_TransportImplicit (which runs the auto tier).
    const auto slab = fom_slab(physics::TransportMode::kImplicitCapture,
                               core::simd::Policy::kForceScalar);
    const physics::MaxwellianSpectrum spectrum(1.0, 0.0253);
    stats::Rng rng(2020);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            slab.run_spectrum(spectrum, kFomHistories, rng));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kFomHistories));
}
BENCHMARK(BM_TransportImplicitScalar)->Unit(benchmark::kMillisecond);

// --- Source sampling: binary-search inverse CDF vs Walker alias table -------

physics::TabulatedSpectrum sampling_bench_spectrum() {
    // A dense tabulated spectrum (128 log-spaced points with a lumpy shape)
    // so the lower_bound walk has something to search.
    std::vector<std::pair<double, double>> points;
    for (int i = 0; i < 128; ++i) {
        const double e = 1.0e-3 * std::pow(10.0, 10.0 * i / 127.0);
        const double f = 1.0 + std::abs(std::sin(0.37 * i)) * 20.0 / (1.0 + i % 7);
        points.emplace_back(e, f);
    }
    return physics::TabulatedSpectrum("bench", std::move(points));
}

void BM_SampleInverseCdf(benchmark::State& state) {
    const auto spectrum = sampling_bench_spectrum();
    spectrum.prepare_sampling();
    stats::Rng rng(11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(spectrum.sample_energy(rng));
    }
}
BENCHMARK(BM_SampleInverseCdf);

void BM_SampleAlias(benchmark::State& state) {
    const auto spectrum = sampling_bench_spectrum();
    spectrum.prepare_sampling();
    stats::Rng rng(11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(spectrum.sample_energy_fast(rng));
    }
}
BENCHMARK(BM_SampleAlias);

// --- BENCH_transport.json: the figure-of-merit experiment --------------------
// Equal-history repetitions of the thermal-capture benchmark in both modes;
// FOM = 1/(rel_err^2 * t) is n-invariant, so equal histories compare the
// modes at equal statistical currency. Written unconditionally (independent
// of --benchmark_filter) so the CI smoke can always assert on it.

struct FomMode {
    double histories_per_s = 0.0;
    double rel_err = 0.0;
    double fom = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
};

FomMode run_fom_mode(physics::TransportMode mode,
                     core::simd::Policy simd = core::simd::Policy::kAuto) {
    const auto slab = fom_slab(mode, simd);
    const physics::MaxwellianSpectrum spectrum(1.0, 0.0253);
    constexpr int kReps = 9;
    std::vector<double> seconds;
    std::vector<double> foms;
    seconds.reserve(kReps);
    double rel_err = 0.0;
    double total_s = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        stats::Rng rng(3000 + static_cast<std::uint64_t>(rep));
        const auto t0 = std::chrono::steady_clock::now();
        const auto result = slab.run_spectrum(spectrum, kFomHistories, rng);
        const double dt = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        seconds.push_back(dt);
        total_s += dt;
        const auto est = result.absorption_estimate();
        rel_err = est.rel_std_error;
        foms.push_back(est.figure_of_merit(dt));
    }
    std::sort(seconds.begin(), seconds.end());
    std::sort(foms.begin(), foms.end());
    FomMode out;
    out.histories_per_s =
        static_cast<double>(kFomHistories) * kReps / total_s;
    out.rel_err = rel_err;
    out.fom = foms[foms.size() / 2];  // median rep.
    out.p50_ms = seconds[seconds.size() / 2] * 1e3;
    out.p99_ms = seconds.back() * 1e3;
    return out;
}

double time_sampler_ns(const physics::Spectrum& spectrum, bool fast) {
    constexpr int kDraws = 400'000;
    stats::Rng rng(12);
    double sink = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kDraws; ++i) {
        sink += fast ? spectrum.sample_energy_fast(rng)
                     : spectrum.sample_energy(rng);
    }
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    benchmark::DoNotOptimize(sink);
    return dt * 1e9 / kDraws;
}

void emit_fom_json(std::ostream& log) {
    const FomMode analog = run_fom_mode(physics::TransportMode::kAnalog);
    // "implicit" is the production auto tier; the forced-scalar row isolates
    // the SIMD speedup from the variance-reduction FOM gain.
    const FomMode implicit_scalar =
        run_fom_mode(physics::TransportMode::kImplicitCapture,
                     core::simd::Policy::kForceScalar);
    const FomMode implicit =
        run_fom_mode(physics::TransportMode::kImplicitCapture);
    const double ratio = analog.fom > 0.0 ? implicit.fom / analog.fom : 0.0;
    const core::simd::Tier tier =
        core::simd::resolve(core::simd::Policy::kAuto);
    const double simd_speedup =
        implicit_scalar.histories_per_s > 0.0
            ? implicit.histories_per_s / implicit_scalar.histories_per_s
            : 0.0;

    const auto spectrum = sampling_bench_spectrum();
    spectrum.prepare_sampling();
    const double inverse_ns = time_sampler_ns(spectrum, false);
    const double alias_ns = time_sampler_ns(spectrum, true);

    core::TablePrinter table({"mode", "histories/s", "rel err", "FOM 1/s",
                              "p50 [ms]", "p99 [ms]"});
    const auto add = [&table](const char* name, const FomMode& m) {
        table.add_row({name, core::format_scientific(m.histories_per_s),
                       core::format_scientific(m.rel_err),
                       core::format_scientific(m.fom),
                       core::format_fixed(m.p50_ms, 2),
                       core::format_fixed(m.p99_ms, 2)});
    };
    add("analog", analog);
    add("implicit/scalar", implicit_scalar);
    add((std::string("implicit/") + core::simd::to_string(tier)).c_str(),
        implicit);
    table.print(log);
    log << "FOM ratio (implicit/analog): " << core::format_fixed(ratio, 1)
        << "; SIMD tier " << core::simd::to_string(tier) << " "
        << core::format_fixed(simd_speedup, 2)
        << "x scalar; source sampling: inverse-CDF "
        << core::format_fixed(inverse_ns, 1) << " ns vs alias "
        << core::format_fixed(alias_ns, 1) << " ns\n\n";

    namespace json = core::obs::json;
    std::ofstream file("BENCH_transport.json");
    if (!file) {
        std::cerr << "bench: cannot open BENCH_transport.json\n";
        return;
    }
    const auto mode_json = [&file](const char* name, const FomMode& m) {
        file << '"' << name << "\":{\"histories_per_s\":"
             << json::number(m.histories_per_s)
             << ",\"rel_err\":" << json::number(m.rel_err)
             << ",\"fom\":" << json::number(m.fom)
             << ",\"p50_ms\":" << json::number(m.p50_ms)
             << ",\"p99_ms\":" << json::number(m.p99_ms) << '}';
    };
    file << "{\"title\":\"transport kernel comparison\","
         << "\"thermal_capture_slab\":{\"material\":\"water\","
         << "\"thickness_cm\":" << json::number(kFomSlabThicknessCm)
         << ",\"histories\":" << kFomHistories << ',';
    mode_json("analog", analog);
    file << ',';
    mode_json("implicit", implicit);
    file << ',';
    mode_json("implicit_scalar", implicit_scalar);
    file << ",\"fom_ratio\":" << json::number(ratio)
         << ",\"simd\":{\"tier\":\"" << core::simd::to_string(tier)
         << "\",\"speedup\":" << json::number(simd_speedup) << "}},"
         << "\"source_sampling\":{\"inverse_cdf_ns\":"
         << json::number(inverse_ns)
         << ",\"alias_ns\":" << json::number(alias_ns)
         << ",\"speedup\":"
         << json::number(alias_ns > 0.0 ? inverse_ns / alias_ns : 0.0)
         << "}}\n";
    std::cout << "wrote BENCH_transport.json\n";
}

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Kernel suite throughput (the SWIFI substrate)",
        [](std::ostream& os) {
            emit_table(os);
            os << '\n';
            emit_fom_json(os);
        });
}

// Kernel throughput: google-benchmark timings of the nine workload kernels
// themselves — the substrate every SWIFI trial and FPGA beam run executes.
// No paper table here; this is the performance card of the suite.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    core::TablePrinter table({"kernel", "injectable state [bytes]",
                              "segments"});
    for (const auto& entry : workloads::full_suite()) {
        auto w = entry.make();
        w->reset();
        table.add_row({entry.name, std::to_string(w->state_bytes()),
                       std::to_string(w->segments().size())});
    }
    table.print(os);
}

void BM_Kernel(benchmark::State& state, const std::string& name) {
    auto w = workloads::entry_by_name(name).make();
    w->reset();
    for (auto _ : state) {
        w->run();
        benchmark::DoNotOptimize(w->verify());
    }
}

#define TNR_KERNEL_BENCH(name, label)                                  \
    void BM_##name(benchmark::State& state) { BM_Kernel(state, label); } \
    BENCHMARK(BM_##name)->Unit(benchmark::kMicrosecond)

TNR_KERNEL_BENCH(MxM, "MxM");
TNR_KERNEL_BENCH(Lud, "LUD");
TNR_KERNEL_BENCH(LavaMd, "LavaMD");
TNR_KERNEL_BENCH(HotSpot, "HotSpot");
TNR_KERNEL_BENCH(Sc, "SC");
TNR_KERNEL_BENCH(Ced, "CED");
TNR_KERNEL_BENCH(Bfs, "BFS");
TNR_KERNEL_BENCH(Yolo, "YOLO");
TNR_KERNEL_BENCH(Mnist, "MNIST");
TNR_KERNEL_BENCH(MnistDp, "MNIST-dp");

#undef TNR_KERNEL_BENCH

void BM_ResetCost(benchmark::State& state) {
    auto w = workloads::entry_by_name("MxM").make();
    for (auto _ : state) {
        w->reset();
        benchmark::DoNotOptimize(w->state_bytes());
    }
}
BENCHMARK(BM_ResetCost)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Kernel suite throughput (the SWIFI substrate)",
        emit_table);
}

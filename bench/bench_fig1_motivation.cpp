// Fig. 1 — "High energy and thermal neutrons normalized cross sections for
// AMD APU and FPGA": per-workload normalized cross sections at ChipIR and
// ROTAX for the three APU configurations (CED/SC/BFS) and the FPGA (MNIST),
// using fault-injection-derived workload weights. As in the paper, values
// are normalized to the lowest cross section per vendor.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <limits>

#include "beam/campaign.hpp"
#include "bench_util.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "faultinject/avf.hpp"
#include "workloads/bfs.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace tnr;

const beam::CampaignResult& campaign() {
    static const beam::CampaignResult result = [] {
        beam::CampaignConfig cfg;
        cfg.beam_time_per_run_s = 3600.0 * 24.0;
        cfg.seed = 11;
        cfg.avf_trials = 120;  // real SWIFI-derived workload weights.
        return beam::Campaign(cfg).run();
    }();
    return result;
}

void emit_vendor(std::ostream& os, const char* vendor_label,
                 const std::vector<std::string>& device_names) {
    // Find the vendor-wide minimum nonzero cross section for normalization.
    double norm = std::numeric_limits<double>::infinity();
    for (const auto& m : campaign().measurements) {
        if (std::find(device_names.begin(), device_names.end(), m.device) ==
            device_names.end()) {
            continue;
        }
        if (m.errors > 0) norm = std::min(norm, m.cross_section());
    }
    os << vendor_label << " (normalized to the vendor's lowest measured "
       << "cross section):\n";
    core::TablePrinter table(
        {"device", "workload", "beamline", "type", "normalized sigma"});
    for (const auto& m : campaign().measurements) {
        if (std::find(device_names.begin(), device_names.end(), m.device) ==
            device_names.end()) {
            continue;
        }
        table.add_row({m.device, m.workload, m.beamline,
                       devices::to_string(m.type),
                       core::format_fixed(m.cross_section() / norm, 2)});
    }
    table.print(os);
    os << '\n';
}

void emit_table(std::ostream& os) {
    emit_vendor(os, "AMD APU, heterogeneous codes (CED / SC / BFS)",
                {"AMD APU (CPU)", "AMD APU (GPU)", "AMD APU (CPU+GPU)"});
    emit_vendor(os, "Xilinx FPGA, MNIST", {"Xilinx Zynq-7000 FPGA"});
}

void BM_AvfTableHeterogeneous(benchmark::State& state) {
    const auto suite = workloads::heterogeneous_suite();
    for (auto _ : state) {
        benchmark::DoNotOptimize(faultinject::VulnerabilityTable::measure(
            suite, static_cast<std::size_t>(state.range(0)), 1));
    }
}
BENCHMARK(BM_AvfTableHeterogeneous)->Arg(20)->Arg(60)
    ->Unit(benchmark::kMillisecond);

void BM_SingleInjectionBfs(benchmark::State& state) {
    auto w = workloads::make_bfs();
    faultinject::FaultInjector injector(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(injector.inject_once(*w));
    }
}
BENCHMARK(BM_SingleInjectionBfs)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv,
        "Fig. 1 — normalized HE vs thermal cross sections, APU & FPGA",
        emit_table);
}

// Txt-3 ([jsc2020] HPC_FIT figure) — projected thermal DDR FIT for the ten
// fastest supercomputers of the Nov-2019 Top500, from fleet DRAM capacity,
// site altitude, and the Fig.-4 per-Gbit thermal cross sections.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "core/fit.hpp"
#include "core/report.hpp"
#include "environment/site.hpp"
#include "memory/dram_config.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    auto rows = core::fleet_dram_fit(environment::top10_supercomputers());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.fit > b.fit; });

    os << "Projected whole-fleet thermal DDR FIT (sunny day, slab + liquid "
          "cooling):\n";
    core::TablePrinter table({"system", "DRAM [Gbit]", "Phi_th [n/cm^2/h]",
                              "thermal FIT", "mean time between DDR errors"});
    for (const auto& row : rows) {
        const double hours = 1.0e9 / row.fit;
        table.add_row({row.system, core::format_scientific(row.capacity_gbit, 1),
                       core::format_fixed(row.thermal_flux, 1),
                       core::format_fixed(row.fit, 0),
                       core::format_fixed(hours, 1) + " h"});
    }
    table.print(os);

    os << "\nRainy-day projection (thermal flux x2):\n";
    core::TablePrinter rain({"system", "sunny FIT", "rainy FIT"});
    auto sites = environment::top10_supercomputers();
    for (auto& site : sites) {
        site.environment.weather = environment::Weather::kRainy;
    }
    const auto rainy = core::fleet_dram_fit(sites);
    const auto sunny = core::fleet_dram_fit(environment::top10_supercomputers());
    for (std::size_t i = 0; i < rainy.size(); ++i) {
        rain.add_row({sunny[i].system, core::format_fixed(sunny[i].fit, 0),
                      core::format_fixed(rainy[i].fit, 0)});
    }
    rain.print(os);
}

void BM_FleetProjection(benchmark::State& state) {
    const auto sites = environment::top10_supercomputers();
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::fleet_dram_fit(sites));
    }
}
BENCHMARK(BM_FleetProjection)->Unit(benchmark::kMicrosecond);

void BM_DramThermalFit(benchmark::State& state) {
    const auto module = memory::ddr4_module();
    const auto site = environment::nyc_datacenter();
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::dram_thermal_fit(module, site));
    }
}
BENCHMARK(BM_DramThermalFit);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Txt-3 — Top-10 supercomputer thermal DDR FIT projection",
        emit_table);
}

// Fig. 6 — "Tin-II thermal neutron detector measurements with two inches of
// water placed over detector on 20th April 2019": simulates the multi-day
// deployment, runs the bare-minus-shielded step analysis, and prints the
// hourly series around the step plus the recovered +24%.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "detector/analysis.hpp"
#include "detector/tin2.hpp"
#include "stats/rng.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    const detector::Tin2Detector tin2;
    stats::Rng rng(420);
    // 4 baseline days, then water placed (the paper's 2019-04-20 event).
    const auto schedule = detector::fig6_schedule(4.0, 3.0);
    const auto rec = tin2.record(schedule, rng);

    os << "Cd shield thermal transmission: "
       << core::format_scientific(tin2.cadmium_thermal_transmission())
       << "  (thermals blocked, fast/gamma background passes)\n\n";

    os << "Hourly counts around the water-placement step (bin "
       << rec.phase_start_bins[1] << "):\n";
    core::TablePrinter series({"hour", "bare", "Cd-shielded", "thermal (diff)"});
    const std::size_t step = rec.phase_start_bins[1];
    for (std::size_t i = step - 6; i < step + 6; ++i) {
        const auto b = rec.bare.count(i);
        const auto s = rec.shielded.count(i);
        series.add_row({std::to_string(i), std::to_string(b),
                        std::to_string(s),
                        std::to_string(static_cast<std::int64_t>(b) -
                                       static_cast<std::int64_t>(s))});
    }
    series.print(os);

    const auto analysis = detector::analyze_step(rec);
    os << "\nStep analysis (paper: counts increase ~24% when water is "
          "placed):\n";
    core::TablePrinter result({"quantity", "value"});
    if (analysis.has_value()) {
        result.add_row({"detected change bin",
                        std::to_string(analysis->change_bin) + " (true: " +
                            std::to_string(step) + ")"});
        result.add_row({"thermal rate before [cps]",
                        core::format_fixed(analysis->thermal_rate_before, 4)});
        result.add_row({"thermal rate after  [cps]",
                        core::format_fixed(analysis->thermal_rate_after, 4)});
        result.add_row({"relative step",
                        core::format_percent(analysis->relative_step)});
        result.add_row({"step 95% CI",
                        "[" + core::format_percent(analysis->step_ci.lower) +
                            ", " + core::format_percent(analysis->step_ci.upper) +
                            "]"});
    } else {
        result.add_row({"step", "NOT DETECTED (unexpected)"});
    }
    result.print(os);
}

void BM_Tin2Recording(benchmark::State& state) {
    const detector::Tin2Detector tin2;
    stats::Rng rng(1);
    const auto schedule = detector::fig6_schedule(
        static_cast<double>(state.range(0)), 1.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tin2.record(schedule, rng));
    }
}
BENCHMARK(BM_Tin2Recording)->Arg(4)->Arg(30)->Unit(benchmark::kMicrosecond);

void BM_StepAnalysis(benchmark::State& state) {
    const detector::Tin2Detector tin2;
    stats::Rng rng(2);
    const auto rec = tin2.record(detector::fig6_schedule(8.0, 8.0), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(detector::analyze_step(rec));
    }
}
BENCHMARK(BM_StepAnalysis)->Unit(benchmark::kMicrosecond);

void BM_ChangepointScan(benchmark::State& state) {
    stats::Rng rng(3);
    std::vector<std::uint64_t> counts;
    for (int i = 0; i < state.range(0); ++i) {
        counts.push_back(rng.poisson(i < state.range(0) / 2 ? 400.0 : 500.0));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::detect_single_changepoint(counts));
    }
}
BENCHMARK(BM_ChangepointScan)->Arg(168)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv,
        "Fig. 6 — Tin-II detector: +24% thermal counts under 2 in. of water",
        emit_table);
}

// Ablation — device-level ECC (the "protection mechanisms enabled"
// configuration the paper tests under): enabling ECC trades silent
// corruption for detected errors. Prints beam cross sections and field FIT
// rates for the K20 with ECC off/on, plus a protection-strength sweep.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/fit.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "devices/ecc_policy.hpp"
#include "environment/site.hpp"
#include "physics/beamline_spectra.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    const auto raw = devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto ecc = devices::with_ecc(raw, devices::EccProtection{});
    const auto site = environment::leadville_datacenter();
    const auto chipir = physics::chipir_spectrum();
    const auto rotax = physics::rotax_spectrum();

    os << "NVIDIA K20, ECC disabled vs enabled (memory fraction 60%, "
          "correctable 95%):\n\n";
    core::TablePrinter table({"configuration", "sigma_SDC@ChipIR",
                              "sigma_SDC@ROTAX", "SDC FIT @ Leadville",
                              "DUE FIT @ Leadville"});
    for (const auto* device : {&raw, &ecc}) {
        const auto fit_sdc =
            core::device_fit(*device, devices::ErrorType::kSdc, site);
        const auto fit_due =
            core::device_fit(*device, devices::ErrorType::kDue, site);
        table.add_row(
            {device->name(),
             core::format_scientific(
                 device->folded_cross_section(devices::ErrorType::kSdc, *chipir)),
             core::format_scientific(
                 device->folded_cross_section(devices::ErrorType::kSdc, *rotax)),
             core::format_fixed(fit_sdc.total(), 1),
             core::format_fixed(fit_due.total(), 1)});
    }
    table.print(os);

    os << "\nProtection sweep (memory fraction of raw SDC channel):\n";
    core::TablePrinter sweep({"memory fraction", "SDC FIT", "DUE FIT",
                              "SDC reduction"});
    const auto base_sdc =
        core::device_fit(raw, devices::ErrorType::kSdc, site).total();
    for (const double mf : {0.0, 0.3, 0.6, 0.9}) {
        devices::EccProtection p;
        p.memory_fraction_sdc = mf;
        const auto device = devices::with_ecc(raw, p);
        const auto fit_sdc =
            core::device_fit(device, devices::ErrorType::kSdc, site);
        const auto fit_due =
            core::device_fit(device, devices::ErrorType::kDue, site);
        sweep.add_row({core::format_percent(mf, 0),
                       core::format_fixed(fit_sdc.total(), 1),
                       core::format_fixed(fit_due.total(), 1),
                       core::format_percent(1.0 - fit_sdc.total() / base_sdc)});
    }
    sweep.print(os);
    os << "\n(SDCs — the dangerous silent outcome — drop nearly in "
          "proportion to the\nprotected fraction; DUEs rise slightly from "
          "uncorrectable detections. Both\nneutron populations are "
          "protected alike: ECC does not change the Fig.-5 ratio.)\n";
}

void BM_WithEcc(benchmark::State& state) {
    const auto raw =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    for (auto _ : state) {
        benchmark::DoNotOptimize(devices::with_ecc(raw, {}));
    }
}
BENCHMARK(BM_WithEcc);

void BM_EccFit(benchmark::State& state) {
    const auto device = devices::with_ecc(
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20")), {});
    const auto site = environment::leadville_datacenter();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::device_fit(device, devices::ErrorType::kSdc, site));
    }
}
BENCHMARK(BM_EccFit)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Ablation — device ECC: trading SDCs for DUEs",
        emit_table);
}

// Storm-load harness for the event-driven serve front-end: hundreds of
// concurrent socket clients with bursty, pipelined arrivals against a
// deliberately small admission queue, proving the overload contract the
// docs promise — every request gets exactly one typed response (zero
// silent stalls), every shed carries retry_after_ms, and interactive
// introspection stays fast while batch work saturates the pool.
//
// BENCH_serve_storm.json carries the storm block CI gates on:
//   silent_stalls == 0, shed > 0, shed_missing_retry_after == 0.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "bench_util.hpp"
#include "core/obs/json.hpp"
#include "core/parallel/cancel.hpp"
#include "serve/server.hpp"
#include "stats/rng.hpp"

namespace {

namespace json = tnr::core::obs::json;
using tnr::serve::Server;
using tnr::serve::ServeOptions;
using tnr::serve::ServeStats;

constexpr int kClients = 240;
constexpr int kBursts = 3;
constexpr int kPipelined = 4;  // requests sent back-to-back per burst.

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Minimal blocking line client (the storm measures the server, not a
/// client library; sends are small enough to never short-write in practice
/// but are looped anyway).
class Client {
public:
    explicit Client(const std::string& path) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path.c_str());
        for (int attempt = 0; attempt < 200 && fd_ < 0; ++attempt) {
            const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd < 0) break;
            if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) == 0) {
                fd_ = fd;
                break;
            }
            ::close(fd);
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
    }
    ~Client() {
        if (fd_ >= 0) ::close(fd_);
    }
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    [[nodiscard]] bool ok() const { return fd_ >= 0; }

    bool send(const std::string& request) {
        const std::string framed = request + "\n";
        const char* p = framed.data();
        std::size_t left = framed.size();
        while (left > 0) {
            const ssize_t n = ::write(fd_, p, left);
            if (n <= 0) return false;
            p += n;
            left -= static_cast<std::size_t>(n);
        }
        return true;
    }

    /// Blocking read of one line; "" means EOF/error.
    std::string read_line() {
        std::string line;
        char c = 0;
        ssize_t n = 0;
        while ((n = ::read(fd_, &c, 1)) == 1 && c != '\n') line.push_back(c);
        if (n <= 0 && line.empty()) return {};
        return line;
    }

private:
    int fd_ = -1;
};

/// One client's share of the storm: what it sent and what came back.
struct ClientTally {
    int sent = 0;
    int received = 0;
    int ok = 0;
    int shed = 0;
    int cancelled = 0;
    int error = 0;
    int shed_missing_retry = 0;
    double retry_min_ms = 0.0;
    double retry_max_ms = 0.0;
    std::vector<double> latency_ms;              ///< every response.
    std::vector<double> interactive_latency_ms;  ///< fit/health responses.
};

/// ~70% cache-hittable fits, 20% unique detector work, 5% campaign-slice
/// (batch class), 5% health — mixed per (client, burst, slot) so the blend
/// is deterministic run to run.
std::string storm_request(int client, int burst, int slot) {
    const int roll = (client * 7 + burst * 13 + slot * 29) % 20;
    if (roll < 14) {
        const char* site = client % 2 == 0 ? "nyc" : "leadville";
        return R"({"id":"q","method":"fit","params":{"site":")" +
               std::string(site) + R"(","rainy":)" +
               (client % 4 < 2 ? "true" : "false") + "}}";
    }
    if (roll < 18) {
        return R"({"id":"q","method":"detector","params":{"seed":)" +
               std::to_string(client * 1000 + burst * 10 + slot) + "}}";
    }
    if (roll < 19) {
        return R"({"id":"q","method":"campaign-slice","params":{"device":"NVIDIA K20"}})";
    }
    return R"({"id":"q","method":"health"})";
}

bool is_interactive(const std::string& request) {
    return request.find("\"fit\"") != std::string::npos ||
           request.find("\"health\"") != std::string::npos;
}

ClientTally run_client(const std::string& path, int index) {
    ClientTally tally;
    tnr::stats::Rng rng(static_cast<std::uint64_t>(index) + 1);
    Client client(path);
    if (!client.ok()) return tally;
    for (int burst = 0; burst < kBursts; ++burst) {
        // Bursty arrival: a random 0-20 ms lull, then kPipelined requests
        // written back-to-back before the first response is read.
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<int>(rng.uniform() * 20'000.0)));
        std::vector<std::string> sent;
        const double t0 = now_ms();
        for (int slot = 0; slot < kPipelined; ++slot) {
            const std::string req = storm_request(index, burst, slot);
            if (!client.send(req)) break;
            sent.push_back(req);
            ++tally.sent;
        }
        for (const auto& req : sent) {
            const std::string line = client.read_line();
            if (line.empty()) break;  // connection died: counted as stalls.
            const double elapsed = now_ms() - t0;
            const auto doc = json::parse(line);
            if (!doc || doc->find("status") == nullptr) break;
            ++tally.received;
            tally.latency_ms.push_back(elapsed);
            if (is_interactive(req)) {
                tally.interactive_latency_ms.push_back(elapsed);
            }
            const std::string& status = doc->find("status")->str;
            if (status == "ok") {
                ++tally.ok;
            } else if (status == "overloaded") {
                ++tally.shed;
                const auto* err = doc->find("error");
                const auto* retry =
                    err != nullptr ? err->find("retry_after_ms") : nullptr;
                if (retry == nullptr || retry->num <= 0.0) {
                    ++tally.shed_missing_retry;
                } else {
                    tally.retry_min_ms = tally.retry_min_ms == 0.0
                                             ? retry->num
                                             : std::min(tally.retry_min_ms,
                                                        retry->num);
                    tally.retry_max_ms =
                        std::max(tally.retry_max_ms, retry->num);
                }
            } else if (status == "cancelled") {
                ++tally.cancelled;
            } else {
                ++tally.error;
            }
        }
    }
    return tally;
}

double percentile(std::vector<double> v, double q) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx =
        static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
    return v[idx];
}

std::string g_storm_json;  // NOLINT(*-avoid-non-const-global-variables)

void emit_table(std::ostream& os) {
    const std::string path = "/tmp/tnr_storm.sock";
    std::filesystem::remove(path);

    ServeOptions options;
    options.max_inflight = 2;
    options.queue_depth = 16;
    options.max_clients = 512;
    tnr::core::parallel::CancelToken stop;
    options.stop = &stop;
    Server server(options);
    std::ostringstream diag;
    ServeStats server_stats;
    std::thread serve_thread(
        [&] { server_stats = server.serve_unix_socket(path, diag); });
    for (int i = 0; i < 500 && !std::filesystem::exists(path); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // A dedicated health probe running serially through the whole storm:
    // its percentiles are the "introspection never starves" evidence.
    std::atomic<bool> storm_done{false};
    std::vector<double> health_ms;
    std::mutex health_mutex;
    std::thread health_probe([&] {
        Client probe(path);
        if (!probe.ok()) return;
        while (!storm_done.load(std::memory_order_relaxed)) {
            const double t0 = now_ms();
            if (!probe.send(R"({"id":"hp","method":"health"})")) break;
            if (probe.read_line().empty()) break;
            const double elapsed = now_ms() - t0;
            {
                const std::lock_guard<std::mutex> lock(health_mutex);
                health_ms.push_back(elapsed);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
    });

    const double storm_t0 = now_ms();
    std::vector<std::thread> threads;
    std::vector<ClientTally> tallies(kClients);
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back(
            [&tallies, &path, i] { tallies[i] = run_client(path, i); });
    }
    for (auto& t : threads) t.join();
    const double storm_s = (now_ms() - storm_t0) / 1e3;
    storm_done.store(true, std::memory_order_relaxed);
    health_probe.join();
    stop.cancel();
    serve_thread.join();
    std::filesystem::remove(path);

    ClientTally total;
    std::vector<double> all_ms;
    std::vector<double> interactive_ms;
    for (const auto& t : tallies) {
        total.sent += t.sent;
        total.received += t.received;
        total.ok += t.ok;
        total.shed += t.shed;
        total.cancelled += t.cancelled;
        total.error += t.error;
        total.shed_missing_retry += t.shed_missing_retry;
        if (t.retry_min_ms > 0.0) {
            total.retry_min_ms = total.retry_min_ms == 0.0
                                     ? t.retry_min_ms
                                     : std::min(total.retry_min_ms,
                                                t.retry_min_ms);
        }
        total.retry_max_ms = std::max(total.retry_max_ms, t.retry_max_ms);
        all_ms.insert(all_ms.end(), t.latency_ms.begin(), t.latency_ms.end());
        interactive_ms.insert(interactive_ms.end(),
                              t.interactive_latency_ms.begin(),
                              t.interactive_latency_ms.end());
    }
    const int silent_stalls = total.sent - total.received;
    const double shed_rate =
        total.received > 0
            ? static_cast<double>(total.shed) / total.received
            : 0.0;

    os << "storm: " << kClients << " clients x " << kBursts << " bursts x "
       << kPipelined << " pipelined requests in " << storm_s << " s\n\n";
    os << "requests sent      " << total.sent << '\n';
    os << "responses          " << total.received << "  (ok " << total.ok
       << ", shed " << total.shed << ", cancelled " << total.cancelled
       << ", error " << total.error << ")\n";
    os << "silent stalls      " << silent_stalls << '\n';
    os << "sheds w/o retry    " << total.shed_missing_retry << '\n';
    os << "shed rate          " << shed_rate << '\n';
    os << "retry_after_ms     [" << total.retry_min_ms << ", "
       << total.retry_max_ms << "]\n";
    os << "\nlatency [ms]   p50     p99\n";
    os << "all            " << percentile(all_ms, 0.5) << "  "
       << percentile(all_ms, 0.99) << '\n';
    os << "interactive    " << percentile(interactive_ms, 0.5) << "  "
       << percentile(interactive_ms, 0.99) << '\n';
    os << "health probe   " << percentile(health_ms, 0.5) << "  "
       << percentile(health_ms, 0.99) << "  (" << health_ms.size()
       << " polls)\n";
    os << "\nserver: " << server_stats.requests << " requests, "
       << server_stats.ok << " ok, " << server_stats.errors << " error, "
       << server_stats.cancelled << " cancelled, " << server_stats.shed
       << " shed, " << server_stats.cache_hits << " cache hits, "
       << server_stats.coalesced << " coalesced\n";

    std::ostringstream fragment;
    fragment << "\"storm\":{\"clients\":" << kClients
             << ",\"requests\":" << total.sent
             << ",\"responses\":" << total.received
             << ",\"ok\":" << total.ok << ",\"shed\":" << total.shed
             << ",\"cancelled\":" << total.cancelled
             << ",\"errors\":" << total.error
             << ",\"silent_stalls\":" << silent_stalls
             << ",\"shed_missing_retry_after\":" << total.shed_missing_retry
             << ",\"shed_rate\":" << json::number(shed_rate)
             << ",\"elapsed_s\":" << json::number(storm_s)
             << ",\"latency_ms\":{\"all\":{\"p50\":"
             << json::number(percentile(all_ms, 0.5))
             << ",\"p99\":" << json::number(percentile(all_ms, 0.99))
             << "},\"interactive\":{\"p50\":"
             << json::number(percentile(interactive_ms, 0.5))
             << ",\"p99\":" << json::number(percentile(interactive_ms, 0.99))
             << "},\"health\":{\"p50\":"
             << json::number(percentile(health_ms, 0.5))
             << ",\"p99\":" << json::number(percentile(health_ms, 0.99))
             << ",\"polls\":" << health_ms.size()
             << "}},\"retry_after_ms\":{\"min\":"
             << json::number(total.retry_min_ms)
             << ",\"max\":" << json::number(total.retry_max_ms)
             << "},\"server\":{\"requests\":" << server_stats.requests
             << ",\"ok\":" << server_stats.ok
             << ",\"errors\":" << server_stats.errors
             << ",\"cancelled\":" << server_stats.cancelled
             << ",\"shed\":" << server_stats.shed
             << ",\"cache_hits\":" << server_stats.cache_hits
             << ",\"coalesced\":" << server_stats.coalesced << "}}";
    g_storm_json = fragment.str();
}

void BM_SocketHealthRoundTrip(benchmark::State& state) {
    const std::string path = "/tmp/tnr_storm_bm.sock";
    std::filesystem::remove(path);
    tnr::core::parallel::CancelToken stop;
    ServeOptions options;
    options.stop = &stop;
    Server server(options);
    std::ostringstream diag;
    std::thread serve_thread(
        [&] { (void)server.serve_unix_socket(path, diag); });
    for (int i = 0; i < 500 && !std::filesystem::exists(path); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    {
        Client client(path);
        for (auto _ : state) {
            client.send(R"({"id":"bm","method":"health"})");
            benchmark::DoNotOptimize(client.read_line());
        }
    }
    stop.cancel();
    serve_thread.join();
    std::filesystem::remove(path);
}
BENCHMARK(BM_SocketHealthRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    // The storm needs compute concurrency even on single-core CI boxes:
    // without workers the first batch job would serialize everything behind
    // it and the latency percentiles would measure the box, not the server.
    ::setenv("TNR_THREADS", "4", /*overwrite=*/0);
    return tnr::bench::run_bench_main(argc, argv, "Serve storm", emit_table,
                                      [] { return g_storm_json; });
}

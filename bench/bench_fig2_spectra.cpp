// Fig. 2 — "The neutron spectra of the beamlines used for irradiation in
// lethargy scale": regenerates the ChipIR vs ROTAX lethargy-flux curves and
// the published integral fluxes, then times the spectrum machinery.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "physics/beamline_spectra.hpp"
#include "stats/rng.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    const auto chipir = physics::chipir_spectrum();
    const auto rotax = physics::rotax_spectrum();

    os << "Integral fluxes (paper: ChipIR >10MeV = 5.4e6, ChipIR thermal = "
          "4e5, ROTAX total = 2.72e6 n/cm^2/s):\n";
    core::TablePrinter quotes({"beamline", "Phi(>10MeV)", "Phi(thermal)",
                               "Phi(total)"});
    quotes.add_row({"ChipIR",
                    core::format_scientific(chipir->high_energy_flux()),
                    core::format_scientific(chipir->thermal_flux()),
                    core::format_scientific(chipir->total_flux())});
    quotes.add_row({"ROTAX",
                    core::format_scientific(rotax->high_energy_flux()),
                    core::format_scientific(rotax->thermal_flux()),
                    core::format_scientific(rotax->total_flux())});
    quotes.print(os);

    os << "\nLethargy spectra E*dPhi/dE [n/cm^2/s] (log-log, as Fig. 2):\n";
    core::TablePrinter table({"E [eV]", "ChipIR", "ROTAX"});
    const auto chipir_pts = chipir->lethargy_table(25);
    for (const auto& [e, f] : chipir_pts) {
        table.add_row({core::format_scientific(e, 1),
                       core::format_scientific(f, 2),
                       core::format_scientific(e * rotax->flux_density(e), 2)});
    }
    table.print(os);
}

void BM_ChipIrFluxDensity(benchmark::State& state) {
    const auto s = physics::chipir_spectrum();
    double e = 1.0e-3;
    for (auto _ : state) {
        benchmark::DoNotOptimize(s->flux_density(e));
        e = (e > 1.0e8) ? 1.0e-3 : e * 1.7;
    }
}
BENCHMARK(BM_ChipIrFluxDensity);

void BM_ChipIrIntegralFlux(benchmark::State& state) {
    const auto s = physics::chipir_spectrum();
    for (auto _ : state) {
        benchmark::DoNotOptimize(s->integral_flux(1.0e7, 1.0e9));
    }
}
BENCHMARK(BM_ChipIrIntegralFlux);

void BM_SpectrumSampling(benchmark::State& state) {
    const auto s = physics::chipir_spectrum();
    tnr::stats::Rng rng(1);
    (void)s->sample_energy(rng);  // build the CDF table outside the loop.
    for (auto _ : state) {
        benchmark::DoNotOptimize(s->sample_energy(rng));
    }
}
BENCHMARK(BM_SpectrumSampling);

void BM_LethargyTable(benchmark::State& state) {
    const auto s = physics::rotax_spectrum();
    for (auto _ : state) {
        benchmark::DoNotOptimize(s->lethargy_table(
            static_cast<std::size_t>(state.range(0))));
    }
}
BENCHMARK(BM_LethargyTable)->Arg(64)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Fig. 2 — ChipIR vs ROTAX beam spectra (lethargy scale)",
        emit_table);
}

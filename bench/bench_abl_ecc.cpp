// Ablation — ECC efficacy (§IV conclusion): SECDED corrects every
// single-bit transient/intermittent DRAM error the thermal campaign
// produced; SEFI bursts escape. Replays the Fig.-4 error log through the
// Hamming(72,64) decoder.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "memory/correct_loop.hpp"
#include "memory/ecc.hpp"
#include "physics/beamline_spectra.hpp"
#include "stats/rng.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    // Re-run a ROTAX DDR3 campaign and push every observed error through a
    // SECDED word model: single-bit events flip 1 bit of a codeword; SEFI
    // events flip a burst that spans whole words.
    memory::CorrectLoopConfig loop;
    loop.array_cells = 1u << 18;
    loop.pass_interval_s = 5.0;
    memory::CorrectLoopTester tester(memory::ddr3_module(), loop,
                                     40.0 * physics::kRotaxTotalFlux, 2024);
    const auto report = tester.run(1800.0);

    stats::Rng rng(55);
    std::uint64_t corrected = 0;
    std::uint64_t detected_uncorrectable = 0;
    std::uint64_t escaped = 0;
    for (const auto& err : report.errors) {
        if (err.classified == memory::FaultCategory::kSefi) {
            // A SEFI corrupts a contiguous run far wider than one ECC word:
            // model the first affected word with 8 flipped bits.
            memory::Codeword word = memory::Secded::encode(rng.next());
            for (std::uint8_t b = 0; b < 8; ++b) word.flip(b);
            const auto outcome = memory::Secded::decode(word);
            if (outcome == memory::EccOutcome::kDetectedDouble) {
                ++detected_uncorrectable;
            } else {
                ++escaped;
            }
        } else {
            memory::Codeword word = memory::Secded::encode(rng.next());
            word.flip(static_cast<std::uint8_t>(rng.uniform_index(64)));
            if (memory::Secded::decode(word) ==
                memory::EccOutcome::kCorrectedSingle) {
                ++corrected;
            } else {
                ++escaped;
            }
        }
    }

    os << "SECDED replay of " << report.errors.size()
       << " thermal-campaign DRAM errors:\n";
    core::TablePrinter table({"outcome", "events", "share"});
    const auto total = static_cast<double>(report.errors.size());
    table.add_row({"corrected (single-bit)", std::to_string(corrected),
                   core::format_percent(corrected / total)});
    table.add_row({"detected uncorrectable (SEFI)",
                   std::to_string(detected_uncorrectable),
                   core::format_percent(detected_uncorrectable / total)});
    table.add_row({"escaped silently", std::to_string(escaped),
                   core::format_percent(escaped / total)});
    table.print(os);
    os << "\n(Paper §IV: all transient/intermittent errors were single-bit, "
          "so SECDED\ncorrects them; only SEFIs — control-logic events "
          "corrupting many cells —\nremain, and they are detected rather "
          "than silent.)\n";
}

void BM_SecdedEncode(benchmark::State& state) {
    stats::Rng rng(1);
    std::uint64_t data = rng.next();
    for (auto _ : state) {
        benchmark::DoNotOptimize(memory::Secded::encode(data));
        ++data;
    }
}
BENCHMARK(BM_SecdedEncode);

void BM_SecdedDecodeClean(benchmark::State& state) {
    memory::Codeword word = memory::Secded::encode(0x123456789ABCDEFULL);
    for (auto _ : state) {
        memory::Codeword copy = word;
        benchmark::DoNotOptimize(memory::Secded::decode(copy));
    }
}
BENCHMARK(BM_SecdedDecodeClean);

void BM_SecdedDecodeCorrect(benchmark::State& state) {
    memory::Codeword word = memory::Secded::encode(0x123456789ABCDEFULL);
    word.flip(17);
    for (auto _ : state) {
        memory::Codeword copy = word;
        benchmark::DoNotOptimize(memory::Secded::decode(copy));
    }
}
BENCHMARK(BM_SecdedDecodeCorrect);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Ablation — SECDED ECC vs thermal-neutron DRAM errors",
        emit_table);
}

// Ablation — beam counting statistics: how the 95% Poisson CI width on a
// measured cross section shrinks with fluence, and that the ChipIR
// multi-board derating leaves the estimator unbiased (it scales events and
// fluence together). This is the statistical machinery every figure rests
// on (JESD89A-style error bars).

#include <benchmark/benchmark.h>

#include <iostream>

#include "beam/experiment.hpp"
#include "bench_util.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "faultinject/avf.hpp"
#include "stats/poisson.hpp"
#include "stats/rng.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    const auto device =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto vulnerability = faultinject::VulnerabilityTable::uniform(
        workloads::suite_for_device("NVIDIA K20"));
    const beam::BeamExperiment exp(beam::Beamline::rotax(), device, "MxM",
                                   vulnerability);
    const double truth = exp.true_error_rate(devices::ErrorType::kSdc) /
                         beam::Beamline::rotax().reference_flux();

    os << "CI width vs beam time (ROTAX, K20/MxM SDC; true sigma = "
       << core::format_scientific(truth) << " cm^2):\n";
    core::TablePrinter table({"beam time", "errors", "sigma_hat",
                              "95% CI rel. width", "CI covers truth"});
    stats::Rng rng(999);
    for (const double hours : {0.25, 1.0, 4.0, 16.0, 64.0}) {
        beam::ExperimentConfig cfg;
        cfg.beam_time_s = hours * 3600.0;
        const auto r = exp.run(cfg, rng);
        const auto ci = r.sdc.confidence_interval();
        table.add_row(
            {core::format_fixed(hours, 2) + " h", std::to_string(r.sdc.errors),
             core::format_scientific(r.sdc.cross_section()),
             core::format_percent(r.sdc.cross_section() > 0.0
                                      ? ci.width() / r.sdc.cross_section()
                                      : 0.0),
             ci.contains(truth) ? "yes" : "no"});
    }
    table.print(os);

    os << "\nDerating sweep (ChipIR multi-board, 64 h each): the estimator "
          "must stay unbiased:\n";
    const beam::BeamExperiment chipir_exp(beam::Beamline::chipir(), device,
                                          "MxM", vulnerability);
    const double chipir_truth =
        chipir_exp.true_error_rate(devices::ErrorType::kSdc) /
        beam::Beamline::chipir().reference_flux();
    core::TablePrinter derating({"derating", "errors", "sigma_hat",
                                 "sigma_hat / truth"});
    for (const double d : {1.0, 0.82, 0.67, 0.4}) {
        beam::ExperimentConfig cfg;
        cfg.beam_time_s = 64.0 * 3600.0;
        cfg.derating = d;
        const auto r = chipir_exp.run(cfg, rng);
        derating.add_row({core::format_fixed(d, 2),
                          std::to_string(r.sdc.errors),
                          core::format_scientific(r.sdc.cross_section()),
                          core::format_fixed(
                              r.sdc.cross_section() / chipir_truth, 3)});
    }
    derating.print(os);
}

void BM_PoissonInterval(benchmark::State& state) {
    const auto count = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::poisson_mean_interval(count));
    }
}
BENCHMARK(BM_PoissonInterval)->Arg(0)->Arg(10)->Arg(10000);

void BM_ExperimentRun(benchmark::State& state) {
    const auto device =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto vulnerability = faultinject::VulnerabilityTable::uniform(
        workloads::suite_for_device("NVIDIA K20"));
    const beam::BeamExperiment exp(beam::Beamline::rotax(), device, "MxM",
                                   vulnerability);
    stats::Rng rng(1);
    beam::ExperimentConfig cfg;
    cfg.beam_time_s = 3600.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(exp.run(cfg, rng));
    }
}
BENCHMARK(BM_ExperimentRun)->Unit(benchmark::kMicrosecond);

void BM_PoissonSampling(benchmark::State& state) {
    stats::Rng rng(2);
    const double mean = static_cast<double>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.poisson(mean));
    }
}
BENCHMARK(BM_PoissonSampling)->Arg(5)->Arg(500)->Arg(500000);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Ablation — beam counting statistics and derating",
        emit_table);
}

// Ablation — DUT beam attenuation (§III.C / Fig. 3): why ChipIR can
// irradiate several boards at once (with a distance derating) while ROTAX
// must test one device at a time: a full accelerator-card assembly is
// nearly transparent to fast neutrons but blocks most of a thermal pencil
// beam.

#include <benchmark/benchmark.h>

#include <iostream>

#include "beam/dut_attenuation.hpp"
#include "bench_util.hpp"
#include "core/report.hpp"
#include "physics/units.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    const beam::DutStack stack;
    const auto t = beam::dut_transmission(stack);

    os << "Narrow-beam transmission of one accelerator-card assembly\n"
          "(1 cm plastic shroud + 3 cm Al heatsink + 1.6 mm FR4 + 0.8 mm "
          "Si):\n\n";
    core::TablePrinter trans({"energy", "transmission"});
    trans.add_row({"thermal (25.3 meV)", core::format_percent(t.thermal)});
    trans.add_row({"1 eV", core::format_percent(beam::dut_transmission_at(
                               stack, 1.0))});
    trans.add_row({"1 keV", core::format_percent(beam::dut_transmission_at(
                                stack, 1.0e3))});
    trans.add_row({"1 MeV", core::format_percent(beam::dut_transmission_at(
                                stack, 1.0e6))});
    trans.add_row({"10 MeV", core::format_percent(t.high_energy)});
    trans.print(os);

    os << "\nFluence reaching board N in a stack (fraction of nominal):\n";
    core::TablePrinter stackt({"board position", "thermal beam (ROTAX)",
                               "fast beam (ChipIR)"});
    for (std::size_t n = 0; n <= 3; ++n) {
        stackt.add_row(
            {"board " + std::to_string(n + 1) + " (" + std::to_string(n) +
                 " in front)",
             core::format_percent(
                 beam::stacked_board_fluence_fraction(n, t.thermal)),
             core::format_percent(
                 beam::stacked_board_fluence_fraction(n, t.high_energy))});
    }
    stackt.print(os);
    os << "\n(At ROTAX the second board already sees a small fraction of "
          "the beam — cross\nsections measured there would be inflated by "
          "the fluence error, hence the\nsingle-board protocol. At ChipIR "
          "the stack attenuates mildly and a measured\nderating factor "
          "keeps multi-board estimates unbiased.)\n";
}

void BM_DutTransmission(benchmark::State& state) {
    const beam::DutStack stack;
    for (auto _ : state) {
        benchmark::DoNotOptimize(beam::dut_transmission(stack));
    }
}
BENCHMARK(BM_DutTransmission)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Ablation — DUT stack attenuation: one board at a time",
        emit_table);
}

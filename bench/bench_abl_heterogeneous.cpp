// Ablation — the APU CPU+GPU synchronization channel: sweeping the work
// split between CPU and GPU shows the DUE ratio dipping toward the paper's
// 1.18 at the 50/50 point — the composed model's prediction of where the
// heterogeneous configuration is most thermal-fragile.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "devices/heterogeneous.hpp"
#include "physics/beamline_spectra.hpp"
#include "physics/units.hpp"

namespace {

using namespace tnr;

double reported_ratio(const devices::Device& d, devices::ErrorType type) {
    const auto chipir = physics::chipir_spectrum();
    const auto rotax = physics::rotax_spectrum();
    const double sigma_he =
        d.high_energy_response(type).event_rate(*chipir) /
        physics::kChipIrHighEnergyFlux;
    const double sigma_th =
        d.error_rate(type, *rotax) / physics::kRotaxTotalFlux;
    return sigma_th > 0.0 ? sigma_he / sigma_th : 0.0;
}

void emit_table(std::ostream& os) {
    const auto cpu =
        devices::build_calibrated(devices::spec_by_name("AMD APU (CPU)"));
    const auto gpu =
        devices::build_calibrated(devices::spec_by_name("AMD APU (GPU)"));
    const auto sync = devices::calibrated_apu_sync_channel();

    os << "Calibrated sync channel: sigma_HE(DUE) = "
       << core::format_scientific(sync.sigma_he_due_cm2)
       << " cm^2, HE/thermal ratio " << core::format_fixed(sync.ratio_due, 2)
       << "\n(comparable to the parts' own DUE sigma — \"particularly "
          "sensitive\", as the paper puts it)\n\n";

    os << "Work-split sweep (fraction of the heterogeneous codes on the "
          "GPU):\n";
    core::TablePrinter table({"GPU fraction", "DUE ratio", "SDC ratio",
                              "sync activity 4f(1-f)"});
    for (const double f : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        const auto composed =
            devices::compose_heterogeneous(cpu, gpu, f, sync);
        table.add_row({core::format_percent(f, 0),
                       core::format_fixed(
                           reported_ratio(composed, devices::ErrorType::kDue), 2),
                       core::format_fixed(
                           reported_ratio(composed, devices::ErrorType::kSdc), 2),
                       core::format_fixed(4.0 * f * (1.0 - f), 2)});
    }
    table.print(os);
    os << "\n(Paper: CPU-only DUE ratio ~2, GPU-only ~1.3, CPU+GPU 1.18 — "
          "the dip at the\neven split is the synchronization machinery, "
          "active only when both sides\ncompute, and nearly as thermal-"
          "sensitive as it is fast-sensitive.)\n";
}

void BM_Compose(benchmark::State& state) {
    const auto cpu =
        devices::build_calibrated(devices::spec_by_name("AMD APU (CPU)"));
    const auto gpu =
        devices::build_calibrated(devices::spec_by_name("AMD APU (GPU)"));
    const auto sync = devices::calibrated_apu_sync_channel();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            devices::compose_heterogeneous(cpu, gpu, 0.5, sync));
    }
}
BENCHMARK(BM_Compose)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Ablation — APU CPU+GPU synchronization channel",
        emit_table);
}

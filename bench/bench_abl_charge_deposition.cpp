// Ablation — the microscopic origin of thermal-neutron upsets: charge
// deposition by the 10B(n,alpha)7Li products into per-technology sensitive
// volumes. Grounds the catalog's effective P(upset | capture) and gives the
// geometric reason FinFET parts (TitanX/TitanV) show weaker thermal
// response than planar-CMOS ones (K20, APU) — the paper's transistor-type
// observation.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "physics/charge_deposition.hpp"
#include "stats/rng.hpp"

namespace {

using namespace tnr;
using namespace tnr::physics;

constexpr std::uint64_t kSamples = 200000;
constexpr double kLayerUm = 0.3;  // 10B-bearing contact/liner layer.

void emit_table(std::ostream& os) {
    stats::Rng rng(777);

    os << "Reaction products (1-D mean-LET track model):\n";
    core::TablePrinter ions({"ion", "energy [keV]", "range in Si [um]",
                             "mean LET [keV/um]", "full-stop charge [fC]"});
    for (const auto& [name, ion] :
         {std::pair{"alpha", b10_alpha()}, std::pair{"7Li", b10_lithium()}}) {
        ions.add_row({name, core::format_fixed(ion.energy_kev, 0),
                      core::format_fixed(ion.range_um, 1),
                      core::format_fixed(ion.mean_let(), 0),
                      core::format_fixed(charge_fc(ion.energy_kev), 1)});
    }
    ions.print(os);

    os << "\nDerived P(upset | capture) per technology (0.3 um 10B layer):\n";
    core::TablePrinter tech({"technology", "Qcrit [fC]", "depth [um]",
                             "coverage", "P(upset|capture)"});
    const struct {
        const char* label;
        SensitiveVolume volume;
    } nodes[] = {
        {"90nm legacy planar", volume_90nm_legacy()},
        {"28nm planar (K20/APU/Zynq)", volume_28nm_planar()},
        {"16nm FinFET (TitanX)", volume_16nm_finfet()},
    };
    for (const auto& node : nodes) {
        const double p = upset_probability(kLayerUm, node.volume, kSamples, rng);
        tech.add_row({node.label, core::format_fixed(node.volume.qcrit_fc, 1),
                      core::format_fixed(node.volume.depth_um, 2),
                      core::format_percent(node.volume.area_coverage, 0),
                      core::format_percent(p, 2)});
    }
    tech.print(os);
    os << "\n(The catalog's effective constant is 5%; the 28 nm geometry "
          "derives ~6%, and\nthe FinFET geometry a third of that — the "
          "microscopic reason the paper's\nFinFET parts show larger "
          "HE/thermal ratios than planar-CMOS ones.)\n\n";

    os << "Critical-charge sweep (28 nm geometry, full coverage for "
          "shape):\n";
    core::TablePrinter sweep({"Qcrit [fC]", "P(upset|aligned capture)"});
    SensitiveVolume v = volume_28nm_planar();
    v.area_coverage = 1.0;
    for (const double q : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 80.0}) {
        v.qcrit_fc = q;
        sweep.add_row({core::format_fixed(q, 1),
                       core::format_percent(
                           upset_probability(kLayerUm, v, kSamples, rng), 1)});
    }
    sweep.print(os);
    os << "\n(The plateau holds while any clipping track beats Qcrit; the "
          "cliff past ~15 fC\nis range geometry — deposits that large need "
          "oblique path lengths the 5 um\nalpha range cannot deliver "
          "through a 1 um window. Hardened parts with tens of\nfC critical "
          "charge are effectively immune; everything modern is not.)\n";
}

void BM_UpsetProbability(benchmark::State& state) {
    stats::Rng rng(1);
    const SensitiveVolume v = volume_28nm_planar();
    for (auto _ : state) {
        benchmark::DoNotOptimize(upset_probability(
            kLayerUm, v, static_cast<std::uint64_t>(state.range(0)), rng));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UpsetProbability)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv,
        "Ablation — 10B(n,alpha) charge deposition and critical charge",
        emit_table);
}

// Ablation — shielding and moderation (§V): Monte Carlo transport sweeps
// showing (a) thin cadmium kills an incident thermal beam while inches of
// borated plastic do the same, (b) water and concrete moderate fast
// neutrons and bounce a thermal albedo back toward the device — the physical
// mechanism behind the +20%/+24% environment modifiers.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "physics/beamline_spectra.hpp"
#include "physics/materials.hpp"
#include "physics/transport.hpp"
#include "physics/units.hpp"
#include "stats/rng.hpp"

namespace {

using namespace tnr;

constexpr std::uint64_t kNeutrons = 40000;

void emit_table(std::ostream& os) {
    stats::Rng rng(777);

    os << "Thermal-beam (25.3 meV) shielding sweep:\n";
    core::TablePrinter shield({"shield", "thickness [cm]", "transmission",
                               "absorption"});
    struct ShieldCase {
        const char* label;
        physics::Material material;
        double thickness;
    };
    const ShieldCase shields[] = {
        {"cadmium", physics::Material::cadmium(), 0.025},
        {"cadmium", physics::Material::cadmium(), 0.05},
        {"borated poly", physics::Material::borated_poly(), 1.0},
        {"borated poly", physics::Material::borated_poly(), 2.54},
        {"borated poly", physics::Material::borated_poly(), 5.08},
        {"plain poly", physics::Material::polyethylene(), 5.08},
        {"water", physics::Material::water(), 5.08},
    };
    for (const auto& c : shields) {
        const physics::SlabTransport slab(c.material, c.thickness);
        const auto r = slab.run_monoenergetic(physics::kThermalReferenceEv,
                                              kNeutrons, rng);
        shield.add_row({c.label, core::format_fixed(c.thickness, 3),
                        core::format_percent(r.transmission(), 2),
                        core::format_percent(r.absorption(), 2)});
    }
    shield.print(os);

    os << "\nFast-beam (2 MeV) moderation sweep — thermal albedo is the "
          "flux a slab\nreflects back *as thermals* per incident fast "
          "neutron:\n";
    core::TablePrinter mod({"material", "thickness [cm]", "thermal albedo",
                            "thermal transmission", "absorbed"});
    struct ModCase {
        const char* label;
        physics::Material material;
        double thickness;
    };
    const ModCase moderators[] = {
        {"water", physics::Material::water(), 5.08},
        {"water", physics::Material::water(), 15.0},
        {"water", physics::Material::water(), 30.0},
        {"concrete", physics::Material::concrete(), 10.0},
        {"concrete", physics::Material::concrete(), 20.0},
        {"concrete", physics::Material::concrete(), 40.0},
        {"borated poly", physics::Material::borated_poly(), 15.0},
    };
    for (const auto& c : moderators) {
        const physics::SlabTransport slab(c.material, c.thickness);
        const auto r = slab.run_monoenergetic(2.0e6, kNeutrons, rng);
        mod.add_row({c.label, core::format_fixed(c.thickness, 1),
                     core::format_percent(r.thermal_albedo(), 2),
                     core::format_percent(r.thermal_transmission(), 2),
                     core::format_percent(r.absorption(), 2)});
    }
    mod.print(os);
    os << "\n(Water/concrete return a two-digit-percent thermal albedo — the "
          "mechanism behind\nthe +24% water / +20% concrete detector "
          "measurements. Borated poly moderates\nbut eats its own thermals, "
          "which is why §V proposes it as the only practical\nshield — at "
          "the cost of thermally insulating the device.)\n";
}

void BM_TransportWater(benchmark::State& state) {
    const physics::SlabTransport slab(physics::Material::water(),
                                      static_cast<double>(state.range(0)));
    stats::Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(slab.run_monoenergetic(2.0e6, 1000, rng));
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TransportWater)->Arg(5)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_TransportCadmiumThermal(benchmark::State& state) {
    const physics::SlabTransport slab(physics::Material::cadmium(), 0.05);
    stats::Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            slab.run_monoenergetic(physics::kThermalReferenceEv, 1000, rng));
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TransportCadmiumThermal)->Unit(benchmark::kMicrosecond);

void BM_TransportSpectrum(benchmark::State& state) {
    const physics::SlabTransport slab(physics::Material::concrete(), 20.0);
    const auto spectrum = physics::chipir_spectrum();
    stats::Rng rng(3);
    (void)spectrum->sample_energy(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(slab.run_spectrum(*spectrum, 1000, rng));
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TransportSpectrum)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Ablation — shielding and moderation Monte Carlo",
        emit_table);
}

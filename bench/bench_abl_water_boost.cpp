// Ablation — the water boost *derived* from transport, not assumed: the
// Fig.-6 Tin-II experiment as a layered Monte Carlo problem. A borated
// detector layer stands over a concrete floor; the sky delivers fast and
// epithermal neutrons (the ground-level thermal field is locally produced
// by the floor's albedo). Placing 2 inches of water above the detector
// (a) moderates sky neutrons into thermals and (b) reflects the floor's
// upward thermal leakage back down — raising detector absorptions.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "physics/multiregion.hpp"
#include "physics/units.hpp"
#include "stats/rng.hpp"

namespace {

using namespace tnr;
using namespace tnr::physics;

std::shared_ptr<const Spectrum> ground_sky() {
    std::vector<std::shared_ptr<const Spectrum>> parts;
    const AtmosphericSpectrum reference(1.0);
    parts.push_back(std::make_shared<AtmosphericSpectrum>(
        (13.0 / 3600.0) / reference.high_energy_flux()));
    parts.push_back(std::make_shared<EpithermalSpectrum>(
        4.0 / 3600.0, kThermalCutoffEv, 1.0e6));
    return std::make_shared<CompositeSpectrum>("ground-level sky",
                                               std::move(parts));
}

double detector_absorptions(double water_cm, std::uint64_t neutrons,
                            std::uint64_t seed) {
    std::vector<Layer> layers;
    if (water_cm > 0.0) layers.push_back(Layer::slab(Material::water(), water_cm));
    layers.push_back(Layer::gap(30.0));
    layers.push_back(Layer::slab(Material::borated_poly(), 0.3));
    layers.push_back(Layer::gap(10.0));
    layers.push_back(Layer::slab(Material::concrete(), 40.0));
    const std::size_t detector_layer = (water_cm > 0.0) ? 2 : 1;
    const LayeredTransport stack(std::move(layers));
    stats::Rng rng(seed);
    const auto r = stack.run_spectrum(*ground_sky(), neutrons, rng);
    return static_cast<double>(r.absorbed_by_layer[detector_layer]);
}

void emit_table(std::ostream& os) {
    constexpr std::uint64_t kNeutrons = 150000;
    const double baseline = detector_absorptions(0.0, kNeutrons, 4242);

    os << "Detector-layer thermal absorptions vs water thickness above "
          "(150k sky neutrons,\nconcrete floor below):\n\n";
    core::TablePrinter table({"water above", "counts", "raw 1-D boost",
                              "solid-angle corrected (f=0.45)"});
    table.add_row({"none", core::format_fixed(baseline, 0), "1.00 (ref)",
                   "-"});
    for (const double cm : {2.54, 5.08, 10.16, 20.0}) {
        const double counts = detector_absorptions(cm, kNeutrons, 4242);
        const double raw = counts / baseline;
        const double corrected = 1.0 + 0.45 * (raw - 1.0);
        table.add_row({core::format_fixed(cm, 2) + " cm",
                       core::format_fixed(counts, 0),
                       core::format_fixed(raw, 3),
                       core::format_fixed(corrected, 3)});
    }
    table.print(os);
    os << "\n(The paper's 2-inch (5.08 cm) box measured +24%. The 1-D model "
          "over-weights\nthe box's solid angle; corrected by a ~0.45 "
          "acceptance fraction it lands on the\nmeasured step. The rollover "
          "past ~10 cm is real moderator physics: thick water\nself-shields "
          "— it absorbs the thermals it makes and attenuates the incident\n"
          "flux, so a swimming pool is a shield while a cooling pipe is a "
          "source.)\n";
}

void BM_LayeredStack(benchmark::State& state) {
    const LayeredTransport stack({Layer::slab(Material::water(), 5.08),
                                  Layer::gap(30.0),
                                  Layer::slab(Material::borated_poly(), 0.3),
                                  Layer::gap(10.0),
                                  Layer::slab(Material::concrete(), 40.0)});
    stats::Rng rng(1);
    const auto sky = ground_sky();
    (void)sky->sample_energy(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(stack.run_spectrum(*sky, 1000, rng));
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LayeredStack)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv,
        "Ablation — deriving the water thermal boost from transport",
        emit_table);
}

// Ablation — checkpointing vs weather (the paper's introduction: "when
// supercomputer time is allocated, the checkpoint frequency may need to
// consider weather conditions"). For a Summit-class machine of K20-like
// nodes: DUE FIT per node -> system MTBF -> Young/Daly optimal interval and
// machine-time waste, sunny vs rainy, sea level vs altitude.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/checkpoint.hpp"
#include "core/fit.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "environment/site.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    const auto device =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    constexpr std::size_t kNodes = 4608;  // Summit's node count.
    core::CheckpointParameters params;
    params.checkpoint_cost_s = 240.0;
    params.restart_cost_s = 600.0;

    const struct {
        const char* label;
        environment::Site site;
        bool rainy;
    } scenarios[] = {
        {"NYC datacenter, sunny", environment::nyc_datacenter(), false},
        {"NYC datacenter, rainy", environment::nyc_datacenter(), true},
        {"Leadville datacenter, sunny", environment::leadville_datacenter(),
         false},
        {"Leadville datacenter, rainy", environment::leadville_datacenter(),
         true},
    };

    os << "4608-node system of K20-class accelerators, Young/Daly "
          "checkpointing\n(checkpoint 240 s, restart 600 s):\n\n";
    core::TablePrinter table({"scenario", "node DUE FIT", "system MTBF [h]",
                              "optimal interval [min]", "waste"});
    for (auto scenario : scenarios) {
        if (scenario.rainy) {
            scenario.site.environment.weather = environment::Weather::kRainy;
        }
        const auto fit =
            core::device_fit(device, devices::ErrorType::kDue, scenario.site);
        const auto plan = core::plan_for_fit(fit, kNodes, params);
        table.add_row({scenario.label, core::format_fixed(fit.total(), 1),
                       core::format_fixed(plan.mtbf_s / 3600.0, 2),
                       core::format_fixed(plan.optimal_interval_s / 60.0, 1),
                       core::format_percent(plan.waste_fraction)});
    }
    table.print(os);
    os << "\n(Rain doubles the thermal flux, raising the DUE rate and "
          "shortening the\noptimal checkpoint interval — weather becomes an "
          "operations parameter.)\n";
}

void BM_PlanForFit(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::plan_for_fit(500.0, 4608));
    }
}
BENCHMARK(BM_PlanForFit);

void BM_WasteScan(benchmark::State& state) {
    core::CheckpointParameters params;
    for (auto _ : state) {
        double best = 1.0;
        for (double t = 600.0; t < 86400.0; t *= 1.1) {
            best = std::min(best, core::waste_fraction(t, 3.0e5, params));
        }
        benchmark::DoNotOptimize(best);
    }
}
BENCHMARK(BM_WasteScan)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Ablation — checkpoint frequency vs weather and altitude",
        emit_table);
}

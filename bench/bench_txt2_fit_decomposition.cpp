// Txt-2 ([jsc2020] FIT figure, summarised in the paper's §V/§VI) — the
// percentage of each device's FIT rate caused by thermal neutrons at NYC
// (sea level) and Leadville, CO (10,151 ft), with the +44% data-center
// thermal adjustment. The paper's quoted anchors:
//   Xeon Phi: 4.2% (NYC, SDC) up to 10.6% (Leadville, DUE);
//   K20: 29% of SDC FIT thermal at Leadville;
//   APU CPU+GPU: 39% of DUEs thermal at Leadville;
//   overall thermal contribution up to ~40%.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "environment/site.hpp"

namespace {

using namespace tnr;

core::ReliabilityStudy& study() {
    static core::ReliabilityStudy s = [] {
        beam::CampaignConfig cfg;
        cfg.beam_time_per_run_s = 3600.0 * 24.0;
        cfg.seed = 42;
        return core::ReliabilityStudy(cfg);
    }();
    return s;
}

void emit_table(std::ostream& os) {
    const auto nyc = environment::nyc_datacenter();
    const auto lead = environment::leadville_datacenter();

    os << "Thermal share of the total FIT rate (measured cross sections x "
          "site fluxes,\n+44% data-center thermal adjustment):\n\n";
    core::TablePrinter table({"device", "type", "NYC thermal share",
                              "Leadville thermal share", "paper anchor"});
    const auto anchor = [](const std::string& device,
                           devices::ErrorType type) -> std::string {
        if (device == "Intel Xeon Phi" && type == devices::ErrorType::kSdc) {
            return "4.2% @ NYC";
        }
        if (device == "Intel Xeon Phi" && type == devices::ErrorType::kDue) {
            return "10.6% @ Leadville";
        }
        if (device == "NVIDIA K20" && type == devices::ErrorType::kSdc) {
            return "29% @ Leadville";
        }
        if (device == "AMD APU (CPU+GPU)" && type == devices::ErrorType::kDue) {
            return "39% @ Leadville";
        }
        return "-";
    };
    for (const auto& row : study().campaign().ratio_rows) {
        const auto fit_nyc = study().measured_fit(row.device, row.type, nyc);
        const auto fit_lead = study().measured_fit(row.device, row.type, lead);
        table.add_row({row.device, devices::to_string(row.type),
                       core::format_percent(fit_nyc.thermal_share()),
                       core::format_percent(fit_lead.thermal_share()),
                       anchor(row.device, row.type)});
    }
    table.print(os);

    os << "\nUnderestimation factor if thermals are ignored "
          "(total/HE-only):\n";
    core::TablePrinter under({"device", "type", "NYC", "Leadville"});
    for (const auto& row : study().campaign().ratio_rows) {
        const auto fit_nyc = study().measured_fit(row.device, row.type, nyc);
        const auto fit_lead = study().measured_fit(row.device, row.type, lead);
        under.add_row({row.device, devices::to_string(row.type),
                       core::format_fixed(fit_nyc.underestimation(), 3),
                       core::format_fixed(fit_lead.underestimation(), 3)});
    }
    under.print(os);
}

void BM_MeasuredFit(benchmark::State& state) {
    (void)study().campaign();  // amortize campaign outside timing.
    const auto site = environment::leadville_datacenter();
    for (auto _ : state) {
        benchmark::DoNotOptimize(study().measured_fit(
            "NVIDIA K20", devices::ErrorType::kSdc, site));
    }
}
BENCHMARK(BM_MeasuredFit)->Unit(benchmark::kMicrosecond);

void BM_FitShareTable(benchmark::State& state) {
    (void)study().campaign();
    const std::vector<environment::Site> sites = {
        environment::nyc_datacenter(), environment::leadville_datacenter()};
    for (auto _ : state) {
        benchmark::DoNotOptimize(study().fit_share_table(sites));
    }
}
BENCHMARK(BM_FitShareTable)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv,
        "Txt-2 — FIT decomposition: thermal share at NYC vs Leadville",
        emit_table);
}

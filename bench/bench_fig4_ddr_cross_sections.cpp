// Fig. 4 — "DDR3 and DDR4 thermal neutrons cross sections": runs the
// correct-loop tester for both modules under the ROTAX beam (both 0xFF and
// 0x00 backgrounds, merged) and prints per-category cross sections per Gbit,
// flip-direction asymmetry, permanent-error fractions and single/multi-bit
// split — the published findings:
//   * DDR4 ~ one order of magnitude less sensitive than DDR3;
//   * >95% of flips 1->0 (DDR3) / 0->1 (DDR4);
//   * permanents <30% (DDR3) vs >50% (DDR4); SEFIs on both;
//   * all transient/intermittent errors single-bit.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "memory/correct_loop.hpp"
#include "physics/beamline_spectra.hpp"

namespace {

using namespace tnr;

struct MergedReport {
    memory::CorrectLoopReport ones;
    memory::CorrectLoopReport zeros;

    [[nodiscard]] std::uint64_t count(memory::FaultCategory c) const {
        return ones.count_by_category[static_cast<std::size_t>(c)] +
               zeros.count_by_category[static_cast<std::size_t>(c)];
    }
    [[nodiscard]] double exposure() const {
        return ones.fluence * ones.tested_gbit +
               zeros.fluence * zeros.tested_gbit;
    }
    [[nodiscard]] double sigma(memory::FaultCategory c) const {
        return static_cast<double>(count(c)) / exposure();
    }
    [[nodiscard]] std::uint64_t total() const {
        return ones.total_errors() + zeros.total_errors();
    }
};

MergedReport run_module(const memory::DramConfig& cfg, std::uint64_t seed) {
    // Mildly accelerated beam (x2 ROTAX). Stronger acceleration would pile
    // several faults into each scan pass and the tester would merge them
    // into spurious SEFIs (it classifies any >=64-cell pass as one event),
    // biasing the single-bit statistics — the simulation reproduces the
    // real-world constraint that DDR beam tests must keep the event rate
    // below the scan rate.
    const double flux = 2.0 * physics::kRotaxTotalFlux;
    const double duration_s = 8.0 * 3600.0;  // 8 h per background pattern.
    memory::CorrectLoopConfig ones;
    ones.array_cells = 1u << 18;
    ones.pattern_ones = true;
    ones.pass_interval_s = 5.0;
    memory::CorrectLoopConfig zeros = ones;
    zeros.pattern_ones = false;
    MergedReport merged{
        memory::CorrectLoopTester(cfg, ones, flux, seed).run(duration_s),
        memory::CorrectLoopTester(cfg, zeros, flux, seed + 1).run(duration_s)};
    return merged;
}

void emit_table(std::ostream& os) {
    const auto ddr3 = run_module(memory::ddr3_module(), 500);
    const auto ddr4 = run_module(memory::ddr4_module(), 600);

    os << "Thermal cross section per Gbit by error category "
          "[cm^2/Gbit]:\n";
    core::TablePrinter table({"category", "DDR3", "DDR4", "DDR3/DDR4"});
    for (std::size_t c = 0; c < memory::kFaultCategoryCount; ++c) {
        const auto cat = static_cast<memory::FaultCategory>(c);
        const double s3 = ddr3.sigma(cat);
        const double s4 = ddr4.sigma(cat);
        table.add_row({memory::to_string(cat), core::format_scientific(s3),
                       core::format_scientific(s4),
                       s4 > 0.0 ? core::format_fixed(s3 / s4, 1) : "-"});
    }
    const double t3 = static_cast<double>(ddr3.total()) / ddr3.exposure();
    const double t4 = static_cast<double>(ddr4.total()) / ddr4.exposure();
    table.add_row({"TOTAL", core::format_scientific(t3),
                   core::format_scientific(t4), core::format_fixed(t3 / t4, 1)});
    table.print(os);

    os << "\nFindings vs paper:\n";
    core::TablePrinter findings({"metric", "DDR3", "DDR4", "paper"});
    const auto dominant = [](const MergedReport& r) {
        const double oz = static_cast<double>(r.ones.flips_one_to_zero +
                                              r.zeros.flips_one_to_zero);
        const double zo = static_cast<double>(r.ones.flips_zero_to_one +
                                              r.zeros.flips_zero_to_one);
        return std::max(oz, zo) / (oz + zo);
    };
    const auto direction = [](const MergedReport& r) {
        const double oz = static_cast<double>(r.ones.flips_one_to_zero +
                                              r.zeros.flips_one_to_zero);
        const double zo = static_cast<double>(r.ones.flips_zero_to_one +
                                              r.zeros.flips_zero_to_one);
        return oz > zo ? "1->0" : "0->1";
    };
    findings.add_row({"dominant flip direction", direction(ddr3),
                      direction(ddr4), "DDR3 1->0, DDR4 0->1"});
    findings.add_row({"dominant-direction share",
                      core::format_percent(dominant(ddr3)),
                      core::format_percent(dominant(ddr4)), ">95%"});
    const auto permanent_fraction = [](const MergedReport& r) {
        return static_cast<double>(r.count(memory::FaultCategory::kPermanent)) /
               static_cast<double>(r.total());
    };
    findings.add_row({"permanent share", core::format_percent(permanent_fraction(ddr3)),
                      core::format_percent(permanent_fraction(ddr4)),
                      "DDR3 <30%, DDR4 >50%"});
    findings.add_row(
        {"SEFI events observed",
         std::to_string(ddr3.count(memory::FaultCategory::kSefi)),
         std::to_string(ddr4.count(memory::FaultCategory::kSefi)),
         "present on both"});
    const auto multi = [](const MergedReport& r) {
        return r.ones.multi_bit_events + r.zeros.multi_bit_events;
    };
    const auto single = [](const MergedReport& r) {
        return r.ones.single_bit_events + r.zeros.single_bit_events;
    };
    findings.add_row({"single-bit events", std::to_string(single(ddr3)),
                      std::to_string(single(ddr4)),
                      "all transients/intermittents single-bit"});
    findings.add_row({"multi-bit events (SEFI)", std::to_string(multi(ddr3)),
                      std::to_string(multi(ddr4)), "only SEFIs multi-bit"});
    findings.print(os);
    os << "\n(High-energy DDR data not collected: at ChipIR the parts died "
          "of permanent faults within minutes — as in the paper.)\n";
}

void BM_CorrectLoopPass(benchmark::State& state) {
    memory::CorrectLoopConfig loop;
    loop.array_cells = static_cast<std::size_t>(state.range(0));
    memory::CorrectLoopTester tester(memory::ddr3_module(), loop,
                                     physics::kRotaxTotalFlux, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tester.run(100.0));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(loop.array_cells));
}
BENCHMARK(BM_CorrectLoopPass)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_ArrayScan(benchmark::State& state) {
    memory::DramArray array(1u << 20, true);
    array.apply_permanent(12345, memory::FlipDirection::kOneToZero);
    stats::Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.scan_errors(rng));
    }
    state.SetItemsProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_ArrayScan)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv, "Fig. 4 — DDR3/DDR4 thermal neutron cross sections",
        emit_table);
}

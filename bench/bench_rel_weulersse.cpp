// Related work (§II) — Weulersse et al. compared memory error rates under
// thermal neutrons and a 14 MeV D-T generator and found thermal/14 MeV
// sensitivity ratios ranging from 1.4x down to 0.03x depending on the part.
// This bench runs the same comparison on modelled memory parts: calibrated
// D-T response + 10B thermal channel, then simulated beam runs with Poisson
// counting at both facilities.

#include <benchmark/benchmark.h>

#include <iostream>

#include "beam/beamline.hpp"
#include "beam/experiment.hpp"
#include "bench_util.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "stats/rng.hpp"

namespace {

using namespace tnr;

void emit_table(std::ostream& os) {
    const beam::Beamline dt14 = beam::Beamline::dt14();
    const beam::Beamline rotax = beam::Beamline::rotax();
    stats::Rng rng(1414);

    os << "Memory parts under a 14 MeV D-T generator vs the ROTAX thermal "
          "beam\n(analytic sigma + 48 h simulated counting runs):\n\n";
    core::TablePrinter table({"part", "sigma_14MeV [cm^2]",
                              "sigma_thermal [cm^2]", "measured ratio",
                              "published ratio"});
    for (const auto& spec : devices::weulersse_parts()) {
        const auto part = devices::build_memory_part(spec);
        const beam::CodeWeights unit;
        const beam::BeamExperiment exp14(dt14, part, "pattern", unit);
        const beam::BeamExperiment exp_th(rotax, part, "pattern", unit);
        beam::ExperimentConfig cfg;
        cfg.beam_time_s = 48.0 * 3600.0;
        const auto r14 = exp14.run(cfg, rng);
        const auto rth = exp_th.run(cfg, rng);
        const double ratio =
            rth.sdc.cross_section() / r14.sdc.cross_section();
        table.add_row({spec.name,
                       core::format_scientific(r14.sdc.cross_section()),
                       core::format_scientific(rth.sdc.cross_section()),
                       core::format_fixed(ratio, 3),
                       core::format_fixed(spec.thermal_to_14mev_ratio, 3)});
    }
    table.print(os);
    os << "\n(The published range 1.4x .. 0.03x is recovered; parts at the "
          "top of the range\nare boron-heavy SRAMs for which ignoring "
          "thermals underestimates the error rate\nworst — the paper's "
          "motivating observation.)\n";
}

void BM_MemoryPartCalibration(benchmark::State& state) {
    const auto& spec = devices::weulersse_parts().front();
    for (auto _ : state) {
        benchmark::DoNotOptimize(devices::build_memory_part(spec));
    }
}
BENCHMARK(BM_MemoryPartCalibration)->Unit(benchmark::kMillisecond);

void BM_Dt14Folding(benchmark::State& state) {
    const auto part =
        devices::build_memory_part(devices::weulersse_parts().front());
    const auto spectrum = physics::dt14_spectrum();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            part.error_rate(devices::ErrorType::kSdc, *spectrum));
    }
}
BENCHMARK(BM_Dt14Folding);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv,
        "Related work — Weulersse et al.: thermal vs 14 MeV memory sensitivity",
        emit_table);
}

// [jsc2020] companion figures (cs_xeon_gpus / cs_APU_FPGA, summarised in
// the paper's §IV commentary) — per-code cross sections for every device at
// both facilities, with the observations the text calls out:
//   * HE SDC cross sections vary >2x across codes; on the Xeon Phi the
//     thermal SDC variation stays under ~20% (10B outside the structures
//     that drive HE code-dependence);
//   * on the K20 the thermal per-code trend tracks the HE one;
//   * YOLO is the only K20 code whose DUE sigma exceeds its SDC sigma;
//   * the double-precision MNIST FPGA build: ~2x resources, ~2x HE sigma,
//     ~4x thermal sigma.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "beam/campaign.hpp"
#include "beam/code_sensitivity.hpp"
#include "bench_util.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "faultinject/avf.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace tnr;

const beam::CampaignResult& campaign() {
    static const beam::CampaignResult result = [] {
        beam::CampaignConfig cfg;
        cfg.beam_time_per_run_s = 3600.0 * 24.0;
        cfg.seed = 271828;
        cfg.avf_trials = 150;
        return beam::Campaign(cfg).run();
    }();
    return result;
}

void emit_device(std::ostream& os, const std::string& device) {
    os << device << ":\n";
    core::TablePrinter table({"code", "sigma_SDC ChipIR", "sigma_SDC ROTAX",
                              "sigma_DUE ChipIR", "sigma_DUE ROTAX"});
    const auto find = [&](const std::string& workload,
                          const std::string& beamline,
                          devices::ErrorType type) -> std::string {
        for (const auto& m : campaign().measurements) {
            if (m.device == device && m.workload == workload &&
                m.beamline == beamline && m.type == type) {
                return core::format_scientific(m.cross_section(), 2);
            }
        }
        return "-";
    };
    for (const auto& entry : workloads::suite_for_device(device)) {
        table.add_row({entry.name,
                       find(entry.name, "ChipIR", devices::ErrorType::kSdc),
                       find(entry.name, "ROTAX", devices::ErrorType::kSdc),
                       find(entry.name, "ChipIR", devices::ErrorType::kDue),
                       find(entry.name, "ROTAX", devices::ErrorType::kDue)});
    }
    table.print(os);
    os << '\n';
}

void emit_table(std::ostream& os) {
    for (const char* device :
         {"Intel Xeon Phi", "NVIDIA K20", "NVIDIA TitanX", "NVIDIA TitanV",
          "AMD APU (CPU)", "AMD APU (GPU)", "AMD APU (CPU+GPU)",
          "Xilinx Zynq-7000 FPGA"}) {
        emit_device(os, device);
    }

    // Spot-check the textual claims.
    const auto sigma = [&](const char* device, const char* workload,
                           const char* beamline, devices::ErrorType type) {
        for (const auto& m : campaign().measurements) {
            if (m.device == device && m.workload == workload &&
                m.beamline == beamline && m.type == type) {
                return m.cross_section();
            }
        }
        return 0.0;
    };
    double he_min = 1e9;
    double he_max = 0.0;
    double th_min = 1e9;
    double th_max = 0.0;
    for (const char* code : {"MxM", "LUD", "LavaMD", "HotSpot"}) {
        he_min = std::min(he_min, sigma("Intel Xeon Phi", code, "ChipIR",
                                        devices::ErrorType::kSdc));
        he_max = std::max(he_max, sigma("Intel Xeon Phi", code, "ChipIR",
                                        devices::ErrorType::kSdc));
        th_min = std::min(th_min, sigma("Intel Xeon Phi", code, "ROTAX",
                                        devices::ErrorType::kSdc));
        th_max = std::max(th_max, sigma("Intel Xeon Phi", code, "ROTAX",
                                        devices::ErrorType::kSdc));
    }
    core::TablePrinter claims({"claim", "paper", "measured"});
    claims.add_row({"Xeon Phi HE SDC spread across codes", ">2x",
                    core::format_fixed(he_max / he_min, 2) + "x"});
    claims.add_row({"Xeon Phi thermal SDC spread", "<20%",
                    core::format_percent(th_max / th_min - 1.0)});
    claims.add_row(
        {"K20 YOLO DUE/SDC (ChipIR)", ">1 (only such code)",
         core::format_fixed(sigma("NVIDIA K20", "YOLO", "ChipIR",
                                  devices::ErrorType::kDue) /
                                sigma("NVIDIA K20", "YOLO", "ChipIR",
                                      devices::ErrorType::kSdc),
                            2)});
    claims.add_row(
        {"FPGA MNIST-dp / MNIST thermal sigma", "~4x",
         core::format_fixed(
             sigma("Xilinx Zynq-7000 FPGA", "MNIST-dp", "ROTAX",
                   devices::ErrorType::kSdc) /
                 sigma("Xilinx Zynq-7000 FPGA", "MNIST", "ROTAX",
                       devices::ErrorType::kSdc),
             2) +
             "x"});
    claims.add_row(
        {"FPGA MNIST-dp / MNIST HE sigma", "~2x (area)",
         core::format_fixed(
             sigma("Xilinx Zynq-7000 FPGA", "MNIST-dp", "ChipIR",
                   devices::ErrorType::kSdc) /
                 sigma("Xilinx Zynq-7000 FPGA", "MNIST", "ChipIR",
                       devices::ErrorType::kSdc),
             2) +
             "x"});
    claims.print(os);
}

void BM_CodeModelBuild(benchmark::State& state) {
    const auto suite = workloads::suite_for_device("Intel Xeon Phi");
    const auto table = faultinject::VulnerabilityTable::measure(
        suite, static_cast<std::size_t>(state.range(0)), 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(beam::CodeSensitivityModel::build(
            devices::try_spec_by_name("Intel Xeon Phi"), suite, table));
    }
}
BENCHMARK(BM_CodeModelBuild)->Arg(50)->Unit(benchmark::kMicrosecond);

void BM_WeightedCampaign(benchmark::State& state) {
    beam::CampaignConfig cfg;
    cfg.beam_time_per_run_s = 600.0;
    cfg.avf_trials = 30;
    for (auto _ : state) {
        benchmark::DoNotOptimize(beam::Campaign(cfg).run());
    }
}
BENCHMARK(BM_WeightedCampaign)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    return tnr::bench::run_bench_main(
        argc, argv,
        "[jsc2020] per-code cross sections (cs_xeon_gpus / cs_APU_FPGA)",
        emit_table);
}

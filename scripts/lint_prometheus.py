#!/usr/bin/env python3
"""Lint a Prometheus text-exposition (v0.0.4) file.

Checks the subset of the format contract the tnr registry writer promises:

  * every sample line parses as  name[{labels}] value
  * metric and label names match the Prometheus grammar
  * each family has exactly one `# TYPE` line, appearing before its first
    sample
  * the TYPE is one of counter / gauge / summary / histogram / untyped
  * no duplicate (name, labels) sample within the exposition
  * counter and gauge samples are finite numbers; summaries may be NaN
    (an empty quantile is legitimately NaN)
  * no trailing whitespace, no blank interior lines, file ends with '\n'

Usage: lint_prometheus.py FILE [FILE...]   (or stdin when no args)
Exits non-zero and prints one line per violation.
"""

import math
import re
import sys

METRIC_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}
# Samples of a summary/histogram family carry these suffixes on the
# family name declared by the TYPE line.
FAMILY_SUFFIXES = ("_sum", "_count", "_bucket")


def base_family(name, typed_families):
    """Map a sample name back to its TYPE-declared family."""
    if name in typed_families:
        return name
    for suffix in FAMILY_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in typed_families:
            return name[: -len(suffix)]
    return name


def parse_sample(line):
    """Return (name, labels_str, value_str) or None if unparseable."""
    m = METRIC_RE.match(line)
    if not m:
        return None
    name = m.group(0)
    rest = line[m.end():]
    labels = ""
    if rest.startswith("{"):
        end = rest.find("}")
        if end < 0:
            return None
        labels = rest[1:end]
        rest = rest[end + 1:]
    if not rest.startswith(" "):
        return None
    value = rest[1:]
    # Optional trailing timestamp: "value ts"
    return name, labels, value.split(" ")[0]


def lint(text, path):
    errors = []

    def err(lineno, msg):
        errors.append(f"{path}:{lineno}: {msg}")

    if text == "":
        err(0, "empty exposition")
        return errors
    if not text.endswith("\n"):
        err(text.count("\n") + 1, "file does not end with a newline")

    typed_families = {}     # family -> (type, lineno)
    samples_seen = {}       # (name, canonical labels) -> lineno
    family_sampled = set()  # families that already emitted a sample

    for lineno, line in enumerate(text.splitlines(), start=1):
        if line != line.rstrip():
            err(lineno, "trailing whitespace")
            line = line.rstrip()
        if line == "":
            err(lineno, "blank line inside exposition")
            continue

        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    err(lineno, f"malformed TYPE line: {line!r}")
                    continue
                _, _, family, kind = parts
                if kind not in TYPES:
                    err(lineno, f"unknown metric type {kind!r} for {family}")
                if family in typed_families:
                    err(lineno, f"duplicate TYPE line for {family} "
                                f"(first at line {typed_families[family][1]})")
                elif family in family_sampled:
                    err(lineno, f"TYPE line for {family} appears after "
                                f"its first sample")
                else:
                    typed_families[family] = (kind, lineno)
            # HELP/comment lines are otherwise unconstrained.
            continue

        parsed = parse_sample(line)
        if parsed is None:
            err(lineno, f"unparseable sample line: {line!r}")
            continue
        name, labels, value = parsed

        label_pairs = []
        if labels:
            consumed = LABEL_RE.findall(labels)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in consumed)
            if rebuilt != labels:
                err(lineno, f"malformed label set {{{labels}}}")
            label_pairs = sorted(consumed)

        family = base_family(name, typed_families)
        family_sampled.add(family)
        if family not in typed_families:
            err(lineno, f"sample {name} has no preceding # TYPE line")
            kind = None
        else:
            kind = typed_families[family][0]

        key = (name, tuple(label_pairs))
        if key in samples_seen:
            err(lineno, f"duplicate sample {name}{{{labels}}} "
                        f"(first at line {samples_seen[key]})")
        else:
            samples_seen[key] = lineno

        try:
            v = float(value)
        except ValueError:
            err(lineno, f"non-numeric value {value!r} for {name}")
            continue
        if kind in ("counter", "gauge") and not math.isfinite(v):
            err(lineno, f"non-finite {kind} value {value} for {name}")

    for family, (kind, lineno) in typed_families.items():
        if family not in family_sampled:
            err(lineno, f"TYPE line for {family} has no samples")

    return errors


def main(argv):
    paths = argv[1:] or ["-"]
    all_errors = []
    total_samples = 0
    for path in paths:
        text = sys.stdin.read() if path == "-" else open(path).read()
        errors = lint(text, "<stdin>" if path == "-" else path)
        all_errors.extend(errors)
        total_samples += sum(
            1 for l in text.splitlines() if l and not l.startswith("#"))
    for e in all_errors:
        print(e, file=sys.stderr)
    if all_errors:
        print(f"lint_prometheus: {len(all_errors)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"lint_prometheus: ok ({total_samples} samples, "
          f"{len(paths)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

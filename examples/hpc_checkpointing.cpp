// HPC operations: size the checkpoint interval of a supercomputer from its
// devices' neutron-induced DUE rates — and see how ECC, altitude and
// weather move it. Ends with the paper's introduction made concrete:
// checkpoint frequency is a function of the weather.

#include <iostream>

#include "core/checkpoint.hpp"
#include "core/fit.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "devices/ecc_policy.hpp"
#include "environment/site.hpp"

int main() {
    using namespace tnr;

    constexpr std::size_t kNodes = 4608;
    const auto raw =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto protected_device = devices::with_ecc(raw, devices::EccProtection{});

    core::CheckpointParameters params;
    params.checkpoint_cost_s = 240.0;
    params.restart_cost_s = 600.0;

    std::cout << "Checkpoint planning for a " << kNodes
              << "-node accelerator machine\n\n";
    core::TablePrinter table({"device", "site", "weather", "node DUE FIT",
                              "MTBF [h]", "tau_opt [min]", "waste"});
    for (const auto* device : {&raw, &protected_device}) {
        for (const bool rainy : {false, true}) {
            environment::Site site = environment::leadville_datacenter();
            if (rainy) site.environment.weather = environment::Weather::kRainy;
            const auto fit =
                core::device_fit(*device, devices::ErrorType::kDue, site);
            const auto plan = core::plan_for_fit(fit, kNodes, params);
            table.add_row({device->name(), "Leadville DC",
                           rainy ? "rainy" : "sunny",
                           core::format_fixed(fit.total(), 1),
                           core::format_fixed(plan.mtbf_s / 3600.0, 2),
                           core::format_fixed(plan.optimal_interval_s / 60.0, 1),
                           core::format_percent(plan.waste_fraction)});
        }
    }
    table.print(std::cout);

    std::cout << "\nTwo operational takeaways:\n"
                 "  * ECC converts silent corruptions into detected errors: "
                 "the DUE rate (and\n    checkpoint overhead) rises slightly "
                 "— the price of not computing garbage;\n"
                 "  * rain doubles the thermal flux: on a boron-heavy part "
                 "the optimal\n    checkpoint interval visibly shortens on "
                 "a stormy day.\n";
    return 0;
}

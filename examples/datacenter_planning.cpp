// Data-center planning: compare machine-room designs (air-cooled vs liquid-
// cooled, slab floor vs raised non-concrete floor, altitude) by the fleet
// DDR error rate they imply — the operational question behind the paper's
// §III.B (Supercomputer Cooling) and §V.
//
// The punchline the paper motivates: liquid cooling buys you ~30% more
// performance per watt but raises the thermal neutron flux by ~24%, and at
// altitude that becomes a measurable reliability bill.

#include <iostream>

#include "core/fit.hpp"
#include "core/report.hpp"
#include "environment/location.hpp"
#include "environment/modifiers.hpp"
#include "environment/site.hpp"
#include "memory/dram_config.hpp"

int main() {
    using namespace tnr;
    using environment::ThermalEnvironment;
    using environment::Weather;

    struct Design {
        const char* label;
        ThermalEnvironment env;
    };
    const Design designs[] = {
        {"air-cooled, raised steel floor", {Weather::kSunny, false, false, 0.0}},
        {"air-cooled, concrete slab", {Weather::kSunny, true, false, 0.0}},
        {"liquid-cooled, raised steel floor",
         {Weather::kSunny, false, true, 0.0}},
        {"liquid-cooled, concrete slab (typical)",
         ThermalEnvironment::datacenter()},
    };

    const struct {
        const char* label;
        environment::Location location;
    } places[] = {
        {"sea level (NYC)", environment::Location::new_york_city()},
        {"Los Alamos (2231 m)", environment::Location::los_alamos_nm()},
    };

    // Fleet: 10 PB of DDR4 (a Summit-class installation).
    const double fleet_gbit = 8.0e7;
    const auto module = memory::ddr4_module();

    std::cout << "Fleet DDR4 thermal error rate for a 10 PB installation\n"
              << "(per-Gbit sigma from the ROTAX campaign, Fig. 4):\n\n";
    core::TablePrinter table({"site", "machine-room design", "Phi_th [n/cm2/h]",
                              "fleet thermal FIT", "mean time between errors"});
    for (const auto& place : places) {
        for (const auto& design : designs) {
            environment::Site site{"planning", place.location, design.env,
                                   fleet_gbit,
                                   environment::DramGeneration::kDdr4};
            const double fit = module.sigma_total_per_gbit() * fleet_gbit *
                               site.thermal_flux() * 1.0e9;
            table.add_row({place.label, design.label,
                           core::format_fixed(site.thermal_flux(), 1),
                           core::format_fixed(fit, 0),
                           core::format_fixed(1.0e9 / fit, 1) + " h"});
        }
    }
    table.print(std::cout);

    std::cout << "\nShielding options (§V): cadmium is toxic when heated and "
                 "cannot sit near\nhot components; borated plastic works but "
                 "thermally insulates the very\ncooling loop it would have "
                 "to wrap. Design the room instead.\n";
    return 0;
}

// Quickstart: estimate the neutron-induced error rate of a GPU in a liquid-
// cooled data center, decomposed into high-energy and thermal components —
// the paper's question ("how much FIT am I missing if I ignore thermal
// neutrons?") in ~40 lines of API.

#include <iostream>

#include "core/fit.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "environment/site.hpp"

int main() {
    using namespace tnr;

    // 1. Pick a device from the calibrated catalog (the paper's roster).
    const devices::Device k20 =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));

    // 2. Describe where it runs: a liquid-cooled machine room on a concrete
    //    slab (the paper's +44% thermal adjustment), at sea level and at
    //    Leadville's 10,151 ft.
    const environment::Site nyc = environment::nyc_datacenter();
    const environment::Site leadville = environment::leadville_datacenter();

    // 3. Fold sensitivity with the site fluxes.
    std::cout << "NVIDIA K20 neutron-induced FIT (failures / 1e9 device-hours)\n\n";
    core::TablePrinter table({"site", "type", "FIT (HE)", "FIT (thermal)",
                              "total", "thermal share"});
    for (const auto& site : {nyc, leadville}) {
        for (const auto type :
             {devices::ErrorType::kSdc, devices::ErrorType::kDue}) {
            const core::FitRate fit = core::device_fit(k20, type, site);
            table.add_row({site.system_name, devices::to_string(type),
                           core::format_fixed(fit.high_energy, 1),
                           core::format_fixed(fit.thermal, 1),
                           core::format_fixed(fit.total(), 1),
                           core::format_percent(fit.thermal_share())});
        }
    }
    table.print(std::cout);

    std::cout << "\nIgnoring thermal neutrons underestimates the Leadville "
                 "SDC rate by "
              << core::format_percent(
                     core::device_fit(k20, devices::ErrorType::kSdc, leadville)
                             .underestimation() -
                         1.0)
              << ".\n";
    return 0;
}

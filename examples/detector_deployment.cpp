// Detector deployment walkthrough: everything a Tin-II operator does, end
// to end — shield verification, a calibration period checking the two
// tubes match, the data-center deployment with a water event, and the
// conversion from a count step back to a flux statement.

#include <iostream>

#include "core/report.hpp"
#include "detector/analysis.hpp"
#include "detector/he3_tube.hpp"
#include "detector/tin2.hpp"
#include "environment/location.hpp"
#include "physics/units.hpp"
#include "stats/rng.hpp"

int main() {
    using namespace tnr;

    const detector::Tin2Detector tin2;
    stats::Rng rng(20190420);

    // Step 0: the physics of the instrument.
    std::cout << "Step 0 — instrument characterization\n";
    core::TablePrinter inst({"quantity", "value"});
    inst.add_row({"He-3 density (4 atm)",
                  core::format_scientific(tin2.tube().helium_density(), 2) +
                      " /cm^3"});
    inst.add_row({"thermal detection efficiency",
                  core::format_percent(tin2.tube().intrinsic_efficiency(
                      physics::kThermalReferenceEv))});
    inst.add_row({"fast-neutron efficiency (1 MeV)",
                  core::format_scientific(
                      tin2.tube().intrinsic_efficiency(1.0e6), 2)});
    inst.add_row({"Cd shield thermal transmission",
                  core::format_scientific(
                      tin2.cadmium_thermal_transmission(), 2)});
    inst.print(std::cout);

    // Step 1: calibration — both tubes bare in the same field must agree
    // (the paper calibrated for 18 hours before shielding one tube).
    std::cout << "\nStep 1 — 18 h calibration (both tubes bare):\n";
    const double base_flux =
        environment::Location::los_alamos_nm().thermal_flux_baseline() / 3600.0;
    const double expected_rate = tin2.tube().count_rate(base_flux, 0.0);
    stats::Rng cal_rng = rng.split();
    const double hours = 18.0;
    const auto tube_a = cal_rng.poisson(expected_rate * hours * 3600.0);
    const auto tube_b = cal_rng.poisson(expected_rate * hours * 3600.0);
    const auto ratio = stats::poisson_rate_ratio(tube_a, hours, tube_b, hours);
    std::cout << "  tube A: " << tube_a << " counts, tube B: " << tube_b
              << " counts; efficiency ratio "
              << core::format_fixed(ratio.ratio, 3) << " (CI ["
              << core::format_fixed(ratio.ci.lower, 3) << ", "
              << core::format_fixed(ratio.ci.upper, 3)
              << "] — consistent with 1)\n";

    // Step 2: the deployment (4 baseline days, then the water box).
    std::cout << "\nStep 2 — deployment with water placed on day 5:\n";
    const auto rec = tin2.record(detector::fig6_schedule(4.0, 3.0), rng);
    const auto analysis = detector::analyze_step(rec);
    if (!analysis) {
        std::cout << "  no step found (unexpected)\n";
        return 1;
    }
    std::cout << "  changepoint at hour " << analysis->change_bin
              << " (water placed at hour " << rec.phase_start_bins[1] << ")\n"
              << "  thermal rate: "
              << core::format_fixed(analysis->thermal_rate_before * 3600.0, 1)
              << " -> "
              << core::format_fixed(analysis->thermal_rate_after * 3600.0, 1)
              << " counts/h  (" << core::format_percent(analysis->relative_step)
              << " step, paper: ~24%)\n";

    // Step 3: back to flux units.
    const double efficiency_area =
        tin2.tube().sensitive_area() *
        tin2.tube().intrinsic_efficiency(physics::kThermalReferenceEv);
    std::cout << "\nStep 3 — flux conversion:\n  thermal flux "
              << core::format_fixed(
                     analysis->thermal_rate_before / efficiency_area * 3600.0, 2)
              << " -> "
              << core::format_fixed(
                     analysis->thermal_rate_after / efficiency_area * 3600.0, 2)
              << " n/cm^2/h — the +24% every boron-bearing device in the "
                 "room now pays in FIT.\n";
    return 0;
}

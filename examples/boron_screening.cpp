// Boron screening: the integrator's workflow the paper motivates. The 10B
// content of a COTS part is proprietary — "the only way to evaluate boron
// concentration ... is through controlled radiation exposure" — so before
// adopting a part for a reliability-critical product, screen it at a
// thermal beamline against a sigma budget.

#include <iostream>

#include "beam/beamline.hpp"
#include "beam/experiment.hpp"
#include "beam/screening.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "faultinject/avf.hpp"
#include "stats/rng.hpp"
#include "workloads/suite.hpp"

int main() {
    using namespace tnr;

    // Project budget: thermal SDC sigma must stay below 1e-8 cm^2.
    const double sigma_max = 1.0e-8;
    const beam::Beamline rotax = beam::Beamline::rotax();

    // Step 1: plan the beam time. Zero-failure demonstration at 95%:
    const double t_zero =
        beam::zero_failure_test_time_s(sigma_max, rotax.reference_flux());
    std::cout << "Budget: sigma_th(SDC) < " << core::format_scientific(sigma_max)
              << " cm^2.\nZero-failure demonstration needs "
              << core::format_fixed(t_zero / 60.0, 1)
              << " min of ROTAX beam at 95% confidence.\n\n";

    // Step 2: screen three candidate parts (their true boron content is
    // unknown to the integrator; here they are catalog parts).
    std::cout << "Screening run (2 h per part, MxM test code):\n";
    core::TablePrinter table({"candidate", "errors", "sigma_hat", "95% CI",
                              "verdict"});
    stats::Rng rng(20200628);
    for (const char* name :
         {"Intel Xeon Phi", "NVIDIA TitanX", "NVIDIA K20"}) {
        const auto device = devices::build_calibrated(devices::spec_by_name(name));
        const auto suite = workloads::suite_for_device(name);
        const auto vulnerability =
            faultinject::VulnerabilityTable::uniform(suite);
        const beam::BeamExperiment exp(rotax, device, suite.front().name,
                                       vulnerability);
        beam::ExperimentConfig cfg;
        cfg.beam_time_s = 2.0 * 3600.0;
        const auto run = exp.run(cfg, rng);
        const auto screening = beam::screen_part(
            run.sdc.errors, run.sdc.fluence, sigma_max);
        table.add_row(
            {name, std::to_string(run.sdc.errors),
             core::format_scientific(screening.sigma_estimate),
             "[" + core::format_scientific(screening.sigma_ci.lower, 1) +
                 ", " + core::format_scientific(screening.sigma_ci.upper, 1) +
                 "]",
             beam::to_string(screening.verdict)});
    }
    table.print(std::cout);

    std::cout << "\nThe depleted-boron part clears the budget; the "
                 "boron-heavy parts are rejected\nwithin two hours of beam "
                 "— the screening the paper argues every COTS adopter\nwith "
                 "reliability requirements now needs.\n";
    return 0;
}

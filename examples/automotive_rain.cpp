// Automotive scenario (§III.C Motivation): an object-detection network on a
// COTS GPU in a vehicle. The thermal flux around a car changes with weather
// (rain x2), road material (concrete +20%), fuel and passengers (water-rich
// moderators). This example runs the YOLO-lite workload under fault
// injection to get the fraction of faults that flip a *detection* (critical
// SDC), then folds the device sensitivity with per-scenario fluxes.

#include <iostream>

#include "core/fit.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "environment/location.hpp"
#include "environment/modifiers.hpp"
#include "environment/site.hpp"
#include "faultinject/avf.hpp"
#include "workloads/suite.hpp"

int main() {
    using namespace tnr;
    using environment::ThermalEnvironment;
    using environment::Weather;

    // 1. How dangerous is a fault to the detector? Inject into YOLO-lite.
    const auto avf = faultinject::measure_avf(
        workloads::entry_by_name("YOLO"), 400, 2019);
    std::cout << "YOLO-lite fault-injection profile (" << avf.trials
              << " single-bit injections):\n";
    core::TablePrinter fi({"outcome", "share"});
    fi.add_row({"masked", core::format_percent(avf.masked_fraction())});
    fi.add_row({"SDC", core::format_percent(avf.avf_sdc())});
    fi.add_row({"  of which critical (detection changed)",
                core::format_percent(avf.critical_fraction())});
    fi.add_row({"DUE", core::format_percent(avf.avf_due())});
    fi.print(std::cout);

    // 2. The vehicle's compute: a Pascal-class COTS GPU.
    const auto gpu =
        devices::build_calibrated(devices::spec_by_name("NVIDIA TitanX"));

    // 3. Driving scenarios.
    struct Scenario {
        const char* label;
        ThermalEnvironment env;
    };
    const Scenario scenarios[] = {
        {"sunny day, asphalt, empty car", {Weather::kSunny, false, false, 0.0}},
        {"sunny day, concrete highway", {Weather::kSunny, true, false, 0.0}},
        {"sunny, concrete, 4 passengers + full tank",
         {Weather::kSunny, true, false, 0.20}},
        {"thunderstorm, concrete, full car",
         {Weather::kRainy, true, false, 0.20}},
    };

    const auto denver = environment::Location("Denver, CO", 39.7, -105.0, 1609.0);
    std::cout << "\nTitanX SDC rate while driving (Denver, 1609 m):\n\n";
    core::TablePrinter table({"scenario", "thermal multiplier", "FIT (HE)",
                              "FIT (thermal)", "thermal share"});
    for (const auto& s : scenarios) {
        const environment::Site site{"vehicle", denver, s.env, 0.0,
                                     environment::DramGeneration::kDdr4};
        const auto fit = core::device_fit(gpu, devices::ErrorType::kSdc, site);
        table.add_row({s.label,
                       core::format_fixed(s.env.thermal_multiplier(), 2),
                       core::format_fixed(fit.high_energy, 1),
                       core::format_fixed(fit.thermal, 1),
                       core::format_percent(fit.thermal_share())});
    }
    table.print(std::cout);

    std::cout << "\nIn the storm scenario the thermal component more than "
                 "doubles versus the\nsunny baseline — the paper's point "
                 "that a car's error rate depends on the\nweather it drives "
                 "through.\n";
    return 0;
}

// Full beam campaign walkthrough: what a test engineer would run before and
// after beam time. Simulates the paper's two-facility methodology end to
// end — AVF-weighted experiments at ChipIR and ROTAX for one device — and
// prints per-code cross sections with confidence intervals, then the pooled
// HE/thermal ratio.

#include <iostream>

#include "beam/beamline.hpp"
#include "beam/experiment.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "faultinject/avf.hpp"
#include "stats/rng.hpp"
#include "stats/poisson.hpp"
#include "workloads/suite.hpp"

int main() {
    using namespace tnr;

    const std::string device_name = "NVIDIA TitanX";
    const auto device =
        devices::build_calibrated(devices::spec_by_name(device_name));
    const auto suite = workloads::suite_for_device(device_name);

    // Step 1: fault-injection pre-study (done before beam time: it tells
    // you which codes to prioritize on the limited beam schedule).
    std::cout << "Step 1 — SWIFI pre-study (relative vulnerability per code):\n";
    const auto vulnerability =
        faultinject::VulnerabilityTable::measure(suite, 150, 7);
    core::TablePrinter weights({"code", "SDC weight", "DUE weight"});
    for (const auto& entry : suite) {
        weights.add_row({entry.name,
                         core::format_fixed(vulnerability.sdc_weight(entry.name), 2),
                         core::format_fixed(vulnerability.due_weight(entry.name), 2)});
    }
    weights.print(std::cout);

    // Step 2: irradiate at both facilities, same device, same codes, same
    // inputs (the paper's controlled comparison).
    stats::Rng rng(1900122);  // the ISIS experiment number, why not.
    const beam::Beamline chipir = beam::Beamline::chipir();
    const beam::Beamline rotax = beam::Beamline::rotax();

    std::cout << "\nStep 2 — beam runs (8 h per code per facility):\n";
    core::TablePrinter runs({"code", "beamline", "SDCs", "sigma_SDC [cm^2]",
                             "95% CI"});
    std::uint64_t he_errors = 0;
    double he_fluence = 0.0;
    std::uint64_t th_errors = 0;
    double th_fluence = 0.0;
    for (const auto& entry : suite) {
        for (const auto* beamline : {&chipir, &rotax}) {
            const beam::BeamExperiment exp(*beamline, device, entry.name,
                                           vulnerability);
            beam::ExperimentConfig cfg;
            cfg.beam_time_s = 8.0 * 3600.0;
            const auto result = exp.run(cfg, rng);
            const auto ci = result.sdc.confidence_interval();
            runs.add_row({entry.name, beamline->name(),
                          std::to_string(result.sdc.errors),
                          core::format_scientific(result.sdc.cross_section()),
                          "[" + core::format_scientific(ci.lower, 1) + ", " +
                              core::format_scientific(ci.upper, 1) + "]"});
            if (beamline == &chipir) {
                he_errors += result.sdc.errors;
                he_fluence += result.sdc.fluence;
            } else {
                th_errors += result.sdc.errors;
                th_fluence += result.sdc.fluence;
            }
        }
    }
    runs.print(std::cout);

    // Step 3: the Fig.-5 number for this device.
    const auto ratio =
        stats::poisson_rate_ratio(he_errors, he_fluence, th_errors, th_fluence);
    std::cout << "\nStep 3 — pooled HE/thermal SDC cross-section ratio: "
              << core::format_fixed(ratio.ratio, 2) << "  (95% CI ["
              << core::format_fixed(ratio.ci.lower, 2) << ", "
              << core::format_fixed(ratio.ci.upper, 2)
              << "]; paper reports ~3 for TitanX)\n";
    return 0;
}

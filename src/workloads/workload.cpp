#include "workloads/workload.hpp"

#include <cstdint>

#include "stats/rng.hpp"

namespace tnr::workloads {

std::size_t Workload::state_bytes() {
    std::size_t total = 0;
    for (const auto& seg : segments()) total += seg.bytes.size();
    return total;
}

namespace detail {

float hashed_uniform(std::uint64_t stream, std::uint64_t index, float lo,
                     float hi) {
    stats::SplitMix64 sm(stream * 0x9e3779b97f4a7c15ULL + index);
    const std::uint64_t bits = sm.next() >> 11;
    const auto u = static_cast<float>(static_cast<double>(bits) * 0x1.0p-53);
    return lo + (hi - lo) * u;
}

void check_bounds(std::size_t index, std::size_t bound, const char* what) {
    if (index >= bound) {
        throw WorkloadFailure(WorkloadFailure::Kind::kCrash,
                              std::string("out-of-bounds access in ") + what);
    }
}

void check_control(std::size_t value, std::size_t expected, const char* what) {
    if (value != expected) {
        throw WorkloadFailure(
            WorkloadFailure::Kind::kCrash,
            std::string("corrupted control block detected in ") + what);
    }
}

}  // namespace detail

}  // namespace tnr::workloads

#pragma once
// LavaMD: N-body particle interactions within a 3-D grid of boxes
// (Rodinia's lavaMD) — compute-bound, dominated by dot products.

#include <cstdint>
#include <memory>

#include "workloads/workload.hpp"

namespace tnr::workloads {

class LavaMd final : public Workload {
public:
    /// boxes_per_side: grid is boxes^3 boxes; particles_per_box particles in
    /// each. Defaults give 2^3 * 16 = 128 particles.
    explicit LavaMd(std::size_t boxes_per_side = 2,
                    std::size_t particles_per_box = 16);

    [[nodiscard]] std::string_view name() const noexcept override {
        return "LavaMD";
    }
    void reset() override;
    void run() override;
    [[nodiscard]] bool verify() const override;
    [[nodiscard]] std::vector<StateSegment> segments() override;

private:
    struct Control {
        std::uint32_t boxes_per_side;
        std::uint32_t particles_per_box;
    };

    [[nodiscard]] std::size_t total_particles() const noexcept {
        return boxes_ * boxes_ * boxes_ * per_box_;
    }

    std::size_t boxes_;
    std::size_t per_box_;
    Control control_{};
    std::vector<float> positions_;  ///< xyz + charge per particle.
    std::vector<float> forces_;     ///< xyz + potential per particle.
    std::vector<float> golden_;
};

std::unique_ptr<Workload> make_lavamd(std::size_t boxes_per_side = 2,
                                      std::size_t particles_per_box = 16);

}  // namespace tnr::workloads

#pragma once
// BFS: breadth-first search over a CSR road-network-like graph — the paper's
// non-uniform-memory-access code (GPS navigation). Corrupted adjacency
// indices naturally produce detectable faults (out-of-bounds) or hangs,
// which is why graph codes show high DUE rates at beam.

#include <cstdint>
#include <memory>

#include "workloads/workload.hpp"

namespace tnr::workloads {

class Bfs final : public Workload {
public:
    /// nodes: graph size; avg_degree: edges per node (grid-like with
    /// shortcuts, mimicking a highway network).
    explicit Bfs(std::size_t nodes = 1024, std::size_t avg_degree = 4);

    [[nodiscard]] std::string_view name() const noexcept override {
        return "BFS";
    }
    void reset() override;
    void run() override;
    [[nodiscard]] bool verify() const override;
    [[nodiscard]] std::vector<StateSegment> segments() override;

private:
    struct Control {
        std::uint32_t nodes;
        std::uint32_t source;
    };

    void build_graph();

    std::size_t nodes_;
    std::size_t degree_;
    Control control_{};
    std::vector<std::uint32_t> row_offsets_;  ///< CSR, nodes+1 entries.
    std::vector<std::uint32_t> columns_;      ///< CSR adjacency.
    std::vector<std::int32_t> distance_;      ///< output: hops from source.
    std::vector<std::uint32_t> frontier_;     ///< scratch queue.
    std::vector<std::int32_t> golden_;
};

std::unique_ptr<Workload> make_bfs(std::size_t nodes = 1024,
                                   std::size_t avg_degree = 4);

}  // namespace tnr::workloads

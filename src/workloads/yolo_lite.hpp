#pragma once
// YOLO-lite: a miniature convolutional object-detection network standing in
// for YOLO (the paper's self-driving representative). Two conv+ReLU stages,
// max-pooling, and a detection head producing class scores plus a bounding
// box. Supports the "critical vs tolerable SDC" distinction used in the CNN
// reliability literature: a corrupted score that does not change the
// detected class is tolerable; a changed class/box is critical.

#include <array>
#include <cstdint>
#include <memory>

#include "workloads/workload.hpp"

namespace tnr::workloads {

class YoloLite final : public Workload {
public:
    YoloLite();

    [[nodiscard]] std::string_view name() const noexcept override {
        return "YOLO";
    }
    void reset() override;
    void run() override;
    [[nodiscard]] bool verify() const override;
    [[nodiscard]] SdcSeverity severity() const override;
    [[nodiscard]] std::vector<StateSegment> segments() override;

    /// Detected class of the last run.
    [[nodiscard]] std::size_t detected_class() const;

    static constexpr std::size_t kInputSide = 16;
    static constexpr std::size_t kConv1Channels = 4;
    static constexpr std::size_t kConv2Channels = 8;
    static constexpr std::size_t kClasses = 5;

private:
    struct Control {
        std::uint32_t input_side;
    };

    /// Per-layer launch descriptor, as an inference runtime would keep in
    /// device memory (dims, strides, buffer offsets). Validated before each
    /// stage: corrupted descriptors abort the launch — the dominant DUE
    /// mechanism for CNN inference at beam.
    struct LayerDescriptor {
        std::uint32_t in_side;
        std::uint32_t out_side;
        std::uint32_t in_channels;
        std::uint32_t out_channels;
        std::uint32_t kernel;
        std::uint32_t stride;
        std::uint32_t weight_offset;
        std::uint32_t output_offset;
        /// Runtime metadata the framework keeps per layer (tensor strides,
        /// workspace pointers, algorithm selections — cuDNN descriptors are
        /// hundreds of bytes). Zero here; any corruption is detected.
        std::array<std::uint32_t, 56> runtime_metadata;
    };
    static constexpr std::size_t kLayers = 4;  ///< conv1, pool, conv2, head.

    void validate_descriptor(std::size_t layer,
                             const LayerDescriptor& expected) const;
    static LayerDescriptor expected_descriptor(std::size_t layer);

    Control control_{};
    std::array<LayerDescriptor, kLayers> descriptors_{};
    std::vector<float> input_;        ///< 16x16 grayscale frame.
    std::vector<float> conv1_w_;      ///< 4 x (3x3) kernels.
    std::vector<float> conv1_out_;    ///< 4 x 16 x 16.
    std::vector<float> pooled_;       ///< 4 x 8 x 8.
    std::vector<float> conv2_w_;      ///< 8 x 4 x (3x3) kernels.
    std::vector<float> conv2_out_;    ///< 8 x 8 x 8.
    std::vector<float> features_;     ///< 8 (global average pool).
    std::vector<float> head_w_;       ///< (classes + 4 box) x 8 dense weights.
    std::vector<float> output_;       ///< classes + box (x, y, w, h).
    std::vector<float> golden_;
};

std::unique_ptr<Workload> make_yolo_lite();

}  // namespace tnr::workloads

#pragma once
// CED: Canny edge detection — the paper's heterogeneous image-processing
// code (CPU and GPU pipelining frames). Gaussian blur, Sobel gradients,
// non-maximum suppression, double-threshold hysteresis.

#include <cstdint>
#include <memory>

#include "workloads/workload.hpp"

namespace tnr::workloads {

class CannyEdge final : public Workload {
public:
    explicit CannyEdge(std::size_t side = 48);

    [[nodiscard]] std::string_view name() const noexcept override {
        return "CED";
    }
    void reset() override;
    void run() override;
    [[nodiscard]] bool verify() const override;
    [[nodiscard]] std::vector<StateSegment> segments() override;

private:
    struct Control {
        std::uint32_t side;
    };

    std::size_t side_;
    Control control_{};
    std::vector<float> image_;
    std::vector<float> blurred_;
    std::vector<float> gradient_mag_;
    std::vector<std::uint8_t> direction_;
    std::vector<std::uint8_t> edges_;
    std::vector<std::uint8_t> golden_;
};

std::unique_ptr<Workload> make_canny(std::size_t side = 48);

}  // namespace tnr::workloads

#include "workloads/mxm.hpp"

#include <cstring>

namespace tnr::workloads {

MxM::MxM(std::size_t n) : n_(n) {
    if (n == 0 || n > 4096) {
        throw std::invalid_argument("MxM: dimension out of range");
    }
    a_.resize(n_ * n_);
    b_.resize(n_ * n_);
    c_.resize(n_ * n_);
    reset();
    run();
    golden_ = c_;
    reset();
}

void MxM::fill_inputs() {
    for (std::size_t i = 0; i < n_ * n_; ++i) {
        a_[i] = detail::hashed_uniform(1, i, -1.0F, 1.0F);
        b_[i] = detail::hashed_uniform(2, i, -1.0F, 1.0F);
    }
}

void MxM::reset() {
    control_.n = static_cast<std::uint32_t>(n_);
    fill_inputs();
    std::fill(c_.begin(), c_.end(), 0.0F);
}

void MxM::run() {
    // The dimension lives in the (injectable) control block, as it would in
    // a kernel launch descriptor; a corrupted value is caught here — the
    // analogue of a GPU launch failure (DUE).
    detail::check_control(control_.n, n_, "MxM");
    const std::size_t n = control_.n;
    // i-k-j loop order for stride-1 inner access.
    for (std::size_t i = 0; i < n; ++i) {
        float* ci = &c_[i * n];
        std::fill(ci, ci + n, 0.0F);
        for (std::size_t k = 0; k < n; ++k) {
            const float aik = a_[i * n + k];
            const float* bk = &b_[k * n];
            for (std::size_t j = 0; j < n; ++j) {
                ci[j] += aik * bk[j];
            }
        }
    }
}

bool MxM::verify() const {
    return std::memcmp(c_.data(), golden_.data(), c_.size() * sizeof(float)) == 0;
}

std::vector<StateSegment> MxM::segments() {
    return {
        {"A", detail::as_bytes_span(a_)},
        {"B", detail::as_bytes_span(b_)},
        {"C", detail::as_bytes_span(c_)},
        {"control",
         std::span<std::byte>(reinterpret_cast<std::byte*>(&control_),
                              sizeof(control_))},
    };
}

std::unique_ptr<Workload> make_mxm(std::size_t n) {
    return std::make_unique<MxM>(n);
}

}  // namespace tnr::workloads

#pragma once
// MNIST: a small fully-connected digit classifier — the paper's FPGA CNN
// (chosen there because MNIST is small enough to fit an FPGA). Input is a
// synthetic rendered digit; the network is a fixed-weight 256-30-10 MLP.
//
// The paper's companion study tested two FPGA builds of this network, one
// in single and one in double precision (the double build uses ~2x the
// FPGA resources and showed ~4x the thermal cross section). Both precisions
// are provided here via BasicMnist<T>.

#include <cstdint>
#include <memory>
#include <type_traits>

#include "workloads/workload.hpp"

namespace tnr::workloads {

/// Digit classifier over scalar type T (float or double).
template <typename T>
class BasicMnist final : public Workload {
    static_assert(std::is_floating_point_v<T>);

public:
    /// digit: which synthetic glyph (0-9) to classify.
    explicit BasicMnist(std::size_t digit = 3);

    [[nodiscard]] std::string_view name() const noexcept override {
        return std::is_same_v<T, double> ? "MNIST-dp" : "MNIST";
    }
    void reset() override;
    void run() override;
    [[nodiscard]] bool verify() const override;
    [[nodiscard]] SdcSeverity severity() const override;
    [[nodiscard]] std::vector<StateSegment> segments() override;

    [[nodiscard]] std::size_t predicted_digit() const;

    static constexpr std::size_t kSide = 16;
    static constexpr std::size_t kHidden = 30;
    static constexpr std::size_t kClasses = 10;

private:
    struct Control {
        std::uint32_t input_size;
    };

    std::size_t digit_;
    Control control_{};
    std::vector<T> input_;     ///< 16x16 rendered glyph.
    std::vector<T> w1_;        ///< 256 x 30.
    std::vector<T> hidden_;    ///< 30.
    std::vector<T> w2_;        ///< 30 x 10.
    std::vector<T> scores_;    ///< 10.
    std::vector<T> golden_;
};

using Mnist = BasicMnist<float>;
using MnistDouble = BasicMnist<double>;

std::unique_ptr<Workload> make_mnist(std::size_t digit = 3);

/// The double-precision FPGA build (~2x resources).
std::unique_ptr<Workload> make_mnist_double(std::size_t digit = 3);

}  // namespace tnr::workloads

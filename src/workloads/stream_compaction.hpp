#pragma once
// Stream Compaction (SC): memory-bound data-manipulation primitive that
// removes elements from an array (databases / image processing) — one of the
// paper's heterogeneous APU codes.

#include <cstdint>
#include <memory>

#include "workloads/workload.hpp"

namespace tnr::workloads {

class StreamCompaction final : public Workload {
public:
    explicit StreamCompaction(std::size_t n = 4096);

    [[nodiscard]] std::string_view name() const noexcept override {
        return "SC";
    }
    void reset() override;
    void run() override;
    [[nodiscard]] bool verify() const override;
    [[nodiscard]] std::vector<StateSegment> segments() override;

private:
    struct Control {
        std::uint32_t n;
        std::int32_t threshold;
    };

    std::size_t n_;
    Control control_{};
    std::vector<std::int32_t> input_;
    std::vector<std::uint32_t> flags_;    ///< predicate per element.
    std::vector<std::uint32_t> offsets_;  ///< exclusive prefix sum.
    std::vector<std::int32_t> output_;
    std::uint32_t output_count_ = 0;
    std::vector<std::int32_t> golden_;
    std::uint32_t golden_count_ = 0;
};

std::unique_ptr<Workload> make_stream_compaction(std::size_t n = 4096);

}  // namespace tnr::workloads

#include "workloads/lavamd.hpp"

#include <cmath>
#include <cstring>

namespace tnr::workloads {

namespace {
constexpr float kAlpha = 0.5F;  ///< interaction decay constant (lavaMD's a2).
}

LavaMd::LavaMd(std::size_t boxes_per_side, std::size_t particles_per_box)
    : boxes_(boxes_per_side), per_box_(particles_per_box) {
    if (boxes_per_side == 0 || boxes_per_side > 8 || particles_per_box == 0 ||
        particles_per_box > 256) {
        throw std::invalid_argument("LavaMd: bad configuration");
    }
    positions_.resize(total_particles() * 4);
    forces_.resize(total_particles() * 4);
    reset();
    run();
    golden_ = forces_;
    reset();
}

void LavaMd::reset() {
    control_.boxes_per_side = static_cast<std::uint32_t>(boxes_);
    control_.particles_per_box = static_cast<std::uint32_t>(per_box_);
    for (std::size_t p = 0; p < total_particles(); ++p) {
        positions_[p * 4 + 0] = detail::hashed_uniform(4, p * 4 + 0, 0.0F, 1.0F);
        positions_[p * 4 + 1] = detail::hashed_uniform(4, p * 4 + 1, 0.0F, 1.0F);
        positions_[p * 4 + 2] = detail::hashed_uniform(4, p * 4 + 2, 0.0F, 1.0F);
        positions_[p * 4 + 3] = detail::hashed_uniform(4, p * 4 + 3, 0.1F, 1.0F);
    }
    std::fill(forces_.begin(), forces_.end(), 0.0F);
}

void LavaMd::run() {
    detail::check_control(control_.boxes_per_side, boxes_, "LavaMD");
    detail::check_control(control_.particles_per_box, per_box_, "LavaMD");
    const std::size_t nb = boxes_;
    const std::size_t np = per_box_;
    const auto box_base = [&](std::size_t bx, std::size_t by, std::size_t bz) {
        return ((bx * nb + by) * nb + bz) * np;
    };

    std::fill(forces_.begin(), forces_.end(), 0.0F);
    // For every box, interact its particles with all particles in the 3^3
    // neighbourhood (clamped at the grid edge), as lavaMD does.
    for (std::size_t bx = 0; bx < nb; ++bx) {
        for (std::size_t by = 0; by < nb; ++by) {
            for (std::size_t bz = 0; bz < nb; ++bz) {
                const std::size_t home = box_base(bx, by, bz);
                for (std::size_t nx = (bx ? bx - 1 : 0);
                     nx < std::min(nb, bx + 2); ++nx) {
                    for (std::size_t ny = (by ? by - 1 : 0);
                         ny < std::min(nb, by + 2); ++ny) {
                        for (std::size_t nz = (bz ? bz - 1 : 0);
                             nz < std::min(nb, bz + 2); ++nz) {
                            const std::size_t other = box_base(nx, ny, nz);
                            for (std::size_t i = 0; i < np; ++i) {
                                const std::size_t pi = home + i;
                                detail::check_bounds(pi * 4 + 3,
                                                     positions_.size(),
                                                     "LavaMD");
                                const float xi = positions_[pi * 4 + 0];
                                const float yi = positions_[pi * 4 + 1];
                                const float zi = positions_[pi * 4 + 2];
                                float fx = 0.0F, fy = 0.0F, fz = 0.0F,
                                      pot = 0.0F;
                                for (std::size_t j = 0; j < np; ++j) {
                                    const std::size_t pj = other + j;
                                    const float dx = xi - positions_[pj * 4 + 0];
                                    const float dy = yi - positions_[pj * 4 + 1];
                                    const float dz = zi - positions_[pj * 4 + 2];
                                    const float qj = positions_[pj * 4 + 3];
                                    const float r2 = dx * dx + dy * dy + dz * dz;
                                    const float u2 = kAlpha * r2;
                                    const float vij = std::exp(-u2);
                                    const float fs = 2.0F * kAlpha * vij * qj;
                                    fx += fs * dx;
                                    fy += fs * dy;
                                    fz += fs * dz;
                                    pot += vij * qj;
                                }
                                forces_[pi * 4 + 0] += fx;
                                forces_[pi * 4 + 1] += fy;
                                forces_[pi * 4 + 2] += fz;
                                forces_[pi * 4 + 3] += pot;
                            }
                        }
                    }
                }
            }
        }
    }
}

bool LavaMd::verify() const {
    return std::memcmp(forces_.data(), golden_.data(),
                       forces_.size() * sizeof(float)) == 0;
}

std::vector<StateSegment> LavaMd::segments() {
    return {
        {"positions", detail::as_bytes_span(positions_)},
        {"forces", detail::as_bytes_span(forces_)},
        {"control",
         std::span<std::byte>(reinterpret_cast<std::byte*>(&control_),
                              sizeof(control_))},
    };
}

std::unique_ptr<Workload> make_lavamd(std::size_t boxes_per_side,
                                      std::size_t particles_per_box) {
    return std::make_unique<LavaMd>(boxes_per_side, particles_per_box);
}

}  // namespace tnr::workloads

#include "workloads/bfs.hpp"

#include <cmath>
#include <cstring>

namespace tnr::workloads {

Bfs::Bfs(std::size_t nodes, std::size_t avg_degree)
    : nodes_(nodes), degree_(avg_degree) {
    if (nodes < 2 || nodes > (1u << 22) || avg_degree == 0 || avg_degree > 64) {
        throw std::invalid_argument("Bfs: bad configuration");
    }
    build_graph();
    distance_.resize(nodes_);
    frontier_.resize(nodes_);
    reset();
    run();
    golden_ = distance_;
    reset();
}

void Bfs::build_graph() {
    // Grid backbone (road network) + a few long-range shortcuts (highways).
    const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(nodes_)));
    std::vector<std::vector<std::uint32_t>> adj(nodes_);
    const auto add_edge = [&](std::size_t u, std::size_t v) {
        if (u == v || u >= nodes_ || v >= nodes_) return;
        adj[u].push_back(static_cast<std::uint32_t>(v));
        adj[v].push_back(static_cast<std::uint32_t>(u));
    };
    for (std::size_t i = 0; i < nodes_; ++i) {
        if ((i + 1) % side != 0 && i + 1 < nodes_) add_edge(i, i + 1);
        if (i + side < nodes_) add_edge(i, i + side);
    }
    const std::size_t shortcuts = nodes_ * (degree_ > 2 ? degree_ - 2 : 0) / 2;
    for (std::size_t s = 0; s < shortcuts; ++s) {
        const auto u = static_cast<std::size_t>(
            detail::hashed_uniform(10, 2 * s, 0.0F, static_cast<float>(nodes_)));
        const auto v = static_cast<std::size_t>(detail::hashed_uniform(
            10, 2 * s + 1, 0.0F, static_cast<float>(nodes_)));
        add_edge(std::min(u, nodes_ - 1), std::min(v, nodes_ - 1));
    }

    row_offsets_.assign(nodes_ + 1, 0);
    for (std::size_t i = 0; i < nodes_; ++i) {
        row_offsets_[i + 1] =
            row_offsets_[i] + static_cast<std::uint32_t>(adj[i].size());
    }
    columns_.clear();
    columns_.reserve(row_offsets_.back());
    for (const auto& list : adj) {
        columns_.insert(columns_.end(), list.begin(), list.end());
    }
}

void Bfs::reset() {
    control_.nodes = static_cast<std::uint32_t>(nodes_);
    control_.source = 0;
    build_graph();  // the CSR arrays are injectable; restore them.
    std::fill(distance_.begin(), distance_.end(), -1);
    std::fill(frontier_.begin(), frontier_.end(), 0u);
}

void Bfs::run() {
    detail::check_control(control_.nodes, nodes_, "BFS");
    detail::check_bounds(control_.source, nodes_, "BFS source");
    std::fill(distance_.begin(), distance_.end(), -1);

    std::size_t head = 0;
    std::size_t tail = 0;
    frontier_[tail++] = control_.source;
    distance_[control_.source] = 0;

    // Watchdog: a sane BFS pushes each node at most once; corrupted
    // distances can re-enqueue nodes, which a real system shows as a hang.
    const std::size_t watchdog = 4 * nodes_;
    std::size_t processed = 0;

    while (head < tail) {
        if (++processed > watchdog) {
            throw WorkloadFailure(WorkloadFailure::Kind::kHang,
                                  "BFS: watchdog expired");
        }
        const std::uint32_t u = frontier_[head++];
        detail::check_bounds(u, nodes_, "BFS frontier node");
        const std::uint32_t begin = row_offsets_[u];
        const std::uint32_t end = row_offsets_[u + 1];
        if (begin > end || end > columns_.size()) {
            throw WorkloadFailure(WorkloadFailure::Kind::kCrash,
                                  "BFS: corrupted CSR row offsets");
        }
        for (std::uint32_t e = begin; e < end; ++e) {
            const std::uint32_t v = columns_[e];
            detail::check_bounds(v, nodes_, "BFS adjacency");
            if (distance_[v] < 0) {
                distance_[v] = distance_[u] + 1;
                if (tail >= frontier_.size()) {
                    throw WorkloadFailure(WorkloadFailure::Kind::kCrash,
                                          "BFS: frontier overflow");
                }
                frontier_[tail++] = v;
            }
        }
    }
}

bool Bfs::verify() const {
    return std::memcmp(distance_.data(), golden_.data(),
                       distance_.size() * sizeof(std::int32_t)) == 0;
}

std::vector<StateSegment> Bfs::segments() {
    return {
        {"row_offsets", detail::as_bytes_span(row_offsets_)},
        {"columns", detail::as_bytes_span(columns_)},
        {"distance", detail::as_bytes_span(distance_)},
        {"frontier", detail::as_bytes_span(frontier_)},
        {"control",
         std::span<std::byte>(reinterpret_cast<std::byte*>(&control_),
                              sizeof(control_))},
    };
}

std::unique_ptr<Workload> make_bfs(std::size_t nodes, std::size_t avg_degree) {
    return std::make_unique<Bfs>(nodes, avg_degree);
}

}  // namespace tnr::workloads

#pragma once
// HotSpot: iterative thermal stencil over a chip floorplan (Rodinia's
// hotspot) — the paper's stencil-solver representative.

#include <cstdint>
#include <memory>

#include "workloads/workload.hpp"

namespace tnr::workloads {

class HotSpot final : public Workload {
public:
    explicit HotSpot(std::size_t grid = 32, std::size_t iterations = 64);

    [[nodiscard]] std::string_view name() const noexcept override {
        return "HotSpot";
    }
    void reset() override;
    void run() override;
    [[nodiscard]] bool verify() const override;
    [[nodiscard]] std::vector<StateSegment> segments() override;

private:
    struct Control {
        std::uint32_t grid;
        std::uint32_t iterations;
    };

    std::size_t grid_;
    std::size_t iterations_;
    Control control_{};
    std::vector<float> temperature_;
    std::vector<float> power_;
    std::vector<float> scratch_;
    std::vector<float> golden_;
};

std::unique_ptr<Workload> make_hotspot(std::size_t grid = 32,
                                       std::size_t iterations = 64);

}  // namespace tnr::workloads

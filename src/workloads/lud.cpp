#include "workloads/lud.hpp"

#include <cmath>
#include <cstring>

namespace tnr::workloads {

Lud::Lud(std::size_t n) : n_(n) {
    if (n < 2 || n > 2048) throw std::invalid_argument("Lud: bad dimension");
    matrix_.resize(n_ * n_);
    reset();
    run();
    golden_ = matrix_;
    reset();
}

void Lud::reset() {
    control_.n = static_cast<std::uint32_t>(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        float row_sum = 0.0F;
        for (std::size_t j = 0; j < n_; ++j) {
            if (i == j) continue;
            const float v = detail::hashed_uniform(3, i * n_ + j, -0.5F, 0.5F);
            matrix_[i * n_ + j] = v;
            row_sum += std::abs(v);
        }
        // Diagonal dominance keeps the factorization stable without pivoting.
        matrix_[i * n_ + i] = row_sum + 1.0F;
    }
}

void Lud::run() {
    detail::check_control(control_.n, n_, "LUD");
    const std::size_t n = control_.n;
    for (std::size_t k = 0; k < n; ++k) {
        const float pivot = matrix_[k * n + k];
        // A fault that zeroes the pivot would divide by ~0; real solvers
        // detect the singularity and abort (DUE).
        if (!(std::abs(pivot) > 1e-20F) || !std::isfinite(pivot)) {
            throw WorkloadFailure(WorkloadFailure::Kind::kCrash,
                                  "LUD: singular pivot");
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            matrix_[i * n + k] /= pivot;
            const float lik = matrix_[i * n + k];
            for (std::size_t j = k + 1; j < n; ++j) {
                matrix_[i * n + j] -= lik * matrix_[k * n + j];
            }
        }
    }
}

bool Lud::verify() const {
    return std::memcmp(matrix_.data(), golden_.data(),
                       matrix_.size() * sizeof(float)) == 0;
}

std::vector<StateSegment> Lud::segments() {
    return {
        {"matrix", detail::as_bytes_span(matrix_)},
        {"control",
         std::span<std::byte>(reinterpret_cast<std::byte*>(&control_),
                              sizeof(control_))},
    };
}

std::unique_ptr<Workload> make_lud(std::size_t n) {
    return std::make_unique<Lud>(n);
}

}  // namespace tnr::workloads

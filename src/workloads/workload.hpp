#pragma once
// The benchmark kernels of the paper (§III.B), reimplemented as deterministic
// C++ kernels that can run under software fault injection.
//
// Contract:
//   * reset() restores pristine inputs and scratch state;
//   * run() recomputes outputs from the current state — it throws
//     WorkloadFailure when it detects a fault the way real systems do
//     (bounds violation => crash, iteration-cap overrun => hang watchdog);
//   * verify() compares outputs against a golden copy captured from a clean
//     run at construction; a mismatch after injection is an SDC.
//
// All mutable kernel state (inputs, intermediates, outputs and a small
// control block of dimensions/counters) is exposed through segments() so the
// injector can flip any live bit, mirroring a particle strike in device
// memory during execution.

#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tnr::workloads {

/// Detected failure during run() — the software analogue of a DUE.
class WorkloadFailure : public std::runtime_error {
public:
    enum class Kind {
        kCrash,  ///< invalid access / corrupted control detected.
        kHang,   ///< exceeded the iteration watchdog.
    };

    WorkloadFailure(Kind kind, const std::string& what)
        : std::runtime_error(what), kind_(kind) {}

    [[nodiscard]] Kind kind() const noexcept { return kind_; }

private:
    Kind kind_;
};

/// One injectable region of live kernel state.
struct StateSegment {
    std::string_view name;        ///< e.g. "input", "output", "control".
    std::span<std::byte> bytes;
};

/// Severity of a silent corruption, for workloads with a notion of
/// "critical" output (CNN classification flips vs. score jitter).
enum class SdcSeverity {
    kNone,       ///< output matches golden.
    kTolerable,  ///< numerically wrong but decision unchanged.
    kCritical,   ///< the decision/classification itself changed.
};

/// Base class for all kernels.
class Workload {
public:
    virtual ~Workload() = default;

    Workload(const Workload&) = delete;
    Workload& operator=(const Workload&) = delete;

    [[nodiscard]] virtual std::string_view name() const noexcept = 0;

    /// Restores pristine inputs, scratch and control state.
    virtual void reset() = 0;

    /// Executes the kernel; throws WorkloadFailure on detected faults.
    virtual void run() = 0;

    /// True when outputs are bit-identical to the golden copy.
    [[nodiscard]] virtual bool verify() const = 0;

    /// Finer-grained verdict; default derives from verify() only.
    [[nodiscard]] virtual SdcSeverity severity() const {
        return verify() ? SdcSeverity::kNone : SdcSeverity::kCritical;
    }

    /// Live injectable state. Valid until the next reset().
    [[nodiscard]] virtual std::vector<StateSegment> segments() = 0;

    /// Total injectable bytes (sum over segments).
    [[nodiscard]] std::size_t state_bytes();

protected:
    Workload() = default;
};

/// Helpers shared by the kernels.
namespace detail {

/// Deterministic float in [lo, hi) from an index hash (SplitMix64-based);
/// used to build reproducible inputs and weights without storing seeds.
float hashed_uniform(std::uint64_t stream, std::uint64_t index, float lo,
                     float hi);

/// Throws kCrash if `index >= bound`.
void check_bounds(std::size_t index, std::size_t bound, const char* what);

/// Throws kCrash unless value == expected (control-block validation).
void check_control(std::size_t value, std::size_t expected, const char* what);

/// View a vector's contents as writable bytes.
template <typename T>
std::span<std::byte> as_bytes_span(std::vector<T>& v) {
    return std::as_writable_bytes(std::span<T>(v.data(), v.size()));
}

}  // namespace detail

}  // namespace tnr::workloads

#include "workloads/yolo_lite.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace tnr::workloads {

namespace {

constexpr std::size_t kSide = YoloLite::kInputSide;
constexpr std::size_t kC1 = YoloLite::kConv1Channels;
constexpr std::size_t kC2 = YoloLite::kConv2Channels;
constexpr std::size_t kPooledSide = kSide / 2;
constexpr std::size_t kOutputs = YoloLite::kClasses + 4;

/// argmax over the class portion of an output vector.
std::size_t argmax_class(const std::vector<float>& out) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < YoloLite::kClasses; ++c) {
        if (out[c] > out[best]) best = c;
    }
    return best;
}

}  // namespace

YoloLite::YoloLite() {
    input_.resize(kSide * kSide);
    conv1_w_.resize(kC1 * 9);
    conv1_out_.resize(kC1 * kSide * kSide);
    pooled_.resize(kC1 * kPooledSide * kPooledSide);
    conv2_w_.resize(kC2 * kC1 * 9);
    conv2_out_.resize(kC2 * kPooledSide * kPooledSide);
    features_.resize(kC2);
    head_w_.resize(kOutputs * kC2);
    output_.resize(kOutputs);
    reset();
    run();
    golden_ = output_;
    reset();
}

void YoloLite::validate_descriptor(std::size_t layer,
                                   const LayerDescriptor& expected) const {
    const LayerDescriptor& d = descriptors_[layer];
    if (d.in_side != expected.in_side || d.out_side != expected.out_side ||
        d.in_channels != expected.in_channels ||
        d.out_channels != expected.out_channels || d.kernel != expected.kernel ||
        d.stride != expected.stride || d.weight_offset != expected.weight_offset ||
        d.output_offset != expected.output_offset ||
        d.runtime_metadata != expected.runtime_metadata) {
        throw WorkloadFailure(WorkloadFailure::Kind::kCrash,
                              "YOLO: corrupted layer descriptor");
    }
}

YoloLite::LayerDescriptor YoloLite::expected_descriptor(std::size_t layer) {
    switch (layer) {
        case 0:  // conv1: 16x16x1 -> 16x16x4, 3x3 stride 1.
            return {kSide, kSide, 1, kC1, 3, 1, 0, 0, {}};
        case 1:  // maxpool: 16x16x4 -> 8x8x4, 2x2 stride 2.
            return {kSide, kPooledSide, kC1, kC1, 2, 2, 0, 0, {}};
        case 2:  // conv2: 8x8x4 -> 8x8x8, 3x3 stride 1.
            return {kPooledSide, kPooledSide, kC1, kC2, 3, 1, 0, 0, {}};
        default:  // head: global pool + dense to classes + box.
            return {kPooledSide, 1, kC2, kClasses + 4, 1, 1, 0, 0, {}};
    }
}

void YoloLite::reset() {
    control_.input_side = kSide;
    for (std::size_t l = 0; l < kLayers; ++l) {
        descriptors_[l] = expected_descriptor(l);
    }
    // Synthetic road scene: bright blob ("vehicle") on a darker background.
    for (std::size_t i = 0; i < kSide; ++i) {
        for (std::size_t j = 0; j < kSide; ++j) {
            const float di = static_cast<float>(i) - 10.0F;
            const float dj = static_cast<float>(j) - 6.0F;
            const float blob = std::exp(-(di * di + dj * dj) / 8.0F);
            input_[i * kSide + j] =
                0.2F + 0.8F * blob +
                detail::hashed_uniform(11, i * kSide + j, -0.03F, 0.03F);
        }
    }
    // Deterministic pseudo-random pretrained weights.
    for (std::size_t i = 0; i < conv1_w_.size(); ++i) {
        conv1_w_[i] = detail::hashed_uniform(12, i, -0.5F, 0.5F);
    }
    for (std::size_t i = 0; i < conv2_w_.size(); ++i) {
        conv2_w_[i] = detail::hashed_uniform(13, i, -0.3F, 0.3F);
    }
    for (std::size_t i = 0; i < head_w_.size(); ++i) {
        head_w_[i] = detail::hashed_uniform(14, i, -0.8F, 0.8F);
    }
    std::fill(conv1_out_.begin(), conv1_out_.end(), 0.0F);
    std::fill(pooled_.begin(), pooled_.end(), 0.0F);
    std::fill(conv2_out_.begin(), conv2_out_.end(), 0.0F);
    std::fill(features_.begin(), features_.end(), 0.0F);
    std::fill(output_.begin(), output_.end(), 0.0F);
}

void YoloLite::run() {
    detail::check_control(control_.input_side, kSide, "YOLO");

    // Stage 1: 3x3 conv (same padding) + ReLU over the input frame.
    validate_descriptor(0, expected_descriptor(0));
    for (std::size_t c = 0; c < kC1; ++c) {
        const float* w = &conv1_w_[c * 9];
        for (std::size_t i = 0; i < kSide; ++i) {
            for (std::size_t j = 0; j < kSide; ++j) {
                float acc = 0.0F;
                for (int di = -1; di <= 1; ++di) {
                    for (int dj = -1; dj <= 1; ++dj) {
                        const auto ii = static_cast<std::ptrdiff_t>(i) + di;
                        const auto jj = static_cast<std::ptrdiff_t>(j) + dj;
                        if (ii < 0 || jj < 0 ||
                            ii >= static_cast<std::ptrdiff_t>(kSide) ||
                            jj >= static_cast<std::ptrdiff_t>(kSide)) {
                            continue;
                        }
                        acc += w[(di + 1) * 3 + (dj + 1)] *
                               input_[static_cast<std::size_t>(ii) * kSide +
                                      static_cast<std::size_t>(jj)];
                    }
                }
                // Inference runtimes validate tensors between layers; a
                // non-finite activation aborts the launch (DUE) rather than
                // silently flowing on (ReLU would otherwise squash NaN to 0).
                if (!std::isfinite(acc)) {
                    throw WorkloadFailure(WorkloadFailure::Kind::kCrash,
                                          "YOLO: non-finite conv1 activation");
                }
                conv1_out_[(c * kSide + i) * kSide + j] = std::max(0.0F, acc);
            }
        }
    }

    // Stage 2: 2x2 max pooling.
    validate_descriptor(1, expected_descriptor(1));
    for (std::size_t c = 0; c < kC1; ++c) {
        for (std::size_t i = 0; i < kPooledSide; ++i) {
            for (std::size_t j = 0; j < kPooledSide; ++j) {
                const std::size_t base = (c * kSide + 2 * i) * kSide + 2 * j;
                const float m =
                    std::max(std::max(conv1_out_[base], conv1_out_[base + 1]),
                             std::max(conv1_out_[base + kSide],
                                      conv1_out_[base + kSide + 1]));
                pooled_[(c * kPooledSide + i) * kPooledSide + j] = m;
            }
        }
    }

    // Stage 3: 3x3 conv over pooled maps (all input channels) + ReLU.
    validate_descriptor(2, expected_descriptor(2));
    for (std::size_t c = 0; c < kC2; ++c) {
        for (std::size_t i = 0; i < kPooledSide; ++i) {
            for (std::size_t j = 0; j < kPooledSide; ++j) {
                float acc = 0.0F;
                for (std::size_t ci = 0; ci < kC1; ++ci) {
                    const float* w = &conv2_w_[(c * kC1 + ci) * 9];
                    for (int di = -1; di <= 1; ++di) {
                        for (int dj = -1; dj <= 1; ++dj) {
                            const auto ii = static_cast<std::ptrdiff_t>(i) + di;
                            const auto jj = static_cast<std::ptrdiff_t>(j) + dj;
                            if (ii < 0 || jj < 0 ||
                                ii >= static_cast<std::ptrdiff_t>(kPooledSide) ||
                                jj >= static_cast<std::ptrdiff_t>(kPooledSide)) {
                                continue;
                            }
                            acc += w[(di + 1) * 3 + (dj + 1)] *
                                   pooled_[(ci * kPooledSide +
                                            static_cast<std::size_t>(ii)) *
                                               kPooledSide +
                                           static_cast<std::size_t>(jj)];
                        }
                    }
                }
                if (!std::isfinite(acc)) {
                    throw WorkloadFailure(WorkloadFailure::Kind::kCrash,
                                          "YOLO: non-finite conv2 activation");
                }
                conv2_out_[(c * kPooledSide + i) * kPooledSide + j] =
                    std::max(0.0F, acc);
            }
        }
    }

    // Stage 4: global average pooling + detection head.
    validate_descriptor(3, expected_descriptor(3));
    for (std::size_t c = 0; c < kC2; ++c) {
        float acc = 0.0F;
        for (std::size_t k = 0; k < kPooledSide * kPooledSide; ++k) {
            acc += conv2_out_[c * kPooledSide * kPooledSide + k];
        }
        features_[c] = acc / static_cast<float>(kPooledSide * kPooledSide);
    }

    // Stage 5: dense detection head (class scores + box).
    for (std::size_t o = 0; o < kOutputs; ++o) {
        float acc = 0.0F;
        for (std::size_t c = 0; c < kC2; ++c) {
            acc += head_w_[o * kC2 + c] * features_[c];
        }
        output_[o] = acc;
        if (!std::isfinite(acc)) {
            // Real inference frameworks surface NaN tensors as errors.
            throw WorkloadFailure(WorkloadFailure::Kind::kCrash,
                                  "YOLO: non-finite activation");
        }
    }
}

bool YoloLite::verify() const {
    return std::memcmp(output_.data(), golden_.data(),
                       output_.size() * sizeof(float)) == 0;
}

SdcSeverity YoloLite::severity() const {
    if (verify()) return SdcSeverity::kNone;
    // Tolerable when the detected class and the box (to 5%) are unchanged.
    if (argmax_class(output_) != argmax_class(golden_)) {
        return SdcSeverity::kCritical;
    }
    for (std::size_t b = kClasses; b < output_.size(); ++b) {
        const float ref = std::abs(golden_[b]) + 1e-3F;
        if (std::abs(output_[b] - golden_[b]) > 0.05F * ref) {
            return SdcSeverity::kCritical;
        }
    }
    return SdcSeverity::kTolerable;
}

std::size_t YoloLite::detected_class() const { return argmax_class(output_); }

std::vector<StateSegment> YoloLite::segments() {
    return {
        {"input", detail::as_bytes_span(input_)},
        {"conv1_w", detail::as_bytes_span(conv1_w_)},
        {"conv1_out", detail::as_bytes_span(conv1_out_)},
        {"pooled", detail::as_bytes_span(pooled_)},
        {"conv2_w", detail::as_bytes_span(conv2_w_)},
        {"conv2_out", detail::as_bytes_span(conv2_out_)},
        {"features", detail::as_bytes_span(features_)},
        {"head_w", detail::as_bytes_span(head_w_)},
        {"output", detail::as_bytes_span(output_)},
        {"descriptors",
         std::span<std::byte>(reinterpret_cast<std::byte*>(descriptors_.data()),
                              descriptors_.size() * sizeof(LayerDescriptor))},
        {"control",
         std::span<std::byte>(reinterpret_cast<std::byte*>(&control_),
                              sizeof(control_))},
    };
}

std::unique_ptr<Workload> make_yolo_lite() {
    return std::make_unique<YoloLite>();
}

}  // namespace tnr::workloads

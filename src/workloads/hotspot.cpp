#include "workloads/hotspot.hpp"

#include <cstring>

namespace tnr::workloads {

namespace {
constexpr float kAmbient = 80.0F;     ///< ambient temperature (C).
constexpr float kDiffusion = 0.20F;   ///< neighbour coupling per step.
constexpr float kPowerScale = 0.5F;   ///< heating per unit dissipated power.
}  // namespace

HotSpot::HotSpot(std::size_t grid, std::size_t iterations)
    : grid_(grid), iterations_(iterations) {
    if (grid < 3 || grid > 1024 || iterations == 0 || iterations > 100000) {
        throw std::invalid_argument("HotSpot: bad configuration");
    }
    temperature_.resize(grid_ * grid_);
    power_.resize(grid_ * grid_);
    scratch_.resize(grid_ * grid_);
    reset();
    run();
    golden_ = temperature_;
    reset();
}

void HotSpot::reset() {
    control_.grid = static_cast<std::uint32_t>(grid_);
    control_.iterations = static_cast<std::uint32_t>(iterations_);
    for (std::size_t i = 0; i < grid_ * grid_; ++i) {
        temperature_[i] = kAmbient;
        // Synthetic floorplan: a few hot functional units over a cool base.
        const float unit = detail::hashed_uniform(5, i, 0.0F, 1.0F);
        power_[i] = (unit > 0.85F) ? detail::hashed_uniform(6, i, 5.0F, 10.0F)
                                   : detail::hashed_uniform(6, i, 0.0F, 0.5F);
    }
    std::fill(scratch_.begin(), scratch_.end(), 0.0F);
}

void HotSpot::run() {
    detail::check_control(control_.grid, grid_, "HotSpot");
    detail::check_control(control_.iterations, iterations_, "HotSpot");
    const std::size_t n = grid_;
    for (std::size_t step = 0; step < iterations_; ++step) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                const std::size_t idx = i * n + j;
                const float center = temperature_[idx];
                const float north = (i > 0) ? temperature_[idx - n] : kAmbient;
                const float south =
                    (i + 1 < n) ? temperature_[idx + n] : kAmbient;
                const float west = (j > 0) ? temperature_[idx - 1] : kAmbient;
                const float east =
                    (j + 1 < n) ? temperature_[idx + 1] : kAmbient;
                scratch_[idx] =
                    center +
                    kDiffusion * (north + south + east + west - 4.0F * center) +
                    kPowerScale * power_[idx] * 0.05F;
            }
        }
        temperature_.swap(scratch_);
    }
    // Restore the invariant that `temperature_` holds the result regardless
    // of iteration parity (swap-based double buffering).
    if (iterations_ % 2 == 1) {
        // After an odd number of swaps the roles are already correct; the
        // loop above always writes into scratch_ then swaps, so
        // temperature_ holds the latest field. Nothing to do.
    }
}

bool HotSpot::verify() const {
    return std::memcmp(temperature_.data(), golden_.data(),
                       temperature_.size() * sizeof(float)) == 0;
}

std::vector<StateSegment> HotSpot::segments() {
    return {
        {"temperature", detail::as_bytes_span(temperature_)},
        {"power", detail::as_bytes_span(power_)},
        {"scratch", detail::as_bytes_span(scratch_)},
        {"control",
         std::span<std::byte>(reinterpret_cast<std::byte*>(&control_),
                              sizeof(control_))},
    };
}

std::unique_ptr<Workload> make_hotspot(std::size_t grid,
                                       std::size_t iterations) {
    return std::make_unique<HotSpot>(grid, iterations);
}

}  // namespace tnr::workloads

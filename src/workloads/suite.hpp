#pragma once
// Workload groupings matching the paper's device/code assignment (§III.B):
//   * Xeon Phi & GPUs run the HPC set (MxM, LUD, LavaMD, HotSpot) + YOLO;
//   * the AMD APU runs the heterogeneous set (SC, CED, BFS);
//   * the FPGA runs MNIST.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace tnr::workloads {

using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/// A named factory so campaigns can create fresh instances per experiment.
struct SuiteEntry {
    std::string name;
    WorkloadFactory make;
};

/// MxM, LUD, LavaMD, HotSpot.
std::vector<SuiteEntry> hpc_suite();

/// SC, CED, BFS.
std::vector<SuiteEntry> heterogeneous_suite();

/// YOLO, MNIST.
std::vector<SuiteEntry> cnn_suite();

/// All nine codes.
std::vector<SuiteEntry> full_suite();

/// Look up a factory by workload name across the full suite; throws if
/// unknown.
const SuiteEntry& entry_by_name(const std::string& name);

/// The paper's device/suite assignment: returns the workloads run on a
/// device of the given name (matching the catalog names).
std::vector<SuiteEntry> suite_for_device(const std::string& device_name);

}  // namespace tnr::workloads

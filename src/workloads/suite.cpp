#include "workloads/suite.hpp"

#include <stdexcept>

#include "workloads/bfs.hpp"
#include "workloads/canny.hpp"
#include "workloads/hotspot.hpp"
#include "workloads/lavamd.hpp"
#include "workloads/lud.hpp"
#include "workloads/mnist.hpp"
#include "workloads/mxm.hpp"
#include "workloads/stream_compaction.hpp"
#include "workloads/yolo_lite.hpp"

namespace tnr::workloads {

std::vector<SuiteEntry> hpc_suite() {
    return {
        {"MxM", [] { return make_mxm(); }},
        {"LUD", [] { return make_lud(); }},
        {"LavaMD", [] { return make_lavamd(); }},
        {"HotSpot", [] { return make_hotspot(); }},
    };
}

std::vector<SuiteEntry> heterogeneous_suite() {
    return {
        {"SC", [] { return make_stream_compaction(); }},
        {"CED", [] { return make_canny(); }},
        {"BFS", [] { return make_bfs(); }},
    };
}

std::vector<SuiteEntry> cnn_suite() {
    return {
        {"YOLO", [] { return make_yolo_lite(); }},
        {"MNIST", [] { return make_mnist(); }},
        {"MNIST-dp", [] { return make_mnist_double(); }},
    };
}

std::vector<SuiteEntry> full_suite() {
    std::vector<SuiteEntry> all = hpc_suite();
    for (auto& e : heterogeneous_suite()) all.push_back(std::move(e));
    for (auto& e : cnn_suite()) all.push_back(std::move(e));
    return all;
}

const SuiteEntry& entry_by_name(const std::string& name) {
    static const std::vector<SuiteEntry> all = full_suite();
    for (const auto& e : all) {
        if (e.name == name) return e;
    }
    throw std::out_of_range("entry_by_name: unknown workload " + name);
}

std::vector<SuiteEntry> suite_for_device(const std::string& device_name) {
    // FPGA runs MNIST only (the paper: MNIST is too small for GPUs/Phi),
    // in both the single- and double-precision builds.
    if (device_name.find("FPGA") != std::string::npos) {
        return {{"MNIST", [] { return make_mnist(); }},
                {"MNIST-dp", [] { return make_mnist_double(); }}};
    }
    // APU configurations run the heterogeneous codes.
    if (device_name.find("APU") != std::string::npos) {
        return heterogeneous_suite();
    }
    // Xeon Phi runs the HPC set.
    if (device_name.find("Xeon Phi") != std::string::npos) {
        return hpc_suite();
    }
    // NVIDIA GPUs run HPC + YOLO.
    std::vector<SuiteEntry> gpu = hpc_suite();
    gpu.push_back({"YOLO", [] { return make_yolo_lite(); }});
    return gpu;
}

}  // namespace tnr::workloads

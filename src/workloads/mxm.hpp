#pragma once
// Matrix multiplication (MxM): the paper's representative of highly
// arithmetic compute-bound HPC codes and of CNN feature-extraction layers.

#include <cstdint>
#include <memory>

#include "workloads/workload.hpp"

namespace tnr::workloads {

/// Dense single-precision C = A * B with blocked inner loops.
class MxM final : public Workload {
public:
    /// n: matrix dimension (default matches a small HPC tile).
    explicit MxM(std::size_t n = 48);

    [[nodiscard]] std::string_view name() const noexcept override {
        return "MxM";
    }
    void reset() override;
    void run() override;
    [[nodiscard]] bool verify() const override;
    [[nodiscard]] std::vector<StateSegment> segments() override;

    [[nodiscard]] std::size_t dimension() const noexcept { return n_; }

private:
    struct Control {
        std::uint32_t n;
    };

    void fill_inputs();

    std::size_t n_;
    Control control_{};
    std::vector<float> a_;
    std::vector<float> b_;
    std::vector<float> c_;
    std::vector<float> golden_;
};

std::unique_ptr<Workload> make_mxm(std::size_t n = 48);

}  // namespace tnr::workloads

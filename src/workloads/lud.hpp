#pragma once
// LUD: in-place LU decomposition (Doolittle, no pivoting) of a diagonally
// dominant matrix — the paper's linear-algebra solver representative.

#include <cstdint>
#include <memory>

#include "workloads/workload.hpp"

namespace tnr::workloads {

class Lud final : public Workload {
public:
    explicit Lud(std::size_t n = 40);

    [[nodiscard]] std::string_view name() const noexcept override {
        return "LUD";
    }
    void reset() override;
    void run() override;
    [[nodiscard]] bool verify() const override;
    [[nodiscard]] std::vector<StateSegment> segments() override;

private:
    struct Control {
        std::uint32_t n;
    };

    std::size_t n_;
    Control control_{};
    std::vector<float> matrix_;  ///< in-place LU workspace (input then output).
    std::vector<float> golden_;
};

std::unique_ptr<Workload> make_lud(std::size_t n = 40);

}  // namespace tnr::workloads

#include "workloads/canny.hpp"

#include <cmath>
#include <cstring>

namespace tnr::workloads {

namespace {
constexpr float kLowThreshold = 0.10F;
constexpr float kHighThreshold = 0.25F;
}

CannyEdge::CannyEdge(std::size_t side) : side_(side) {
    if (side < 8 || side > 2048) throw std::invalid_argument("CED: bad size");
    const std::size_t n = side_ * side_;
    image_.resize(n);
    blurred_.resize(n);
    gradient_mag_.resize(n);
    direction_.resize(n);
    edges_.resize(n);
    reset();
    run();
    golden_ = edges_;
    reset();
}

void CannyEdge::reset() {
    control_.side = static_cast<std::uint32_t>(side_);
    // Synthetic urban-like frame: smooth gradient sky + blocky structures.
    for (std::size_t i = 0; i < side_; ++i) {
        for (std::size_t j = 0; j < side_; ++j) {
            const std::size_t idx = i * side_ + j;
            float v = 0.3F + 0.4F * static_cast<float>(i) /
                                 static_cast<float>(side_);
            // Rectangular "buildings".
            const std::size_t bi = i / 12;
            const std::size_t bj = j / 12;
            v += 0.3F * detail::hashed_uniform(8, bi * 1000 + bj, 0.0F, 1.0F);
            v += detail::hashed_uniform(9, idx, -0.02F, 0.02F);  // sensor noise
            image_[idx] = std::min(1.0F, std::max(0.0F, v));
        }
    }
    std::fill(blurred_.begin(), blurred_.end(), 0.0F);
    std::fill(gradient_mag_.begin(), gradient_mag_.end(), 0.0F);
    std::fill(direction_.begin(), direction_.end(), std::uint8_t{0});
    std::fill(edges_.begin(), edges_.end(), std::uint8_t{0});
}

void CannyEdge::run() {
    detail::check_control(control_.side, side_, "CED");
    const std::size_t n = side_;
    const auto at = [n](std::size_t i, std::size_t j) { return i * n + j; };

    // 1. 3x3 Gaussian blur (1-2-1 kernel), clamped borders.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            float acc = 0.0F;
            float wsum = 0.0F;
            for (int di = -1; di <= 1; ++di) {
                for (int dj = -1; dj <= 1; ++dj) {
                    const auto ii = static_cast<std::ptrdiff_t>(i) + di;
                    const auto jj = static_cast<std::ptrdiff_t>(j) + dj;
                    if (ii < 0 || jj < 0 ||
                        ii >= static_cast<std::ptrdiff_t>(n) ||
                        jj >= static_cast<std::ptrdiff_t>(n)) {
                        continue;
                    }
                    const float w = (di == 0 ? 2.0F : 1.0F) *
                                    (dj == 0 ? 2.0F : 1.0F);
                    acc += w * image_[at(static_cast<std::size_t>(ii),
                                         static_cast<std::size_t>(jj))];
                    wsum += w;
                }
            }
            blurred_[at(i, j)] = acc / wsum;
        }
    }

    // 2. Sobel gradients -> magnitude + quantized direction (4 sectors).
    for (std::size_t i = 1; i + 1 < n; ++i) {
        for (std::size_t j = 1; j + 1 < n; ++j) {
            const float gx = blurred_[at(i - 1, j + 1)] +
                             2.0F * blurred_[at(i, j + 1)] +
                             blurred_[at(i + 1, j + 1)] -
                             blurred_[at(i - 1, j - 1)] -
                             2.0F * blurred_[at(i, j - 1)] -
                             blurred_[at(i + 1, j - 1)];
            const float gy = blurred_[at(i + 1, j - 1)] +
                             2.0F * blurred_[at(i + 1, j)] +
                             blurred_[at(i + 1, j + 1)] -
                             blurred_[at(i - 1, j - 1)] -
                             2.0F * blurred_[at(i - 1, j)] -
                             blurred_[at(i - 1, j + 1)];
            gradient_mag_[at(i, j)] = std::sqrt(gx * gx + gy * gy);
            const float angle = std::atan2(gy, gx);
            // Quantize to {0:E-W, 1:NE-SW, 2:N-S, 3:NW-SE}.
            const float deg = angle * 180.0F / static_cast<float>(M_PI);
            const float norm = (deg < 0.0F) ? deg + 180.0F : deg;
            std::uint8_t sector = 0;
            if (norm >= 22.5F && norm < 67.5F) sector = 1;
            else if (norm >= 67.5F && norm < 112.5F) sector = 2;
            else if (norm >= 112.5F && norm < 157.5F) sector = 3;
            direction_[at(i, j)] = sector;
        }
    }

    // 3. Non-maximum suppression + double threshold.
    static constexpr int kOff[4][2] = {{0, 1}, {-1, 1}, {-1, 0}, {-1, -1}};
    for (std::size_t i = 1; i + 1 < n; ++i) {
        for (std::size_t j = 1; j + 1 < n; ++j) {
            const std::size_t idx = at(i, j);
            const std::uint8_t sector = direction_[idx];
            if (sector > 3) {
                throw WorkloadFailure(WorkloadFailure::Kind::kCrash,
                                      "CED: corrupted direction sector");
            }
            const int di = kOff[sector][0];
            const int dj = kOff[sector][1];
            const float m = gradient_mag_[idx];
            const float fwd =
                gradient_mag_[at(i + static_cast<std::size_t>(di + 1) - 1,
                                 j + static_cast<std::size_t>(dj + 1) - 1)];
            const float bwd =
                gradient_mag_[at(i - static_cast<std::size_t>(di + 1) + 1,
                                 j - static_cast<std::size_t>(dj + 1) + 1)];
            if (m >= fwd && m >= bwd && m > kLowThreshold) {
                edges_[idx] = (m > kHighThreshold) ? 2 : 1;  // strong / weak.
            } else {
                edges_[idx] = 0;
            }
        }
    }

    // 4. Hysteresis: weak edges survive only next to a strong edge.
    for (std::size_t i = 1; i + 1 < n; ++i) {
        for (std::size_t j = 1; j + 1 < n; ++j) {
            const std::size_t idx = at(i, j);
            if (edges_[idx] != 1) continue;
            bool keep = false;
            for (int di = -1; di <= 1 && !keep; ++di) {
                for (int dj = -1; dj <= 1 && !keep; ++dj) {
                    keep = edges_[at(i + static_cast<std::size_t>(di + 1) - 1,
                                     j + static_cast<std::size_t>(dj + 1) - 1)] ==
                           2;
                }
            }
            edges_[idx] = keep ? 2 : 0;
        }
    }
}

bool CannyEdge::verify() const {
    return std::memcmp(edges_.data(), golden_.data(), edges_.size()) == 0;
}

std::vector<StateSegment> CannyEdge::segments() {
    return {
        {"image", detail::as_bytes_span(image_)},
        {"blurred", detail::as_bytes_span(blurred_)},
        {"gradient", detail::as_bytes_span(gradient_mag_)},
        {"direction", detail::as_bytes_span(direction_)},
        {"edges", detail::as_bytes_span(edges_)},
        {"control",
         std::span<std::byte>(reinterpret_cast<std::byte*>(&control_),
                              sizeof(control_))},
    };
}

std::unique_ptr<Workload> make_canny(std::size_t side) {
    return std::make_unique<CannyEdge>(side);
}

}  // namespace tnr::workloads

#include "workloads/mnist.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace tnr::workloads {

namespace {

constexpr std::size_t kInput = Mnist::kSide * Mnist::kSide;
constexpr std::size_t kHidden = Mnist::kHidden;
constexpr std::size_t kClasses = Mnist::kClasses;

/// Renders a crude 16x16 glyph for a digit: segments of a seven-segment
/// display, deterministic and distinct per digit.
template <typename T>
void render_digit(std::size_t digit, std::vector<T>& out) {
    std::fill(out.begin(), out.end(), T{0});
    const auto set_row = [&](std::size_t row, std::size_t c0, std::size_t c1) {
        for (std::size_t c = c0; c <= c1; ++c) out[row * Mnist::kSide + c] = T{1};
    };
    const auto set_col = [&](std::size_t col, std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r <= r1; ++r) out[r * Mnist::kSide + col] = T{1};
    };
    // Seven-segment layout on the 16x16 canvas.
    const bool seg[10][7] = {
        // a     b      c      d      e      f      g
        {true, true, true, true, true, true, false},    // 0
        {false, true, true, false, false, false, false},// 1
        {true, true, false, true, true, false, true},   // 2
        {true, true, true, true, false, false, true},   // 3
        {false, true, true, false, false, true, true},  // 4
        {true, false, true, true, false, true, true},   // 5
        {true, false, true, true, true, true, true},    // 6
        {true, true, true, false, false, false, false}, // 7
        {true, true, true, true, true, true, true},     // 8
        {true, true, true, true, false, true, true},    // 9
    };
    const auto& s = seg[digit % 10];
    if (s[0]) set_row(2, 4, 11);    // a: top
    if (s[1]) set_col(11, 2, 7);    // b: top-right
    if (s[2]) set_col(11, 8, 13);   // c: bottom-right
    if (s[3]) set_row(13, 4, 11);   // d: bottom
    if (s[4]) set_col(4, 8, 13);    // e: bottom-left
    if (s[5]) set_col(4, 2, 7);     // f: top-left
    if (s[6]) set_row(8, 4, 11);    // g: middle
}

}  // namespace

template <typename T>
BasicMnist<T>::BasicMnist(std::size_t digit) : digit_(digit % 10) {
    input_.resize(kInput);
    w1_.resize(kInput * kHidden);
    hidden_.resize(kHidden);
    w2_.resize(kHidden * kClasses);
    scores_.resize(kClasses);
    reset();
    run();
    golden_ = scores_;
    reset();
}

template <typename T>
void BasicMnist<T>::reset() {
    control_.input_size = kInput;
    render_digit(digit_, input_);
    // The top-left pixel is a constant bias input: no glyph uses it, and it
    // lets each template unit subtract half its own pixel count, so a digit
    // whose glyph is a *subset* of another's (3 inside 8) still scores
    // higher on its own template.
    input_[0] = T{1};

    // Small pseudo-random base weights plus a template-matching component:
    // hidden unit h attends to glyph (h mod 10).
    for (std::size_t i = 0; i < w1_.size(); ++i) {
        w1_[i] = static_cast<T>(detail::hashed_uniform(15, i, -0.005F, 0.005F));
    }
    std::vector<T> glyph(kInput);
    for (std::size_t d = 0; d < kClasses; ++d) {
        render_digit(d, glyph);
        T pixels{0};
        for (const T g : glyph) pixels += g;
        for (std::size_t h = 0; h < kHidden; ++h) {
            if (h % kClasses != d) continue;
            for (std::size_t p = 0; p < kInput; ++p) {
                w1_[p * kHidden + h] += static_cast<T>(0.05) * glyph[p];
            }
            // Bias: penalize template size (see input_[0] above).
            w1_[0 * kHidden + h] -= static_cast<T>(0.025) * pixels;
        }
        for (std::size_t h = 0; h < kHidden; ++h) {
            w2_[h * kClasses + d] =
                static_cast<T>(
                    detail::hashed_uniform(16, h * kClasses + d, -0.01F, 0.01F)) +
                ((h % kClasses == d) ? T{1} : T{0});
        }
    }
    std::fill(hidden_.begin(), hidden_.end(), T{0});
    std::fill(scores_.begin(), scores_.end(), T{0});
}

template <typename T>
void BasicMnist<T>::run() {
    detail::check_control(control_.input_size, kInput, "MNIST");
    for (std::size_t h = 0; h < kHidden; ++h) {
        T acc{0};
        for (std::size_t p = 0; p < kInput; ++p) {
            acc += input_[p] * w1_[p * kHidden + h];
        }
        hidden_[h] = std::max(T{0}, acc);  // ReLU
    }
    for (std::size_t c = 0; c < kClasses; ++c) {
        T acc{0};
        for (std::size_t h = 0; h < kHidden; ++h) {
            acc += hidden_[h] * w2_[h * kClasses + c];
        }
        if (!std::isfinite(acc)) {
            throw WorkloadFailure(WorkloadFailure::Kind::kCrash,
                                  "MNIST: non-finite activation");
        }
        scores_[c] = acc;
    }
}

template <typename T>
bool BasicMnist<T>::verify() const {
    return std::memcmp(scores_.data(), golden_.data(),
                       scores_.size() * sizeof(T)) == 0;
}

template <typename T>
SdcSeverity BasicMnist<T>::severity() const {
    if (verify()) return SdcSeverity::kNone;
    const auto arg = [](const std::vector<T>& v) {
        return static_cast<std::size_t>(
            std::distance(v.begin(), std::max_element(v.begin(), v.end())));
    };
    return (arg(scores_) == arg(golden_)) ? SdcSeverity::kTolerable
                                          : SdcSeverity::kCritical;
}

template <typename T>
std::size_t BasicMnist<T>::predicted_digit() const {
    return static_cast<std::size_t>(std::distance(
        scores_.begin(), std::max_element(scores_.begin(), scores_.end())));
}

template <typename T>
std::vector<StateSegment> BasicMnist<T>::segments() {
    return {
        {"input", detail::as_bytes_span(input_)},
        {"w1", detail::as_bytes_span(w1_)},
        {"hidden", detail::as_bytes_span(hidden_)},
        {"w2", detail::as_bytes_span(w2_)},
        {"scores", detail::as_bytes_span(scores_)},
        {"control",
         std::span<std::byte>(reinterpret_cast<std::byte*>(&control_),
                              sizeof(control_))},
    };
}

template class BasicMnist<float>;
template class BasicMnist<double>;

std::unique_ptr<Workload> make_mnist(std::size_t digit) {
    return std::make_unique<Mnist>(digit);
}

std::unique_ptr<Workload> make_mnist_double(std::size_t digit) {
    return std::make_unique<MnistDouble>(digit);
}

}  // namespace tnr::workloads

#include "workloads/stream_compaction.hpp"

#include <cstring>

namespace tnr::workloads {

namespace {
constexpr std::int32_t kThreshold = 0;  ///< keep strictly positive values.
}

StreamCompaction::StreamCompaction(std::size_t n) : n_(n) {
    if (n == 0 || n > (1u << 22)) {
        throw std::invalid_argument("StreamCompaction: bad size");
    }
    input_.resize(n_);
    flags_.resize(n_);
    offsets_.resize(n_);
    output_.resize(n_);
    reset();
    run();
    golden_ = output_;
    golden_count_ = output_count_;
    reset();
}

void StreamCompaction::reset() {
    control_.n = static_cast<std::uint32_t>(n_);
    control_.threshold = kThreshold;
    for (std::size_t i = 0; i < n_; ++i) {
        input_[i] = static_cast<std::int32_t>(
            detail::hashed_uniform(7, i, -1000.0F, 1000.0F));
    }
    std::fill(flags_.begin(), flags_.end(), 0u);
    std::fill(offsets_.begin(), offsets_.end(), 0u);
    std::fill(output_.begin(), output_.end(), 0);
    output_count_ = 0;
}

void StreamCompaction::run() {
    detail::check_control(control_.n, n_, "SC");
    const std::size_t n = control_.n;

    // Phase 1: predicate map. A corrupted threshold silently changes which
    // elements survive (SDC), as on real hardware.
    for (std::size_t i = 0; i < n; ++i) {
        flags_[i] = (input_[i] > control_.threshold) ? 1u : 0u;
    }

    // Phase 2: exclusive prefix sum of the flags (the scatter offsets). A
    // flipped bit in a flag makes offsets inconsistent downstream.
    std::uint32_t running = 0;
    for (std::size_t i = 0; i < n; ++i) {
        offsets_[i] = running;
        running += flags_[i];
    }

    // Phase 3: scatter. Offsets come from injectable memory; a corrupted
    // offset is an out-of-bounds scatter, which real devices surface as a
    // memory fault (DUE).
    for (std::size_t i = 0; i < n; ++i) {
        if (flags_[i] == 0u) continue;
        if (flags_[i] != 1u) {
            throw WorkloadFailure(WorkloadFailure::Kind::kCrash,
                                  "SC: corrupted predicate flag");
        }
        detail::check_bounds(offsets_[i], output_.size(), "SC scatter");
        output_[offsets_[i]] = input_[i];
    }
    output_count_ = running;
}

bool StreamCompaction::verify() const {
    if (output_count_ != golden_count_) return false;
    return std::memcmp(output_.data(), golden_.data(),
                       output_.size() * sizeof(std::int32_t)) == 0;
}

std::vector<StateSegment> StreamCompaction::segments() {
    return {
        {"input", detail::as_bytes_span(input_)},
        {"flags", detail::as_bytes_span(flags_)},
        {"offsets", detail::as_bytes_span(offsets_)},
        {"output", detail::as_bytes_span(output_)},
        {"control",
         std::span<std::byte>(reinterpret_cast<std::byte*>(&control_),
                              sizeof(control_))},
    };
}

std::unique_ptr<Workload> make_stream_compaction(std::size_t n) {
    return std::make_unique<StreamCompaction>(n);
}

}  // namespace tnr::workloads

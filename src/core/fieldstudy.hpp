#pragma once
// Field-data study: the complement to beam testing the related work
// (Sridharan et al.) practises — mine months of machine error logs instead
// of hours of beam. This module simulates a fleet's error log (per-node
// Poisson arrivals whose rate follows the site's fluxes and a daily weather
// series) and provides the analysis that recovers, from the log alone:
//
//   * the per-node FIT rate (validating against the beam-derived value);
//   * the rainy/sunny rate ratio (the thermal weather signature);
//   * cross-site rate ratios (the altitude signature).

#include <cstdint>
#include <vector>

#include "core/fit.hpp"
#include "devices/device.hpp"
#include "environment/site.hpp"
#include "stats/poisson.hpp"
#include "stats/rng.hpp"

namespace tnr::core {

/// One logged error event.
struct LogEvent {
    double time_s = 0.0;
    std::uint32_t node = 0;
    devices::ErrorType type = devices::ErrorType::kSdc;
};

struct FleetLogConfig {
    std::size_t nodes = 1000;
    double days = 180.0;
    /// Probability a given day is rainy (doubling the thermal flux).
    double rain_probability = 0.25;
};

/// A simulated machine log.
struct FleetLog {
    std::vector<LogEvent> events;
    std::vector<bool> rainy_day;   ///< per-day weather series.
    std::size_t nodes = 0;
    double days = 0.0;

    [[nodiscard]] std::size_t count(devices::ErrorType type) const;
};

/// Simulates the log of `config.nodes` devices at `site` over the period,
/// with daily weather toggling the thermal flux.
FleetLog simulate_fleet_log(const devices::Device& device,
                            const environment::Site& site,
                            const FleetLogConfig& config, std::uint64_t seed);

/// What the log-mining recovers.
struct FieldAnalysis {
    double node_fit_sdc = 0.0;  ///< failures / 1e9 node-hours, overall.
    double node_fit_due = 0.0;
    double sunny_events_per_node_day = 0.0;
    double rainy_events_per_node_day = 0.0;
    /// rainy/sunny daily-rate ratio with a conservative 95% CI.
    stats::RateRatio rain_ratio;
    std::size_t rainy_days = 0;
    std::size_t sunny_days = 0;
};

/// Mines a log: daily rates split by the weather series, FIT estimates.
FieldAnalysis analyze_fleet_log(const FleetLog& log);

}  // namespace tnr::core

#include "core/study.hpp"

#include "physics/units.hpp"

namespace tnr::core {

ReliabilityStudy::ReliabilityStudy(beam::CampaignConfig config)
    : campaign_runner_(std::move(config)) {}

const beam::CampaignResult& ReliabilityStudy::campaign() {
    if (!ran_) {
        result_ = campaign_runner_.run();
        ran_ = true;
    }
    return result_;
}

FitRate ReliabilityStudy::measured_fit(const std::string& device_name,
                                       devices::ErrorType type,
                                       const environment::Site& site) {
    const auto& rows = campaign().ratio_rows;
    for (const auto& row : rows) {
        if (row.device != device_name || row.type != type) continue;
        FitRate fit;
        fit.high_energy = row.sigma_he() * site.high_energy_flux() *
                          physics::kHoursPerBillion;
        fit.thermal =
            row.sigma_th() * site.thermal_flux() * physics::kHoursPerBillion;
        return fit;
    }
    throw std::out_of_range("ReliabilityStudy: no campaign row for " +
                            device_name);
}

std::vector<FitShareRow> ReliabilityStudy::fit_share_table(
    const std::vector<environment::Site>& sites) {
    std::vector<FitShareRow> table;
    for (const auto& row : campaign().ratio_rows) {
        for (const auto& site : sites) {
            FitShareRow out;
            out.device = row.device;
            out.type = row.type;
            out.site = site.system_name;
            out.fit = measured_fit(row.device, row.type, site);
            table.push_back(out);
        }
    }
    return table;
}

}  // namespace tnr::core

#pragma once
// Plain-text table rendering for benches and examples: fixed-width columns,
// scientific notation for cross sections, percentages for FIT shares.

#include <iosfwd>
#include <string>
#include <vector>

namespace tnr::core {

/// Formats x as "1.23e-08".
std::string format_scientific(double x, int digits = 3);

/// Formats a fraction as "12.3%".
std::string format_percent(double fraction, int digits = 1);

/// Formats with fixed decimals.
std::string format_fixed(double x, int digits = 2);

/// Simple left-aligned column table.
class TablePrinter {
public:
    explicit TablePrinter(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    /// Renders to the stream with column widths fit to content.
    void print(std::ostream& os) const;

    [[nodiscard]] std::string to_string() const;

    /// Renders the same table as RFC-4180 CSV (quoted where needed).
    void print_csv(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Escapes one CSV field (quotes when it contains comma/quote/newline).
std::string csv_escape(const std::string& field);

}  // namespace tnr::core

#pragma once
// Structured error model for the run boundary. Every failure that can end a
// run carries a category, so the layers above (campaign grid, CLI, journal
// replay) can react by kind instead of string-matching what() — a config
// error is a usage bug (exit 2), numeric and I/O errors are runtime faults
// (exit 3), and cancellation is the cooperative SIGINT path (exit 130).
//
// Header-only so every layer (stats up to cli) can throw and catch RunError
// without new link dependencies.

#include <stdexcept>
#include <string>

namespace tnr::core {

enum class ErrorCategory {
    kConfig,      ///< invalid configuration or arguments (usage error).
    kNumeric,     ///< a computation produced or met an invalid value.
    kIo,          ///< a file could not be read, written, or parsed.
    kCancelled,   ///< the run was cooperatively cancelled (SIGINT).
    kOverloaded,  ///< admission queue full; the serve load-shed response.
    kTimeout,     ///< a peer exceeded its idle budget (serve connection).
};

constexpr const char* to_string(ErrorCategory c) noexcept {
    switch (c) {
        case ErrorCategory::kConfig: return "config";
        case ErrorCategory::kNumeric: return "numeric";
        case ErrorCategory::kIo: return "io";
        case ErrorCategory::kCancelled: return "cancelled";
        case ErrorCategory::kOverloaded: return "overloaded";
        case ErrorCategory::kTimeout: return "timeout";
    }
    return "unknown";
}

/// Process exit code convention (see docs/robustness.md): 0 ok, 2 usage,
/// 3 runtime failure, 130 interrupted (128 + SIGINT). kOverloaded and
/// kTimeout are protocol-level responses of `tnr serve`; if one ever ends a
/// process it is a runtime fault.
constexpr int exit_code(ErrorCategory c) noexcept {
    switch (c) {
        case ErrorCategory::kConfig: return 2;
        case ErrorCategory::kNumeric: return 3;
        case ErrorCategory::kIo: return 3;
        case ErrorCategory::kCancelled: return 130;
        case ErrorCategory::kOverloaded: return 3;
        case ErrorCategory::kTimeout: return 3;
    }
    return 3;
}

class RunError : public std::runtime_error {
public:
    RunError(ErrorCategory category, const std::string& what)
        : std::runtime_error(what), category_(category) {}

    [[nodiscard]] ErrorCategory category() const noexcept { return category_; }
    [[nodiscard]] int exit_code() const noexcept {
        return core::exit_code(category_);
    }

    static RunError config(const std::string& what) {
        return {ErrorCategory::kConfig, what};
    }
    static RunError numeric(const std::string& what) {
        return {ErrorCategory::kNumeric, what};
    }
    static RunError io(const std::string& what) {
        return {ErrorCategory::kIo, what};
    }
    static RunError cancelled(const std::string& what) {
        return {ErrorCategory::kCancelled, what};
    }

private:
    ErrorCategory category_;
};

}  // namespace tnr::core

#pragma once
// ReliabilityStudy: the end-to-end pipeline of the paper in one object.
//
//   1. run the ChipIR + ROTAX campaign (beam::Campaign) over the device
//      roster — this produces *measured* cross sections with counting noise,
//      exactly like beam time does;
//   2. fold the measured sensitivities with the fluxes of deployment sites
//      (environment::Site) to get FIT rates decomposed into high-energy and
//      thermal components.
//
// Everything downstream (Fig. 5 ratios, Txt-2 FIT shares) reads from here.

#include <string>
#include <vector>

#include "beam/campaign.hpp"
#include "core/fit.hpp"
#include "environment/site.hpp"

namespace tnr::core {

/// One row of the FIT decomposition table ([jsc2020] FIT figure / Txt-2).
struct FitShareRow {
    std::string device;
    devices::ErrorType type = devices::ErrorType::kSdc;
    std::string site;
    FitRate fit;
};

class ReliabilityStudy {
public:
    explicit ReliabilityStudy(beam::CampaignConfig config = {});

    /// Runs (or returns the cached) campaign.
    const beam::CampaignResult& campaign();

    /// FIT at a site from the campaign's *measured* cross sections:
    /// sigma_HE(ChipIR) x Phi_HE(site) + sigma_th(ROTAX) x Phi_th(site).
    [[nodiscard]] FitRate measured_fit(const std::string& device_name,
                                       devices::ErrorType type,
                                       const environment::Site& site);

    /// The full decomposition table over devices x sites x error types.
    [[nodiscard]] std::vector<FitShareRow> fit_share_table(
        const std::vector<environment::Site>& sites);

private:
    beam::Campaign campaign_runner_;
    beam::CampaignResult result_;
    bool ran_ = false;
};

}  // namespace tnr::core

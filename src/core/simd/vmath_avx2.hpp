#pragma once
// AVX2 vector-math primitives for the transport kernels. Header-only,
// compiled with per-function target attributes so the including translation
// unit needs no special -m flags; every function is always_inline so calls
// from other target("avx2,fma") functions fold into one instruction stream
// with no ABI crossing.
//
// Domain contracts (checked by the callers, not here):
//   * v_log: finite, normal, strictly positive inputs. The transport paths
//     feed it clamped grid energies (1e-7 .. 2e9 eV) and 1-u survival
//     probabilities in [2^-53, 1].
//   * v_uniform53: any raw 64-bit draw.

#include "core/simd/dispatch.hpp"

#if TNR_SIMD_X86_AVX2

#include <immintrin.h>

#include <cstdint>

namespace tnr::core::simd {

#define TNR_AVX2_INLINE \
    __attribute__((target("avx2,fma"), always_inline)) static inline

/// Exactly static_cast<double>(raw >> 11) * 0x1.0p-53, lane-wise — the
/// same arithmetic as stats::Rng::uniform(), so a block of vector-converted
/// draws is bitwise identical to the scalar stream. AVX2 has no u64->double
/// conversion; the 53-bit value is split into 32-bit halves, each converted
/// exactly via the 2^52 magic-number trick, and recombined. Every step is
/// exact (the fmadd rounds an exactly-representable 53-bit integer), so no
/// double rounding sneaks in.
TNR_AVX2_INLINE __m256d v_uniform53(__m256i raw) noexcept {
    const __m256i mant = _mm256_srli_epi64(raw, 11);  // < 2^53.
    const __m256i lo32 =
        _mm256_and_si256(mant, _mm256_set1_epi64x(0xffffffffLL));
    const __m256i hi32 = _mm256_srli_epi64(mant, 32);  // < 2^21.
    const __m256d magic = _mm256_set1_pd(0x1.0p52);
    const __m256i magic_bits = _mm256_castpd_si256(magic);
    const __m256d d_lo = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(lo32, magic_bits)), magic);
    const __m256d d_hi = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(hi32, magic_bits)), magic);
    const __m256d value = _mm256_fmadd_pd(d_hi, _mm256_set1_pd(0x1.0p32), d_lo);
    return _mm256_mul_pd(value, _mm256_set1_pd(0x1.0p-53));
}

/// Natural log, fdlibm e_log.c scheme vectorized: reduce x = 2^k * m with
/// m in [sqrt(2)/2, sqrt(2)) by integer exponent surgery, then evaluate the
/// minimax rational for log(m) and recombine with a hi/lo split of ln 2.
/// Accuracy is ~1 ulp over the callers' domains (FMA contraction shifts the
/// last bit relative to libm occasionally) — plenty for sampling and for
/// the xs table's 1e-3 interpolation contract.
TNR_AVX2_INLINE __m256d v_log(__m256d x) noexcept {
    const __m256i bits = _mm256_castpd_si256(x);
    // High-word shift by (0x3ff00000 - 0x3fe6a09e) re-centres the mantissa
    // range; the addend's low 32 bits are zero, so the 64-bit add is the
    // fdlibm high-word add verbatim.
    const __m256i adj =
        _mm256_add_epi64(bits, _mm256_set1_epi64x(0x95F6200000000LL));
    const __m256i k64 = _mm256_sub_epi64(_mm256_srli_epi64(adj, 52),
                                         _mm256_set1_epi64x(1023));
    const __m256i mant_bits = _mm256_add_epi64(
        _mm256_and_si256(adj, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL)),
        _mm256_set1_epi64x(0x3FE6A09E00000000LL));
    const __m256d m = _mm256_castsi256_pd(mant_bits);

    // k fits int32 comfortably; narrow the 64-bit lanes and convert.
    const __m128i k32 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
        k64, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)));
    const __m256d dk = _mm256_cvtepi32_pd(k32);

    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d f = _mm256_sub_pd(m, one);
    const __m256d s = _mm256_div_pd(f, _mm256_add_pd(_mm256_set1_pd(2.0), f));
    const __m256d z = _mm256_mul_pd(s, s);
    const __m256d w = _mm256_mul_pd(z, z);

    const __m256d lg1 = _mm256_set1_pd(6.666666666666735130e-01);
    const __m256d lg2 = _mm256_set1_pd(3.999999999940941908e-01);
    const __m256d lg3 = _mm256_set1_pd(2.857142874366239149e-01);
    const __m256d lg4 = _mm256_set1_pd(2.222219843214978396e-01);
    const __m256d lg5 = _mm256_set1_pd(1.818357216161805012e-01);
    const __m256d lg6 = _mm256_set1_pd(1.531383769920937332e-01);
    const __m256d lg7 = _mm256_set1_pd(1.479819860511658591e-01);

    __m256d t1 = _mm256_fmadd_pd(w, lg6, lg4);
    t1 = _mm256_fmadd_pd(w, t1, lg2);
    t1 = _mm256_mul_pd(w, t1);
    __m256d t2 = _mm256_fmadd_pd(w, lg7, lg5);
    t2 = _mm256_fmadd_pd(w, t2, lg3);
    t2 = _mm256_fmadd_pd(w, t2, lg1);
    t2 = _mm256_mul_pd(z, t2);
    const __m256d r = _mm256_add_pd(t1, t2);

    const __m256d hfsq =
        _mm256_mul_pd(_mm256_set1_pd(0.5), _mm256_mul_pd(f, f));
    const __m256d ln2_hi = _mm256_set1_pd(6.93147180369123816490e-01);
    const __m256d ln2_lo = _mm256_set1_pd(1.90821492927058770002e-10);
    const __m256d s_term = _mm256_fmadd_pd(
        s, _mm256_add_pd(hfsq, r), _mm256_mul_pd(dk, ln2_lo));
    const __m256d inner = _mm256_sub_pd(_mm256_sub_pd(hfsq, s_term), f);
    return _mm256_fmsub_pd(dk, ln2_hi, inner);
}

#undef TNR_AVX2_INLINE

}  // namespace tnr::core::simd

#endif  // TNR_SIMD_X86_AVX2

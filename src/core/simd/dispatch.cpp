#include "core/simd/dispatch.hpp"

#include <cstdlib>
#include <cstring>

namespace tnr::core::simd {

bool avx2_compiled() noexcept {
#if TNR_SIMD_X86_AVX2
    return true;
#else
    return false;
#endif
}

bool avx2_usable() noexcept {
#if TNR_SIMD_X86_AVX2
    static const bool usable =
        __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    return usable;
#else
    return false;
#endif
}

Tier tier_from_env_string(const char* value, Tier hw_tier) noexcept {
    if (value == nullptr || *value == '\0') return hw_tier;
    if (std::strcmp(value, "off") == 0 || std::strcmp(value, "scalar") == 0 ||
        std::strcmp(value, "0") == 0) {
        return Tier::kScalar;
    }
    return hw_tier;
}

Tier default_tier() noexcept {
    static const Tier tier = tier_from_env_string(
        std::getenv("TNR_SIMD"),
        avx2_usable() ? Tier::kAvx2 : Tier::kScalar);
    return tier;
}

Tier resolve(Policy policy) noexcept {
    if (default_tier() == Tier::kScalar) return Tier::kScalar;
    return policy == Policy::kForceScalar ? Tier::kScalar : Tier::kAvx2;
}

const char* to_string(Tier tier) noexcept {
    return tier == Tier::kAvx2 ? "avx2" : "scalar";
}

int tier_index(Tier tier) noexcept {
    return tier == Tier::kAvx2 ? 1 : 0;
}

const char* tier_name(int index) noexcept {
    switch (index) {
        case 0: return "scalar";
        case 1: return "avx2";
        default: return "unknown";
    }
}

}  // namespace tnr::core::simd

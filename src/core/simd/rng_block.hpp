#pragma once
// Batched RNG facade: pre-fills blocks of uniform / unit-exponential
// variates from the deterministic stats::Rng stream so the vectorized
// transport sweeps consume draws by lane index instead of calling the
// generator mid-loop.
//
// Stream contract: every fill consumes exactly `n` raw rng.next() draws, in
// order — the facade never buffers across calls, so interleaving fills with
// direct rng use keeps the stream deterministic for a fixed seed.
//
// Value contract by tier:
//   * fill_uniform is bitwise tier-invariant: the AVX2 conversion of
//     (next() >> 11) * 2^-53 is exact, so scalar and AVX2 fills produce
//     identical doubles from identical raw draws (pinned by test_simd).
//   * fill_unit_exponential is -log(1 - u). The scalar tier computes it as
//     -log1p(-u), matching Rng::exponential(1.0) bitwise; the AVX2 tier
//     evaluates the vector log (1-u is exact for every u in [0,1), so the
//     two tiers differ only by the ~1 ulp log rounding — statistically
//     indistinguishable, which is all the AVX2 kernels promise).

#include <cstddef>

#include "core/simd/dispatch.hpp"
#include "stats/rng.hpp"

namespace tnr::core::simd {

/// out[i] = rng.uniform(), bitwise, for both tiers.
void fill_uniform(stats::Rng& rng, double* out, std::size_t n, Tier tier);

/// out[i] ~ Exp(1). Scalar tier matches rng.exponential(1.0) bitwise;
/// callers scale by 1/rate themselves.
void fill_unit_exponential(stats::Rng& rng, double* out, std::size_t n,
                           Tier tier);

}  // namespace tnr::core::simd

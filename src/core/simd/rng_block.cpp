#include "core/simd/rng_block.hpp"

#include <cmath>
#include <cstdint>

#include "core/simd/vmath_avx2.hpp"

namespace tnr::core::simd {

namespace {

void fill_uniform_scalar(stats::Rng& rng, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = rng.uniform();
}

void fill_unit_exponential_scalar(stats::Rng& rng, double* out,
                                  std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = rng.exponential(1.0);
}

#if TNR_SIMD_X86_AVX2

__attribute__((target("avx2,fma")))
void fill_unit_exponential_avx2(stats::Rng& rng, double* out, std::size_t n) {
    // Two passes: a scalar uniform fill (the xoshiro state chain is serial
    // anyway, and the scalar shift+multiply conversion is the fastest way
    // through it), then a vector -log(1-u) sweep in place. Interleaving the
    // two — 4 scalar 64-bit stores re-read as one 256-bit load — hits a
    // store-forwarding stall that costs ~3x the whole log evaluation.
    //
    // 1 - u is exact for u = m * 2^-53 (the difference is (2^53 - m) * 2^-53,
    // an integer multiple of 2^-53 below 1), so -log(1-u) only differs from
    // the scalar -log1p(-u) by the log's final rounding.
    for (std::size_t i = 0; i < n; ++i) out[i] = rng.uniform();
    std::size_t i = 0;
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d zero = _mm256_setzero_pd();
    for (; i + 4 <= n; i += 4) {
        const __m256d u = _mm256_loadu_pd(out + i);
        const __m256d l = v_log(_mm256_sub_pd(one, u));
        _mm256_storeu_pd(out + i, _mm256_sub_pd(zero, l));
    }
    for (; i < n; ++i) out[i] = -std::log1p(-out[i]);
}

#endif  // TNR_SIMD_X86_AVX2

}  // namespace

void fill_uniform(stats::Rng& rng, double* out, std::size_t n, Tier tier) {
    // One tier only: the scalar shift+multiply conversion is already the
    // fastest path through the serial xoshiro state chain (a vectorized
    // u64->double conversion was measured ~2.5x slower — the state update
    // can't vectorize, so the vector lanes just add shuffle overhead), and
    // it makes the uniform stream bitwise tier-invariant for free.
    (void)tier;
    fill_uniform_scalar(rng, out, n);
}

void fill_unit_exponential(stats::Rng& rng, double* out, std::size_t n,
                           Tier tier) {
#if TNR_SIMD_X86_AVX2
    if (tier == Tier::kAvx2) {
        fill_unit_exponential_avx2(rng, out, n);
        return;
    }
#endif
    (void)tier;
    fill_unit_exponential_scalar(rng, out, n);
}

}  // namespace tnr::core::simd

#pragma once
// Runtime SIMD dispatch for the transport hot paths.
//
// The kernels ship two implementations of every vectorizable sweep: a
// portable scalar one (the bitwise-reproducible reference) and an AVX2 one
// compiled with per-function target attributes, so the whole tree still
// builds with the default architecture flags and the binary runs on any
// x86-64. Which tier executes is decided once, at first use, from three
// kill switches layered strongest-first:
//
//   1. build:   the TNR_SIMD CMake option (OFF compiles the AVX2 units out);
//   2. env:     TNR_SIMD=off|scalar disables SIMD for one process — the CI
//      forced-scalar job and the standard debugging lever;
//   3. config:  a per-run Policy (TransportConfig::simd, the --simd flag)
//      that can force the scalar tier or request AVX2 explicitly.
//
// A stronger switch always wins: a run asking for kForceAvx2 on a host
// where the env says "off" gets the scalar tier. resolve() never throws —
// user-facing layers that want to reject an impossible explicit request
// check avx2_usable() themselves.

namespace tnr::core::simd {

/// Instruction tier a kernel actually executes.
enum class Tier { kScalar, kAvx2 };

/// Per-run preference carried in config structs (TransportConfig::simd).
enum class Policy { kAuto, kForceScalar, kForceAvx2 };

/// True when the AVX2 units were compiled in (TNR_SIMD CMake option, x86-64
/// GCC/Clang build).
bool avx2_compiled() noexcept;

/// True when the AVX2 units are compiled in and the CPU reports AVX2+FMA.
bool avx2_usable() noexcept;

/// Pure env-string parse, exposed for tests: maps a TNR_SIMD value to a
/// tier given the hardware tier. "off"/"scalar"/"0" force kScalar; any
/// other value (including "auto"/"avx2"/unset) yields `hw_tier`.
Tier tier_from_env_string(const char* value, Tier hw_tier) noexcept;

/// The process-wide tier: hardware detection filtered through the TNR_SIMD
/// environment variable. Computed once and cached.
Tier default_tier() noexcept;

/// Applies a per-run policy on top of default_tier(). kForceScalar always
/// drops to scalar; kAuto and kForceAvx2 use the default tier (the env /
/// build / CPU kill switches cannot be overridden upward).
Tier resolve(Policy policy) noexcept;

const char* to_string(Tier tier) noexcept;

/// Numeric spelling of a tier for the `simd.tier` metrics gauge (gauges
/// store doubles): kScalar -> 0, kAvx2 -> 1. tier_name() maps a stored
/// number back for display ("scalar", "avx2", or "unknown" for anything
/// out of range).
int tier_index(Tier tier) noexcept;
const char* tier_name(int index) noexcept;

}  // namespace tnr::core::simd

// Convenience feature macro for the AVX2 translation units and the gated
// method declarations: defined to 1 only when the build can emit them.
#if defined(TNR_SIMD_AVX2) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define TNR_SIMD_X86_AVX2 1
#else
#define TNR_SIMD_X86_AVX2 0
#endif

#pragma once
// Checkpoint/restart economics: turn a system's DUE rate into an optimal
// checkpoint interval and a lost-time fraction. This closes the loop the
// paper's introduction opens — "when supercomputer time is allocated, the
// checkpoint frequency may need to consider weather conditions": a rainy
// day doubles the thermal flux, raises the DUE rate, shortens the optimal
// interval and grows the waste.
//
// Uses the first-order Young/Daly model:
//   tau_opt  = sqrt(2 * C * MTBF)                 (C = checkpoint cost)
//   waste(t) = C/t + t/(2*MTBF) + R/MTBF          (R = restart cost)
// valid for C << MTBF, which holds for every scenario here.

#include <cstddef>

#include "core/fit.hpp"

namespace tnr::core {

/// System-level interruption model.
struct CheckpointParameters {
    double checkpoint_cost_s = 300.0;  ///< time to write one checkpoint.
    double restart_cost_s = 600.0;     ///< reload + recompute-to-restore.
};

struct CheckpointPlan {
    double mtbf_s = 0.0;            ///< system mean time between DUEs.
    double optimal_interval_s = 0.0;
    double waste_fraction = 0.0;    ///< lost fraction of machine time at tau_opt.

    [[nodiscard]] double efficiency() const noexcept {
        return 1.0 - waste_fraction;
    }
};

/// Young/Daly optimal checkpoint interval [s].
double daly_optimal_interval(double mtbf_s, double checkpoint_cost_s);

/// First-order waste fraction for a given interval.
double waste_fraction(double interval_s, double mtbf_s,
                      const CheckpointParameters& params);

/// Plan for a whole machine: `node_due_fit` failures per 1e9 node-hours,
/// `nodes` nodes, failures combine linearly.
CheckpointPlan plan_for_fit(double node_due_fit, std::size_t nodes,
                            const CheckpointParameters& params = {});

/// Convenience: plan from a device FIT decomposition (uses fit.total()).
CheckpointPlan plan_for_fit(const FitRate& node_due_fit, std::size_t nodes,
                            const CheckpointParameters& params = {});

}  // namespace tnr::core

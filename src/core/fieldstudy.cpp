#include "core/fieldstudy.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/error.hpp"

namespace tnr::core {

namespace {
constexpr double kDaySeconds = 86400.0;
}

std::size_t FleetLog::count(devices::ErrorType type) const {
    return static_cast<std::size_t>(
        std::count_if(events.begin(), events.end(),
                      [type](const LogEvent& e) { return e.type == type; }));
}

FleetLog simulate_fleet_log(const devices::Device& device,
                            const environment::Site& site,
                            const FleetLogConfig& config, std::uint64_t seed) {
    if (config.nodes == 0 || config.days <= 0.0 ||
        config.rain_probability < 0.0 || config.rain_probability > 1.0) {
        throw RunError::config("simulate_fleet_log: bad config");
    }
    stats::Rng rng(seed);

    // Per-node daily event rates in each weather state.
    environment::Site sunny = site;
    sunny.environment.weather = environment::Weather::kSunny;
    environment::Site rainy = site;
    rainy.environment.weather = environment::Weather::kRainy;

    const auto daily_mean = [&](const environment::Site& s,
                                devices::ErrorType type) {
        const FitRate fit = device_fit(device, type, s);
        // FIT = events / 1e9 device-hours -> events/device/day.
        return fit.total() / 1.0e9 * 24.0;
    };
    const double sdc_sunny = daily_mean(sunny, devices::ErrorType::kSdc);
    const double sdc_rainy = daily_mean(rainy, devices::ErrorType::kSdc);
    const double due_sunny = daily_mean(sunny, devices::ErrorType::kDue);
    const double due_rainy = daily_mean(rainy, devices::ErrorType::kDue);

    FleetLog log;
    log.nodes = config.nodes;
    log.days = config.days;
    const auto whole_days = static_cast<std::size_t>(config.days);
    log.rainy_day.reserve(whole_days);

    for (std::size_t day = 0; day < whole_days; ++day) {
        const bool rainy_today = rng.bernoulli(config.rain_probability);
        log.rainy_day.push_back(rainy_today);
        const double sdc_mean =
            (rainy_today ? sdc_rainy : sdc_sunny) * static_cast<double>(config.nodes);
        const double due_mean =
            (rainy_today ? due_rainy : due_sunny) * static_cast<double>(config.nodes);

        const auto emit = [&](devices::ErrorType type, double mean) {
            const std::uint64_t n = rng.poisson(mean);
            for (std::uint64_t k = 0; k < n; ++k) {
                LogEvent e;
                e.time_s = (static_cast<double>(day) + rng.uniform()) * kDaySeconds;
                e.node = static_cast<std::uint32_t>(
                    rng.uniform_index(config.nodes));
                e.type = type;
                log.events.push_back(e);
            }
        };
        emit(devices::ErrorType::kSdc, sdc_mean);
        emit(devices::ErrorType::kDue, due_mean);
    }
    std::sort(log.events.begin(), log.events.end(),
              [](const LogEvent& a, const LogEvent& b) {
                  return a.time_s < b.time_s;
              });
    return log;
}

FieldAnalysis analyze_fleet_log(const FleetLog& log) {
    if (log.nodes == 0 || log.rainy_day.empty()) {
        throw RunError::config("analyze_fleet_log: empty log");
    }
    FieldAnalysis out;
    out.rainy_days = static_cast<std::size_t>(
        std::count(log.rainy_day.begin(), log.rainy_day.end(), true));
    out.sunny_days = log.rainy_day.size() - out.rainy_days;

    std::uint64_t rainy_events = 0;
    std::uint64_t sunny_events = 0;
    for (const auto& e : log.events) {
        const auto day = static_cast<std::size_t>(e.time_s / kDaySeconds);
        if (day < log.rainy_day.size() && log.rainy_day[day]) {
            ++rainy_events;
        } else {
            ++sunny_events;
        }
    }

    const double node_days =
        static_cast<double>(log.nodes) * static_cast<double>(log.rainy_day.size());
    const double node_hours = node_days * 24.0;
    out.node_fit_sdc = static_cast<double>(log.count(devices::ErrorType::kSdc)) /
                       node_hours * 1.0e9;
    out.node_fit_due = static_cast<double>(log.count(devices::ErrorType::kDue)) /
                       node_hours * 1.0e9;

    const double sunny_exposure =
        static_cast<double>(out.sunny_days) * static_cast<double>(log.nodes);
    const double rainy_exposure =
        static_cast<double>(out.rainy_days) * static_cast<double>(log.nodes);
    if (sunny_exposure > 0.0) {
        out.sunny_events_per_node_day =
            static_cast<double>(sunny_events) / sunny_exposure;
    }
    if (rainy_exposure > 0.0) {
        out.rainy_events_per_node_day =
            static_cast<double>(rainy_events) / rainy_exposure;
    }
    if (sunny_events > 0 && rainy_exposure > 0.0) {
        out.rain_ratio = stats::poisson_rate_ratio(rainy_events, rainy_exposure,
                                                   sunny_events, sunny_exposure);
    }
    return out;
}

}  // namespace tnr::core

#include "core/fit.hpp"

#include <memory>

#include "memory/dram_config.hpp"
#include "physics/beamline_spectra.hpp"
#include "physics/spectrum.hpp"
#include "physics/units.hpp"

namespace tnr::core {

namespace {

/// Reference spectra used to express field sensitivities. They are cached:
/// the atmospheric shape for the HE channel (unit scale; we normalize by its
/// >10 MeV flux) and a room-temperature Maxwellian for the thermal channel.
const physics::Spectrum& atmospheric_reference() {
    static const physics::AtmosphericSpectrum spectrum(1.0);
    return spectrum;
}

const physics::Spectrum& thermal_reference() {
    static const physics::MaxwellianSpectrum spectrum(
        1.0, physics::kThermalReferenceEv);
    return spectrum;
}

}  // namespace

FitRate device_fit(const devices::Device& device, devices::ErrorType type,
                   const environment::Site& site) {
    FitRate fit;

    // HE channel: sensitivity quoted per >10 MeV fluence (JESD89A), so the
    // field rate is sigma_he x Phi_he(site).
    const auto& he = device.high_energy_response(type);
    const double sigma_he =
        he.event_rate(atmospheric_reference()) /
        atmospheric_reference().high_energy_flux();
    fit.high_energy =
        sigma_he * site.high_energy_flux() * physics::kHoursPerBillion;

    // Thermal channel: folded over the ambient Maxwellian, times the
    // environment-adjusted thermal flux.
    const auto& th = device.thermal_response(type);
    const double sigma_th = th.folded(thermal_reference());
    fit.thermal = sigma_th * site.thermal_flux() * physics::kHoursPerBillion;

    return fit;
}

double dram_thermal_fit(const memory::DramConfig& config,
                        const environment::Site& site) {
    // Per-Gbit cross sections in the config are quoted against the ROTAX
    // thermal beam, which shares the field Maxwellian's shape, so they apply
    // directly to the ambient thermal flux.
    double sigma_module = 0.0;
    for (std::size_t c = 0; c < memory::kFaultCategoryCount; ++c) {
        sigma_module +=
            config.sigma_module(static_cast<memory::FaultCategory>(c));
    }
    return sigma_module * site.thermal_flux() * physics::kHoursPerBillion;
}

std::vector<FleetFitRow> fleet_dram_fit(
    const std::vector<environment::Site>& sites) {
    std::vector<FleetFitRow> rows;
    rows.reserve(sites.size());
    for (const auto& site : sites) {
        const memory::DramConfig module =
            site.dram_generation == environment::DramGeneration::kDdr3
                ? memory::ddr3_module()
                : memory::ddr4_module();
        FleetFitRow row;
        row.system = site.system_name;
        row.capacity_gbit = site.dram_capacity_gbit;
        row.thermal_flux = site.thermal_flux();
        // Per-Gbit sigma x fleet capacity x flux.
        row.fit = module.sigma_total_per_gbit() * site.dram_capacity_gbit *
                  site.thermal_flux() * physics::kHoursPerBillion;
        rows.push_back(row);
    }
    return rows;
}

}  // namespace tnr::core

#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tnr::core {

std::string format_scientific(double x, int digits) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*e", digits, x);
    return buffer;
}

std::string format_percent(double fraction, int digits) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f%%", digits, fraction * 100.0);
    return buffer;
}

std::string format_fixed(double x, int digits) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", digits, x);
    return buffer;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    if (headers_.empty()) {
        throw std::invalid_argument("TablePrinter: no headers");
    }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("TablePrinter: row arity mismatch");
    }
    rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
        for (const auto& row : rows_) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    const auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size()) {
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
            }
        }
        os << '\n';
    };
    print_row(headers_);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::to_string() const {
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string csv_escape(const std::string& field) {
    const bool needs_quoting =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting) return field;
    std::string out = "\"";
    for (const char c : field) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void TablePrinter::print_csv(std::ostream& os) const {
    const auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << csv_escape(cells[c]);
            if (c + 1 < cells.size()) os << ',';
        }
        os << '\n';
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
}

}  // namespace tnr::core

#pragma once
// Reproducibility manifest for one run: everything needed to re-run the
// exact same computation (seed, thread count, flags, build identity) plus
// what it cost (elapsed wall time). Written as JSON alongside the results,
// embedded in metrics snapshots, or standalone via --manifest-out.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace tnr::core::obs {

/// The build identity: `git describe --always --dirty` captured at
/// configure time, falling back to the project version when the source tree
/// is not a git checkout.
std::string build_version();

struct RunManifest {
    std::string tool = "tnr";
    std::string version = build_version();
    std::string command;  ///< the full command line, argv joined.
    std::uint64_t seed = 0;
    unsigned threads = 1;
    double elapsed_s = 0.0;
    std::string started_at_utc;  ///< ISO 8601, from current_utc_timestamp().
    /// Every parsed flag, verbatim (boolean flags carry an empty value).
    std::vector<std::pair<std::string, std::string>> flags;
    /// How the run ended: "ok" or "cancelled" (SIGINT). Failed runs never
    /// get a manifest written for them beyond the sinks' best effort.
    std::string status = "ok";
    /// Isolated device failures ("<device>: <what> (attempt N)") — a run
    /// that lost devices still reports them in its reproducibility record.
    std::vector<std::string> failures;
    /// Run-mode summary statistics (the serve engine reports requests,
    /// cache hits, …); empty for one-shot commands. Written as a "stats"
    /// object of numbers.
    std::vector<std::pair<std::string, double>> stats;

    void write_json(std::ostream& out) const;
    [[nodiscard]] std::string to_json() const;
};

/// "YYYY-MM-DDTHH:MM:SSZ" for the current wall-clock time.
std::string current_utc_timestamp();

}  // namespace tnr::core::obs

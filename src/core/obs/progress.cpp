#include "core/obs/progress.hpp"

#include <cstdio>
#include <ostream>

namespace tnr::core::obs {

ProgressMeter::ProgressMeter(std::ostream* sink, std::string label,
                             std::string unit, std::size_t total)
    : sink_(sink),
      label_(std::move(label)),
      unit_(std::move(unit)),
      total_(total),
      start_(std::chrono::steady_clock::now()),
      last_report_(start_) {}

void ProgressMeter::tick(std::size_t delta) {
    if (!sink_) return;
    const std::lock_guard lock(mutex_);
    done_ += delta;
    const auto now = std::chrono::steady_clock::now();
    if (now - start_ < kFirstReportAfter) return;
    if (done_ < total_ && now - last_report_ < kMinInterval) return;
    last_report_ = now;
    print_locked(false);
}

void ProgressMeter::finish() {
    if (!sink_) return;
    const std::lock_guard lock(mutex_);
    if (!printed_any_ || finished_) return;
    print_locked(true);
}

void ProgressMeter::print_locked(bool final_line) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    char buf[160];
    if (final_line || done_ >= total_) {
        std::snprintf(buf, sizeof(buf), "%s: %zu/%zu %s done in %.1f s",
                      label_.c_str(), done_, total_, unit_.c_str(), elapsed);
        finished_ = true;
    } else {
        const double eta =
            done_ > 0 ? elapsed / static_cast<double>(done_) *
                            static_cast<double>(total_ - done_)
                      : 0.0;
        const int pct =
            total_ > 0 ? static_cast<int>(100.0 * static_cast<double>(done_) /
                                          static_cast<double>(total_))
                       : 0;
        std::snprintf(buf, sizeof(buf),
                      "%s: %zu/%zu %s (%d%%), elapsed %.1f s, eta %.1f s",
                      label_.c_str(), done_, total_, unit_.c_str(), pct,
                      elapsed, eta);
    }
    *sink_ << buf << '\n';
    sink_->flush();
    printed_any_ = true;
}

}  // namespace tnr::core::obs

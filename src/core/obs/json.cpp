#include "core/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tnr::core::obs::json {

std::string escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string number(double v) {
    if (!std::isfinite(v)) return "0";
    // %.17g round-trips every double; trim to something readable when the
    // shorter form parses back exactly.
    char buf[64];
    for (const int prec : {6, 9, 12, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v) break;
    }
    return buf;
}

const Value* Value::find(std::string_view key) const noexcept {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
        if (k == key) return &v;
    }
    return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<Value> run() {
        Value v;
        if (!parse_value(v, 0)) return std::nullopt;
        skip_ws();
        if (pos_ != text_.size()) return std::nullopt;  // trailing garbage.
        return v;
    }

private:
    static constexpr int kMaxDepth = 64;

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool eat(char c) {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    bool parse_string(std::string& out) {
        if (!eat('"')) return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (c == '\\') {
                if (pos_ >= text_.size()) return false;
                const char e = text_[pos_++];
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        if (pos_ + 4 > text_.size()) return false;
                        unsigned code = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = text_[pos_++];
                            code <<= 4;
                            if (h >= '0' && h <= '9') {
                                code |= static_cast<unsigned>(h - '0');
                            } else if (h >= 'a' && h <= 'f') {
                                code |= static_cast<unsigned>(h - 'a' + 10);
                            } else if (h >= 'A' && h <= 'F') {
                                code |= static_cast<unsigned>(h - 'A' + 10);
                            } else {
                                return false;
                            }
                        }
                        // Validation-grade handling: escaped BMP code points
                        // are appended as UTF-8; surrogate pairs are not
                        // recombined (the writers never emit them).
                        if (code < 0x80) {
                            out += static_cast<char>(code);
                        } else if (code < 0x800) {
                            out += static_cast<char>(0xC0 | (code >> 6));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        } else {
                            out += static_cast<char>(0xE0 | (code >> 12));
                            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        }
                        break;
                    }
                    default: return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false;  // raw control character.
            } else {
                out += c;
            }
        }
        return false;  // unterminated.
    }

    bool parse_number(double& out) {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            return false;
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                return false;
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                return false;
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        const std::string token(text_.substr(start, pos_ - start));
        out = std::strtod(token.c_str(), nullptr);
        return true;
    }

    bool parse_value(Value& out, int depth) {  // NOLINT(misc-no-recursion)
        if (depth > kMaxDepth) return false;
        skip_ws();
        if (pos_ >= text_.size()) return false;
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = Value::Kind::kObject;
            if (eat('}')) return true;
            for (;;) {
                skip_ws();
                std::string key;
                if (!parse_string(key)) return false;
                if (!eat(':')) return false;
                Value member;
                if (!parse_value(member, depth + 1)) return false;
                out.object.emplace_back(std::move(key), std::move(member));
                if (eat(',')) continue;
                return eat('}');
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = Value::Kind::kArray;
            if (eat(']')) return true;
            for (;;) {
                Value item;
                if (!parse_value(item, depth + 1)) return false;
                out.array.push_back(std::move(item));
                if (eat(',')) continue;
                return eat(']');
            }
        }
        if (c == '"') {
            out.kind = Value::Kind::kString;
            return parse_string(out.str);
        }
        if (c == 't') {
            out.kind = Value::Kind::kBool;
            out.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = Value::Kind::kBool;
            out.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = Value::Kind::kNull;
            return literal("null");
        }
        out.kind = Value::Kind::kNumber;
        return parse_number(out.num);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
    return Parser(text).run();
}

}  // namespace tnr::core::obs::json

#pragma once
// Minimal JSON support for the observability sinks: string escaping for the
// writers (metrics snapshots, Chrome traces, run manifests) and a small
// recursive-descent parser used to validate those sinks in tests and CI.
// This is deliberately not a general-purpose JSON library — no comments, no
// NaN/Inf extensions, UTF-8 passed through untouched.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tnr::core::obs::json {

/// Escapes a string for embedding inside JSON double quotes (no surrounding
/// quotes added): `"`, `\`, and every control character U+0000–U+001F (the
/// RFC 8259 set — named escapes where they exist, \u00XX otherwise). The
/// serve layer echoes client-supplied request ids through this, so arbitrary
/// bytes must round-trip through escape() -> parse().
std::string escape(std::string_view s);

/// Formats a double the way the sinks expect: finite values via
/// std::to_chars-style shortest round-trip; NaN/Inf (not representable in
/// JSON) become 0.
std::string number(double v);

/// A parsed JSON value. Objects keep insertion order (the writers emit
/// sorted keys, so lookups stay deterministic either way).
class Value {
public:
    enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double num = 0.0;
    std::string str;
    std::vector<std::pair<std::string, Value>> object;
    std::vector<Value> array;

    [[nodiscard]] bool is_object() const noexcept {
        return kind == Kind::kObject;
    }
    [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
    [[nodiscard]] bool is_number() const noexcept {
        return kind == Kind::kNumber;
    }
    [[nodiscard]] bool is_string() const noexcept {
        return kind == Kind::kString;
    }

    /// First member with the given key, or nullptr (objects only).
    [[nodiscard]] const Value* find(std::string_view key) const noexcept;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Returns nullopt on any syntax error.
std::optional<Value> parse(std::string_view text);

}  // namespace tnr::core::obs::json

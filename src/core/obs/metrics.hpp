#pragma once
// Process-wide metrics registry: named counters, gauges, and latency
// histograms behind one thread-safe table.
//
// Cost model (the contract the tier-1 timings rely on):
//   * Counter::add / Gauge::set are single relaxed atomics — safe to leave
//     in hot paths permanently, sink or no sink;
//   * LatencyHistogram::record_ns takes a mutex — call it at task/span
//     granularity (a pool task, a transport run), never per collision;
//   * Registry::counter(name) takes the registry mutex — call sites cache
//     the returned reference (e.g. in a function-local static). References
//     stay valid forever: the registry never erases entries, reset() only
//     zeroes values.
//
// A snapshot serializes every instrument to JSON; nothing is written
// anywhere unless a caller asks for the snapshot (the CLI's --metrics-out).

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "stats/histogram.hpp"

namespace tnr::core::obs {

/// Monotonic event count.
class Counter {
public:
    void add(std::uint64_t delta = 1) noexcept {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written (set) or high-water (update_max) measurement.
class Gauge {
public:
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    void update_max(double v) noexcept {
        double cur = value_.load(std::memory_order_relaxed);
        while (v > cur && !value_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Latency distribution on a log grid (stats::Histogram, 8 bins/decade over
/// 100 ns .. 1000 s) plus exact count/total/min/max.
class LatencyHistogram {
public:
    LatencyHistogram();

    void record_ns(std::uint64_t ns);

    struct Summary {
        std::uint64_t count = 0;
        double total_ns = 0.0;
        double mean_ns = 0.0;
        double min_ns = 0.0;
        double max_ns = 0.0;
        double p50_ns = 0.0;  ///< from the log grid: geometric bin centers.
        double p90_ns = 0.0;
        double p99_ns = 0.0;
    };
    [[nodiscard]] Summary summary() const;

    void reset();

private:
    [[nodiscard]] double quantile_locked(double q) const;

    mutable std::mutex mutex_;
    stats::Histogram hist_;
    std::uint64_t count_ = 0;
    double total_ns_ = 0.0;
    double min_ns_ = 0.0;
    double max_ns_ = 0.0;
};

/// The process-wide instrument table. Lookup by name creates on first use;
/// instruments live for the life of the process.
class Registry {
public:
    /// The global registry. Construct-on-first-use; subsystems that record
    /// from worker threads (the ThreadPool) touch it in their constructors
    /// so it outlives them at static destruction.
    static Registry& global();

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    LatencyHistogram& latency(const std::string& name);

    /// One JSON object:
    ///   {"counters":{...},"gauges":{...},
    ///    "latencies":{name:{count,mean_ns,p50_ns,...}}}
    /// Keys are sorted; numbers round-trip.
    void write_json(std::ostream& out) const;
    [[nodiscard]] std::string to_json() const;

    /// Zeroes every instrument without invalidating references (tests).
    void reset();

private:
    Registry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> latencies_;
};

/// RAII wall-clock timer: always measures (two steady_clock reads), records
/// into a LatencyHistogram and optionally accumulates nanoseconds into a
/// Counter on destruction. For always-on task-granularity timing.
class ScopedTimer {
public:
    explicit ScopedTimer(LatencyHistogram& hist,
                         Counter* total_ns = nullptr) noexcept;
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    LatencyHistogram& hist_;
    Counter* total_ns_;
    std::uint64_t start_ns_;
};

}  // namespace tnr::core::obs

#pragma once
// Process-wide metrics registry: named counters, gauges, and latency
// histograms behind one thread-safe table.
//
// Cost model (the contract the tier-1 timings rely on):
//   * Counter::add / Gauge::set are single relaxed atomics — safe to leave
//     in hot paths permanently, sink or no sink;
//   * LatencyHistogram::record_ns takes a mutex — call it at task/span
//     granularity (a pool task, a transport run, a serve request), never
//     per collision;
//   * Registry::counter(name) takes the registry mutex — call sites cache
//     the returned reference (e.g. in a function-local static). References
//     stay valid forever: the registry never erases entries, reset() only
//     zeroes values.
//
// Instrument *families* are spelled as dotted names with a sorted label
// suffix — `labeled("serve.request", {{"method","fit"},{"cache","hit"}})`
// yields the registry key `serve.request{cache=hit,method=fit}` — so one
// logical family fans out into per-label instruments without a separate
// label store, and the Prometheus writer can recover the labels from the
// name.
//
// Snapshots come in three shapes, all pull-based (nothing is written
// anywhere unless a caller asks):
//   * write_json — the full point-in-time snapshot (--metrics-out);
//   * write_prometheus — the same instruments in Prometheus v0.0.4 text
//     exposition (counters, gauges, latency summaries);
//   * snapshot_delta — windowed counter deltas ("req/s over the last 10 s")
//     computed against a per-instrument ring of timestamped samples, so
//     live rates never require resetting a counter.

#include <atomic>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "stats/histogram.hpp"

namespace tnr::core::obs {

/// Monotonic event count.
class Counter {
public:
    void add(std::uint64_t delta = 1) noexcept {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written (set) or high-water (update_max) measurement.
class Gauge {
public:
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    void update_max(double v) noexcept {
        double cur = value_.load(std::memory_order_relaxed);
        while (v > cur && !value_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Latency distribution on a log grid (stats::Histogram, 8 bins/decade over
/// 100 ns .. 1000 s) plus exact count/total/min/max.
class LatencyHistogram {
public:
    LatencyHistogram();

    void record_ns(std::uint64_t ns);

    struct Summary {
        std::uint64_t count = 0;
        double total_ns = 0.0;
        double mean_ns = 0.0;
        double min_ns = 0.0;
        double max_ns = 0.0;
        double p50_ns = 0.0;  ///< from the log grid: geometric bin centers.
        double p90_ns = 0.0;
        double p99_ns = 0.0;
    };
    [[nodiscard]] Summary summary() const;

    void reset();

private:
    [[nodiscard]] double quantile_locked(double q) const;

    mutable std::mutex mutex_;
    stats::Histogram hist_;
    std::uint64_t count_ = 0;
    double total_ns_ = 0.0;
    double min_ns_ = 0.0;
    double max_ns_ = 0.0;
};

/// One label of a family instrument.
struct Label {
    std::string_view key;
    std::string_view value;
};

/// The canonical spelling of one instrument of a labeled family:
/// `labeled("serve.request", {{"method","fit"},{"cache","hit"}})` returns
/// `serve.request{cache=hit,method=fit}`. Labels are sorted by key, so the
/// spelling — and therefore the registry slot — is independent of call-site
/// label order. Keys and values must not contain `{`, `}`, `,`, `=` or `"`
/// (names, not free text).
[[nodiscard]] std::string labeled(std::string_view family,
                                  std::initializer_list<Label> labels);

/// Windowed change of one counter, from snapshot_delta.
struct CounterDelta {
    std::uint64_t delta = 0;   ///< value now minus value at the window edge.
    double window_s = 0.0;     ///< the span actually covered for this counter.
    double rate_per_s = 0.0;   ///< delta / window_s (0 for an empty window).
};

/// One windowed view over every counter; see Registry::snapshot_delta.
struct DeltaSnapshot {
    double window_s = 0.0;  ///< the widest span actually covered.
    std::map<std::string, CounterDelta> counters;

    /// The delta for `name`, or a zero delta if the counter is unknown.
    [[nodiscard]] CounterDelta get(const std::string& name) const;
};

/// The process-wide instrument table. Lookup by name creates on first use;
/// instruments live for the life of the process.
class Registry {
public:
    /// The global registry. Construct-on-first-use; subsystems that record
    /// from worker threads (the ThreadPool) touch it in their constructors
    /// so it outlives them at static destruction.
    static Registry& global();

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    LatencyHistogram& latency(const std::string& name);

    /// One JSON object:
    ///   {"counters":{...},"gauges":{...},
    ///    "latencies":{name:{count,mean_ns,p50_ns,...}}}
    /// Keys are sorted; numbers round-trip.
    void write_json(std::ostream& out) const;
    [[nodiscard]] std::string to_json() const;

    /// Prometheus v0.0.4 text exposition of the same instruments: counters
    /// and gauges as single samples, latency histograms as summaries
    /// (quantile 0.5/0.9/0.99 plus _sum/_count, in seconds). Dotted names
    /// become underscore names; a `{k=v,...}` family suffix becomes a
    /// Prometheus label set, one `# TYPE` line per family. No trailing
    /// whitespace, trailing newline terminated.
    void write_prometheus(std::ostream& out) const;
    [[nodiscard]] std::string to_prometheus() const;

    /// Counter deltas over (up to) the last `window_s` seconds, without
    /// resetting anything. Each call stamps the current value of every
    /// counter into a bounded per-instrument ring and differences the live
    /// values against the newest retained sample at least `window_s` old —
    /// falling back to the oldest retained sample, then to the instrument's
    /// creation (value 0). Callers that poll (the serve `stats` method,
    /// `tnr stats --watch`) therefore get honest rates whose covered span
    /// is reported per counter.
    [[nodiscard]] DeltaSnapshot snapshot_delta(double window_s);

    /// Zeroes every instrument without invalidating references (tests).
    /// Also drops the windowed-sample rings.
    void reset();

private:
    Registry() = default;

    /// A counter plus its ring of (steady_ns, value) samples for
    /// snapshot_delta. The ring is only touched under the registry mutex.
    struct CounterSlot {
        std::unique_ptr<Counter> counter;
        std::uint64_t created_ns = 0;
        std::deque<std::pair<std::uint64_t, std::uint64_t>> ring;
    };

    mutable std::mutex mutex_;
    std::map<std::string, CounterSlot> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> latencies_;
};

/// RAII wall-clock timer: always measures (two steady_clock reads), records
/// into a LatencyHistogram and optionally accumulates nanoseconds into a
/// Counter on destruction. For always-on task-granularity timing.
class ScopedTimer {
public:
    explicit ScopedTimer(LatencyHistogram& hist,
                         Counter* total_ns = nullptr) noexcept;
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    LatencyHistogram& hist_;
    Counter* total_ns_;
    std::uint64_t start_ns_;
};

}  // namespace tnr::core::obs

#include "core/obs/trace.hpp"

#include <chrono>
#include <ostream>
#include <sstream>

#include "core/obs/json.hpp"

namespace tnr::core::obs {

namespace {

std::chrono::steady_clock::time_point tracer_epoch() noexcept {
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

}  // namespace

Tracer& Tracer::global() {
    static Tracer tracer;
    tracer_epoch();  // pin the epoch no later than first tracer use.
    return tracer;
}

double Tracer::now_us() noexcept {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - tracer_epoch())
        .count();
}

std::uint32_t Tracer::thread_id() noexcept {
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void Tracer::record_complete(std::string name, const char* cat, double ts_us,
                             double dur_us) {
    Event ev{std::move(name), cat, ts_us, dur_us, thread_id()};
    const std::lock_guard lock(mutex_);
    events_.push_back(std::move(ev));
}

std::size_t Tracer::event_count() const {
    const std::lock_guard lock(mutex_);
    return events_.size();
}

void Tracer::clear() {
    const std::lock_guard lock(mutex_);
    events_.clear();
}

void Tracer::write_json(std::ostream& out) const {
    const std::lock_guard lock(mutex_);
    out << "{\"traceEvents\":[";
    bool first = true;
    for (const auto& ev : events_) {
        if (!first) out << ',';
        first = false;
        out << "{\"name\":\"" << json::escape(ev.name) << "\",\"cat\":\""
            << json::escape(ev.cat) << "\",\"ph\":\"X\",\"ts\":"
            << json::number(ev.ts_us) << ",\"dur\":" << json::number(ev.dur_us)
            << ",\"pid\":1,\"tid\":" << ev.tid << '}';
    }
    out << "],\"displayTimeUnit\":\"ms\"}";
}

std::string Tracer::to_json() const {
    std::ostringstream oss;
    write_json(oss);
    return oss.str();
}

}  // namespace tnr::core::obs

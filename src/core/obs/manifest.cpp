#include "core/obs/manifest.hpp"

#include <ctime>
#include <ostream>
#include <sstream>

#include "core/obs/json.hpp"

namespace tnr::core::obs {

std::string build_version() {
#ifdef TNR_GIT_DESCRIBE
    return TNR_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

std::string current_utc_timestamp() {
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

void RunManifest::write_json(std::ostream& out) const {
    out << "{\"tool\":\"" << json::escape(tool) << "\",\"version\":\""
        << json::escape(version) << "\",\"command\":\"" << json::escape(command)
        << "\",\"seed\":" << seed << ",\"threads\":" << threads
        << ",\"elapsed_s\":" << json::number(elapsed_s)
        << ",\"started_at\":\"" << json::escape(started_at_utc)
        << "\",\"status\":\"" << json::escape(status) << "\",\"flags\":{";
    bool first = true;
    for (const auto& [key, value] : flags) {
        if (!first) out << ',';
        first = false;
        out << '"' << json::escape(key) << "\":\"" << json::escape(value)
            << '"';
    }
    out << "},\"failures\":[";
    first = true;
    for (const auto& f : failures) {
        if (!first) out << ',';
        first = false;
        out << '"' << json::escape(f) << '"';
    }
    out << "],\"stats\":{";
    first = true;
    for (const auto& [key, value] : stats) {
        if (!first) out << ',';
        first = false;
        out << '"' << json::escape(key) << "\":" << json::number(value);
    }
    out << "}}";
}

std::string RunManifest::to_json() const {
    std::ostringstream oss;
    write_json(oss);
    return oss.str();
}

}  // namespace tnr::core::obs

#pragma once
// Scoped tracing with a Chrome trace_event JSON sink.
//
// A Span is an RAII region: when the global Tracer is enabled at
// construction it reads the clock twice and appends one complete ("ph":"X")
// event; when disabled the constructor is a single relaxed atomic load and
// nothing else happens — spans are safe to leave in the Monte Carlo call
// tree permanently. The resulting file loads directly in chrome://tracing
// and https://ui.perfetto.dev.
//
// Timestamps are microseconds on the steady clock, zeroed at the first use
// of the tracer; thread ids are small dense integers assigned per thread in
// first-use order (the main thread is usually 0, pool workers follow).

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace tnr::core::obs {

class Tracer {
public:
    static Tracer& global();

    void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
    void disable() noexcept {
        enabled_.store(false, std::memory_order_relaxed);
    }
    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Appends one complete event. `cat` must be a string literal (stored by
    /// pointer); `name` is copied.
    void record_complete(std::string name, const char* cat, double ts_us,
                         double dur_us);

    [[nodiscard]] std::size_t event_count() const;

    /// Drops all recorded events (tests, or between runs).
    void clear();

    /// {"traceEvents":[...],"displayTimeUnit":"ms"} — the JSON object
    /// format, which Perfetto and chrome://tracing both accept.
    void write_json(std::ostream& out) const;
    [[nodiscard]] std::string to_json() const;

    /// Microseconds since the tracer epoch (steady clock).
    static double now_us() noexcept;

    /// Dense id of the calling thread, assigned on first use.
    static std::uint32_t thread_id() noexcept;

private:
    Tracer() = default;

    struct Event {
        std::string name;
        const char* cat;
        double ts_us;
        double dur_us;
        std::uint32_t tid;
    };

    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::vector<Event> events_;
};

/// RAII traced region. Near-zero cost when tracing is disabled: one relaxed
/// load, no clock reads, no allocation.
class Span {
public:
    /// Static-name span (hot paths).
    explicit Span(const char* name, const char* cat = "tnr") {
        if (Tracer::global().enabled()) begin(name, cat);
    }
    /// Dynamic-name span (e.g. one per campaign device). The string is only
    /// copied when tracing is enabled.
    Span(const std::string& name, const char* cat) {
        if (Tracer::global().enabled()) begin(name, cat);
    }
    ~Span() {
        if (active_) {
            Tracer::global().record_complete(std::move(name_), cat_, start_us_,
                                             Tracer::now_us() - start_us_);
        }
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    void begin(std::string name, const char* cat) {
        active_ = true;
        name_ = std::move(name);
        cat_ = cat;
        start_us_ = Tracer::now_us();
    }

    bool active_ = false;
    std::string name_;
    const char* cat_ = "";
    double start_us_ = 0.0;
};

}  // namespace tnr::core::obs

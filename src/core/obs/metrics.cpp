#include "core/obs/metrics.hpp"

#include <chrono>
#include <ostream>
#include <sstream>

#include "core/obs/json.hpp"

namespace tnr::core::obs {

namespace {

std::uint64_t steady_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

// 8 bins/decade keeps quantile estimates within ~15% (half a bin ratio),
// plenty for "where does the time go" questions.
stats::Histogram latency_grid() {
    return stats::Histogram::logarithmic(1e2, 1e12, 80);  // 100 ns .. 1000 s.
}

}  // namespace

LatencyHistogram::LatencyHistogram() : hist_(latency_grid()) {}

void LatencyHistogram::record_ns(std::uint64_t ns) {
    const auto v = static_cast<double>(ns);
    const std::lock_guard lock(mutex_);
    hist_.add(v);
    ++count_;
    total_ns_ += v;
    if (count_ == 1 || v < min_ns_) min_ns_ = v;
    if (v > max_ns_) max_ns_ = v;
}

double LatencyHistogram::quantile_locked(double q) const {
    const double target = q * static_cast<double>(count_);
    double cum = hist_.underflow();
    if (cum >= target) return min_ns_;
    for (std::size_t i = 0; i < hist_.bin_count(); ++i) {
        cum += hist_.count(i);
        if (cum >= target) return hist_.bin_center_geometric(i);
    }
    return max_ns_;
}

LatencyHistogram::Summary LatencyHistogram::summary() const {
    const std::lock_guard lock(mutex_);
    Summary s;
    s.count = count_;
    if (count_ == 0) return s;
    s.total_ns = total_ns_;
    s.mean_ns = total_ns_ / static_cast<double>(count_);
    s.min_ns = min_ns_;
    s.max_ns = max_ns_;
    s.p50_ns = quantile_locked(0.50);
    s.p90_ns = quantile_locked(0.90);
    s.p99_ns = quantile_locked(0.99);
    return s;
}

void LatencyHistogram::reset() {
    const std::lock_guard lock(mutex_);
    hist_.reset();
    count_ = 0;
    total_ns_ = 0.0;
    min_ns_ = 0.0;
    max_ns_ = 0.0;
}

Registry& Registry::global() {
    static Registry registry;
    return registry;
}

Counter& Registry::counter(const std::string& name) {
    const std::lock_guard lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
    const std::lock_guard lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

LatencyHistogram& Registry::latency(const std::string& name) {
    const std::lock_guard lock(mutex_);
    auto& slot = latencies_[name];
    if (!slot) slot = std::make_unique<LatencyHistogram>();
    return *slot;
}

void Registry::write_json(std::ostream& out) const {
    const std::lock_guard lock(mutex_);
    out << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        if (!first) out << ',';
        first = false;
        out << '"' << json::escape(name) << "\":" << c->value();
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
        if (!first) out << ',';
        first = false;
        out << '"' << json::escape(name) << "\":" << json::number(g->value());
    }
    out << "},\"latencies\":{";
    first = true;
    for (const auto& [name, h] : latencies_) {
        if (!first) out << ',';
        first = false;
        const auto s = h->summary();
        out << '"' << json::escape(name) << "\":{\"count\":" << s.count
            << ",\"total_ns\":" << json::number(s.total_ns)
            << ",\"mean_ns\":" << json::number(s.mean_ns)
            << ",\"min_ns\":" << json::number(s.min_ns)
            << ",\"max_ns\":" << json::number(s.max_ns)
            << ",\"p50_ns\":" << json::number(s.p50_ns)
            << ",\"p90_ns\":" << json::number(s.p90_ns)
            << ",\"p99_ns\":" << json::number(s.p99_ns) << '}';
    }
    out << "}}";
}

std::string Registry::to_json() const {
    std::ostringstream oss;
    write_json(oss);
    return oss.str();
}

void Registry::reset() {
    const std::lock_guard lock(mutex_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : latencies_) h->reset();
}

ScopedTimer::ScopedTimer(LatencyHistogram& hist, Counter* total_ns) noexcept
    : hist_(hist), total_ns_(total_ns), start_ns_(steady_ns()) {}

ScopedTimer::~ScopedTimer() {
    const std::uint64_t elapsed = steady_ns() - start_ns_;
    hist_.record_ns(elapsed);
    if (total_ns_) total_ns_->add(elapsed);
}

}  // namespace tnr::core::obs

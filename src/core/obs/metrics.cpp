#include "core/obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/obs/json.hpp"

namespace tnr::core::obs {

namespace {

std::uint64_t steady_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

// 8 bins/decade keeps quantile estimates within ~15% (half a bin ratio),
// plenty for "where does the time go" questions.
stats::Histogram latency_grid() {
    return stats::Histogram::logarithmic(1e2, 1e12, 80);  // 100 ns .. 1000 s.
}

// Samples retained per counter for snapshot_delta. At the fastest sensible
// poll cadence (one per second from a watch client) this covers a couple of
// minutes of history; a 10 s window needs only ~11 of them.
constexpr std::size_t kRingCapacity = 128;

// Prometheus metric names allow [a-zA-Z0-9_:] only; everything else (the
// dots in our registry spelling, mostly) becomes an underscore.
std::string prom_name(std::string_view raw) {
    std::string out;
    out.reserve(raw.size() + 1);
    for (const char c : raw) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
        out.insert(out.begin(), '_');
    }
    return out;
}

std::string prom_label_value(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        if (c == '\\' || c == '"') out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

// One registry key split into its Prometheus spelling: the mangled family
// name plus a rendered `{k="v",...}` block when the key carries a
// `{k=v,...}` suffix (see obs::labeled).
struct PromKey {
    std::string name;
    std::string labels;  // "" or "{k=\"v\",...}"
};

PromKey prom_key(const std::string& key) {
    const auto brace = key.find('{');
    if (brace == std::string::npos || key.back() != '}') {
        return {prom_name(key), ""};
    }
    PromKey out{prom_name(key.substr(0, brace)), "{"};
    const std::string_view body(key.data() + brace + 1,
                                key.size() - brace - 2);
    std::size_t pos = 0;
    bool first = true;
    while (pos < body.size()) {
        auto comma = body.find(',', pos);
        if (comma == std::string_view::npos) comma = body.size();
        const auto item = body.substr(pos, comma - pos);
        const auto eq = item.find('=');
        const auto label_key = eq == std::string_view::npos
                                   ? item
                                   : item.substr(0, eq);
        const auto label_value = eq == std::string_view::npos
                                     ? std::string_view{}
                                     : item.substr(eq + 1);
        if (!first) out.labels += ',';
        first = false;
        out.labels += prom_name(label_key);
        out.labels += "=\"";
        out.labels += prom_label_value(label_value);
        out.labels += '"';
        pos = comma + 1;
    }
    out.labels += '}';
    return out;
}

// Sample lines grouped per Prometheus family so each family is emitted as
// one contiguous block under a single `# TYPE` line (the registry map is
// sorted by full key, which interleaves `serve.request{...}` with
// `serve.requests`).
using FamilyBlocks =
    std::map<std::string, std::pair<const char*, std::vector<std::string>>>;

void add_sample(FamilyBlocks& blocks, const char* type,
                const std::string& family, std::string line) {
    auto& slot = blocks[family];
    if (!slot.first) slot.first = type;
    slot.second.push_back(std::move(line));
}

}  // namespace

LatencyHistogram::LatencyHistogram() : hist_(latency_grid()) {}

void LatencyHistogram::record_ns(std::uint64_t ns) {
    const auto v = static_cast<double>(ns);
    const std::lock_guard lock(mutex_);
    hist_.add(v);
    ++count_;
    total_ns_ += v;
    if (count_ == 1 || v < min_ns_) min_ns_ = v;
    if (v > max_ns_) max_ns_ = v;
}

double LatencyHistogram::quantile_locked(double q) const {
    const double target = q * static_cast<double>(count_);
    double cum = hist_.underflow();
    if (cum >= target) return min_ns_;
    for (std::size_t i = 0; i < hist_.bin_count(); ++i) {
        cum += hist_.count(i);
        if (cum >= target) return hist_.bin_center_geometric(i);
    }
    return max_ns_;
}

LatencyHistogram::Summary LatencyHistogram::summary() const {
    const std::lock_guard lock(mutex_);
    Summary s;
    s.count = count_;
    if (count_ == 0) return s;
    s.total_ns = total_ns_;
    s.mean_ns = total_ns_ / static_cast<double>(count_);
    s.min_ns = min_ns_;
    s.max_ns = max_ns_;
    s.p50_ns = quantile_locked(0.50);
    s.p90_ns = quantile_locked(0.90);
    s.p99_ns = quantile_locked(0.99);
    return s;
}

void LatencyHistogram::reset() {
    const std::lock_guard lock(mutex_);
    hist_.reset();
    count_ = 0;
    total_ns_ = 0.0;
    min_ns_ = 0.0;
    max_ns_ = 0.0;
}

std::string labeled(std::string_view family,
                    std::initializer_list<Label> labels) {
    if (labels.size() == 0) return std::string(family);
    std::vector<Label> sorted(labels);
    std::sort(sorted.begin(), sorted.end(),
              [](const Label& a, const Label& b) { return a.key < b.key; });
    std::string out(family);
    out += '{';
    bool first = true;
    for (const auto& l : sorted) {
        if (!first) out += ',';
        first = false;
        out += l.key;
        out += '=';
        out += l.value;
    }
    out += '}';
    return out;
}

CounterDelta DeltaSnapshot::get(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? CounterDelta{} : it->second;
}

Registry& Registry::global() {
    static Registry registry;
    return registry;
}

Counter& Registry::counter(const std::string& name) {
    const std::lock_guard lock(mutex_);
    auto& slot = counters_[name];
    if (!slot.counter) {
        slot.counter = std::make_unique<Counter>();
        slot.created_ns = steady_ns();
    }
    return *slot.counter;
}

Gauge& Registry::gauge(const std::string& name) {
    const std::lock_guard lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

LatencyHistogram& Registry::latency(const std::string& name) {
    const std::lock_guard lock(mutex_);
    auto& slot = latencies_[name];
    if (!slot) slot = std::make_unique<LatencyHistogram>();
    return *slot;
}

void Registry::write_json(std::ostream& out) const {
    const std::lock_guard lock(mutex_);
    out << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, slot] : counters_) {
        if (!first) out << ',';
        first = false;
        out << '"' << json::escape(name) << "\":" << slot.counter->value();
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
        if (!first) out << ',';
        first = false;
        out << '"' << json::escape(name) << "\":" << json::number(g->value());
    }
    out << "},\"latencies\":{";
    first = true;
    for (const auto& [name, h] : latencies_) {
        if (!first) out << ',';
        first = false;
        const auto s = h->summary();
        out << '"' << json::escape(name) << "\":{\"count\":" << s.count
            << ",\"total_ns\":" << json::number(s.total_ns)
            << ",\"mean_ns\":" << json::number(s.mean_ns)
            << ",\"min_ns\":" << json::number(s.min_ns)
            << ",\"max_ns\":" << json::number(s.max_ns)
            << ",\"p50_ns\":" << json::number(s.p50_ns)
            << ",\"p90_ns\":" << json::number(s.p90_ns)
            << ",\"p99_ns\":" << json::number(s.p99_ns) << '}';
    }
    out << "}}";
}

std::string Registry::to_json() const {
    std::ostringstream oss;
    write_json(oss);
    return oss.str();
}

void Registry::write_prometheus(std::ostream& out) const {
    FamilyBlocks blocks;
    {
        const std::lock_guard lock(mutex_);
        for (const auto& [name, slot] : counters_) {
            const auto key = prom_key(name);
            std::ostringstream line;
            line << key.name << key.labels << ' ' << slot.counter->value();
            add_sample(blocks, "counter", key.name, line.str());
        }
        for (const auto& [name, g] : gauges_) {
            const auto key = prom_key(name);
            std::ostringstream line;
            line << key.name << key.labels << ' ' << json::number(g->value());
            add_sample(blocks, "gauge", key.name, line.str());
        }
        for (const auto& [name, h] : latencies_) {
            auto key = prom_key(name);
            key.name += "_seconds";
            const auto s = h->summary();
            // Summary quantiles carry the family labels plus `quantile`;
            // values are seconds (Prometheus base unit), our grid is ns.
            const std::string base_labels =
                key.labels.empty() ? "" : key.labels.substr(1, key.labels.size() - 2);
            const auto quantile_line = [&](const char* q, double ns) {
                std::ostringstream line;
                line << key.name << '{' << base_labels
                     << (base_labels.empty() ? "" : ",") << "quantile=\"" << q
                     << "\"} " << json::number(ns * 1e-9);
                return line.str();
            };
            add_sample(blocks, "summary", key.name,
                       quantile_line("0.5", s.p50_ns));
            add_sample(blocks, "summary", key.name,
                       quantile_line("0.9", s.p90_ns));
            add_sample(blocks, "summary", key.name,
                       quantile_line("0.99", s.p99_ns));
            std::ostringstream sum;
            sum << key.name << "_sum" << key.labels << ' '
                << json::number(s.total_ns * 1e-9);
            add_sample(blocks, "summary", key.name, sum.str());
            std::ostringstream count;
            count << key.name << "_count" << key.labels << ' ' << s.count;
            add_sample(blocks, "summary", key.name, count.str());
        }
    }
    for (const auto& [family, block] : blocks) {
        out << "# TYPE " << family << ' ' << block.first << '\n';
        for (const auto& line : block.second) out << line << '\n';
    }
}

std::string Registry::to_prometheus() const {
    std::ostringstream oss;
    write_prometheus(oss);
    return oss.str();
}

DeltaSnapshot Registry::snapshot_delta(double window_s) {
    const std::uint64_t now = steady_ns();
    const auto window_ns = static_cast<std::uint64_t>(
        window_s > 0.0 ? window_s * 1e9 : 0.0);
    DeltaSnapshot snap;
    const std::lock_guard lock(mutex_);
    for (auto& [name, slot] : counters_) {
        const std::uint64_t value = slot.counter->value();
        // Baseline: the newest retained sample at least `window_s` old, the
        // oldest retained sample when none is, the creation instant (value
        // 0) when the ring is empty.
        std::uint64_t base_t = slot.created_ns;
        std::uint64_t base_v = 0;
        bool aged = false;
        for (auto it = slot.ring.rbegin(); it != slot.ring.rend(); ++it) {
            if (now - it->first >= window_ns) {
                base_t = it->first;
                base_v = it->second;
                aged = true;
                break;
            }
        }
        if (!aged && !slot.ring.empty()) {
            base_t = slot.ring.front().first;
            base_v = slot.ring.front().second;
        }
        CounterDelta d;
        // A counter is monotonic unless a test reset it mid-window; clamp
        // instead of wrapping in that case.
        d.delta = value >= base_v ? value - base_v : value;
        d.window_s = static_cast<double>(now - base_t) * 1e-9;
        d.rate_per_s =
            d.window_s > 0.0 ? static_cast<double>(d.delta) / d.window_s : 0.0;
        snap.window_s = std::max(snap.window_s, d.window_s);
        snap.counters.emplace(name, d);
        slot.ring.emplace_back(now, value);
        if (slot.ring.size() > kRingCapacity) slot.ring.pop_front();
    }
    return snap;
}

void Registry::reset() {
    const std::lock_guard lock(mutex_);
    for (auto& [name, slot] : counters_) {
        slot.counter->reset();
        slot.ring.clear();
        slot.created_ns = steady_ns();
    }
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : latencies_) h->reset();
}

ScopedTimer::ScopedTimer(LatencyHistogram& hist, Counter* total_ns) noexcept
    : hist_(hist), total_ns_(total_ns), start_ns_(steady_ns()) {}

ScopedTimer::~ScopedTimer() {
    const std::uint64_t elapsed = steady_ns() - start_ns_;
    hist_.record_ns(elapsed);
    if (total_ns_) total_ns_->add(elapsed);
}

}  // namespace tnr::core::obs

#pragma once
// Throttled stderr progress reporting with an ETA, for long campaigns.
//
// Each report is a complete, newline-terminated line ("campaign: 7/12
// devices (58%), elapsed 12.3 s, eta 8.8 s") so output stays readable when
// redirected to a log file. Reporting is time-gated: nothing is printed
// before `kFirstReportAfter` of wall time, so short runs (and unit tests)
// stay silent; after that at most one line per `kMinInterval`. tick() is
// thread-safe — parallel campaign workers call it directly.

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>

namespace tnr::core::obs {

class ProgressMeter {
public:
    /// `sink == nullptr` disables the meter entirely (every call a no-op).
    /// `unit` names the work items ("devices", "workloads").
    ProgressMeter(std::ostream* sink, std::string label, std::string unit,
                  std::size_t total);

    /// Marks `delta` items done; prints a progress line when due.
    void tick(std::size_t delta = 1);

    /// Prints a final "done" line — only if a progress line was already
    /// printed (short runs finish silently).
    void finish();

    static constexpr std::chrono::milliseconds kFirstReportAfter{1000};
    static constexpr std::chrono::milliseconds kMinInterval{250};

private:
    void print_locked(bool final_line);

    std::ostream* sink_;
    std::string label_;
    std::string unit_;
    std::size_t total_;
    std::size_t done_ = 0;
    bool printed_any_ = false;
    bool finished_ = false;  ///< the "done" line was printed (print it once).
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point last_report_;
    std::mutex mutex_;
};

}  // namespace tnr::core::obs

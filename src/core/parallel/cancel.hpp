#pragma once
// Cooperative cancellation for long-running work. A CancelToken is a
// lock-free flag that producers (a SIGINT handler, a watchdog, a test) set
// and workers poll at natural checkpoints — between parallel_for chunks,
// between campaign devices. Cancellation never interrupts a computation
// mid-flight: work observed as cancelled simply stops picking up new items,
// and the orchestrating layer throws RunError(kCancelled) once the grid has
// drained, so sinks and journals can still be flushed.

#include <atomic>

#include "core/error.hpp"

namespace tnr::core::parallel {

class CancelToken {
public:
    void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }

    [[nodiscard]] bool cancelled() const noexcept {
        return flag_.load(std::memory_order_relaxed);
    }

    /// Checkpoint: throws RunError(kCancelled) when the token is set.
    void throw_if_cancelled() const {
        if (cancelled()) {
            throw RunError::cancelled("run cancelled");
        }
    }

    /// Re-arms the token (tests reuse the global instance).
    void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }

private:
    std::atomic<bool> flag_{false};
};

/// The process-wide token the SIGINT handler sets. Commands that want clean
/// Ctrl-C handling thread a pointer to it through their configs.
CancelToken& global_cancel_token() noexcept;

/// Installs a SIGINT handler that sets global_cancel_token() on the first
/// interrupt and restores the default disposition, so a second Ctrl-C kills
/// a run that fails to check the token. Call once, from main().
void install_sigint_handler() noexcept;

}  // namespace tnr::core::parallel

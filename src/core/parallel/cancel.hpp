#pragma once
// Cooperative cancellation for long-running work. A CancelToken is a
// lock-free flag that producers (a SIGINT handler, a watchdog, a test) set
// and workers poll at natural checkpoints — between parallel_for chunks,
// between campaign devices. Cancellation never interrupts a computation
// mid-flight: work observed as cancelled simply stops picking up new items,
// and the orchestrating layer throws RunError(kCancelled) once the grid has
// drained, so sinks and journals can still be flushed.
//
// Beyond the plain flag a token can be *deadline-armed* (it reads as
// cancelled once a steady-clock deadline passes — the serving layer's
// per-request deadline_ms) and *linked to a parent* (it reads as cancelled
// whenever the parent does — per-request tokens observing the process-wide
// SIGINT token). Both extensions keep cancelled() lock-free and safe to
// poll from any thread.

#include <atomic>
#include <chrono>

#include "core/error.hpp"

namespace tnr::core::parallel {

class CancelToken {
public:
    void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }

    [[nodiscard]] bool cancelled() const noexcept {
        if (flag_.load(std::memory_order_relaxed)) return true;
        const CancelToken* parent = parent_.load(std::memory_order_relaxed);
        if (parent != nullptr && parent->cancelled()) return true;
        return deadline_elapsed();
    }

    /// Checkpoint: throws RunError(kCancelled) when the token is set.
    void throw_if_cancelled() const {
        if (cancelled()) {
            throw RunError::cancelled(deadline_elapsed() ? "deadline_ms exceeded"
                                                         : "run cancelled");
        }
    }

    /// Arms a wall-clock deadline `budget` from now; once it passes the
    /// token reads as cancelled at every checkpoint. A zero (or negative)
    /// budget is an already-elapsed deadline. Re-arming replaces the
    /// previous deadline.
    void arm_deadline(std::chrono::nanoseconds budget) noexcept {
        const auto at = std::chrono::steady_clock::now() + budget;
        // 0 is the "unarmed" sentinel; a deadline that lands exactly on it
        // (impossible in practice for a steady clock) would just disarm.
        deadline_ns_.store(at.time_since_epoch().count(),
                           std::memory_order_relaxed);
    }

    /// True when a deadline is armed and has passed.
    [[nodiscard]] bool deadline_elapsed() const noexcept {
        const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
        return d != 0 &&
               std::chrono::steady_clock::now().time_since_epoch().count() >= d;
    }

    /// Links this token to a parent: cancelled() also reports true whenever
    /// the parent is cancelled. Set before the token is shared with workers;
    /// the parent must outlive this token. nullptr unlinks.
    void link_parent(const CancelToken* parent) noexcept {
        parent_.store(parent, std::memory_order_relaxed);
    }

    /// Re-arms the token (tests reuse the global instance): clears the
    /// flag, the deadline, and the parent link.
    void reset() noexcept {
        flag_.store(false, std::memory_order_relaxed);
        deadline_ns_.store(0, std::memory_order_relaxed);
        parent_.store(nullptr, std::memory_order_relaxed);
    }

private:
    std::atomic<bool> flag_{false};
    /// steady_clock deadline in ns-since-epoch; 0 = no deadline armed.
    std::atomic<std::int64_t> deadline_ns_{0};
    std::atomic<const CancelToken*> parent_{nullptr};
};

/// The process-wide token the SIGINT handler sets. Commands that want clean
/// Ctrl-C handling thread a pointer to it through their configs.
CancelToken& global_cancel_token() noexcept;

/// Installs a SIGINT handler that sets global_cancel_token() on the first
/// interrupt and restores the default disposition, so a second Ctrl-C kills
/// a run that fails to check the token. Call once, from main().
void install_sigint_handler() noexcept;

}  // namespace tnr::core::parallel

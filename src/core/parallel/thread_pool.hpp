#pragma once
// Shared parallel execution substrate for the Monte Carlo hot paths.
//
// One process-wide ThreadPool (lazily created on first use) feeds a plain
// work queue; callers never spawn per-call std::threads. Reductions over
// histories/trials go through parallel_for_reduce (parallel_for.hpp), which
// owns the determinism contract: a fixed (seed, threads) pair always
// produces bitwise-identical results, on any machine and any pool size,
// because worker streams and chunk boundaries depend only on the requested
// thread count — never on scheduling.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/obs/metrics.hpp"

namespace tnr::core::parallel {

/// Worker count used when a caller asks for "all available" (threads == 0):
/// the TNR_THREADS environment variable if set (>= 1), otherwise the
/// hardware concurrency. Always >= 1.
unsigned default_thread_count() noexcept;

/// Fixed-size worker pool over a FIFO task queue.
class ThreadPool {
public:
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task for execution on some worker.
    void submit(std::function<void()> task);

    [[nodiscard]] unsigned size() const noexcept { return size_; }

    /// True when the calling thread is a worker of *any* ThreadPool. Used to
    /// run nested parallel regions serially instead of deadlocking the queue
    /// (all workers blocked waiting on tasks queued behind them).
    [[nodiscard]] static bool on_worker_thread() noexcept;

    /// The process-wide pool, created on first use with
    /// default_thread_count() workers.
    static ThreadPool& shared();

private:
    /// A queued task plus its enqueue timestamp (for the queue-wait metric).
    struct QueuedTask {
        std::function<void()> fn;
        std::chrono::steady_clock::time_point enqueued;
    };

    void worker_loop();

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<QueuedTask> queue_;
    std::vector<std::thread> workers_;
    unsigned size_ = 0;
    bool stop_ = false;

    // Telemetry instruments (see docs/observability.md). Resolved once at
    // construction — which also orders the global Registry before the pool,
    // so workers never outlive the instruments they write to. Per-task
    // overhead is two clock reads and a few relaxed atomics, negligible at
    // chunk granularity.
    obs::Counter& tasks_submitted_;
    obs::Counter& tasks_completed_;
    obs::Counter& busy_ns_;
    obs::Gauge& queue_depth_max_;
    obs::LatencyHistogram& queue_wait_;
    obs::LatencyHistogram& task_run_;
};

/// A batch of tasks submitted to a pool; wait() blocks until every task ran
/// and rethrows the first exception any task threw.
class TaskGroup {
public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    ~TaskGroup() { wait_no_throw(); }

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Submits one task to the pool as part of this group.
    void run(std::function<void()> task);

    /// Blocks until all submitted tasks finished; rethrows the first task
    /// exception.
    void wait();

private:
    void wait_no_throw() noexcept;

    ThreadPool& pool_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::size_t pending_ = 0;
    std::exception_ptr error_;
};

}  // namespace tnr::core::parallel

#include "core/parallel/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace tnr::core::parallel {

namespace {

thread_local bool tls_on_worker = false;

unsigned env_thread_override() noexcept {
    const char* env = std::getenv("TNR_THREADS");
    if (!env || !*env) return 0;
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || v < 1) return 0;
    return static_cast<unsigned>(v);
}

}  // namespace

unsigned default_thread_count() noexcept {
    if (const unsigned env = env_thread_override(); env > 0) return env;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads) : size_(threads > 0 ? threads : 1u) {
    workers_.reserve(size_);
    for (unsigned t = 0; t < size_; ++t) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        const std::lock_guard lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void ThreadPool::worker_loop() {
    tls_on_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stop_ and drained.
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

bool ThreadPool::on_worker_thread() noexcept { return tls_on_worker; }

ThreadPool& ThreadPool::shared() {
    static ThreadPool pool(default_thread_count());
    return pool;
}

void TaskGroup::run(std::function<void()> task) {
    {
        const std::lock_guard lock(mutex_);
        ++pending_;
    }
    pool_.submit([this, task = std::move(task)] {
        try {
            task();
        } catch (...) {
            const std::lock_guard lock(mutex_);
            if (!error_) error_ = std::current_exception();
        }
        const std::lock_guard lock(mutex_);
        --pending_;
        // Notify while holding the lock: the waiter may destroy this group
        // the moment it observes pending_ == 0, so the broadcast has to
        // finish before wait() can return.
        cv_.notify_all();
    });
}

void TaskGroup::wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return pending_ == 0; });
    if (error_) {
        auto error = error_;
        error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void TaskGroup::wait_no_throw() noexcept {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace tnr::core::parallel

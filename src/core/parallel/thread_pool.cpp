#include "core/parallel/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "core/obs/trace.hpp"

namespace tnr::core::parallel {

namespace {

thread_local bool tls_on_worker = false;

unsigned env_thread_override() noexcept {
    const char* env = std::getenv("TNR_THREADS");
    if (!env || !*env) return 0;
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || v < 1) return 0;
    return static_cast<unsigned>(v);
}

}  // namespace

unsigned default_thread_count() noexcept {
    if (const unsigned env = env_thread_override(); env > 0) return env;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads)
    : size_(threads > 0 ? threads : 1u),
      tasks_submitted_(obs::Registry::global().counter("pool.tasks_submitted")),
      tasks_completed_(obs::Registry::global().counter("pool.tasks_completed")),
      busy_ns_(obs::Registry::global().counter("pool.busy_ns")),
      queue_depth_max_(obs::Registry::global().gauge("pool.queue_depth_max")),
      queue_wait_(obs::Registry::global().latency("pool.queue_wait")),
      task_run_(obs::Registry::global().latency("pool.task_run")) {
    // Order the tracer's statics before this pool too: workers may record
    // spans, so the tracer must be destroyed after them.
    obs::Tracer::global();
    obs::Registry::global().gauge("pool.workers").update_max(size_);
    workers_.reserve(size_);
    for (unsigned t = 0; t < size_; ++t) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    tasks_submitted_.add();
    {
        const std::lock_guard lock(mutex_);
        queue_.push_back({std::move(task), std::chrono::steady_clock::now()});
        queue_depth_max_.update_max(static_cast<double>(queue_.size()));
    }
    cv_.notify_one();
}

void ThreadPool::worker_loop() {
    tls_on_worker = true;
    for (;;) {
        QueuedTask task;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stop_ and drained.
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        const auto start = std::chrono::steady_clock::now();
        queue_wait_.record_ns(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                start - task.enqueued)
                .count()));
        {
            const obs::Span span("pool.task", "pool");
            task.fn();
        }
        const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start);
        task_run_.record_ns(static_cast<std::uint64_t>(elapsed.count()));
        busy_ns_.add(static_cast<std::uint64_t>(elapsed.count()));
        tasks_completed_.add();
    }
}

bool ThreadPool::on_worker_thread() noexcept { return tls_on_worker; }

ThreadPool& ThreadPool::shared() {
    static ThreadPool pool(default_thread_count());
    return pool;
}

void TaskGroup::run(std::function<void()> task) {
    {
        const std::lock_guard lock(mutex_);
        ++pending_;
    }
    pool_.submit([this, task = std::move(task)] {
        try {
            task();
        } catch (...) {
            const std::lock_guard lock(mutex_);
            if (!error_) error_ = std::current_exception();
        }
        const std::lock_guard lock(mutex_);
        --pending_;
        // Notify while holding the lock: the waiter may destroy this group
        // the moment it observes pending_ == 0, so the broadcast has to
        // finish before wait() can return.
        cv_.notify_all();
    });
}

void TaskGroup::wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return pending_ == 0; });
    if (error_) {
        auto error = error_;
        error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void TaskGroup::wait_no_throw() noexcept {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace tnr::core::parallel

#include "core/parallel/cancel.hpp"

#include <csignal>

namespace tnr::core::parallel {

CancelToken& global_cancel_token() noexcept {
    static CancelToken token;
    return token;
}

namespace {

extern "C" void sigint_handler(int) {
    // Only async-signal-safe operations here: a lock-free atomic store and
    // re-arming the default disposition (second Ctrl-C force-kills).
    global_cancel_token().cancel();
    std::signal(SIGINT, SIG_DFL);
}

}  // namespace

void install_sigint_handler() noexcept {
    // Touch the token before installing: the handler must never be the one
    // constructing the function-local static.
    global_cancel_token();
    std::signal(SIGINT, sigint_handler);
}

}  // namespace tnr::core::parallel

#pragma once
// Deterministic parallel reductions over Monte Carlo histories/trials.
//
// Determinism contract (the one the tests pin down):
//   * parallel_for_reduce: results are bitwise reproducible for a fixed
//     (parent RNG state, threads) pair. Worker streams are derived serially
//     from the parent via Rng::split() and chunk boundaries depend only on
//     (n, threads), so the result is independent of the pool size and of
//     scheduling. threads == 1 consumes the parent RNG directly, which makes
//     it bitwise identical to the historical serial loops.
//   * parallel_map: results are bitwise reproducible independent of the
//     thread count — each index computes its own result from its own inputs
//     (callers derive any randomness from the index, not the worker).

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/parallel/cancel.hpp"
#include "core/parallel/thread_pool.hpp"
#include "stats/rng.hpp"

namespace tnr::core::parallel {

/// Resolves a requested thread count: 0 means default_thread_count(); the
/// result is clamped to the item count and forced to 1 on pool workers
/// (nested parallel regions run serially rather than re-entering the queue).
inline unsigned resolve_threads(unsigned requested, std::uint64_t n) noexcept {
    if (ThreadPool::on_worker_thread()) return 1;
    unsigned threads = requested > 0 ? requested : default_thread_count();
    if (n < threads) threads = n > 0 ? static_cast<unsigned>(n) : 1u;
    return threads > 0 ? threads : 1u;
}

/// Splits `n` items into `threads` contiguous chunks, gives each chunk an
/// independent RNG stream split off `rng`, runs
/// `body(begin, count, stream) -> Result` per chunk on the shared pool, and
/// folds the partials in chunk order with `merge(acc, partial)`.
///
/// `cancel` (optional) is checked once before each chunk body runs; a set
/// token makes the reduction throw RunError(kCancelled) — a reduction with
/// missing chunks has no usable value, so cancellation here is an abort,
/// not a truncation.
template <typename Result, typename Body, typename Merge>
Result parallel_for_reduce(std::uint64_t n, unsigned threads, stats::Rng& rng,
                           Body&& body, Merge&& merge,
                           const CancelToken* cancel = nullptr) {
    threads = resolve_threads(threads, n);
    if (threads <= 1) {
        if (cancel) cancel->throw_if_cancelled();
        return body(std::uint64_t{0}, n, rng);
    }

    // split() mutates the parent, so derive all streams serially up front.
    std::vector<stats::Rng> streams;
    streams.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) streams.push_back(rng.split());

    std::vector<Result> partials(threads);
    const std::uint64_t chunk = n / threads;
    {
        TaskGroup group(ThreadPool::shared());
        for (unsigned t = 0; t < threads; ++t) {
            const std::uint64_t begin = chunk * t;
            const std::uint64_t count = (t + 1 == threads) ? n - begin : chunk;
            group.run([&partials, &streams, &body, cancel, t, begin, count] {
                if (cancel) cancel->throw_if_cancelled();
                partials[t] = body(begin, count, streams[t]);
            });
        }
        group.wait();
    }

    Result merged = std::move(partials.front());
    for (unsigned t = 1; t < threads; ++t) merge(merged, partials[t]);
    return merged;
}

/// Runs `body(i) -> Result` for i in [0, n) on the shared pool and returns
/// the results in index order. Work is handed out dynamically (atomic
/// counter), which is safe because each result depends only on its index.
///
/// `cancel` (optional) is checked before each item: once the token is set,
/// workers stop picking up new indices and the call returns with the
/// not-yet-started slots default-constructed. The caller decides whether a
/// truncated map is an error (the campaign grid throws after draining).
template <typename Result, typename Body>
std::vector<Result> parallel_map(std::size_t n, unsigned threads, Body&& body,
                                 const CancelToken* cancel = nullptr) {
    threads = resolve_threads(threads, n);
    std::vector<Result> out(n);
    if (threads <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            if (cancel && cancel->cancelled()) break;
            out[i] = body(i);
        }
        return out;
    }

    std::atomic<std::size_t> next{0};
    TaskGroup group(ThreadPool::shared());
    for (unsigned t = 0; t < threads; ++t) {
        group.run([&out, &next, &body, cancel, n] {
            for (std::size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1)) {
                if (cancel && cancel->cancelled()) return;
                out[i] = body(i);
            }
        });
    }
    group.wait();
    return out;
}

}  // namespace tnr::core::parallel

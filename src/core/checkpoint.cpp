#include "core/checkpoint.hpp"

#include <cmath>
#include <stdexcept>

namespace tnr::core {

double daly_optimal_interval(double mtbf_s, double checkpoint_cost_s) {
    if (mtbf_s <= 0.0 || checkpoint_cost_s <= 0.0) {
        throw std::invalid_argument("daly_optimal_interval: bad arguments");
    }
    return std::sqrt(2.0 * checkpoint_cost_s * mtbf_s);
}

double waste_fraction(double interval_s, double mtbf_s,
                      const CheckpointParameters& params) {
    if (interval_s <= 0.0 || mtbf_s <= 0.0) {
        throw std::invalid_argument("waste_fraction: bad arguments");
    }
    return params.checkpoint_cost_s / interval_s +
           interval_s / (2.0 * mtbf_s) + params.restart_cost_s / mtbf_s;
}

CheckpointPlan plan_for_fit(double node_due_fit, std::size_t nodes,
                            const CheckpointParameters& params) {
    if (node_due_fit <= 0.0 || nodes == 0) {
        throw std::invalid_argument("plan_for_fit: bad arguments");
    }
    CheckpointPlan plan;
    // FIT = failures per 1e9 device-hours; the machine fails when any node
    // does (failures combine linearly for the rare-event regime).
    const double system_fit = node_due_fit * static_cast<double>(nodes);
    plan.mtbf_s = 1.0e9 / system_fit * 3600.0;
    plan.optimal_interval_s =
        daly_optimal_interval(plan.mtbf_s, params.checkpoint_cost_s);
    plan.waste_fraction =
        waste_fraction(plan.optimal_interval_s, plan.mtbf_s, params);
    return plan;
}

CheckpointPlan plan_for_fit(const FitRate& node_due_fit, std::size_t nodes,
                            const CheckpointParameters& params) {
    return plan_for_fit(node_due_fit.total(), nodes, params);
}

}  // namespace tnr::core

#pragma once
// FIT-rate estimation: fold beam-calibrated sensitivities with the natural
// fluxes of a deployment site. FIT = failures per 1e9 device-hours; the
// paper's §V/§VI analysis decomposes each device's FIT into its high-energy
// and thermal components to show how much the error rate is underestimated
// when thermals are ignored.

#include <string>
#include <vector>

#include "devices/device.hpp"
#include "environment/site.hpp"
#include "memory/dram_config.hpp"

namespace tnr::core {

/// A FIT rate decomposed by neutron population.
struct FitRate {
    double high_energy = 0.0;  ///< FIT from E > 10 MeV neutrons.
    double thermal = 0.0;      ///< FIT from E < 0.5 eV neutrons.

    [[nodiscard]] double total() const noexcept { return high_energy + thermal; }
    /// Fraction of the total caused by thermals (the Txt-2 percentages).
    [[nodiscard]] double thermal_share() const noexcept {
        const double t = total();
        return t > 0.0 ? thermal / t : 0.0;
    }
    /// Underestimation factor when thermals are ignored.
    [[nodiscard]] double underestimation() const noexcept {
        return high_energy > 0.0 ? total() / high_energy : 1.0;
    }
};

/// FIT rate of a device at a site, per error type.
FitRate device_fit(const devices::Device& device, devices::ErrorType type,
                   const environment::Site& site);

/// Thermal-only FIT of a DRAM module (per module) at a site, summed over all
/// fault categories. The paper could not measure DDR high-energy rates (the
/// parts died of permanent faults at ChipIR), so this is thermal-only by
/// construction.
double dram_thermal_fit(const memory::DramConfig& config,
                        const environment::Site& site);

/// Fleet projection: thermal DDR FIT of a whole system (site capacity x
/// per-Gbit sensitivity) — the Top-10 supercomputer figure (Txt-3).
struct FleetFitRow {
    std::string system;
    double capacity_gbit = 0.0;
    double thermal_flux = 0.0;  ///< [n/cm^2/h].
    double fit = 0.0;           ///< thermal FIT of the whole DRAM fleet.
};
std::vector<FleetFitRow> fleet_dram_fit(const std::vector<environment::Site>& sites);

}  // namespace tnr::core

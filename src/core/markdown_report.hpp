#pragma once
// One-call study report: runs (or reuses) a ReliabilityStudy and renders a
// self-contained markdown document — the artifact a reliability engineer
// hands to management after beam time: measured cross sections, HE/thermal
// ratios vs the published values, FIT decomposition per site, and the
// fleet DDR projection.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "environment/site.hpp"

namespace tnr::core {

struct ReportOptions {
    std::string title = "Thermal Neutron Reliability Study";
    std::vector<environment::Site> sites;  ///< empty = NYC + Leadville.
    bool include_top10 = true;
    bool include_per_code = false;  ///< per-workload measurement appendix.
};

/// Renders the full report to `os`. The study's campaign is run on demand.
void write_markdown_report(ReliabilityStudy& study, const ReportOptions& options,
                           std::ostream& os);

}  // namespace tnr::core

#pragma once
// SRAM-FPGA configuration memory. The paper (§IV): "neutron-induced errors
// in the configuration memory of SRAM FPGAs have a persistent effect, in
// the sense that a corruption changes the implemented circuit until a new
// bitstream is loaded"; the experimenters "reprogram the FPGA at each
// observed output error to avoid the collection of a stream of corrupted
// data", and DUEs are very rare because "a considerable amount of errors
// would need to accumulate ... to have the circuit functionality
// compromised".
//
// Model: a bitstream of N configuration bits, of which a design-dependent
// fraction is *essential* (flipping it alters the implemented circuit —
// Xilinx's "essential bits" report). Upsets accumulate until a scrub or a
// full reprogram clears them.

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "stats/rng.hpp"

namespace tnr::fpga {

struct ConfigMemoryLayout {
    /// Total configuration bits (a Zynq-7020 bitstream is ~ 32 Mbit).
    std::uint64_t total_bits = 32'000'000;
    /// Fraction of bits essential to the loaded design (typical reports:
    /// 5-20% for a well-filled device).
    double essential_fraction = 0.10;
};

/// The configuration memory of one programmed device.
class ConfigMemory {
public:
    explicit ConfigMemory(ConfigMemoryLayout layout = {});

    [[nodiscard]] const ConfigMemoryLayout& layout() const noexcept {
        return layout_;
    }

    /// Number of essential bits in the loaded design.
    [[nodiscard]] std::uint64_t essential_bits() const;

    /// Flips one configuration bit (idempotent per bit: a second hit
    /// restores it, as a real SEU would).
    void flip(std::uint64_t bit);

    /// Deposits `count` upsets at uniformly random bits.
    void irradiate(std::uint64_t count, stats::Rng& rng);

    /// All currently-flipped bits.
    [[nodiscard]] std::size_t upset_count() const noexcept {
        return upsets_.size();
    }

    /// Currently-flipped *essential* bits — the ones that corrupt the
    /// circuit. Bits below essential_bits() are the essential region
    /// (placement is irrelevant to the statistics; a fixed region keeps the
    /// mapping deterministic).
    [[nodiscard]] std::size_t essential_upsets() const;

    /// The essential upset bit indices (stable order), for mapping onto a
    /// workload's state.
    [[nodiscard]] std::vector<std::uint64_t> essential_upset_bits() const;

    /// True if the bit is currently flipped.
    [[nodiscard]] bool is_upset(std::uint64_t bit) const;

    /// Reload the full bitstream: all upsets cleared (reprogramming).
    void reprogram();

    /// Partial scrub: repairs upsets in the given fraction of frames
    /// (deterministic prefix), modelling one round of SEM-style readback
    /// scrubbing.
    void scrub(double fraction_of_frames);

private:
    ConfigMemoryLayout layout_;
    std::unordered_set<std::uint64_t> upsets_;
};

}  // namespace tnr::fpga

#include "fpga/config_memory.hpp"

#include <algorithm>
#include <stdexcept>

namespace tnr::fpga {

ConfigMemory::ConfigMemory(ConfigMemoryLayout layout) : layout_(layout) {
    if (layout.total_bits == 0 || layout.essential_fraction < 0.0 ||
        layout.essential_fraction > 1.0) {
        throw std::invalid_argument("ConfigMemory: bad layout");
    }
}

std::uint64_t ConfigMemory::essential_bits() const {
    return static_cast<std::uint64_t>(
        static_cast<double>(layout_.total_bits) * layout_.essential_fraction);
}

void ConfigMemory::flip(std::uint64_t bit) {
    if (bit >= layout_.total_bits) {
        throw std::out_of_range("ConfigMemory::flip: bit out of range");
    }
    const auto it = upsets_.find(bit);
    if (it != upsets_.end()) {
        upsets_.erase(it);  // second strike restores the bit.
    } else {
        upsets_.insert(bit);
    }
}

void ConfigMemory::irradiate(std::uint64_t count, stats::Rng& rng) {
    for (std::uint64_t k = 0; k < count; ++k) {
        flip(rng.uniform_index(layout_.total_bits));
    }
}

std::size_t ConfigMemory::essential_upsets() const {
    const std::uint64_t boundary = essential_bits();
    return static_cast<std::size_t>(
        std::count_if(upsets_.begin(), upsets_.end(),
                      [boundary](std::uint64_t b) { return b < boundary; }));
}

std::vector<std::uint64_t> ConfigMemory::essential_upset_bits() const {
    const std::uint64_t boundary = essential_bits();
    std::vector<std::uint64_t> bits;
    for (const auto b : upsets_) {
        if (b < boundary) bits.push_back(b);
    }
    std::sort(bits.begin(), bits.end());
    return bits;
}

bool ConfigMemory::is_upset(std::uint64_t bit) const {
    return upsets_.contains(bit);
}

void ConfigMemory::reprogram() { upsets_.clear(); }

void ConfigMemory::scrub(double fraction_of_frames) {
    if (fraction_of_frames < 0.0 || fraction_of_frames > 1.0) {
        throw std::invalid_argument("ConfigMemory::scrub: bad fraction");
    }
    const auto boundary = static_cast<std::uint64_t>(
        static_cast<double>(layout_.total_bits) * fraction_of_frames);
    for (auto it = upsets_.begin(); it != upsets_.end();) {
        if (*it < boundary) {
            it = upsets_.erase(it);
        } else {
            ++it;
        }
    }
}

}  // namespace tnr::fpga

#pragma once
// An FPGA under beam: configuration upsets arrive as a Poisson process;
// essential upsets persistently corrupt the implemented circuit (modelled
// by deterministically mapping each essential upset onto a bit of the
// loaded workload's weight/state segments); the tester observes the design
// output after every inference and applies a mitigation policy.
//
// Reproduces §IV's FPGA observations: persistence (the same wrong output
// repeats until reprogramming), the reprogram-on-error test protocol, and
// the rarity of DUEs (functionality only collapses after heavy
// accumulation).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fpga/config_memory.hpp"
#include "stats/rng.hpp"
#include "workloads/workload.hpp"

namespace tnr::fpga {

/// Mitigation policy applied by the test harness / deployed system.
enum class ScrubPolicy {
    kNone,               ///< let upsets accumulate (error streams).
    kReprogramOnError,   ///< the paper's beam protocol.
    kPeriodicScrub,      ///< background readback scrubbing every k runs.
};

const char* to_string(ScrubPolicy p);

struct FpgaBeamConfig {
    ConfigMemoryLayout layout{};
    /// Per-bit upset cross section [cm^2/bit] for the beam in use.
    double sigma_bit_cm2 = 1.0e-15;
    double flux_n_cm2_s = 2.72e6;
    /// Wall time per inference run [s].
    double seconds_per_run = 1.0;
    ScrubPolicy policy = ScrubPolicy::kReprogramOnError;
    /// For kPeriodicScrub: scrub every N runs.
    std::uint64_t scrub_period_runs = 16;
    /// Essential upsets beyond which the circuit stops functioning (DUE):
    /// clock/reset networks eventually break. Large, per the paper.
    std::size_t functional_collapse_upsets = 64;
    /// Triple modular redundancy: the design is triplicated and voted. An
    /// essential upset only corrupts the output once two of the three
    /// replicas of the same logic are hit. Costs ~3x the area (and hence
    /// ~3x the upset arrival rate), which is why TMR without scrubbing
    /// eventually loses to accumulation.
    bool tmr = false;
};

struct FpgaBeamReport {
    std::uint64_t runs = 0;
    std::uint64_t output_errors = 0;       ///< runs with corrupted output.
    std::uint64_t distinct_error_events = 0;  ///< new corruptions (not repeats).
    std::uint64_t repeated_error_runs = 0; ///< stream-of-corrupted-data runs.
    std::uint64_t dues = 0;                ///< functional collapses.
    std::uint64_t reprograms = 0;
    std::uint64_t scrubs = 0;
    double fluence = 0.0;

    /// Observed SDC cross section: distinct error events per fluence.
    [[nodiscard]] double sigma_sdc() const {
        return fluence > 0.0
                   ? static_cast<double>(distinct_error_events) / fluence
                   : 0.0;
    }
};

/// Drives a workload-on-FPGA through a beam exposure.
class FpgaBeamRun {
public:
    FpgaBeamRun(FpgaBeamConfig config, std::unique_ptr<workloads::Workload> design,
                std::uint64_t seed);

    /// Runs `runs` inference iterations under beam and reports.
    FpgaBeamReport run(std::uint64_t runs);

    [[nodiscard]] const ConfigMemory& config_memory() const noexcept {
        return memory_;
    }

private:
    /// Applies the current essential upsets to a freshly reset design:
    /// essential config bit b maps deterministically onto one bit of the
    /// design's injectable state.
    void apply_circuit_corruption();

    FpgaBeamConfig config_;
    std::unique_ptr<workloads::Workload> design_;
    ConfigMemory memory_;
    stats::Rng rng_;
};

}  // namespace tnr::fpga

#include "fpga/beam_run.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "stats/rng.hpp"

namespace tnr::fpga {

const char* to_string(ScrubPolicy p) {
    switch (p) {
        case ScrubPolicy::kNone:
            return "none";
        case ScrubPolicy::kReprogramOnError:
            return "reprogram-on-error";
        case ScrubPolicy::kPeriodicScrub:
            return "periodic-scrub";
    }
    return "unknown";
}

FpgaBeamRun::FpgaBeamRun(FpgaBeamConfig config,
                         std::unique_ptr<workloads::Workload> design,
                         std::uint64_t seed)
    : config_(config),
      design_(std::move(design)),
      memory_(config.layout),
      rng_(seed) {
    if (!design_) throw std::invalid_argument("FpgaBeamRun: null design");
    if (config.sigma_bit_cm2 <= 0.0 || config.flux_n_cm2_s <= 0.0 ||
        config.seconds_per_run <= 0.0) {
        throw std::invalid_argument("FpgaBeamRun: bad beam parameters");
    }
}

void FpgaBeamRun::apply_circuit_corruption() {
    design_->reset();
    const auto segments = design_->segments();
    std::size_t total_bytes = 0;
    for (const auto& s : segments) total_bytes += s.bytes.size();
    if (total_bytes == 0) return;

    // Effective corruption keys. Without TMR every essential upset corrupts
    // its own key. With TMR, bit b belongs to replica (b % 3) of logic
    // position (b / 3): the voted output corrupts a position exactly once
    // when >=2 of its replicas are upset.
    std::vector<std::uint64_t> corrupted_keys;
    const auto upsets = memory_.essential_upset_bits();
    if (config_.tmr) {
        std::unordered_map<std::uint64_t, std::uint32_t> replica_hits;
        for (const std::uint64_t bit : upsets) ++replica_hits[bit / 3];
        for (const auto& [position, hits] : replica_hits) {
            if (hits >= 2) corrupted_keys.push_back(position);
        }
    } else {
        corrupted_keys.assign(upsets.begin(), upsets.end());
    }

    for (const std::uint64_t key : corrupted_keys) {
        // Deterministic mapping config-bit -> design-state bit: the same
        // upset corrupts the same logic every run (persistence).
        stats::SplitMix64 hash(key ^ 0x0F0F0F0F0F0F0F0FULL);
        std::size_t target =
            static_cast<std::size_t>(hash.next() % total_bytes);
        const auto target_bit = static_cast<std::uint8_t>(hash.next() % 8);
        for (const auto& s : segments) {
            if (target < s.bytes.size()) {
                s.bytes[target] ^= static_cast<std::byte>(1u << target_bit);
                break;
            }
            target -= s.bytes.size();
        }
    }
}

FpgaBeamReport FpgaBeamRun::run(std::uint64_t runs) {
    FpgaBeamReport report;
    const double area_factor = config_.tmr ? 3.0 : 1.0;
    const double upset_rate = area_factor * config_.sigma_bit_cm2 *
                              static_cast<double>(config_.layout.total_bits) *
                              config_.flux_n_cm2_s;
    bool error_is_repeat = false;

    for (std::uint64_t r = 0; r < runs; ++r) {
        ++report.runs;
        report.fluence += config_.flux_n_cm2_s * config_.seconds_per_run;

        // Beam deposits configuration upsets during this run. Only a change
        // to the *essential* set alters the implemented circuit.
        const std::uint64_t new_upsets =
            rng_.poisson(upset_rate * config_.seconds_per_run);
        if (new_upsets > 0) {
            const std::size_t essential_before = memory_.essential_upsets();
            memory_.irradiate(new_upsets, rng_);
            if (memory_.essential_upsets() != essential_before) {
                error_is_repeat = false;
            }
        }

        // Periodic scrubbing runs regardless of output observations.
        if (config_.policy == ScrubPolicy::kPeriodicScrub &&
            config_.scrub_period_runs > 0 &&
            (r + 1) % config_.scrub_period_runs == 0) {
            memory_.scrub(1.0);
            ++report.scrubs;
            error_is_repeat = false;
        }

        // Functional collapse: enough of the design's logic corrupted that
        // nothing sensible comes out (the rare FPGA DUE).
        if (memory_.essential_upsets() >= config_.functional_collapse_upsets) {
            ++report.dues;
            memory_.reprogram();
            ++report.reprograms;
            error_is_repeat = false;
            continue;
        }

        // Execute the (possibly corrupted) design and compare outputs.
        apply_circuit_corruption();
        bool output_error;
        try {
            design_->run();
            output_error = !design_->verify();
        } catch (const workloads::WorkloadFailure&) {
            // A corrupted circuit producing garbage control flow: counted
            // as an output error on FPGAs (no OS to crash).
            output_error = true;
        }

        if (output_error) {
            ++report.output_errors;
            if (error_is_repeat) {
                ++report.repeated_error_runs;
            } else {
                ++report.distinct_error_events;
                error_is_repeat = true;
            }
            if (config_.policy == ScrubPolicy::kReprogramOnError) {
                memory_.reprogram();
                ++report.reprograms;
                error_is_repeat = false;
            }
        }
    }
    return report;
}

}  // namespace tnr::fpga

#pragma once
// Histograms over linear or logarithmic grids. The log-grid variant is the
// backbone of neutron spectra work: beamline spectra are reported per unit
// lethargy (paper Fig. 2), i.e. on log-spaced energy bins.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tnr::stats {

/// Fixed-grid 1-D histogram. Bin edges are strictly increasing; samples
/// outside [front, back) land in underflow/overflow counters.
class Histogram {
public:
    /// Construct from explicit, strictly increasing edges (>= 2 edges).
    explicit Histogram(std::vector<double> edges);

    /// Uniform grid over [lo, hi) with `bins` bins.
    static Histogram linear(double lo, double hi, std::size_t bins);

    /// Log-uniform grid over [lo, hi) with `bins` bins; lo, hi > 0.
    static Histogram logarithmic(double lo, double hi, std::size_t bins);

    void add(double x, double weight = 1.0);

    [[nodiscard]] std::size_t bin_count() const noexcept {
        return counts_.size();
    }
    [[nodiscard]] double bin_lo(std::size_t i) const { return edges_.at(i); }
    [[nodiscard]] double bin_hi(std::size_t i) const { return edges_.at(i + 1); }
    [[nodiscard]] double bin_center(std::size_t i) const;
    /// Geometric bin center, appropriate for log grids.
    [[nodiscard]] double bin_center_geometric(std::size_t i) const;
    [[nodiscard]] double count(std::size_t i) const { return counts_.at(i); }
    [[nodiscard]] double underflow() const noexcept { return underflow_; }
    [[nodiscard]] double overflow() const noexcept { return overflow_; }
    [[nodiscard]] double total() const noexcept;
    [[nodiscard]] const std::vector<double>& edges() const noexcept {
        return edges_;
    }

    /// Density view: count / bin width.
    [[nodiscard]] std::vector<double> density() const;

    /// Lethargy density view: count / ln(hi/lo) per bin — the standard
    /// E·dΦ/dE presentation for neutron spectra.
    [[nodiscard]] std::vector<double> lethargy_density() const;

    /// Index of the bin containing x, or npos if out of range.
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    [[nodiscard]] std::size_t find_bin(double x) const;

    void reset();

private:
    std::vector<double> edges_;
    std::vector<double> counts_;
    double underflow_ = 0.0;
    double overflow_ = 0.0;
    bool log_uniform_ = false;
    bool lin_uniform_ = false;
};

}  // namespace tnr::stats

#include "stats/special_functions.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace tnr::stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;

/// Lower incomplete gamma by power series, returning P(a,x).
double gamma_p_series(double a, double x) {
    double sum = 1.0 / a;
    double term = sum;
    double ap = a;
    for (int i = 0; i < kMaxIterations; ++i) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::abs(term) < std::abs(sum) * kEpsilon) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Upper incomplete gamma by Lentz continued fraction, returning Q(a,x).
double gamma_q_cf(double a, double x) {
    constexpr double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= kMaxIterations; ++i) {
        const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::abs(d) < tiny) d = tiny;
        c = b + an / c;
        if (std::abs(c) < tiny) c = tiny;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::abs(delta - 1.0) < kEpsilon) break;
    }
    return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double gamma_p(double a, double x) {
    if (a <= 0.0) throw std::domain_error("gamma_p: a must be > 0");
    if (x < 0.0) throw std::domain_error("gamma_p: x must be >= 0");
    if (x == 0.0) return 0.0;
    if (x < a + 1.0) return gamma_p_series(a, x);
    return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
    if (a <= 0.0) throw std::domain_error("gamma_q: a must be > 0");
    if (x < 0.0) throw std::domain_error("gamma_q: x must be >= 0");
    if (x == 0.0) return 1.0;
    if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
    return gamma_q_cf(a, x);
}

double gamma_p_inv(double a, double p) {
    if (a <= 0.0) throw std::domain_error("gamma_p_inv: a must be > 0");
    if (p < 0.0 || p >= 1.0) {
        if (p == 0.0) return 0.0;
        throw std::domain_error("gamma_p_inv: p must be in [0, 1)");
    }
    if (p == 0.0) return 0.0;

    // Wilson-Hilferty starting point: chi2_k quantile with k = 2a.
    double x;
    const double g = std::lgamma(a);
    if (a > 1.0) {
        const double z = normal_quantile(p);
        const double t = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * std::sqrt(a));
        x = a * t * t * t;
        if (x <= 0.0) x = 1e-8;
    } else {
        // Small-a start from the asymptotic inversion of the series.
        const double t = 1.0 - a * (0.253 + a * 0.12);
        if (p < t) {
            x = std::pow(p / t, 1.0 / a);
        } else {
            x = 1.0 - std::log1p(-(p - t) / (1.0 - t));
        }
    }

    // Halley refinement on f(x) = P(a,x) - p.
    for (int i = 0; i < 60; ++i) {
        if (x <= 0.0) x = 0.5 * (x + 1e-300);
        const double err = gamma_p(a, x) - p;
        const double logpdf = -x + (a - 1.0) * std::log(x) - g;
        const double pdf = std::exp(logpdf);
        if (pdf == 0.0) break;
        double step = err / pdf;
        // Halley correction using d(pdf)/dx = pdf * ((a-1)/x - 1).
        const double u = step * ((a - 1.0) / x - 1.0);
        if (std::abs(u) < 1.0) step /= std::max(0.5, 1.0 - 0.5 * u);
        const double x_new = x - step;
        x = (x_new <= 0.0) ? 0.5 * x : x_new;
        if (std::abs(step) < 1e-12 * std::max(x, 1.0)) break;
    }
    return x;
}

double chi_squared_quantile(double p, double k) {
    if (k <= 0.0) throw std::domain_error("chi_squared_quantile: k must be > 0");
    return 2.0 * gamma_p_inv(0.5 * k, p);
}

double normal_cdf(double x) {
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_quantile(double p) {
    if (p <= 0.0 || p >= 1.0) {
        if (p == 0.0) return -std::numeric_limits<double>::infinity();
        if (p == 1.0) return std::numeric_limits<double>::infinity();
        throw std::domain_error("normal_quantile: p must be in (0, 1)");
    }
    // Acklam's rational approximation.
    static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                   -2.759285104469687e+02, 1.383577518672690e+02,
                                   -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                   -1.556989798598866e+02, 6.680131188771972e+01,
                                   -1.328068155288572e+01};
    static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                   -2.400758277161838e+00, -2.549732539343734e+00,
                                   4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                   2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double p_low = 0.02425;
    double x;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log1p(-p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    // One Halley step against the true CDF sharpens to near machine precision.
    const double e = normal_cdf(x) - p;
    const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
    x -= u / (1.0 + 0.5 * x * u);
    return x;
}

double log_binomial(double n, double k) {
    if (k < 0.0 || k > n) return -std::numeric_limits<double>::infinity();
    return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

}  // namespace tnr::stats

#include "stats/changepoint.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tnr::stats {

namespace {

/// Poisson segment log likelihood up to terms independent of the rate:
/// sum(x) * log(mean) - n * mean, with mean the MLE sum(x)/n.
double segment_loglik(double sum, double n) {
    if (n <= 0.0) return 0.0;
    const double mean = sum / n;
    if (mean <= 0.0) return 0.0;
    return sum * std::log(mean) - n * mean;
}

}  // namespace

std::optional<Changepoint> detect_single_changepoint(
    const std::vector<std::uint64_t>& counts, std::size_t min_segment,
    double min_gain) {
    if (min_segment == 0) min_segment = 1;
    const std::size_t n = counts.size();
    if (n < 2 * min_segment) return std::nullopt;

    // Prefix sums for O(1) segment sums.
    std::vector<double> prefix(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        prefix[i + 1] = prefix[i] + static_cast<double>(counts[i]);
    }
    const double total = prefix[n];
    const double null_loglik = segment_loglik(total, static_cast<double>(n));

    double best_gain = -1.0;
    std::size_t best_split = 0;
    for (std::size_t split = min_segment; split + min_segment <= n; ++split) {
        const double left = segment_loglik(prefix[split], static_cast<double>(split));
        const double right = segment_loglik(total - prefix[split],
                                            static_cast<double>(n - split));
        const double gain = left + right - null_loglik;
        if (gain > best_gain) {
            best_gain = gain;
            best_split = split;
        }
    }
    if (best_gain < min_gain) return std::nullopt;

    Changepoint cp;
    cp.index = best_split;
    cp.rate_before = prefix[best_split] / static_cast<double>(best_split);
    cp.rate_after =
        (total - prefix[best_split]) / static_cast<double>(n - best_split);
    cp.log_likelihood_gain = best_gain;
    return cp;
}

CusumDetector::CusumDetector(double reference, double allowance,
                             double threshold)
    : reference_(reference), allowance_(allowance), threshold_(threshold) {
    if (reference < 0.0 || threshold <= 0.0) {
        throw std::invalid_argument("CusumDetector: bad parameters");
    }
}

bool CusumDetector::update(std::uint64_t count) noexcept {
    ++n_;
    if (alarmed_) return true;
    const double x = static_cast<double>(count);
    s_ = std::max(0.0, s_ + (x - reference_ - allowance_));
    if (s_ > threshold_) {
        alarmed_ = true;
        alarm_index_ = n_ - 1;
    }
    return alarmed_;
}

void CusumDetector::reset() noexcept {
    s_ = 0.0;
    alarmed_ = false;
    n_ = 0;
    alarm_index_ = 0;
}

}  // namespace tnr::stats

#pragma once
// Deterministic, fast random number generation for the TNR framework.
//
// All stochastic components of the framework (Monte Carlo transport, beam
// event sampling, fault injection, detector counting) draw from Rng so that
// every experiment is reproducible from a single 64-bit seed.

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace tnr::stats {

/// SplitMix64: used to expand a single seed into a full xoshiro state.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_{seed} {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). High-quality, 2^256-1 period,
/// sub-nanosecond generation. Satisfies UniformRandomBitGenerator so it can
/// feed <random> distributions when convenient.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the full 256-bit state from a single seed via SplitMix64.
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept { return next(); }

    /// Raw 64-bit draw. Inline: the batched RNG facade (core/simd) pulls
    /// millions of raws per transport run, so the generator step must fold
    /// into its fill loops.
    result_type next() noexcept {
        const std::uint64_t result = rotl_(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl_(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1) with 53 bits of precision.
    double uniform() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection
    /// method to avoid modulo bias.
    std::uint64_t uniform_index(std::uint64_t n) noexcept;

    /// true with probability p (clamped to [0,1]).
    bool bernoulli(double p) noexcept;

    /// Exponentially distributed variate with the given rate (1/mean).
    double exponential(double rate) noexcept {
        // -log(1-u) with u in [0,1) avoids log(0).
        return -std::log1p(-uniform()) / rate;
    }

    /// Standard normal via Box-Muller (cached second variate).
    double normal() noexcept;

    /// Normal with given mean and standard deviation.
    double normal(double mean, double stddev) noexcept;

    /// Poisson variate. Uses inversion for small means and the PTRS
    /// transformed-rejection method (Hörmann 1993) for large means, so it is
    /// O(1) even for the ~1e9 event counts seen in beam fluence sampling.
    std::uint64_t poisson(double mean) noexcept;

    /// Creates an independent generator by jumping this generator's sequence;
    /// used to hand child components decorrelated streams.
    Rng split() noexcept;

private:
    static constexpr std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace tnr::stats

#include "stats/poisson.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/special_functions.hpp"

namespace tnr::stats {

Interval poisson_mean_interval(std::uint64_t count, double confidence) {
    if (confidence <= 0.0 || confidence >= 1.0) {
        throw std::domain_error("poisson_mean_interval: confidence in (0,1)");
    }
    const double alpha = 1.0 - confidence;
    const auto k = static_cast<double>(count);
    Interval ci;
    ci.lower = (count == 0)
                   ? 0.0
                   : 0.5 * chi_squared_quantile(alpha / 2.0, 2.0 * k);
    ci.upper = 0.5 * chi_squared_quantile(1.0 - alpha / 2.0, 2.0 * k + 2.0);
    return ci;
}

Interval poisson_rate_interval(std::uint64_t count, double exposure,
                               double confidence) {
    if (exposure <= 0.0) {
        throw std::domain_error("poisson_rate_interval: exposure must be > 0");
    }
    Interval ci = poisson_mean_interval(count, confidence);
    ci.lower /= exposure;
    ci.upper /= exposure;
    return ci;
}

RateRatio poisson_rate_ratio(std::uint64_t count_num, double exposure_num,
                             std::uint64_t count_den, double exposure_den,
                             double confidence) {
    if (count_den == 0) {
        throw std::domain_error("poisson_rate_ratio: denominator count is 0");
    }
    const double rate_num = static_cast<double>(count_num) / exposure_num;
    const double rate_den = static_cast<double>(count_den) / exposure_den;
    // Propagate per-rate exact intervals at a confidence each of sqrt(conf)
    // so that the joint coverage is approximately `confidence` under
    // independence; this is the standard conservative treatment for beam
    // cross-section ratios where both counts are small.
    const double per_side_conf = std::sqrt(confidence);
    const Interval ci_num =
        poisson_rate_interval(count_num, exposure_num, per_side_conf);
    const Interval ci_den =
        poisson_rate_interval(count_den, exposure_den, per_side_conf);
    RateRatio out;
    out.ratio = rate_num / rate_den;
    out.ci.lower = (ci_den.upper > 0.0) ? ci_num.lower / ci_den.upper : 0.0;
    out.ci.upper = (ci_den.lower > 0.0)
                       ? ci_num.upper / ci_den.lower
                       : std::numeric_limits<double>::infinity();
    return out;
}

double poisson_pmf(std::uint64_t k, double mean) {
    if (mean < 0.0) throw std::domain_error("poisson_pmf: mean must be >= 0");
    if (mean == 0.0) return k == 0 ? 1.0 : 0.0;
    const auto kd = static_cast<double>(k);
    return std::exp(kd * std::log(mean) - mean - std::lgamma(kd + 1.0));
}

double poisson_two_sided_p_value(std::uint64_t count, double mean) {
    if (mean <= 0.0) return count == 0 ? 1.0 : 0.0;
    const auto k = static_cast<double>(count);
    // Lower tail P(X <= k) = Q(k+1, mean); upper tail P(X >= k) = P(k, mean).
    const double lower_tail = gamma_q(k + 1.0, mean);
    const double upper_tail = (count == 0) ? 1.0 : gamma_p(k, mean);
    return std::min(1.0, 2.0 * std::min(lower_tail, upper_tail));
}

}  // namespace tnr::stats

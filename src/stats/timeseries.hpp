#pragma once
// Regularly-binned count time series, as produced by the Tin-II thermal
// neutron detector (paper Fig. 6: counts per hour over several days).

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace tnr::stats {

/// A time series of counts in uniform bins starting at t0 (seconds).
class CountTimeSeries {
public:
    CountTimeSeries(double t0_s, double bin_width_s)
        : t0_(t0_s), bin_width_(bin_width_s) {
        if (bin_width_s <= 0.0) {
            throw std::invalid_argument("CountTimeSeries: bin width must be > 0");
        }
    }

    void append(std::uint64_t count) { counts_.push_back(count); }

    [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }
    [[nodiscard]] bool empty() const noexcept { return counts_.empty(); }
    [[nodiscard]] std::uint64_t count(std::size_t i) const {
        return counts_.at(i);
    }
    [[nodiscard]] double bin_start_s(std::size_t i) const {
        return t0_ + bin_width_ * static_cast<double>(i);
    }
    [[nodiscard]] double bin_width_s() const noexcept { return bin_width_; }
    [[nodiscard]] double t0_s() const noexcept { return t0_; }
    [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
        return counts_;
    }

    /// Rate (counts/s) in bin i.
    [[nodiscard]] double rate(std::size_t i) const {
        return static_cast<double>(counts_.at(i)) / bin_width_;
    }

    /// Mean rate over bins [lo, hi).
    [[nodiscard]] double mean_rate(std::size_t lo, std::size_t hi) const;

    /// Total counts over bins [lo, hi).
    [[nodiscard]] std::uint64_t total(std::size_t lo, std::size_t hi) const;

    /// Merge k adjacent bins into one (e.g. 1-min bins -> 1-h bins).
    [[nodiscard]] CountTimeSeries rebinned(std::size_t k) const;

    /// Centered moving average of the per-bin rates (window = 2*half+1 bins),
    /// shrunk at the edges.
    [[nodiscard]] std::vector<double> smoothed_rate(std::size_t half_window) const;

    /// Element-wise difference of counts (this - other), clamped at zero.
    /// Used for bare-minus-shielded detector differencing; series must have
    /// identical binning and length.
    [[nodiscard]] std::vector<std::int64_t> difference(
        const CountTimeSeries& other) const;

private:
    double t0_;
    double bin_width_;
    std::vector<std::uint64_t> counts_;
};

}  // namespace tnr::stats

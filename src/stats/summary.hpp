#pragma once
// Streaming summary statistics (Welford) and simple descriptive helpers.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace tnr::stats {

/// Numerically stable streaming mean/variance accumulator (Welford 1962).
class RunningStats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    /// Standard error of the mean.
    [[nodiscard]] double sem() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }

    /// Merge another accumulator (parallel reduction, Chan et al.).
    void merge(const RunningStats& other) noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Median of a copy of the data (values need not be sorted).
double median(std::span<const double> values);

/// p-th quantile (0 <= p <= 1) with linear interpolation.
double quantile(std::span<const double> values, double p);

/// Geometric mean; all values must be > 0.
double geometric_mean(std::span<const double> values);

/// One-sample Kolmogorov-Smirnov statistic D_n against a caller-supplied
/// CDF, plus the asymptotic p-value (Kolmogorov distribution). Used to
/// check that simulated event streams are genuinely Poisson: their
/// inter-arrival times must pass an exponential K-S test.
struct KsResult {
    double statistic = 0.0;  ///< sup |F_empirical - F_model|.
    double p_value = 1.0;    ///< asymptotic, valid for n >= ~35.
};

KsResult ks_test(std::span<const double> samples,
                 const std::function<double(double)>& cdf);

/// Convenience: K-S against Exponential(rate).
KsResult ks_test_exponential(std::span<const double> samples, double rate);

/// Convenience: K-S against Uniform[lo, hi].
KsResult ks_test_uniform(std::span<const double> samples, double lo, double hi);

}  // namespace tnr::stats

#include "stats/rng.hpp"

#include <cmath>

namespace tnr::stats {

Rng::Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
    // A state of all zeros is the one forbidden fixed point; SplitMix64
    // cannot produce four consecutive zeros, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
        state_[0] = 0x9e3779b97f4a7c15ULL;
    }
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    // Lemire's method: multiply-shift with rejection of the biased region.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
        const std::uint64_t threshold = -n % n;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

double Rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

std::uint64_t Rng::poisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    if (mean < 30.0) {
        // Knuth inversion: multiply uniforms until below exp(-mean).
        const double limit = std::exp(-mean);
        std::uint64_t k = 0;
        double p = uniform();
        while (p > limit) {
            ++k;
            p *= uniform();
        }
        return k;
    }
    // PTRS: transformed rejection with squeeze (Hörmann 1993). Exact for all
    // means >= 10; we use it above 30 where inversion gets slow.
    const double b = 0.931 + 2.53 * std::sqrt(mean);
    const double a = -0.059 + 0.02483 * b;
    const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    const double v_r = 0.9277 - 3.6224 / (b - 2.0);
    for (;;) {
        double u = uniform() - 0.5;
        const double v = uniform();
        const double us = 0.5 - std::abs(u);
        const double kf = std::floor((2.0 * a / us + b) * u + mean + 0.43);
        if (kf < 0.0) continue;
        if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(kf);
        if (us < 0.013 && v > us) continue;
        const double log_mean = std::log(mean);
        if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
            kf * log_mean - mean - std::lgamma(kf + 1.0)) {
            return static_cast<std::uint64_t>(kf);
        }
    }
}

Rng Rng::split() noexcept {
    // Derive an independent stream by hashing two outputs through SplitMix64.
    SplitMix64 sm(next() ^ 0x6a09e667f3bcc909ULL);
    const std::uint64_t child_seed = sm.next() ^ next();
    return Rng(child_seed);
}

}  // namespace tnr::stats

#include "stats/timeseries.hpp"

#include <algorithm>
#include <numeric>

namespace tnr::stats {

double CountTimeSeries::mean_rate(std::size_t lo, std::size_t hi) const {
    if (lo >= hi || hi > counts_.size()) {
        throw std::out_of_range("CountTimeSeries::mean_rate: bad range");
    }
    const double total_counts = static_cast<double>(total(lo, hi));
    return total_counts / (bin_width_ * static_cast<double>(hi - lo));
}

std::uint64_t CountTimeSeries::total(std::size_t lo, std::size_t hi) const {
    if (lo > hi || hi > counts_.size()) {
        throw std::out_of_range("CountTimeSeries::total: bad range");
    }
    return std::accumulate(counts_.begin() + static_cast<std::ptrdiff_t>(lo),
                           counts_.begin() + static_cast<std::ptrdiff_t>(hi),
                           std::uint64_t{0});
}

CountTimeSeries CountTimeSeries::rebinned(std::size_t k) const {
    if (k == 0) throw std::invalid_argument("rebinned: k must be >= 1");
    CountTimeSeries out(t0_, bin_width_ * static_cast<double>(k));
    for (std::size_t i = 0; i + k <= counts_.size(); i += k) {
        out.append(total(i, i + k));
    }
    return out;
}

std::vector<double> CountTimeSeries::smoothed_rate(std::size_t half_window) const {
    std::vector<double> out(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::size_t lo = (i >= half_window) ? i - half_window : 0;
        const std::size_t hi = std::min(counts_.size(), i + half_window + 1);
        out[i] = mean_rate(lo, hi);
    }
    return out;
}

std::vector<std::int64_t> CountTimeSeries::difference(
    const CountTimeSeries& other) const {
    if (other.size() != size() || other.bin_width_s() != bin_width_) {
        throw std::invalid_argument(
            "CountTimeSeries::difference: binning mismatch");
    }
    std::vector<std::int64_t> out(size());
    for (std::size_t i = 0; i < size(); ++i) {
        out[i] = static_cast<std::int64_t>(counts_[i]) -
                 static_cast<std::int64_t>(other.counts_[i]);
    }
    return out;
}

}  // namespace tnr::stats

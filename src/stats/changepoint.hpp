#pragma once
// Changepoint detection on Poisson count series. The detector analysis
// (paper Fig. 6) must recover the moment the water box was placed over
// Tin-II and quantify the resulting step in the thermal count rate (~+24%).

#include <cstdint>
#include <optional>
#include <vector>

namespace tnr::stats {

/// Result of a single-changepoint scan.
struct Changepoint {
    std::size_t index = 0;      ///< First bin of the "after" regime.
    double rate_before = 0.0;   ///< Mean counts/bin before the change.
    double rate_after = 0.0;    ///< Mean counts/bin from `index` on.
    double log_likelihood_gain = 0.0;  ///< LRT gain vs. no-change model.

    /// Fractional step, e.g. +0.24 for a 24% increase.
    [[nodiscard]] double relative_step() const noexcept {
        return rate_before > 0.0 ? rate_after / rate_before - 1.0 : 0.0;
    }
};

/// Exhaustive maximum-likelihood single changepoint for Poisson counts:
/// maximizes the two-segment Poisson log likelihood over all split points.
/// Returns nullopt if the series is too short (< 2*min_segment) or if the
/// likelihood-ratio gain does not clear `min_gain` (chi2_1/2 units; 5.0
/// corresponds to ~p < 0.002).
std::optional<Changepoint> detect_single_changepoint(
    const std::vector<std::uint64_t>& counts, std::size_t min_segment = 3,
    double min_gain = 5.0);

/// One-sided CUSUM for online step detection on Poisson counts.
/// Accumulates S = max(0, S + (x - k)) and alarms when S > h.
class CusumDetector {
public:
    /// reference: in-control mean rate (counts/bin); k: allowance (drift),
    /// typically reference + 0.5*expected_shift; h: alarm threshold.
    CusumDetector(double reference, double allowance, double threshold);

    /// Feed one bin; returns true when the alarm fires (and latches).
    bool update(std::uint64_t count) noexcept;

    [[nodiscard]] bool alarmed() const noexcept { return alarmed_; }
    [[nodiscard]] double statistic() const noexcept { return s_; }
    /// Bin index at which the alarm fired (valid only if alarmed()).
    [[nodiscard]] std::size_t alarm_index() const noexcept { return alarm_index_; }

    void reset() noexcept;

private:
    double reference_;
    double allowance_;
    double threshold_;
    double s_ = 0.0;
    bool alarmed_ = false;
    std::size_t n_ = 0;
    std::size_t alarm_index_ = 0;
};

}  // namespace tnr::stats

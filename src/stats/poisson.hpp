#pragma once
// Counting statistics used throughout beam experiments and detector analysis:
// exact (Garwood) Poisson confidence intervals on counts and rates, the
// standard presentation of radiation test results (JEDEC JESD89A §5.6 reports
// cross sections with 95% Poisson confidence bounds).

#include <cstdint>

namespace tnr::stats {

/// A two-sided confidence interval.
struct Interval {
    double lower = 0.0;
    double upper = 0.0;

    [[nodiscard]] double width() const noexcept { return upper - lower; }
    [[nodiscard]] bool contains(double x) const noexcept {
        return x >= lower && x <= upper;
    }
};

/// Exact two-sided CI for the mean of a Poisson distribution given an
/// observed count, via the chi-squared (Garwood 1936) construction:
///   lower = chi2(alpha/2, 2k) / 2,  upper = chi2(1-alpha/2, 2k+2) / 2.
/// For k == 0 the lower bound is exactly 0.
Interval poisson_mean_interval(std::uint64_t count, double confidence = 0.95);

/// CI for a Poisson *rate* = count / exposure (exposure in whatever unit the
/// caller uses: seconds of counting, n/cm^2 of fluence, ...).
Interval poisson_rate_interval(std::uint64_t count, double exposure,
                               double confidence = 0.95);

/// Ratio of two independent Poisson rates with (conservative) CI obtained by
/// propagating the exact intervals of numerator and denominator. Used for
/// the high-energy / thermal cross-section ratio plots (paper Fig. 5).
struct RateRatio {
    double ratio = 0.0;
    Interval ci;
};
RateRatio poisson_rate_ratio(std::uint64_t count_num, double exposure_num,
                             std::uint64_t count_den, double exposure_den,
                             double confidence = 0.95);

/// Probability that a Poisson(mean) variate equals k (for tests/diagnostics).
double poisson_pmf(std::uint64_t k, double mean);

/// Two-sided p-value for observing `count` under Poisson(mean): the
/// probability of a result at least as extreme (by tail mass).
double poisson_two_sided_p_value(std::uint64_t count, double mean);

}  // namespace tnr::stats

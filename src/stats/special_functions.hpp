#pragma once
// Special functions needed for exact counting statistics: regularized
// incomplete gamma functions and chi-squared quantiles. These back the exact
// (Garwood) Poisson confidence intervals used for beam cross sections.

namespace tnr::stats {

/// Regularized lower incomplete gamma P(a, x) = γ(a,x) / Γ(a).
/// Series expansion for x < a+1, continued fraction otherwise.
/// Domain: a > 0, x >= 0. Accuracy ~1e-12.
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Inverse of gamma_p in x: returns x such that P(a, x) = p.
/// Uses the Wilson-Hilferty initial guess refined by Halley iterations.
/// Domain: a > 0, p in [0, 1).
double gamma_p_inv(double a, double p);

/// Quantile of the chi-squared distribution with k degrees of freedom:
/// returns x such that CDF_chi2(x; k) = p.
double chi_squared_quantile(double p, double k);

/// CDF of the standard normal distribution.
double normal_cdf(double x);

/// Quantile (inverse CDF) of the standard normal distribution,
/// Acklam's rational approximation refined with one Halley step (~1e-15).
double normal_quantile(double p);

/// log of the binomial coefficient C(n, k), valid for large n.
double log_binomial(double n, double k);

}  // namespace tnr::stats

#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tnr::stats {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
    if (edges_.size() < 2) {
        throw std::invalid_argument("Histogram: need at least 2 edges");
    }
    if (!std::is_sorted(edges_.begin(), edges_.end()) ||
        std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
        throw std::invalid_argument("Histogram: edges must be strictly increasing");
    }
    counts_.assign(edges_.size() - 1, 0.0);
}

Histogram Histogram::linear(double lo, double hi, std::size_t bins) {
    if (!(lo < hi) || bins == 0) {
        throw std::invalid_argument("Histogram::linear: bad range or bins");
    }
    std::vector<double> edges(bins + 1);
    const double step = (hi - lo) / static_cast<double>(bins);
    for (std::size_t i = 0; i <= bins; ++i) {
        edges[i] = lo + step * static_cast<double>(i);
    }
    edges.back() = hi;
    Histogram h(std::move(edges));
    h.lin_uniform_ = true;
    return h;
}

Histogram Histogram::logarithmic(double lo, double hi, std::size_t bins) {
    if (!(lo > 0.0) || !(lo < hi) || bins == 0) {
        throw std::invalid_argument("Histogram::logarithmic: bad range or bins");
    }
    std::vector<double> edges(bins + 1);
    const double log_lo = std::log(lo);
    const double step = (std::log(hi) - log_lo) / static_cast<double>(bins);
    for (std::size_t i = 0; i <= bins; ++i) {
        edges[i] = std::exp(log_lo + step * static_cast<double>(i));
    }
    edges.front() = lo;
    edges.back() = hi;
    Histogram h(std::move(edges));
    h.log_uniform_ = true;
    return h;
}

void Histogram::add(double x, double weight) {
    const std::size_t i = find_bin(x);
    if (i == npos) {
        (x < edges_.front() ? underflow_ : overflow_) += weight;
        return;
    }
    counts_[i] += weight;
}

std::size_t Histogram::find_bin(double x) const {
    if (x < edges_.front() || x >= edges_.back()) return npos;
    if (lin_uniform_) {
        const double step = (edges_.back() - edges_.front()) /
                            static_cast<double>(counts_.size());
        auto i = static_cast<std::size_t>((x - edges_.front()) / step);
        return std::min(i, counts_.size() - 1);
    }
    if (log_uniform_) {
        const double step = (std::log(edges_.back()) - std::log(edges_.front())) /
                            static_cast<double>(counts_.size());
        auto i = static_cast<std::size_t>(
            (std::log(x) - std::log(edges_.front())) / step);
        return std::min(i, counts_.size() - 1);
    }
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
    return static_cast<std::size_t>(std::distance(edges_.begin(), it)) - 1;
}

double Histogram::bin_center(std::size_t i) const {
    return 0.5 * (bin_lo(i) + bin_hi(i));
}

double Histogram::bin_center_geometric(std::size_t i) const {
    return std::sqrt(bin_lo(i) * bin_hi(i));
}

double Histogram::total() const noexcept {
    return std::accumulate(counts_.begin(), counts_.end(), 0.0) + underflow_ +
           overflow_;
}

std::vector<double> Histogram::density() const {
    std::vector<double> d(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        d[i] = counts_[i] / (bin_hi(i) - bin_lo(i));
    }
    return d;
}

std::vector<double> Histogram::lethargy_density() const {
    std::vector<double> d(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        d[i] = counts_[i] / std::log(bin_hi(i) / bin_lo(i));
    }
    return d;
}

void Histogram::reset() {
    std::fill(counts_.begin(), counts_.end(), 0.0);
    underflow_ = overflow_ = 0.0;
}

}  // namespace tnr::stats

#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tnr::stats {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

double quantile(std::span<const double> values, double p) {
    if (values.empty()) throw std::invalid_argument("quantile: empty data");
    if (p < 0.0 || p > 1.0) throw std::domain_error("quantile: p in [0,1]");
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

KsResult ks_test(std::span<const double> samples,
                 const std::function<double(double)>& cdf) {
    if (samples.empty()) throw std::invalid_argument("ks_test: empty data");
    std::vector<double> sorted(samples.begin(), samples.end());
    std::sort(sorted.begin(), sorted.end());
    const auto n = static_cast<double>(sorted.size());
    double d = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const double f = cdf(sorted[i]);
        const double lo = static_cast<double>(i) / n;
        const double hi = static_cast<double>(i + 1) / n;
        d = std::max({d, std::abs(f - lo), std::abs(f - hi)});
    }
    // Asymptotic Kolmogorov tail: P(sqrt(n) D > x) = 2 sum (-1)^{k-1} e^{-2k^2x^2}.
    const double x = std::sqrt(n) * d;
    double p = 0.0;
    for (int k = 1; k <= 100; ++k) {
        const double term =
            2.0 * std::pow(-1.0, k - 1) * std::exp(-2.0 * k * k * x * x);
        p += term;
        if (std::abs(term) < 1e-12) break;
    }
    return {d, std::clamp(p, 0.0, 1.0)};
}

KsResult ks_test_exponential(std::span<const double> samples, double rate) {
    if (rate <= 0.0) throw std::domain_error("ks_test_exponential: rate > 0");
    return ks_test(samples, [rate](double t) {
        return t <= 0.0 ? 0.0 : 1.0 - std::exp(-rate * t);
    });
}

KsResult ks_test_uniform(std::span<const double> samples, double lo, double hi) {
    if (!(hi > lo)) throw std::domain_error("ks_test_uniform: hi > lo");
    return ks_test(samples, [lo, hi](double t) {
        if (t <= lo) return 0.0;
        if (t >= hi) return 1.0;
        return (t - lo) / (hi - lo);
    });
}

double geometric_mean(std::span<const double> values) {
    if (values.empty()) throw std::invalid_argument("geometric_mean: empty data");
    double log_sum = 0.0;
    for (const double v : values) {
        if (v <= 0.0) throw std::domain_error("geometric_mean: values must be > 0");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace tnr::stats

#include "cli/cli.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <streambuf>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "beam/campaign.hpp"
#include "beam/journal.hpp"
#include "core/checkpoint.hpp"
#include "core/error.hpp"
#include "core/fit.hpp"
#include "core/markdown_report.hpp"
#include "core/obs/json.hpp"
#include "core/obs/manifest.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/progress.hpp"
#include "core/obs/trace.hpp"
#include "core/parallel/cancel.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "devices/catalog.hpp"
#include "environment/site.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/render.hpp"
#include "fleet/simulator.hpp"
#include "serve/handlers.hpp"
#include "serve/server.hpp"

namespace tnr::cli {

namespace obs = core::obs;

namespace {

/// One accepted flag of a command: `--name value` or boolean `--name`.
struct FlagSpec {
    const char* name;
    bool takes_value;
};

/// Telemetry and verbosity flags accepted by every command.
constexpr FlagSpec kGlobalFlags[] = {
    {"quiet", false},        {"verbose", false},    {"metrics-out", true},
    {"trace-out", true},     {"manifest-out", true}, {"metrics-interval", true},
};

struct CommandSpec {
    std::vector<FlagSpec> flags;
    /// Default --seed for the run manifest (commands without randomness
    /// have none).
    std::optional<std::uint64_t> default_seed;
};

const std::map<std::string, CommandSpec>& command_specs() {
    static const std::map<std::string, CommandSpec> specs = {
        {"list-devices", {{}, std::nullopt}},
        {"fit",
         {{{"device", true}, {"site", true}, {"rainy", false}, {"csv", false}},
          std::nullopt}},
        {"campaign",
         {{{"hours", true},
           {"seed", true},
           {"threads", true},
           {"avf-trials", true},
           {"max-attempts", true},
           {"mode", true},
           {"batch-size", true},
           {"simd", true},
           {"journal", true},
           {"resume", false},
           {"csv", false}},
          2020}},
        {"fleet",
         {{{"devices", true},
           {"days", true},
           {"bucket-hours", true},
           {"seed", true},
           {"acceleration", true},
           {"fleet-mode", true},
           {"sites", true},
           {"mix", true},
           {"scrub-hours", true},
           {"repair-hours", true},
           {"rain-prob", true},
           {"shards", true},
           {"chunk-devices", true},
           {"slice", true},
           {"journal", true},
           {"resume", false},
           {"csv", false}},
          2020}},
        {"detector",
         {{{"days", true}, {"water-days", true}, {"seed", true}, {"csv", false}},
          420}},
        {"transmission",
         {{{"material", true},
           {"thickness-cm", true},
           {"energy-ev", true},
           {"histories", true},
           {"mode", true},
           {"batch-size", true},
           {"simd", true},
           {"seed", true},
           {"threads", true},
           {"csv", false}},
          7}},
        {"checkpoint",
         {{{"nodes", true},
           {"device", true},
           {"site", true},
           {"rainy", false},
           {"csv", false}},
          std::nullopt}},
        {"top10", {{{"csv", false}}, std::nullopt}},
        {"report",
         {{{"hours", true},
           {"seed", true},
           {"threads", true},
           {"max-attempts", true},
           {"per-code", false}},
          2020}},
        {"serve",
         {{{"max-inflight", true},
           {"cache-capacity", true},
           {"socket", true},
           {"max-clients", true},
           {"queue-depth", true},
           {"idle-timeout-ms", true},
           {"slow-ms", true},
           {"slow-log", true}},
          std::nullopt}},
        {"stats",
         {{{"socket", true},
           {"watch", false},
           {"interval", true},
           {"polls", true},
           {"window-s", true},
           {"format", true}},
          std::nullopt}},
    };
    return specs;
}

/// Parsed flag set, validated against the command's accepted flags: an
/// unknown flag, a missing value, or a stray positional argument are all
/// usage errors. `--key=value` and `--key value` are both accepted.
class Flags {
public:
    Flags(const std::vector<std::string>& args, std::size_t first,
          const CommandSpec& spec) {
        for (std::size_t i = first; i < args.size(); ++i) {
            const std::string& a = args[i];
            if (a.rfind("--", 0) != 0) {
                throw core::RunError::config("unexpected argument: " + a);
            }
            std::string key = a.substr(2);
            std::optional<std::string> inline_value;
            if (const auto eq = key.find('='); eq != std::string::npos) {
                inline_value = key.substr(eq + 1);
                key.resize(eq);
            }
            const FlagSpec* known = find_spec(spec, key);
            if (!known) {
                throw core::RunError::config("unknown flag: --" + key);
            }
            if (!known->takes_value) {
                if (inline_value) {
                    throw core::RunError::config("flag --" + key +
                                                 " takes no value");
                }
                values_[key] = "";
                continue;
            }
            if (inline_value) {
                values_[key] = *inline_value;
            } else if (i + 1 < args.size() &&
                       args[i + 1].rfind("--", 0) != 0) {
                values_[key] = args[++i];
            } else {
                throw core::RunError::config("flag --" + key +
                                             " requires a value");
            }
        }
    }

    [[nodiscard]] bool has(const std::string& key) const {
        return values_.contains(key);
    }
    [[nodiscard]] std::string get(const std::string& key,
                                  const std::string& fallback) const {
        const auto it = values_.find(key);
        return it != values_.end() ? it->second : fallback;
    }
    [[nodiscard]] double get_double(const std::string& key,
                                    double fallback) const {
        const auto it = values_.find(key);
        if (it == values_.end()) return fallback;
        try {
            std::size_t used = 0;
            const double v = std::stod(it->second, &used);
            if (used != it->second.size()) {
                throw std::invalid_argument(it->second);
            }
            return v;
        } catch (const std::exception&) {
            throw core::RunError::config("flag --" + key +
                                         ": not a number: " + it->second);
        }
    }
    [[nodiscard]] const std::map<std::string, std::string>& values()
        const noexcept {
        return values_;
    }

private:
    static const FlagSpec* find_spec(const CommandSpec& spec,
                                     const std::string& key) {
        for (const auto& f : spec.flags) {
            if (key == f.name) return &f;
        }
        for (const auto& f : kGlobalFlags) {
            if (key == f.name) return &f;
        }
        return nullptr;
    }

    std::map<std::string, std::string> values_;
};

/// Swallows everything (--quiet).
class NullBuffer final : public std::streambuf {
protected:
    int overflow(int c) override { return traits_type::not_eof(c); }
};

/// Per-invocation I/O routing: results on `out` (stdout — machine
/// parseable), diagnostics on `diag` (stderr, or a null sink under
/// --quiet).
struct Io {
    std::ostream& out;
    std::ostream& diag;
    bool quiet = false;
    bool verbose = false;

    /// Progress sink: stderr unless --quiet.
    [[nodiscard]] std::ostream* progress() const {
        return quiet ? nullptr : &diag;
    }
};

/// What a command reports back to the run boundary beyond its exit code:
/// isolated device failures (they go into the run manifest) and whether the
/// run was cancelled (sinks are still flushed, exit code becomes 130).
struct RunContext {
    std::vector<std::string> failures;
    bool cancelled = false;
    /// Run-mode summary statistics for the manifest (serve fills these).
    std::vector<std::pair<std::string, double>> stats;
};

void print_table(const core::TablePrinter& table, bool csv, std::ostream& out) {
    if (csv) {
        table.print_csv(out);
    } else {
        table.print(out);
    }
}

std::ofstream open_sink(const std::string& path, const char* what,
                        bool append = false);

int cmd_list_devices(std::ostream& out) {
    out << serve::render_list_devices();
    return 0;
}

int cmd_fit(const Flags& flags, std::ostream& out) {
    serve::FitParams params;
    params.device = flags.get("device", params.device);
    params.site = flags.get("site", params.site);
    params.rainy = flags.has("rainy");
    params.csv = flags.has("csv");
    out << serve::render_fit(params);
    return 0;
}

/// The flag set `campaign` and `report` share, mapped onto the parameter
/// struct the serve handlers use — one source of defaults for both layers.
serve::CampaignParams campaign_params(const Flags& flags) {
    serve::CampaignParams params;
    params.hours = flags.get_double("hours", params.hours);
    params.seed =
        static_cast<std::uint64_t>(flags.get_double("seed", 2020.0));
    // Clamp before the cast: negative double -> unsigned is undefined.
    params.threads = static_cast<unsigned>(
        std::max(0.0, flags.get_double("threads", 1.0)));
    params.avf_trials = static_cast<std::size_t>(
        std::max(0.0, flags.get_double("avf-trials", 0.0)));
    params.max_attempts = static_cast<unsigned>(
        std::max(1.0, flags.get_double("max-attempts", 1.0)));
    params.mode = flags.get("mode", params.mode);
    params.batch_size = static_cast<std::uint32_t>(std::max(
        0.0, flags.get_double("batch-size",
                              static_cast<double>(params.batch_size))));
    params.simd = flags.get("simd", params.simd);
    params.csv = flags.has("csv");
    return params;
}

beam::CampaignConfig campaign_config(const Flags& flags) {
    beam::CampaignConfig cfg = serve::make_campaign_config(campaign_params(flags));
    cfg.cancel = &core::parallel::global_cancel_token();
    return cfg;
}

/// Appends a campaign's isolated failures to the run context and reports
/// them on the diagnostics stream.
void report_failures(const beam::CampaignResult& result, const Io& io,
                     RunContext& ctx) {
    for (const auto& f : result.failures) {
        const std::string line =
            f.name + ": " + f.what + " (attempt " + std::to_string(f.attempt) +
            ")";
        ctx.failures.push_back(line);
        io.diag << "tnr: device failure: " << line << '\n';
    }
}

int cmd_campaign(const Flags& flags, const Io& io, RunContext& ctx) {
    beam::CampaignConfig cfg = campaign_config(flags);

    const std::string journal_path = flags.get("journal", "");
    const bool resume = flags.has("resume");
    if (resume && journal_path.empty()) {
        throw core::RunError::config("--resume requires --journal");
    }
    std::optional<beam::CampaignJournal> journal;
    if (!journal_path.empty()) {
        const bool resuming =
            resume && std::filesystem::exists(journal_path);
        if (resuming) {
            auto replay = beam::replay_journal(journal_path);
            beam::validate_resume(replay, cfg);
            io.diag << "tnr: resuming from " << journal_path << " ("
                    << replay.completed.size() << " devices replayed)\n";
            cfg.completed = std::move(replay.completed);
        }
        journal.emplace(journal_path, /*truncate=*/!resuming);
        if (!resuming) journal->write_header(cfg, devices::standard_specs().size());
        cfg.on_device_outcome = [&journal](const devices::Device& device,
                                           unsigned attempt,
                                           const beam::DeviceOutcome& outcome) {
            journal->append_device(device.name(), attempt, outcome);
        };
        cfg.on_device_failure = [&journal](const beam::DeviceFailure& failure) {
            journal->append_failure(failure);
        };
    }

    obs::ProgressMeter progress(io.progress(), "campaign", "devices",
                                devices::standard_specs().size());
    cfg.on_device_done = [&progress] { progress.tick(); };
    const auto result = beam::Campaign(cfg).run();
    progress.finish();
    report_failures(result, io, ctx);
    io.out << serve::render_ratio_table(result, flags.has("csv"));
    return 0;
}

/// The flag set `fleet` maps onto the serve handler's parameter struct —
/// one source of defaults for both layers, so CLI stdout and the
/// `fleet-slice` response stay byte-identical.
serve::FleetParams fleet_params(const Flags& flags) {
    serve::FleetParams params;
    params.devices = static_cast<std::uint64_t>(std::max(
        0.0, flags.get_double("devices",
                              static_cast<double>(params.devices))));
    params.days = static_cast<unsigned>(
        std::max(0.0, flags.get_double("days", params.days)));
    params.bucket_hours = static_cast<unsigned>(std::max(
        0.0, flags.get_double("bucket-hours", params.bucket_hours)));
    params.seed = static_cast<std::uint64_t>(flags.get_double("seed", 2020.0));
    params.acceleration =
        flags.get_double("acceleration", params.acceleration);
    params.fleet_mode = flags.get("fleet-mode", params.fleet_mode);
    params.sites = flags.get("sites", params.sites);
    params.mix = flags.get("mix", params.mix);
    params.scrub_hours = flags.get_double("scrub-hours", params.scrub_hours);
    params.repair_hours = static_cast<unsigned>(std::max(
        0.0, flags.get_double("repair-hours", params.repair_hours)));
    params.rain_probability =
        flags.get_double("rain-prob", params.rain_probability);
    params.shards = static_cast<unsigned>(
        std::max(0.0, flags.get_double("shards", params.shards)));
    params.slice = flags.get("slice", params.slice);
    params.csv = flags.has("csv");
    return params;
}

int cmd_fleet(const Flags& flags, const Io& io, RunContext& ctx) {
    const serve::FleetParams params = fleet_params(flags);
    const fleet::ResolvedFleet resolved(serve::make_fleet_spec(params));

    fleet::FleetRunOptions options;
    options.shards = params.shards;
    options.chunk_devices = static_cast<std::uint64_t>(std::max(
        1.0, flags.get_double("chunk-devices",
                              static_cast<double>(
                                  fleet::kDefaultChunkDevices))));
    options.cancel = &core::parallel::global_cancel_token();

    const std::string journal_path = flags.get("journal", "");
    const bool resume = flags.has("resume");
    if (resume && journal_path.empty()) {
        throw core::RunError::config("--resume requires --journal");
    }
    std::optional<fleet::FleetReplay> replay;
    std::optional<fleet::FleetJournal> journal;
    if (!journal_path.empty()) {
        const bool resuming =
            resume && std::filesystem::exists(journal_path);
        if (resuming) {
            replay = fleet::replay_fleet_journal(journal_path);
            fleet::validate_fleet_resume(*replay, resolved,
                                         options.chunk_devices);
            io.diag << "tnr: resuming from " << journal_path << " ("
                    << replay->completed.size() << " chunks replayed)\n";
            options.completed = &replay->completed;
        }
        journal.emplace(journal_path, /*truncate=*/!resuming);
        if (!resuming) {
            journal->write_header(resolved, options.chunk_devices);
        }
    }

    const std::uint64_t chunks =
        fleet::chunk_count(resolved.spec(), options.chunk_devices);
    obs::ProgressMeter progress(io.progress(), "fleet", "chunks", chunks);
    if (replay) {
        for (std::size_t i = 0; i < replay->completed.size(); ++i) {
            progress.tick();
        }
    }
    options.on_chunk_done = [&journal, &progress](
                                std::uint64_t chunk,
                                const fleet::FleetTally& delta) {
        if (journal) journal->append_chunk(chunk, delta);
        progress.tick();
    };

    const auto result = fleet::run_fleet(resolved, options);
    progress.finish();

    // The manifest records the sampling mode even when it was defaulted —
    // a reproduced run must know which event stream produced the numbers.
    ctx.stats = {
        {"fleet.mode_event",
         resolved.spec().mode == fleet::FleetMode::kEventDriven ? 1.0 : 0.0},
        {"fleet.simulated_chunks",
         static_cast<double>(result.simulated_chunks)},
        {"fleet.replayed_chunks",
         static_cast<double>(result.replayed_chunks)},
    };

    fleet::FleetReportOptions report;
    report.slice = params.slice;
    report.csv = params.csv;
    io.out << fleet::render_fleet_report(resolved, result.tally, report);
    return 0;
}

int cmd_detector(const Flags& flags, std::ostream& out) {
    serve::DetectorParams params;
    params.days = flags.get_double("days", params.days);
    params.water_days = flags.get_double("water-days", params.water_days);
    params.seed = static_cast<std::uint64_t>(flags.get_double("seed", 420.0));
    params.csv = flags.has("csv");
    out << serve::render_detector(params);
    return 0;
}

int cmd_transmission(const Flags& flags, std::ostream& out) {
    serve::TransmissionParams params;
    params.material = flags.get("material", params.material);
    params.thickness_cm =
        flags.get_double("thickness-cm", params.thickness_cm);
    params.energy_ev = flags.get_double("energy-ev", params.energy_ev);
    params.histories = static_cast<std::uint64_t>(std::max(
        0.0, flags.get_double("histories",
                              static_cast<double>(params.histories))));
    params.mode = flags.get("mode", params.mode);
    params.batch_size = static_cast<std::uint32_t>(std::max(
        0.0, flags.get_double("batch-size",
                              static_cast<double>(params.batch_size))));
    params.simd = flags.get("simd", params.simd);
    params.seed = static_cast<std::uint64_t>(flags.get_double("seed", 7.0));
    params.threads = static_cast<unsigned>(
        std::max(0.0, flags.get_double("threads", 1.0)));
    params.csv = flags.has("csv");
    out << serve::render_transmission(params,
                                      &core::parallel::global_cancel_token());
    return 0;
}

int cmd_checkpoint(const Flags& flags, std::ostream& out) {
    const auto nodes =
        static_cast<std::size_t>(flags.get_double("nodes", 4608.0));
    const std::string device_name = flags.get("device", "NVIDIA K20");
    const auto device =
        devices::build_calibrated(devices::spec_by_name(device_name));
    const auto site =
        serve::site_by_name(flags.get("site", "leadville"), flags.has("rainy"));
    const auto fit = core::device_fit(device, devices::ErrorType::kDue, site);
    const auto plan = core::plan_for_fit(fit, nodes);

    core::TablePrinter table({"quantity", "value"});
    table.add_row({"node DUE FIT", core::format_fixed(fit.total(), 1)});
    table.add_row({"system MTBF [h]",
                   core::format_fixed(plan.mtbf_s / 3600.0, 2)});
    table.add_row({"optimal interval [min]",
                   core::format_fixed(plan.optimal_interval_s / 60.0, 1)});
    table.add_row({"waste", core::format_percent(plan.waste_fraction)});
    print_table(table, flags.has("csv"), out);
    return 0;
}

int cmd_report(const Flags& flags, const Io& io) {
    beam::CampaignConfig cfg = campaign_config(flags);
    obs::ProgressMeter progress(io.progress(), "report", "devices",
                                devices::standard_specs().size());
    cfg.on_device_done = [&progress] { progress.tick(); };
    core::ReliabilityStudy study(cfg);
    core::ReportOptions options;
    options.include_per_code = flags.has("per-code");
    core::write_markdown_report(study, options, io.out);
    progress.finish();
    return 0;
}

int cmd_top10(const Flags& flags, std::ostream& out) {
    core::TablePrinter table(
        {"system", "DRAM [Gbit]", "Phi_th [n/cm^2/h]", "thermal FIT"});
    for (const auto& row :
         core::fleet_dram_fit(environment::top10_supercomputers())) {
        table.add_row({row.system, core::format_scientific(row.capacity_gbit, 1),
                       core::format_fixed(row.thermal_flux, 1),
                       core::format_fixed(row.fit, 0)});
    }
    print_table(table, flags.has("csv"), out);
    return 0;
}

int cmd_serve(const Flags& flags, const Io& io, RunContext& ctx,
              std::istream& in) {
    serve::ServeOptions options;
    options.max_inflight = static_cast<std::size_t>(
        std::max(1.0, flags.get_double("max-inflight", 4.0)));
    options.cache_capacity = static_cast<std::size_t>(
        std::max(0.0, flags.get_double("cache-capacity", 128.0)));
    options.queue_depth = static_cast<std::size_t>(
        std::max(1.0, flags.get_double("queue-depth", 64.0)));
    options.max_clients = static_cast<std::size_t>(
        std::max(1.0, flags.get_double("max-clients", 64.0)));
    options.idle_timeout_ms =
        std::max(0.0, flags.get_double("idle-timeout-ms", 60'000.0));
    options.verbose = io.verbose;
    options.stop = &core::parallel::global_cancel_token();
    options.slow_ms = flags.get_double("slow-ms", 0.0);
    std::ofstream slow_log_file;
    if (const std::string path = flags.get("slow-log", ""); !path.empty()) {
        if (!(options.slow_ms > 0.0)) {
            throw core::RunError::config(
                "--slow-log requires --slow-ms to arm the threshold");
        }
        slow_log_file = open_sink(path, "slow log");
        options.slow_log = &slow_log_file;
    }
    serve::Server server(options);

    const std::string socket_path = flags.get("socket", "");
    const serve::ServeStats stats =
        socket_path.empty() ? server.serve(in, io.out, io.diag)
                            : server.serve_unix_socket(socket_path, io.diag);

    ctx.stats = {
        {"serve.requests", static_cast<double>(stats.requests)},
        {"serve.ok", static_cast<double>(stats.ok)},
        {"serve.errors", static_cast<double>(stats.errors)},
        {"serve.cancelled", static_cast<double>(stats.cancelled)},
        {"serve.shed", static_cast<double>(stats.shed)},
        {"serve.cache_hits", static_cast<double>(stats.cache_hits)},
        {"serve.coalesced", static_cast<double>(stats.coalesced)},
        {"serve.timeouts", static_cast<double>(stats.timeouts)},
    };
    io.diag << "tnr: serve: " << stats.requests << " requests (" << stats.ok
            << " ok, " << stats.errors << " error, " << stats.cancelled
            << " cancelled, " << stats.shed << " shed), " << stats.cache_hits
            << " cache hits\n";
    if (stats.stopped) {
        // The drain already happened inside serve(); this reuses the
        // cancelled path of the run boundary (sinks flushed, exit 130).
        throw core::RunError::cancelled("serve stopped");
    }
    return 0;
}

/// Minimal blocking client for `tnr stats`: one connection to the unix
/// socket of a running `tnr serve --socket`, newline-delimited JSON
/// request/response round trips on it.
class SocketClient {
public:
    explicit SocketClient(const std::string& path) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof(addr.sun_path)) {
            throw core::RunError::config("socket path too long: " + path);
        }
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path.c_str());
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0) {
            throw core::RunError::io("socket() failed for " + path);
        }
        if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
            throw core::RunError::io(
                "cannot connect to " + path +
                " (is `tnr serve --socket` running there?)");
        }
    }
    ~SocketClient() {
        if (fd_ >= 0) ::close(fd_);
    }
    SocketClient(const SocketClient&) = delete;
    SocketClient& operator=(const SocketClient&) = delete;

    /// Sends one request line and reads one response line (no newline).
    std::string round_trip(const std::string& request) {
        const std::string framed = request + "\n";
        const char* p = framed.data();
        std::size_t left = framed.size();
        while (left > 0) {
            const ssize_t n = ::write(fd_, p, left);
            if (n <= 0) {
                throw core::RunError::io("socket write failed");
            }
            p += n;
            left -= static_cast<std::size_t>(n);
        }
        std::string response;
        char c = 0;
        ssize_t n = 0;
        while ((n = ::read(fd_, &c, 1)) == 1 && c != '\n') {
            response.push_back(c);
        }
        if (n <= 0 && response.empty()) {
            throw core::RunError::io("server closed the connection");
        }
        return response;
    }

private:
    int fd_ = -1;
};

/// Walks an object path and returns the number found there (0.0 on any
/// missing/mistyped step — stats fields are additive, absent means zero).
double num_at(const obs::json::Value& doc,
              std::initializer_list<const char*> path) {
    const obs::json::Value* cur = &doc;
    for (const char* key : path) {
        cur = cur->is_object() ? cur->find(key) : nullptr;
        if (cur == nullptr) return 0.0;
    }
    return cur->is_number() ? cur->num : 0.0;
}

/// One stats round trip: sends the request, validates the envelope, and
/// returns the server's `output` payload (stats JSON or Prometheus text).
std::string fetch_stats(SocketClient& client, std::uint64_t seq,
                        double window_s, bool prometheus) {
    std::ostringstream req;
    req << "{\"id\":\"stats-" << seq << "\",\"method\":\"stats\",\"params\":{";
    if (prometheus) req << "\"format\":\"prometheus\",";
    req << "\"window-s\":" << obs::json::number(window_s) << "}}";
    const std::string line = client.round_trip(req.str());
    const auto doc = obs::json::parse(line);
    if (!doc || !doc->is_object()) {
        throw core::RunError::io("malformed stats response: " + line);
    }
    const obs::json::Value* status = doc->find("status");
    if (status == nullptr || status->str != "ok") {
        const obs::json::Value* error = doc->find("error");
        const obs::json::Value* msg =
            error != nullptr ? error->find("message") : nullptr;
        throw core::RunError::io("server error: " +
                                 (msg != nullptr ? msg->str : line));
    }
    const obs::json::Value* output = doc->find("output");
    if (output == nullptr || !output->is_string()) {
        throw core::RunError::io("stats response has no output: " + line);
    }
    return output->str;
}

/// Renders one parsed stats snapshot as the two human tables (summary +
/// per-method latency).
void render_stats_tables(const obs::json::Value& stats, std::ostream& out) {
    core::TablePrinter summary({"metric", "value"});
    summary.add_row({"uptime [s]",
                     core::format_fixed(num_at(stats, {"uptime_s"}), 1)});
    summary.add_row(
        {"inflight",
         core::format_fixed(num_at(stats, {"inflight"}), 0) + " / " +
             core::format_fixed(num_at(stats, {"max_inflight"}), 0)});
    summary.add_row({"requests",
                     core::format_fixed(num_at(stats, {"requests", "total"}), 0)});
    summary.add_row({"  ok",
                     core::format_fixed(num_at(stats, {"requests", "ok"}), 0)});
    summary.add_row(
        {"  error", core::format_fixed(num_at(stats, {"requests", "error"}), 0)});
    summary.add_row(
        {"  cancelled",
         core::format_fixed(num_at(stats, {"requests", "cancelled"}), 0)});
    summary.add_row(
        {"  shed",
         core::format_fixed(num_at(stats, {"requests", "overloaded"}), 0)});
    summary.add_row(
        {"  coalesced",
         core::format_fixed(num_at(stats, {"requests", "coalesced"}), 0)});
    summary.add_row(
        {"queue depth",
         core::format_fixed(num_at(stats, {"queue", "depth"}), 0) + " / " +
             core::format_fixed(num_at(stats, {"queue", "capacity"}), 0)});
    summary.add_row(
        {"connections",
         core::format_fixed(num_at(stats, {"connections", "active"}), 0) +
             " / " +
             core::format_fixed(num_at(stats, {"connections", "max_clients"}),
                                0)});
    summary.add_row(
        {"windowed req/s",
         core::format_fixed(num_at(stats, {"requests", "rate_per_s"}), 2)});
    summary.add_row(
        {"cache hit rate",
         core::format_percent(num_at(stats, {"cache", "hit_rate"}))});
    summary.add_row(
        {"cache size",
         core::format_fixed(num_at(stats, {"cache", "size"}), 0) + " / " +
             core::format_fixed(num_at(stats, {"cache", "capacity"}), 0)});
    summary.add_row(
        {"cache evictions",
         core::format_fixed(num_at(stats, {"cache", "evictions"}), 0)});
    summary.add_row(
        {"kernel histories",
         core::format_fixed(num_at(stats, {"kernel", "histories"}), 0)});
    const obs::json::Value* tier = stats.find("kernel");
    const obs::json::Value* tier_name =
        tier != nullptr && tier->is_object() ? tier->find("simd_tier") : nullptr;
    summary.add_row({"simd tier",
                     tier_name != nullptr && tier_name->is_string()
                         ? tier_name->str
                         : "unknown"});
    summary.print(out);

    const obs::json::Value* methods = stats.find("methods");
    if (methods == nullptr || !methods->is_object()) return;
    out << '\n';
    core::TablePrinter latency(
        {"method", "count", "p50 [ms]", "p90 [ms]", "p99 [ms]"});
    for (const auto& [name, value] : methods->object) {
        latency.add_row({name,
                         core::format_fixed(num_at(value, {"count"}), 0),
                         core::format_fixed(num_at(value, {"p50_ms"}), 3),
                         core::format_fixed(num_at(value, {"p90_ms"}), 3),
                         core::format_fixed(num_at(value, {"p99_ms"}), 3)});
    }
    latency.print(out);
}

int cmd_stats(const Flags& flags, const Io& io) {
    const std::string socket_path = flags.get("socket", "");
    if (socket_path.empty()) {
        throw core::RunError::config("stats requires --socket PATH");
    }
    const std::string format = flags.get("format", "table");
    if (format != "table" && format != "json" && format != "prometheus") {
        throw core::RunError::config(
            "--format must be table, json, or prometheus");
    }
    const bool watch = flags.has("watch");
    const double interval_s =
        std::max(0.01, flags.get_double("interval", 2.0));
    // In watch mode the server-side rate window tracks the poll interval,
    // so the printed req/s is the rate since (roughly) the previous poll.
    const double window_s =
        flags.get_double("window-s", watch ? interval_s : 10.0);
    if (!(window_s > 0.0)) {
        throw core::RunError::config("--window-s must be > 0");
    }
    const auto polls = static_cast<std::uint64_t>(
        std::max(0.0, flags.get_double("polls", 0.0)));

    if (!watch) {
        // One-shot stays fail-fast: a missing server is an actionable error,
        // not something to wait out.
        SocketClient client(socket_path);
        const std::string output =
            fetch_stats(client, 0, window_s, format == "prometheus");
        if (format != "table") {
            io.out << output;
            return 0;
        }
        const auto stats = obs::json::parse(output);
        if (!stats) {
            throw core::RunError::io("malformed stats payload: " + output);
        }
        render_stats_tables(*stats, io.out);
        return 0;
    }

    // Watch mode: poll forever (or --polls times), one line per poll. The
    // first line shows lifetime totals; later lines add the deltas since
    // the previous poll, computed client-side from the two snapshots.
    //
    // A watch is a long-lived observer of a server that may restart or drop
    // the connection under it (ECONNREFUSED while it comes back up, EPIPE
    // mid-watch): transient socket errors reconnect with capped exponential
    // backoff instead of killing the watch. Only a run of consecutive
    // failures — a server that is really gone — propagates.
    std::unique_ptr<SocketClient> client;
    constexpr int kMaxConsecutiveFailures = 8;
    constexpr double kMaxBackoffMs = 2000.0;
    int failures = 0;
    double backoff_ms = 100.0;
    double prev_total = 0.0;
    double prev_hits = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t poll = 0;  // successful polls; retries don't consume one.
    while (polls == 0 || poll < polls) {
        std::string output;
        try {
            if (client == nullptr) {
                client = std::make_unique<SocketClient>(socket_path);
            }
            output =
                fetch_stats(*client, poll, window_s, format == "prometheus");
        } catch (const core::RunError& e) {
            if (e.category() != core::ErrorCategory::kIo) throw;
            client.reset();  // half-dead connections never get reused.
            if (++failures >= kMaxConsecutiveFailures) throw;
            io.diag << "tnr: stats: " << e.what() << " — reconnecting in "
                    << static_cast<int>(backoff_ms) << " ms (attempt "
                    << failures << "/" << kMaxConsecutiveFailures << ")\n";
            io.diag.flush();
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff_ms * 1e-3));
            backoff_ms = std::min(backoff_ms * 2.0, kMaxBackoffMs);
            continue;
        }
        failures = 0;
        backoff_ms = 100.0;
        ++poll;
        const bool last = polls != 0 && poll >= polls;
        if (format != "table") {
            // Raw payload per poll (JSON line or Prometheus exposition).
            io.out << output << std::flush;
            if (!last) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(interval_s));
            }
            continue;
        }
        const auto stats = obs::json::parse(output);
        if (!stats) {
            throw core::RunError::io("malformed stats payload: " + output);
        }
        const double elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
        const double total = num_at(*stats, {"requests", "total"});
        const double hits = num_at(*stats, {"cache", "hits"});
        io.out << "t+" << core::format_fixed(elapsed, 1) << "s  requests "
               << core::format_fixed(total, 0);
        if (poll > 1) {
            const double delta = total - prev_total;
            io.out << " (+" << core::format_fixed(delta, 0) << ", "
                   << core::format_fixed(delta / interval_s, 1) << "/s)";
        }
        io.out << "  ok " << core::format_fixed(
                      num_at(*stats, {"requests", "ok"}), 0)
               << "  err "
               << core::format_fixed(num_at(*stats, {"requests", "error"}), 0)
               << "  shed "
               << core::format_fixed(
                      num_at(*stats, {"requests", "overloaded"}), 0)
               << "  cache hits " << core::format_fixed(hits, 0);
        if (poll > 1) {
            io.out << " (+" << core::format_fixed(hits - prev_hits, 0) << ")";
        }
        io.out << "  inflight "
               << core::format_fixed(num_at(*stats, {"inflight"}), 0) << "/"
               << core::format_fixed(num_at(*stats, {"max_inflight"}), 0)
               << "  queue "
               << core::format_fixed(num_at(*stats, {"queue", "depth"}), 0)
               << '\n'
               << std::flush;
        prev_total = total;
        prev_hits = hits;
        if (!last) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(interval_s));
        }
    }
    return 0;
}

int dispatch(const std::string& cmd, const Flags& flags, const Io& io,
             RunContext& ctx, std::istream& in) {
    if (cmd == "list-devices") return cmd_list_devices(io.out);
    if (cmd == "fit") return cmd_fit(flags, io.out);
    if (cmd == "campaign") return cmd_campaign(flags, io, ctx);
    if (cmd == "fleet") return cmd_fleet(flags, io, ctx);
    if (cmd == "detector") return cmd_detector(flags, io.out);
    if (cmd == "transmission") return cmd_transmission(flags, io.out);
    if (cmd == "checkpoint") return cmd_checkpoint(flags, io.out);
    if (cmd == "report") return cmd_report(flags, io);
    if (cmd == "top10") return cmd_top10(flags, io.out);
    if (cmd == "serve") return cmd_serve(flags, io, ctx, in);
    if (cmd == "stats") return cmd_stats(flags, io);
    throw std::logic_error("dispatch: unreachable command " + cmd);
}

/// Derived metrics that only make sense at snapshot time.
void finalize_derived_metrics(double elapsed_s) {
    auto& reg = obs::Registry::global();
    reg.gauge("run.elapsed_s").set(elapsed_s);

    const auto busy_ns =
        static_cast<double>(reg.counter("pool.busy_ns").value());
    const double workers = reg.gauge("pool.workers").value();
    reg.gauge("pool.utilization")
        .set(workers > 0.0 && elapsed_s > 0.0
                 ? busy_ns / (elapsed_s * 1e9 * workers)
                 : 0.0);

    const auto table_hits = static_cast<double>(
        reg.counter("transport.collisions_xs_table").value());
    const auto exact = static_cast<double>(
        reg.counter("transport.collisions_xs_exact").value());
    reg.gauge("transport.xs_table_hit_rate")
        .set(table_hits + exact > 0.0 ? table_hits / (table_hits + exact)
                                      : 0.0);
}

obs::RunManifest build_manifest(const std::vector<std::string>& args,
                                const Flags& flags, const CommandSpec& spec,
                                double elapsed_s,
                                const std::string& started_at,
                                const RunContext& ctx) {
    obs::RunManifest manifest;
    manifest.command = "tnr";
    for (const auto& a : args) manifest.command += " " + a;
    const double default_seed =
        spec.default_seed ? static_cast<double>(*spec.default_seed) : 0.0;
    manifest.seed =
        static_cast<std::uint64_t>(flags.get_double("seed", default_seed));
    manifest.threads =
        static_cast<unsigned>(std::max(0.0, flags.get_double("threads", 1.0)));
    manifest.elapsed_s = elapsed_s;
    manifest.started_at_utc = started_at;
    manifest.status = ctx.cancelled ? "cancelled" : "ok";
    manifest.failures = ctx.failures;
    manifest.stats = ctx.stats;
    for (const auto& [key, value] : flags.values()) {
        manifest.flags.emplace_back(key, value);
    }
    return manifest;
}

/// Opens `path` for writing or throws core::RunError (kIo, exit code 3).
std::ofstream open_sink(const std::string& path, const char* what,
                        bool append) {
    std::ofstream file(path, append ? std::ios::app : std::ios::out);
    if (!file) {
        throw core::RunError::io(std::string("cannot open ") + what +
                                 " file: " + path);
    }
    return file;
}

/// Background thread for --metrics-interval: appends one timestamped
/// registry snapshot line to the metrics sink every tick, turning the
/// one-shot snapshot file into a JSON-lines stream. The final
/// manifest+metrics line is appended by write_sinks after the run, so the
/// last line of the file keeps the plain-mode shape.
class MetricsEmitter {
public:
    MetricsEmitter(std::ofstream file, double interval_s)
        : file_(std::move(file)),
          interval_s_(interval_s),
          thread_([this] { loop(); }) {}

    ~MetricsEmitter() { stop(); }

    /// Idempotent: joins the thread and flushes/closes the sink.
    void stop() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (done_) return;
            done_ = true;
        }
        cv_.notify_all();
        thread_.join();
        file_.flush();
        file_.close();
    }

private:
    void loop() {
        const auto t0 = std::chrono::steady_clock::now();
        std::unique_lock<std::mutex> lock(mutex_);
        while (!cv_.wait_for(lock, std::chrono::duration<double>(interval_s_),
                             [this] { return done_; })) {
            const double elapsed =
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
            file_ << "{\"elapsed_s\":" << obs::json::number(elapsed)
                  << ",\"metrics\":" << obs::Registry::global().to_json()
                  << "}\n";
            file_.flush();
        }
    }

    std::ofstream file_;
    double interval_s_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool done_ = false;
    std::thread thread_;
};

void write_sinks(const Flags& flags, const obs::RunManifest& manifest,
                 const Io& io, bool metrics_append) {
    if (const std::string path = flags.get("metrics-out", ""); !path.empty()) {
        auto file = open_sink(path, "metrics", metrics_append);
        file << "{\"manifest\":" << manifest.to_json() << ",\"metrics\":"
             << obs::Registry::global().to_json() << "}\n";
        if (io.verbose) io.diag << "tnr: wrote metrics snapshot to " << path << '\n';
    }
    if (const std::string path = flags.get("trace-out", ""); !path.empty()) {
        auto file = open_sink(path, "trace");
        obs::Tracer::global().write_json(file);
        file << '\n';
        if (io.verbose) io.diag << "tnr: wrote Chrome trace to " << path << '\n';
    }
    if (const std::string path = flags.get("manifest-out", ""); !path.empty()) {
        auto file = open_sink(path, "manifest");
        manifest.write_json(file);
        file << '\n';
        if (io.verbose) io.diag << "tnr: wrote run manifest to " << path << '\n';
    }
}

}  // namespace

std::string usage() {
    std::ostringstream oss;
    oss << "tnr — thermal neutron reliability toolkit\n"
           "\n"
           "usage: tnr <command> [flags]\n"
           "\n"
           "commands:\n"
           "  list-devices                         the calibrated roster\n"
           "  fit --device NAME --site nyc|leadville [--rainy] [--csv]\n"
           "  campaign [--hours H] [--seed S] [--threads N]\n"
           "           [--avf-trials T] [--csv]     T>0: SWIFI-weighted codes\n"
           "           [--max-attempts K]           retry a failing device K-1 times\n"
           "           [--journal F] [--resume]     crash-safe device journal;\n"
           "                                        --resume skips journaled devices\n"
           "           [--mode analog|implicit] [--batch-size N]\n"
           "           [--simd auto|avx2|scalar]    transport defaults for MC\n"
           "                                        sub-analyses (same knobs\n"
           "                                        as transmission)\n"
           "  fleet [--devices N] [--days D] [--bucket-hours H] [--seed S]\n"
           "           [--sites top10|slug,...]     fleet-scale field study:\n"
           "                                        stream N devices across\n"
           "                                        sites in constant memory\n"
           "                                        (slugs: nyc|leadville|\n"
           "                                        star-hall|hotnes)\n"
           "           [--mix standard|Name:w,...]  device-class mix from the\n"
           "                                        catalog roster\n"
           "           [--fleet-mode dense|event]   sampling mode: dense\n"
           "                                        per-bucket sweep (default)\n"
           "                                        or event-driven skip-ahead\n"
           "                                        (fast for low-rate studies)\n"
           "           [--scrub-hours H] [--repair-hours H] [--rain-prob P]\n"
           "           [--acceleration A]           rate multiplier for\n"
           "                                        accelerated studies (FITs\n"
           "                                        are de-accelerated)\n"
           "           [--shards N]                 worker shards; stdout is\n"
           "                                        bitwise identical for any N\n"
           "           [--chunk-devices N]          journal/progress chunk size\n"
           "                                        (result-invariant)\n"
           "           [--journal F] [--resume]     crash-safe chunk journal;\n"
           "                                        --resume merges completed\n"
           "                                        chunks bit-for-bit\n"
           "           [--slice SITE] [--csv]       restrict the report to one\n"
           "                                        site (exact system name)\n"
           "  detector [--days D] [--water-days D] [--seed S] [--csv]\n"
           "  transmission [--material M] [--thickness-cm T] [--energy-ev E]\n"
           "           [--histories N] [--mode analog|implicit] [--seed S]\n"
           "           [--threads N] [--csv]         slab transport query with\n"
           "                                        error bars; implicit mode\n"
           "                                        uses the variance-reduced\n"
           "                                        batched kernel\n"
           "           [--batch-size N]             SoA lanes per block\n"
           "           [--simd auto|avx2|scalar]    kernel tier; avx2 errors\n"
           "                                        if unavailable, scalar is\n"
           "                                        bitwise-reproducible\n"
           "  checkpoint [--nodes N] [--device NAME] [--site S] [--rainy]\n"
           "  top10 [--csv]                        supercomputer DDR FIT\n"
           "  report [--hours H] [--seed S] [--threads N] [--per-code]   markdown study report\n"
           "  serve [--max-inflight N] [--cache-capacity N] [--socket PATH]\n"
           "                                       batch query engine: JSON\n"
           "                                       requests on stdin (or the\n"
           "                                       unix socket), one JSON\n"
           "                                       response line each; see\n"
           "                                       docs/serving.md\n"
           "        [--queue-depth N]              admission queue bound; a\n"
           "                                       full queue sheds socket\n"
           "                                       requests with a typed\n"
           "                                       overloaded response\n"
           "        [--max-clients N] [--idle-timeout-ms T]\n"
           "                                       socket front-end: connection\n"
           "                                       cap and idle-close timeout\n"
           "                                       (0 disables)\n"
           "        [--slow-ms T] [--slow-log F]   log requests slower than\n"
           "                                       T ms as JSON lines (to\n"
           "                                       stderr, or to F)\n"
           "  stats --socket PATH [--watch] [--interval S] [--polls N]\n"
           "        [--window-s W] [--format table|json|prometheus]\n"
           "                                       query a running serve\n"
           "                                       instance: one snapshot, or\n"
           "                                       --watch for per-interval\n"
           "                                       deltas (--polls 0 = forever)\n"
           "\n"
           "global flags (every command):\n"
           "  --version          print the build version and exit\n"
           "  --quiet            suppress diagnostics and progress (stderr)\n"
           "  --verbose          extra diagnostics on stderr\n"
           "  --metrics-out F    write a JSON metrics snapshot (with the run\n"
           "                     manifest embedded) after a successful run\n"
           "  --trace-out F      write a Chrome trace_event JSON file; open\n"
           "                     in chrome://tracing or ui.perfetto.dev\n"
           "  --manifest-out F   write the reproducibility manifest alone\n"
           "  --metrics-interval S   with --metrics-out: stream a registry\n"
           "                     snapshot line every S seconds while the\n"
           "                     command runs (JSON lines; the final\n"
           "                     manifest+metrics line is appended last)\n"
           "\n"
           "Results go to stdout; diagnostics and progress go to stderr.\n"
           "Unknown flags are errors.\n"
           "\n"
           "--threads: 1 = serial (default), 0 = all cores, N = N workers on\n"
           "the shared pool; parallel results are seed-reproducible.\n"
           "\n"
           "exit codes: 0 ok, 2 usage error, 3 runtime failure,\n"
           "130 interrupted (SIGINT; sinks and journal are still flushed).\n";
    return oss.str();
}

int run(const std::vector<std::string>& args, std::istream& in,
        std::ostream& out, std::ostream& err) {
    if (args.empty() || args[0] == "-h" || args[0] == "--help" ||
        args[0] == "help") {
        out << usage();
        return args.empty() ? 2 : 0;
    }
    if (args[0] == "--version" || args[0] == "version") {
        out << "tnr " << obs::build_version() << '\n';
        return 0;
    }
    const std::string& cmd = args[0];
    const auto& specs = command_specs();
    const auto spec_it = specs.find(cmd);
    if (spec_it == specs.end()) {
        err << "unknown command: " << cmd << "\n\n" << usage();
        return 2;
    }
    try {
        const Flags flags(args, 1, spec_it->second);
        if (flags.has("quiet") && flags.has("verbose")) {
            throw core::RunError::config(
                "--quiet and --verbose are mutually exclusive");
        }
        NullBuffer null_buffer;
        std::ostream null_stream(&null_buffer);
        Io io{out, flags.has("quiet") ? null_stream : err, flags.has("quiet"),
              flags.has("verbose")};

        if (flags.has("trace-out")) obs::Tracer::global().enable();

        // --metrics-interval: stream registry snapshots to the metrics sink
        // while the command runs; write_sinks then appends the final
        // manifest+metrics line instead of truncating them away.
        const double metrics_interval =
            flags.get_double("metrics-interval", 0.0);
        std::optional<MetricsEmitter> emitter;
        if (metrics_interval > 0.0) {
            const std::string metrics_path = flags.get("metrics-out", "");
            if (metrics_path.empty()) {
                throw core::RunError::config(
                    "--metrics-interval requires --metrics-out");
            }
            emitter.emplace(open_sink(metrics_path, "metrics"),
                            metrics_interval);
        }

        const std::string started_at = obs::current_utc_timestamp();
        const auto t0 = std::chrono::steady_clock::now();
        RunContext ctx;
        int code = 0;
        try {
            code = dispatch(cmd, flags, io, ctx, in);
        } catch (const core::RunError& e) {
            // Cooperative cancellation is a clean stop, not a crash: the
            // telemetry sinks and the journal still get flushed below, and
            // the exit code says "interrupted" (130).
            if (e.category() != core::ErrorCategory::kCancelled) throw;
            ctx.cancelled = true;
            code = e.exit_code();
            io.diag << "tnr: interrupted — " << e.what() << '\n';
        }
        const double elapsed_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        if (emitter) emitter->stop();  // release the sink before the append.

        if (code == 0 || ctx.cancelled) {
            finalize_derived_metrics(elapsed_s);
            const auto manifest = build_manifest(args, flags, spec_it->second,
                                                 elapsed_s, started_at, ctx);
            write_sinks(flags, manifest, io, emitter.has_value());
            if (io.verbose) {
                io.diag << "tnr: " << cmd << " finished in "
                        << core::format_fixed(elapsed_s, 2) << " s\n";
            }
        }
        return code;
    } catch (const core::RunError& e) {
        if (e.category() == core::ErrorCategory::kConfig) {
            err << "error: " << e.what() << "\n\n" << usage();
        } else {
            err << "error: " << e.what() << '\n';
        }
        return e.exit_code();
    } catch (const std::invalid_argument& e) {
        err << "error: " << e.what() << "\n\n" << usage();
        return 2;
    } catch (const std::exception& e) {
        err << "error: " << e.what() << '\n';
        return 3;
    }
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
    // No request stream wired up: `serve` over it drains instantly at EOF.
    std::istringstream empty;
    return run(args, empty, out, err);
}

}  // namespace tnr::cli

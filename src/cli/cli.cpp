#include "cli/cli.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <streambuf>

#include "beam/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/fit.hpp"
#include "core/markdown_report.hpp"
#include "core/obs/manifest.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/progress.hpp"
#include "core/obs/trace.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "detector/analysis.hpp"
#include "detector/tin2.hpp"
#include "devices/catalog.hpp"
#include "environment/site.hpp"
#include "stats/rng.hpp"

namespace tnr::cli {

namespace obs = core::obs;

namespace {

/// One accepted flag of a command: `--name value` or boolean `--name`.
struct FlagSpec {
    const char* name;
    bool takes_value;
};

/// Telemetry and verbosity flags accepted by every command.
constexpr FlagSpec kGlobalFlags[] = {
    {"quiet", false},        {"verbose", false},    {"metrics-out", true},
    {"trace-out", true},     {"manifest-out", true},
};

struct CommandSpec {
    std::vector<FlagSpec> flags;
    /// Default --seed for the run manifest (commands without randomness
    /// have none).
    std::optional<std::uint64_t> default_seed;
};

const std::map<std::string, CommandSpec>& command_specs() {
    static const std::map<std::string, CommandSpec> specs = {
        {"list-devices", {{}, std::nullopt}},
        {"fit",
         {{{"device", true}, {"site", true}, {"rainy", false}, {"csv", false}},
          std::nullopt}},
        {"campaign",
         {{{"hours", true},
           {"seed", true},
           {"threads", true},
           {"avf-trials", true},
           {"csv", false}},
          2020}},
        {"detector",
         {{{"days", true}, {"water-days", true}, {"seed", true}, {"csv", false}},
          420}},
        {"checkpoint",
         {{{"nodes", true},
           {"device", true},
           {"site", true},
           {"rainy", false},
           {"csv", false}},
          std::nullopt}},
        {"top10", {{{"csv", false}}, std::nullopt}},
        {"report",
         {{{"hours", true},
           {"seed", true},
           {"threads", true},
           {"per-code", false}},
          2020}},
    };
    return specs;
}

/// Parsed flag set, validated against the command's accepted flags: an
/// unknown flag, a missing value, or a stray positional argument are all
/// usage errors. `--key=value` and `--key value` are both accepted.
class Flags {
public:
    Flags(const std::vector<std::string>& args, std::size_t first,
          const CommandSpec& spec) {
        for (std::size_t i = first; i < args.size(); ++i) {
            const std::string& a = args[i];
            if (a.rfind("--", 0) != 0) {
                throw std::invalid_argument("unexpected argument: " + a);
            }
            std::string key = a.substr(2);
            std::optional<std::string> inline_value;
            if (const auto eq = key.find('='); eq != std::string::npos) {
                inline_value = key.substr(eq + 1);
                key.resize(eq);
            }
            const FlagSpec* known = find_spec(spec, key);
            if (!known) {
                throw std::invalid_argument("unknown flag: --" + key);
            }
            if (!known->takes_value) {
                if (inline_value) {
                    throw std::invalid_argument("flag --" + key +
                                                " takes no value");
                }
                values_[key] = "";
                continue;
            }
            if (inline_value) {
                values_[key] = *inline_value;
            } else if (i + 1 < args.size() &&
                       args[i + 1].rfind("--", 0) != 0) {
                values_[key] = args[++i];
            } else {
                throw std::invalid_argument("flag --" + key +
                                            " requires a value");
            }
        }
    }

    [[nodiscard]] bool has(const std::string& key) const {
        return values_.contains(key);
    }
    [[nodiscard]] std::string get(const std::string& key,
                                  const std::string& fallback) const {
        const auto it = values_.find(key);
        return it != values_.end() ? it->second : fallback;
    }
    [[nodiscard]] double get_double(const std::string& key,
                                    double fallback) const {
        const auto it = values_.find(key);
        if (it == values_.end()) return fallback;
        return std::stod(it->second);
    }
    [[nodiscard]] const std::map<std::string, std::string>& values()
        const noexcept {
        return values_;
    }

private:
    static const FlagSpec* find_spec(const CommandSpec& spec,
                                     const std::string& key) {
        for (const auto& f : spec.flags) {
            if (key == f.name) return &f;
        }
        for (const auto& f : kGlobalFlags) {
            if (key == f.name) return &f;
        }
        return nullptr;
    }

    std::map<std::string, std::string> values_;
};

/// Swallows everything (--quiet).
class NullBuffer final : public std::streambuf {
protected:
    int overflow(int c) override { return traits_type::not_eof(c); }
};

/// Per-invocation I/O routing: results on `out` (stdout — machine
/// parseable), diagnostics on `diag` (stderr, or a null sink under
/// --quiet).
struct Io {
    std::ostream& out;
    std::ostream& diag;
    bool quiet = false;
    bool verbose = false;

    /// Progress sink: stderr unless --quiet.
    [[nodiscard]] std::ostream* progress() const {
        return quiet ? nullptr : &diag;
    }
};

environment::Site site_by_name(const std::string& name, bool rainy) {
    environment::Site site = [&] {
        if (name == "nyc") return environment::nyc_datacenter();
        if (name == "leadville") return environment::leadville_datacenter();
        throw std::invalid_argument("unknown site: " + name +
                                    " (use nyc|leadville)");
    }();
    if (rainy) site.environment.weather = environment::Weather::kRainy;
    return site;
}

void print_table(const core::TablePrinter& table, bool csv, std::ostream& out) {
    if (csv) {
        table.print_csv(out);
    } else {
        table.print(out);
    }
}

int cmd_list_devices(std::ostream& out) {
    core::TablePrinter table({"device", "node", "transistor", "foundry",
                              "SDC ratio", "DUE ratio"});
    for (const auto& spec : devices::standard_specs()) {
        table.add_row({spec.name, spec.tech.node,
                       devices::to_string(spec.tech.transistor),
                       spec.tech.foundry,
                       spec.ratio_sdc ? core::format_fixed(*spec.ratio_sdc, 2)
                                      : "-",
                       spec.ratio_due ? core::format_fixed(*spec.ratio_due, 2)
                                      : "-"});
    }
    table.print(out);
    return 0;
}

int cmd_fit(const Flags& flags, std::ostream& out) {
    const std::string device_name = flags.get("device", "NVIDIA K20");
    const auto device =
        devices::build_calibrated(devices::spec_by_name(device_name));
    const auto site =
        site_by_name(flags.get("site", "nyc"), flags.has("rainy"));

    core::TablePrinter table({"device", "site", "type", "FIT HE",
                              "FIT thermal", "total", "thermal share"});
    for (const auto type :
         {devices::ErrorType::kSdc, devices::ErrorType::kDue}) {
        const auto fit = core::device_fit(device, type, site);
        table.add_row({device.name(), site.system_name,
                       devices::to_string(type),
                       core::format_fixed(fit.high_energy, 2),
                       core::format_fixed(fit.thermal, 2),
                       core::format_fixed(fit.total(), 2),
                       core::format_percent(fit.thermal_share())});
    }
    print_table(table, flags.has("csv"), out);
    return 0;
}

beam::CampaignConfig campaign_config(const Flags& flags) {
    beam::CampaignConfig cfg;
    cfg.beam_time_per_run_s = flags.get_double("hours", 24.0) * 3600.0;
    cfg.seed = static_cast<std::uint64_t>(flags.get_double("seed", 2020.0));
    // Clamp before the cast: negative double -> unsigned is undefined.
    cfg.threads =
        static_cast<unsigned>(std::max(0.0, flags.get_double("threads", 1.0)));
    cfg.avf_trials = static_cast<std::size_t>(
        std::max(0.0, flags.get_double("avf-trials", 0.0)));
    return cfg;
}

int cmd_campaign(const Flags& flags, const Io& io) {
    beam::CampaignConfig cfg = campaign_config(flags);
    obs::ProgressMeter progress(io.progress(), "campaign", "devices",
                                devices::standard_specs().size());
    cfg.on_device_done = [&progress] { progress.tick(); };
    const auto result = beam::Campaign(cfg).run();
    progress.finish();

    core::TablePrinter table({"device", "type", "sigma_HE", "sigma_thermal",
                              "ratio"});
    for (const auto& row : result.ratio_rows) {
        const auto ratio = row.ratio();
        table.add_row({row.device, devices::to_string(row.type),
                       core::format_scientific(row.sigma_he()),
                       core::format_scientific(row.sigma_th()),
                       ratio ? core::format_fixed(ratio->ratio, 2)
                             : "no thermal errors"});
    }
    print_table(table, flags.has("csv"), io.out);
    return 0;
}

int cmd_detector(const Flags& flags, std::ostream& out) {
    const double baseline_days = flags.get_double("days", 4.0);
    const double water_days = flags.get_double("water-days", 3.0);
    const auto seed = static_cast<std::uint64_t>(flags.get_double("seed", 420.0));

    const detector::Tin2Detector tin2;
    stats::Rng rng(seed);
    const auto rec =
        tin2.record(detector::fig6_schedule(baseline_days, water_days), rng);
    const auto analysis = detector::analyze_step(rec);

    core::TablePrinter table({"quantity", "value"});
    table.add_row({"bins", std::to_string(rec.bare.size())});
    if (analysis) {
        table.add_row({"change bin", std::to_string(analysis->change_bin)});
        table.add_row({"relative step",
                       core::format_percent(analysis->relative_step)});
        table.add_row(
            {"step 95% CI",
             "[" + core::format_percent(analysis->step_ci.lower) + ", " +
                 core::format_percent(analysis->step_ci.upper) + "]"});
    } else {
        table.add_row({"step", "none detected"});
    }
    print_table(table, flags.has("csv"), out);
    return 0;
}

int cmd_checkpoint(const Flags& flags, std::ostream& out) {
    const auto nodes =
        static_cast<std::size_t>(flags.get_double("nodes", 4608.0));
    const std::string device_name = flags.get("device", "NVIDIA K20");
    const auto device =
        devices::build_calibrated(devices::spec_by_name(device_name));
    const auto site =
        site_by_name(flags.get("site", "leadville"), flags.has("rainy"));
    const auto fit = core::device_fit(device, devices::ErrorType::kDue, site);
    const auto plan = core::plan_for_fit(fit, nodes);

    core::TablePrinter table({"quantity", "value"});
    table.add_row({"node DUE FIT", core::format_fixed(fit.total(), 1)});
    table.add_row({"system MTBF [h]",
                   core::format_fixed(plan.mtbf_s / 3600.0, 2)});
    table.add_row({"optimal interval [min]",
                   core::format_fixed(plan.optimal_interval_s / 60.0, 1)});
    table.add_row({"waste", core::format_percent(plan.waste_fraction)});
    print_table(table, flags.has("csv"), out);
    return 0;
}

int cmd_report(const Flags& flags, const Io& io) {
    beam::CampaignConfig cfg = campaign_config(flags);
    obs::ProgressMeter progress(io.progress(), "report", "devices",
                                devices::standard_specs().size());
    cfg.on_device_done = [&progress] { progress.tick(); };
    core::ReliabilityStudy study(cfg);
    core::ReportOptions options;
    options.include_per_code = flags.has("per-code");
    core::write_markdown_report(study, options, io.out);
    progress.finish();
    return 0;
}

int cmd_top10(const Flags& flags, std::ostream& out) {
    core::TablePrinter table(
        {"system", "DRAM [Gbit]", "Phi_th [n/cm^2/h]", "thermal FIT"});
    for (const auto& row :
         core::fleet_dram_fit(environment::top10_supercomputers())) {
        table.add_row({row.system, core::format_scientific(row.capacity_gbit, 1),
                       core::format_fixed(row.thermal_flux, 1),
                       core::format_fixed(row.fit, 0)});
    }
    print_table(table, flags.has("csv"), out);
    return 0;
}

int dispatch(const std::string& cmd, const Flags& flags, const Io& io) {
    if (cmd == "list-devices") return cmd_list_devices(io.out);
    if (cmd == "fit") return cmd_fit(flags, io.out);
    if (cmd == "campaign") return cmd_campaign(flags, io);
    if (cmd == "detector") return cmd_detector(flags, io.out);
    if (cmd == "checkpoint") return cmd_checkpoint(flags, io.out);
    if (cmd == "report") return cmd_report(flags, io);
    if (cmd == "top10") return cmd_top10(flags, io.out);
    throw std::logic_error("dispatch: unreachable command " + cmd);
}

/// Derived metrics that only make sense at snapshot time.
void finalize_derived_metrics(double elapsed_s) {
    auto& reg = obs::Registry::global();
    reg.gauge("run.elapsed_s").set(elapsed_s);

    const auto busy_ns =
        static_cast<double>(reg.counter("pool.busy_ns").value());
    const double workers = reg.gauge("pool.workers").value();
    reg.gauge("pool.utilization")
        .set(workers > 0.0 && elapsed_s > 0.0
                 ? busy_ns / (elapsed_s * 1e9 * workers)
                 : 0.0);

    const auto table_hits = static_cast<double>(
        reg.counter("transport.collisions_xs_table").value());
    const auto exact = static_cast<double>(
        reg.counter("transport.collisions_xs_exact").value());
    reg.gauge("transport.xs_table_hit_rate")
        .set(table_hits + exact > 0.0 ? table_hits / (table_hits + exact)
                                      : 0.0);
}

obs::RunManifest build_manifest(const std::vector<std::string>& args,
                                const Flags& flags, const CommandSpec& spec,
                                double elapsed_s,
                                const std::string& started_at) {
    obs::RunManifest manifest;
    manifest.command = "tnr";
    for (const auto& a : args) manifest.command += " " + a;
    const double default_seed =
        spec.default_seed ? static_cast<double>(*spec.default_seed) : 0.0;
    manifest.seed =
        static_cast<std::uint64_t>(flags.get_double("seed", default_seed));
    manifest.threads =
        static_cast<unsigned>(std::max(0.0, flags.get_double("threads", 1.0)));
    manifest.elapsed_s = elapsed_s;
    manifest.started_at_utc = started_at;
    for (const auto& [key, value] : flags.values()) {
        manifest.flags.emplace_back(key, value);
    }
    return manifest;
}

/// Opens `path` for writing or throws a runtime_error (execution error,
/// exit code 2).
std::ofstream open_sink(const std::string& path, const char* what) {
    std::ofstream file(path);
    if (!file) {
        throw std::runtime_error(std::string("cannot open ") + what +
                                 " file: " + path);
    }
    return file;
}

void write_sinks(const Flags& flags, const obs::RunManifest& manifest,
                 const Io& io) {
    if (const std::string path = flags.get("metrics-out", ""); !path.empty()) {
        auto file = open_sink(path, "metrics");
        file << "{\"manifest\":" << manifest.to_json() << ",\"metrics\":"
             << obs::Registry::global().to_json() << "}\n";
        if (io.verbose) io.diag << "tnr: wrote metrics snapshot to " << path << '\n';
    }
    if (const std::string path = flags.get("trace-out", ""); !path.empty()) {
        auto file = open_sink(path, "trace");
        obs::Tracer::global().write_json(file);
        file << '\n';
        if (io.verbose) io.diag << "tnr: wrote Chrome trace to " << path << '\n';
    }
    if (const std::string path = flags.get("manifest-out", ""); !path.empty()) {
        auto file = open_sink(path, "manifest");
        manifest.write_json(file);
        file << '\n';
        if (io.verbose) io.diag << "tnr: wrote run manifest to " << path << '\n';
    }
}

}  // namespace

std::string usage() {
    std::ostringstream oss;
    oss << "tnr — thermal neutron reliability toolkit\n"
           "\n"
           "usage: tnr <command> [flags]\n"
           "\n"
           "commands:\n"
           "  list-devices                         the calibrated roster\n"
           "  fit --device NAME --site nyc|leadville [--rainy] [--csv]\n"
           "  campaign [--hours H] [--seed S] [--threads N]\n"
           "           [--avf-trials T] [--csv]     T>0: SWIFI-weighted codes\n"
           "  detector [--days D] [--water-days D] [--seed S] [--csv]\n"
           "  checkpoint [--nodes N] [--device NAME] [--site S] [--rainy]\n"
           "  top10 [--csv]                        supercomputer DDR FIT\n"
           "  report [--hours H] [--seed S] [--threads N] [--per-code]   markdown study report\n"
           "\n"
           "global flags (every command):\n"
           "  --quiet            suppress diagnostics and progress (stderr)\n"
           "  --verbose          extra diagnostics on stderr\n"
           "  --metrics-out F    write a JSON metrics snapshot (with the run\n"
           "                     manifest embedded) after a successful run\n"
           "  --trace-out F      write a Chrome trace_event JSON file; open\n"
           "                     in chrome://tracing or ui.perfetto.dev\n"
           "  --manifest-out F   write the reproducibility manifest alone\n"
           "\n"
           "Results go to stdout; diagnostics and progress go to stderr.\n"
           "Unknown flags are errors.\n"
           "\n"
           "--threads: 1 = serial (default), 0 = all cores, N = N workers on\n"
           "the shared pool; parallel results are seed-reproducible.\n";
    return oss.str();
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
    if (args.empty() || args[0] == "-h" || args[0] == "--help" ||
        args[0] == "help") {
        out << usage();
        return args.empty() ? 1 : 0;
    }
    const std::string& cmd = args[0];
    const auto& specs = command_specs();
    const auto spec_it = specs.find(cmd);
    if (spec_it == specs.end()) {
        err << "unknown command: " << cmd << "\n\n" << usage();
        return 1;
    }
    try {
        const Flags flags(args, 1, spec_it->second);
        if (flags.has("quiet") && flags.has("verbose")) {
            throw std::invalid_argument(
                "--quiet and --verbose are mutually exclusive");
        }
        NullBuffer null_buffer;
        std::ostream null_stream(&null_buffer);
        Io io{out, flags.has("quiet") ? null_stream : err, flags.has("quiet"),
              flags.has("verbose")};

        if (flags.has("trace-out")) obs::Tracer::global().enable();

        const std::string started_at = obs::current_utc_timestamp();
        const auto t0 = std::chrono::steady_clock::now();
        const int code = dispatch(cmd, flags, io);
        const double elapsed_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();

        if (code == 0) {
            finalize_derived_metrics(elapsed_s);
            const auto manifest = build_manifest(args, flags, spec_it->second,
                                                 elapsed_s, started_at);
            write_sinks(flags, manifest, io);
            if (io.verbose) {
                io.diag << "tnr: " << cmd << " finished in "
                        << core::format_fixed(elapsed_s, 2) << " s\n";
            }
        }
        return code;
    } catch (const std::invalid_argument& e) {
        err << "error: " << e.what() << "\n\n" << usage();
        return 1;
    } catch (const std::exception& e) {
        err << "error: " << e.what() << '\n';
        return 2;
    }
}

}  // namespace tnr::cli

#include "cli/cli.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "beam/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/fit.hpp"
#include "core/report.hpp"
#include "core/markdown_report.hpp"
#include "core/study.hpp"
#include "detector/analysis.hpp"
#include "detector/tin2.hpp"
#include "devices/catalog.hpp"
#include "environment/site.hpp"
#include "stats/rng.hpp"

namespace tnr::cli {

namespace {

/// Parsed flag set: --key value and boolean --key.
class Flags {
public:
    Flags(const std::vector<std::string>& args, std::size_t first) {
        for (std::size_t i = first; i < args.size(); ++i) {
            const std::string& a = args[i];
            if (a.rfind("--", 0) != 0) {
                throw std::invalid_argument("unexpected argument: " + a);
            }
            const std::string key = a.substr(2);
            if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
                values_[key] = args[++i];
            } else {
                values_[key] = "";
            }
        }
    }

    [[nodiscard]] bool has(const std::string& key) const {
        return values_.contains(key);
    }
    [[nodiscard]] std::string get(const std::string& key,
                                  const std::string& fallback) const {
        const auto it = values_.find(key);
        return it != values_.end() ? it->second : fallback;
    }
    [[nodiscard]] double get_double(const std::string& key,
                                    double fallback) const {
        const auto it = values_.find(key);
        if (it == values_.end()) return fallback;
        return std::stod(it->second);
    }

private:
    std::map<std::string, std::string> values_;
};

environment::Site site_by_name(const std::string& name, bool rainy) {
    environment::Site site = [&] {
        if (name == "nyc") return environment::nyc_datacenter();
        if (name == "leadville") return environment::leadville_datacenter();
        throw std::invalid_argument("unknown site: " + name +
                                    " (use nyc|leadville)");
    }();
    if (rainy) site.environment.weather = environment::Weather::kRainy;
    return site;
}

void print_table(const core::TablePrinter& table, bool csv, std::ostream& out) {
    if (csv) {
        table.print_csv(out);
    } else {
        table.print(out);
    }
}

int cmd_list_devices(std::ostream& out) {
    core::TablePrinter table({"device", "node", "transistor", "foundry",
                              "SDC ratio", "DUE ratio"});
    for (const auto& spec : devices::standard_specs()) {
        table.add_row({spec.name, spec.tech.node,
                       devices::to_string(spec.tech.transistor),
                       spec.tech.foundry,
                       spec.ratio_sdc ? core::format_fixed(*spec.ratio_sdc, 2)
                                      : "-",
                       spec.ratio_due ? core::format_fixed(*spec.ratio_due, 2)
                                      : "-"});
    }
    table.print(out);
    return 0;
}

int cmd_fit(const Flags& flags, std::ostream& out) {
    const std::string device_name = flags.get("device", "NVIDIA K20");
    const auto device =
        devices::build_calibrated(devices::spec_by_name(device_name));
    const auto site =
        site_by_name(flags.get("site", "nyc"), flags.has("rainy"));

    core::TablePrinter table({"device", "site", "type", "FIT HE",
                              "FIT thermal", "total", "thermal share"});
    for (const auto type :
         {devices::ErrorType::kSdc, devices::ErrorType::kDue}) {
        const auto fit = core::device_fit(device, type, site);
        table.add_row({device.name(), site.system_name,
                       devices::to_string(type),
                       core::format_fixed(fit.high_energy, 2),
                       core::format_fixed(fit.thermal, 2),
                       core::format_fixed(fit.total(), 2),
                       core::format_percent(fit.thermal_share())});
    }
    print_table(table, flags.has("csv"), out);
    return 0;
}

int cmd_campaign(const Flags& flags, std::ostream& out) {
    beam::CampaignConfig cfg;
    cfg.beam_time_per_run_s = flags.get_double("hours", 24.0) * 3600.0;
    cfg.seed = static_cast<std::uint64_t>(flags.get_double("seed", 2020.0));
    // Clamp before the cast: negative double -> unsigned is undefined.
    cfg.threads =
        static_cast<unsigned>(std::max(0.0, flags.get_double("threads", 1.0)));
    const auto result = beam::Campaign(cfg).run();

    core::TablePrinter table({"device", "type", "sigma_HE", "sigma_thermal",
                              "ratio"});
    for (const auto& row : result.ratio_rows) {
        const auto ratio = row.ratio();
        table.add_row({row.device, devices::to_string(row.type),
                       core::format_scientific(row.sigma_he()),
                       core::format_scientific(row.sigma_th()),
                       ratio ? core::format_fixed(ratio->ratio, 2)
                             : "no thermal errors"});
    }
    print_table(table, flags.has("csv"), out);
    return 0;
}

int cmd_detector(const Flags& flags, std::ostream& out) {
    const double baseline_days = flags.get_double("days", 4.0);
    const double water_days = flags.get_double("water-days", 3.0);
    const auto seed = static_cast<std::uint64_t>(flags.get_double("seed", 420.0));

    const detector::Tin2Detector tin2;
    stats::Rng rng(seed);
    const auto rec =
        tin2.record(detector::fig6_schedule(baseline_days, water_days), rng);
    const auto analysis = detector::analyze_step(rec);

    core::TablePrinter table({"quantity", "value"});
    table.add_row({"bins", std::to_string(rec.bare.size())});
    if (analysis) {
        table.add_row({"change bin", std::to_string(analysis->change_bin)});
        table.add_row({"relative step",
                       core::format_percent(analysis->relative_step)});
        table.add_row(
            {"step 95% CI",
             "[" + core::format_percent(analysis->step_ci.lower) + ", " +
                 core::format_percent(analysis->step_ci.upper) + "]"});
    } else {
        table.add_row({"step", "none detected"});
    }
    print_table(table, flags.has("csv"), out);
    return 0;
}

int cmd_checkpoint(const Flags& flags, std::ostream& out) {
    const auto nodes =
        static_cast<std::size_t>(flags.get_double("nodes", 4608.0));
    const std::string device_name = flags.get("device", "NVIDIA K20");
    const auto device =
        devices::build_calibrated(devices::spec_by_name(device_name));
    const auto site =
        site_by_name(flags.get("site", "leadville"), flags.has("rainy"));
    const auto fit = core::device_fit(device, devices::ErrorType::kDue, site);
    const auto plan = core::plan_for_fit(fit, nodes);

    core::TablePrinter table({"quantity", "value"});
    table.add_row({"node DUE FIT", core::format_fixed(fit.total(), 1)});
    table.add_row({"system MTBF [h]",
                   core::format_fixed(plan.mtbf_s / 3600.0, 2)});
    table.add_row({"optimal interval [min]",
                   core::format_fixed(plan.optimal_interval_s / 60.0, 1)});
    table.add_row({"waste", core::format_percent(plan.waste_fraction)});
    print_table(table, flags.has("csv"), out);
    return 0;
}

int cmd_report(const Flags& flags, std::ostream& out) {
    beam::CampaignConfig cfg;
    cfg.beam_time_per_run_s = flags.get_double("hours", 24.0) * 3600.0;
    cfg.seed = static_cast<std::uint64_t>(flags.get_double("seed", 2020.0));
    cfg.threads =
        static_cast<unsigned>(std::max(0.0, flags.get_double("threads", 1.0)));
    core::ReliabilityStudy study(cfg);
    core::ReportOptions options;
    options.include_per_code = flags.has("per-code");
    core::write_markdown_report(study, options, out);
    return 0;
}

int cmd_top10(const Flags& flags, std::ostream& out) {
    core::TablePrinter table(
        {"system", "DRAM [Gbit]", "Phi_th [n/cm^2/h]", "thermal FIT"});
    for (const auto& row :
         core::fleet_dram_fit(environment::top10_supercomputers())) {
        table.add_row({row.system, core::format_scientific(row.capacity_gbit, 1),
                       core::format_fixed(row.thermal_flux, 1),
                       core::format_fixed(row.fit, 0)});
    }
    print_table(table, flags.has("csv"), out);
    return 0;
}

}  // namespace

std::string usage() {
    std::ostringstream oss;
    oss << "tnr — thermal neutron reliability toolkit\n"
           "\n"
           "usage: tnr <command> [flags]\n"
           "\n"
           "commands:\n"
           "  list-devices                         the calibrated roster\n"
           "  fit --device NAME --site nyc|leadville [--rainy] [--csv]\n"
           "  campaign [--hours H] [--seed S] [--threads N] [--csv]\n"
           "  detector [--days D] [--water-days D] [--seed S] [--csv]\n"
           "  checkpoint [--nodes N] [--device NAME] [--site S] [--rainy]\n"
           "  top10 [--csv]                        supercomputer DDR FIT\n"
           "  report [--hours H] [--seed S] [--threads N] [--per-code]   markdown study report\n"
           "\n"
           "--threads: 1 = serial (default), 0 = all cores, N = N workers on\n"
           "the shared pool; parallel results are seed-reproducible.\n";
    return oss.str();
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
    if (args.empty() || args[0] == "-h" || args[0] == "--help" ||
        args[0] == "help") {
        out << usage();
        return args.empty() ? 1 : 0;
    }
    try {
        const Flags flags(args, 1);
        const std::string& cmd = args[0];
        if (cmd == "list-devices") return cmd_list_devices(out);
        if (cmd == "fit") return cmd_fit(flags, out);
        if (cmd == "campaign") return cmd_campaign(flags, out);
        if (cmd == "detector") return cmd_detector(flags, out);
        if (cmd == "checkpoint") return cmd_checkpoint(flags, out);
        if (cmd == "report") return cmd_report(flags, out);
        if (cmd == "top10") return cmd_top10(flags, out);
        err << "unknown command: " << cmd << "\n\n" << usage();
        return 1;
    } catch (const std::invalid_argument& e) {
        err << "error: " << e.what() << "\n\n" << usage();
        return 1;
    } catch (const std::exception& e) {
        err << "error: " << e.what() << '\n';
        return 2;
    }
}

}  // namespace tnr::cli

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "core/parallel/cancel.hpp"

int main(int argc, char** argv) {
    // First Ctrl-C requests a cooperative stop (sinks and journal flush,
    // exit 130); a second one falls back to the default disposition.
    tnr::core::parallel::install_sigint_handler();
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
    for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
    return tnr::cli::run(args, std::cin, std::cout, std::cerr);
}

#pragma once
// The `tnr` command-line tool, as a testable library: each subcommand is a
// pure function of its arguments writing to a stream.
//
//   tnr list-devices
//   tnr fit --device "NVIDIA K20" --site leadville [--rainy] [--csv]
//   tnr campaign [--hours H] [--seed S] [--threads N] [--csv]
//   tnr detector [--days D] [--water-days D] [--seed S]
//   tnr checkpoint --nodes N --device NAME [--rainy]
//   tnr top10
//
// Exit codes: 0 success, 1 usage error, 2 execution error.

#include <iosfwd>
#include <string>
#include <vector>

namespace tnr::cli {

/// Runs the CLI on pre-split arguments (excluding argv[0]).
/// Output goes to `out`, diagnostics to `err`; `in` is the request stream
/// consumed by `tnr serve` (main() passes std::cin).
int run(const std::vector<std::string>& args, std::istream& in,
        std::ostream& out, std::ostream& err);

/// Convenience overload with an empty input stream (tests of the one-shot
/// commands).
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

/// The usage text (shown for -h/--help and usage errors).
std::string usage();

}  // namespace tnr::cli

#pragma once
// Thermal-flux environment modifiers — the variables §III.C ("Motivation")
// and §V of the paper call out: weather, concrete structures, and cooling
// water all moderate fast neutrons into thermals near the device.
//
// The paper's measured/adopted values:
//   * rain/thunderstorm: thermal flux up to 2x a sunny day [ziegler2003];
//   * large concrete slab (machine-room floor): +20%;
//   * 2 inches of cooling water (Tin-II measurement, Fig. 6): +24%;
//   * combined slab + water-cooling adjustment used for the FIT figures: +44%.
// Contributions combine additively (each material adds its own back-scattered
// thermal population to the ambient field), matching the paper's 20+24=44.
//
// Composition semantics (audited for double application): the weather factor
// scales only the *ambient open-field* term. Rain moderates the atmospheric
// cascade, doubling the thermal population arriving from outside; the
// back-scatter contributed by nearby concrete/water is fed by the fast flux,
// which rain does not change, so those additive boosts must NOT be multiplied
// by the weather factor. A rainy data center is therefore 2.0 + 0.44 = 2.44,
// not (1 + 0.44) x 2 = 2.88. Pinned by test_environment
// (RainScalesAmbientOnly / TripleCompositionNoDoubleApplication).

namespace tnr::environment {

enum class Weather {
    kSunny,
    kRainy,  ///< thunderstorm/rain: thermal flux doubled.
};

/// Human-readable weather name.
const char* to_string(Weather w);

/// Additive fractional increases measured for data-center materials.
inline constexpr double kConcreteSlabBoost = 0.20;
inline constexpr double kWaterCoolingBoost = 0.24;
inline constexpr double kRainMultiplier = 2.0;

/// The surroundings of a device; produces a multiplier on the baseline
/// open-field thermal flux.
struct ThermalEnvironment {
    Weather weather = Weather::kSunny;
    bool concrete_slab = false;    ///< machine-room floor / parking lot.
    bool water_cooling = false;    ///< liquid cooling loop adjacent to device.
    /// Extra additive boost for anything else nearby (fuel tank, passengers —
    /// humans are mostly water and excellent moderators).
    double extra_material_boost = 0.0;

    /// Multiplier on the open-field thermal flux. Weather scales the ambient
    /// term only; material back-scatter boosts are additive on top (see the
    /// composition-semantics note above).
    [[nodiscard]] double thermal_multiplier() const {
        const double ambient =
            weather == Weather::kRainy ? kRainMultiplier : 1.0;
        double boost = 0.0;
        if (concrete_slab) boost += kConcreteSlabBoost;
        if (water_cooling) boost += kWaterCoolingBoost;
        boost += extra_material_boost;
        return ambient + boost;
    }

    /// The paper's data-center configuration (slab + cooling): 1.44.
    static ThermalEnvironment datacenter() {
        return {Weather::kSunny, true, true, 0.0};
    }
    /// Open field on a sunny day: 1.0.
    static ThermalEnvironment open_field() { return {}; }
};

}  // namespace tnr::environment

#pragma once
// A Site binds a Location to a ThermalEnvironment and (optionally) to a
// deployed system's DRAM inventory — everything needed to turn beam-measured
// cross sections into in-the-field error rates. The Top-10 catalog backs the
// supercomputer DDR FIT projection ([jsc2020] HPC_FIT figure, Txt-3).

#include <string>
#include <vector>

#include "environment/location.hpp"
#include "environment/modifiers.hpp"

namespace tnr::environment {

/// Memory technology deployed at a site (for the DDR FIT projection).
enum class DramGeneration { kDdr3, kDdr4 };

/// A computing installation.
struct Site {
    std::string system_name;
    Location location;
    ThermalEnvironment environment;
    /// Total system DRAM [Gbit] (0 when not modelling a fleet).
    double dram_capacity_gbit = 0.0;
    DramGeneration dram_generation = DramGeneration::kDdr4;

    /// High-energy flux at the device [n/cm^2/h].
    [[nodiscard]] double high_energy_flux() const {
        return location.high_energy_flux();
    }

    /// Thermal flux at the device including environment modifiers
    /// [n/cm^2/h].
    [[nodiscard]] double thermal_flux() const {
        return location.thermal_flux_baseline() *
               environment.thermal_multiplier();
    }
};

/// The ten fastest systems of the November 2019 Top500 list (the list
/// contemporary with the paper), with site altitude and approximate
/// aggregate DRAM capacity. All are modelled as liquid-cooled machine rooms
/// on concrete slabs (the paper's +44% thermal adjustment).
std::vector<Site> top10_supercomputers();

/// The two reference sites used for the FIT decomposition (Txt-2):
/// sea-level NYC and high-altitude Leadville, both with the data-center
/// thermal adjustment.
Site nyc_datacenter();
Site leadville_datacenter();

}  // namespace tnr::environment

#pragma once
// A Site binds a Location to a ThermalEnvironment and (optionally) to a
// deployed system's DRAM inventory — everything needed to turn beam-measured
// cross sections into in-the-field error rates. The Top-10 catalog backs the
// supercomputer DDR FIT projection ([jsc2020] HPC_FIT figure, Txt-3).

#include <string>
#include <vector>

#include "environment/location.hpp"
#include "environment/modifiers.hpp"

namespace tnr::environment {

/// Memory technology deployed at a site (for the DDR FIT projection).
enum class DramGeneration { kDdr3, kDdr4 };

/// A computing installation.
struct Site {
    std::string system_name;
    Location location;
    ThermalEnvironment environment;
    /// Total system DRAM [Gbit] (0 when not modelling a fleet).
    double dram_capacity_gbit = 0.0;
    DramGeneration dram_generation = DramGeneration::kDdr4;
    /// Facility-measured flux overrides [n/cm^2/h]; negative = unset, i.e.
    /// derive the flux from location + environment as usual. Used for the
    /// instrumented halls (STAR, HOTNES) whose fields are measured, not
    /// modelled.
    double thermal_flux_override = -1.0;
    double high_energy_flux_override = -1.0;

    /// High-energy flux at the device [n/cm^2/h].
    [[nodiscard]] double high_energy_flux() const {
        if (high_energy_flux_override >= 0.0) return high_energy_flux_override;
        return location.high_energy_flux();
    }

    /// Thermal flux at the device including environment modifiers
    /// [n/cm^2/h].
    [[nodiscard]] double thermal_flux() const {
        if (thermal_flux_override >= 0.0) return thermal_flux_override;
        return location.thermal_flux_baseline() *
               environment.thermal_multiplier();
    }
};

/// The ten fastest systems of the November 2019 Top500 list (the list
/// contemporary with the paper), with site altitude and approximate
/// aggregate DRAM capacity. All are modelled as liquid-cooled machine rooms
/// on concrete slabs (the paper's +44% thermal adjustment).
std::vector<Site> top10_supercomputers();

/// The two reference sites used for the FIT decomposition (Txt-2):
/// sea-level NYC and high-altitude Leadville, both with the data-center
/// thermal adjustment.
Site nyc_datacenter();
Site leadville_datacenter();

/// Instrumented facilities from the flux-measurement papers (PAPERS.md),
/// carried as flux-override sites so fleets and campaigns can be placed in
/// a measured field. Adopted values are tabulated with sources in
/// docs/fleet.md.
///
/// STAR experimental hall at RHIC (BNL): thermal-neutron field measured in
/// the hall during collider operations [arXiv:1310.2495].
Site star_hall();
/// HOTNES thermal-neutron facility (ENEA Frascati): homogeneous thermal
/// field from an Am-B source array in a polyethylene cavity
/// [arXiv:1802.08132]; no fast/high-energy component.
Site hotnes_chamber();

/// Sites addressable by slug from the CLI and serve layers ("nyc",
/// "leadville", "star-hall", "hotnes", plus "top10:<n>" is NOT included —
/// the Top-10 catalog is addressed positionally). Returns nullptr for an
/// unknown slug.
const Site* site_by_slug(const std::string& slug);

/// The slugs accepted by site_by_slug, in display order.
std::vector<std::string> site_slugs();

}  // namespace tnr::environment

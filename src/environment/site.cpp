#include "environment/site.hpp"

namespace tnr::environment {

std::vector<Site> top10_supercomputers() {
    const ThermalEnvironment dc = ThermalEnvironment::datacenter();
    // Capacities are aggregate node DRAM, rounded; altitudes from site
    // geography. DDR4 everywhere except the two older Chinese systems.
    return {
        {"Summit (ORNL)", Location("Oak Ridge, TN", 36.0, -84.3, 260.0), dc,
         2.4e7, DramGeneration::kDdr4},
        {"Sierra (LLNL)", Location("Livermore, CA", 37.7, -121.8, 170.0), dc,
         1.1e7, DramGeneration::kDdr4},
        {"Sunway TaihuLight (NSCC-Wuxi)", Location("Wuxi, CN", 31.5, 120.3, 5.0),
         dc, 1.0e7, DramGeneration::kDdr3},
        {"Tianhe-2A (NSCC-Guangzhou)",
         Location("Guangzhou, CN", 23.1, 113.3, 10.0), dc, 1.1e7,
         DramGeneration::kDdr3},
        {"Frontera (TACC)", Location("Austin, TX", 30.3, -97.7, 150.0), dc,
         1.2e7, DramGeneration::kDdr4},
        {"Piz Daint (CSCS)", Location("Lugano, CH", 46.0, 8.95, 273.0), dc,
         2.7e6, DramGeneration::kDdr4},
        {"Trinity (LANL)", Location("Los Alamos, NM", 35.9, -106.3, 2231.0), dc,
         1.7e7, DramGeneration::kDdr4},
        {"ABCI (AIST)", Location("Tokyo, JP", 35.7, 139.8, 10.0), dc, 3.8e6,
         DramGeneration::kDdr4},
        {"SuperMUC-NG (LRZ)", Location("Garching, DE", 48.25, 11.65, 480.0), dc,
         5.8e6, DramGeneration::kDdr4},
        {"Lassen (LLNL)", Location("Livermore, CA", 37.7, -121.8, 170.0), dc,
         2.0e6, DramGeneration::kDdr4},
    };
}

Site nyc_datacenter() {
    return {"NYC reference data center", Location::new_york_city(),
            ThermalEnvironment::datacenter(), 0.0, DramGeneration::kDdr4};
}

Site leadville_datacenter() {
    return {"Leadville reference data center", Location::leadville_co(),
            ThermalEnvironment::datacenter(), 0.0, DramGeneration::kDdr4};
}

Site star_hall() {
    Site s{"STAR experimental hall (BNL)",
           Location("Upton, NY", 40.87, -72.87, 25.0),
           ThermalEnvironment::open_field(), 0.0, DramGeneration::kDdr4};
    // Adopted hall-average thermal flux during RHIC operations, ~12
    // n/cm^2/s [arXiv:1310.2495] — roughly four orders of magnitude above
    // the sea-level cosmic background. High-energy flux stays at the
    // location's cosmic baseline.
    s.thermal_flux_override = 4.3e4;
    return s;
}

Site hotnes_chamber() {
    Site s{"HOTNES thermal chamber (ENEA Frascati)",
           Location("Frascati, IT", 41.8, 12.7, 320.0),
           ThermalEnvironment::open_field(), 0.0, DramGeneration::kDdr4};
    // Adopted cavity thermal flux, ~7.0e2 n/cm^2/s [arXiv:1802.08132].
    // The field is purely thermal (moderated Am-B sources): no high-energy
    // component reaches the device under test.
    s.thermal_flux_override = 2.52e6;
    s.high_energy_flux_override = 0.0;
    return s;
}

const Site* site_by_slug(const std::string& slug) {
    static const Site kNyc = nyc_datacenter();
    static const Site kLeadville = leadville_datacenter();
    static const Site kStar = star_hall();
    static const Site kHotnes = hotnes_chamber();
    if (slug == "nyc") return &kNyc;
    if (slug == "leadville") return &kLeadville;
    if (slug == "star-hall") return &kStar;
    if (slug == "hotnes") return &kHotnes;
    return nullptr;
}

std::vector<std::string> site_slugs() {
    return {"nyc", "leadville", "star-hall", "hotnes"};
}

}  // namespace tnr::environment

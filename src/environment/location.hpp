#pragma once
// Geographic flux model. The high-energy (>10 MeV) atmospheric neutron flux
// is well characterized (JEDEC JESD89A): ~13 n/cm^2/h at New York City sea
// level, scaling exponentially with atmospheric depth (altitude). The
// ambient *thermal* flux is far less predictable — the whole point of the
// paper — so here we model only its open-field baseline; the material- and
// weather-dependent modifiers live in modifiers.hpp.

#include <string>

namespace tnr::environment {

/// Reference fluxes (n/cm^2/h) at New York City sea level.
inline constexpr double kNycHighEnergyFlux = 13.0;  ///< E > 10 MeV, JESD89A.
/// Open-field ambient thermal flux (E < 0.5 eV) at sea level, before any
/// environment modifiers.
inline constexpr double kSeaLevelThermalFlux = 4.0;

/// Atmospheric depth at sea level [g/cm^2].
inline constexpr double kSeaLevelDepth = 1033.7;

/// Effective attenuation length for the high-energy neutron cascade
/// [g/cm^2]; 128 g/cm^2 reproduces the canonical Leadville/NYC ratio (~13x).
inline constexpr double kNeutronAttenuationLength = 128.0;

/// Attenuation length for the ambient *thermal* population [g/cm^2]. It is
/// shorter than the fast one — thermals are locally moderated fast neutrons
/// plus evaporation products, so their density grows faster with altitude —
/// which is why the thermal share of the FIT rate rises at Leadville
/// (the paper's Txt-2 numbers pin it near 105 g/cm^2).
inline constexpr double kThermalAttenuationLength = 105.0;

/// A place on Earth where computing devices live.
class Location {
public:
    Location(std::string name, double latitude_deg, double longitude_deg,
             double altitude_m);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] double latitude_deg() const noexcept { return latitude_; }
    [[nodiscard]] double longitude_deg() const noexcept { return longitude_; }
    [[nodiscard]] double altitude_m() const noexcept { return altitude_; }

    /// Atmospheric depth [g/cm^2] at this altitude (US Standard Atmosphere
    /// barometric relation).
    [[nodiscard]] double atmospheric_depth() const;

    /// Multiplier on the NYC sea-level high-energy flux due to altitude:
    /// exp((d_sea - d_here) / L).
    [[nodiscard]] double altitude_factor() const;

    /// Altitude multiplier for the ambient thermal flux (shorter
    /// attenuation length; see kThermalAttenuationLength).
    [[nodiscard]] double thermal_altitude_factor() const;

    /// Geomagnetic-rigidity multiplier; a mild cosine-latitude model
    /// (equator ~0.8, poles ~1.1, NYC-normalized). The altitude effect
    /// dominates by far.
    [[nodiscard]] double rigidity_factor() const;

    /// High-energy (>10 MeV) flux at this location [n/cm^2/h].
    [[nodiscard]] double high_energy_flux() const;

    /// Baseline open-field thermal flux at this location [n/cm^2/h]
    /// (scales with the same altitude factor: ambient thermals are locally
    /// moderated fast neutrons).
    [[nodiscard]] double thermal_flux_baseline() const;

    // Canonical locations used by the paper's FIT discussion.
    static Location new_york_city();   ///< sea level reference.
    static Location leadville_co();    ///< 10,151 ft — the classic high-altitude test point.
    static Location los_alamos_nm();   ///< Trinity's home, 2231 m.

private:
    std::string name_;
    double latitude_;
    double longitude_;
    double altitude_;
};

/// Solar-cycle modulation of the cosmic-ray-driven neutron flux. The paper
/// notes fluxes are quoted "under normal solar conditions"; over the ~11 y
/// cycle the ground-level neutron flux swings roughly +-15% around its
/// mean, *lowest at solar maximum* (the heliosphere shields hardest then).
/// cycle_phase in [0,1): 0 = solar minimum. Multiply any flux by this.
double solar_modulation_factor(double cycle_phase);

}  // namespace tnr::environment

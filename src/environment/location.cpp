#include "environment/location.hpp"

#include <cmath>
#include <stdexcept>

namespace tnr::environment {

Location::Location(std::string name, double latitude_deg, double longitude_deg,
                   double altitude_m)
    : name_(std::move(name)),
      latitude_(latitude_deg),
      longitude_(longitude_deg),
      altitude_(altitude_m) {
    if (latitude_deg < -90.0 || latitude_deg > 90.0) {
        throw std::invalid_argument("Location: latitude out of range");
    }
    if (longitude_deg < -180.0 || longitude_deg > 180.0) {
        throw std::invalid_argument("Location: longitude out of range");
    }
    if (altitude_m < -500.0 || altitude_m > 20000.0) {
        throw std::invalid_argument("Location: altitude out of range");
    }
}

double Location::atmospheric_depth() const {
    // US Standard Atmosphere troposphere pressure profile:
    // d(h) = d0 * (1 - 2.2558e-5 * h)^5.2559, h in metres.
    const double base = 1.0 - 2.2558e-5 * altitude_;
    if (base <= 0.0) return 0.0;
    return kSeaLevelDepth * std::pow(base, 5.2559);
}

double Location::altitude_factor() const {
    return std::exp((kSeaLevelDepth - atmospheric_depth()) /
                    kNeutronAttenuationLength);
}

double Location::thermal_altitude_factor() const {
    return std::exp((kSeaLevelDepth - atmospheric_depth()) /
                    kThermalAttenuationLength);
}

double Location::rigidity_factor() const {
    // Normalized so NYC (40.7 N) has factor 1. Flux is lowest at the
    // geomagnetic equator (high cutoff rigidity) and ~20-30% higher at the
    // poles; a gentle cos^2 model captures the trend.
    const double lat_rad = latitude_ * M_PI / 180.0;
    const double raw = 1.1 - 0.3 * std::cos(lat_rad) * std::cos(lat_rad);
    const double nyc_rad = 40.7 * M_PI / 180.0;
    const double nyc_raw = 1.1 - 0.3 * std::cos(nyc_rad) * std::cos(nyc_rad);
    return raw / nyc_raw;
}

double Location::high_energy_flux() const {
    return kNycHighEnergyFlux * altitude_factor() * rigidity_factor();
}

double Location::thermal_flux_baseline() const {
    return kSeaLevelThermalFlux * thermal_altitude_factor() * rigidity_factor();
}

Location Location::new_york_city() {
    return Location("New York City", 40.7, -74.0, 0.0);
}

Location Location::leadville_co() {
    // 10,151 ft = 3094 m.
    return Location("Leadville, CO", 39.25, -106.3, 3094.0);
}

Location Location::los_alamos_nm() {
    return Location("Los Alamos, NM", 35.9, -106.3, 2231.0);
}

double solar_modulation_factor(double cycle_phase) {
    if (cycle_phase < 0.0 || cycle_phase >= 1.0) {
        throw std::invalid_argument(
            "solar_modulation_factor: phase must be in [0,1)");
    }
    // +-15% sinusoid: 1.15 at solar minimum (phase 0), 0.85 at maximum.
    return 1.0 + 0.15 * std::cos(2.0 * M_PI * cycle_phase);
}

}  // namespace tnr::environment

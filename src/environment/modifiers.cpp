#include "environment/modifiers.hpp"

namespace tnr::environment {

// ThermalEnvironment is header-only; this translation unit anchors the
// library and hosts the enum name helper.

const char* to_string(Weather w) {
    switch (w) {
        case Weather::kSunny:
            return "sunny";
        case Weather::kRainy:
            return "rainy";
    }
    return "unknown";
}

}  // namespace tnr::environment

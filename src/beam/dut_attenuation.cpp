#include "beam/dut_attenuation.hpp"

#include <cmath>
#include <stdexcept>

#include "physics/units.hpp"

namespace tnr::beam {

double dut_transmission_at(const DutStack& stack, double energy_ev) {
    if (stack.shroud_plastic_cm < 0.0 || stack.heatsink_al_cm < 0.0 ||
        stack.board_fr4_cm <= 0.0 || stack.silicon_cm <= 0.0) {
        throw std::invalid_argument("dut_transmission_at: bad stack");
    }
    const struct {
        physics::Material material;
        double thickness_cm;
    } layers[] = {
        {physics::Material::polyethylene(), stack.shroud_plastic_cm},
        {physics::Material::aluminum(), stack.heatsink_al_cm},
        {physics::Material::fr4(), stack.board_fr4_cm},
        {physics::Material::silicon(), stack.silicon_cm},
    };
    double optical_depth = 0.0;
    for (const auto& layer : layers) {
        optical_depth += layer.material.sigma_total(energy_ev) *
                         layer.thickness_cm;
    }
    return std::exp(-optical_depth);
}

DutTransmission dut_transmission(const DutStack& stack) {
    DutTransmission t;
    t.thermal = dut_transmission_at(stack, physics::kThermalReferenceEv);
    t.high_energy = dut_transmission_at(stack, 10.0 * physics::kMeV);
    return t;
}

double stacked_board_fluence_fraction(std::size_t boards_in_front,
                                      double per_board_transmission) {
    if (per_board_transmission < 0.0 || per_board_transmission > 1.0) {
        throw std::invalid_argument(
            "stacked_board_fluence_fraction: bad transmission");
    }
    return std::pow(per_board_transmission,
                    static_cast<double>(boards_in_front));
}

}  // namespace tnr::beam

#pragma once
// Acceptance screening: the practical question a COTS integrator faces
// after reading the paper — "is this part boron-heavy?" — answered with
// minimal beam time. Classic zero-failure / few-failure test planning
// (JESD89-style): the beam time needed to demonstrate sigma below a limit
// at a given confidence, and the accept/reject decision on an observed run.

#include <cstdint>

#include "stats/poisson.hpp"

namespace tnr::beam {

/// Beam time [s] needed so that observing ZERO errors demonstrates
/// sigma < sigma_max at the given confidence:
///   T = -ln(1 - confidence) / (sigma_max * flux).
double zero_failure_test_time_s(double sigma_max_cm2, double flux_n_cm2_s,
                                double confidence = 0.95);

/// Accept/reject on an observed run: the part is ACCEPTED when the upper
/// end of the exact Poisson CI on sigma lies below sigma_max, REJECTED when
/// the lower end lies above it, INCONCLUSIVE otherwise (needs more fluence).
enum class ScreeningVerdict { kAccept, kReject, kInconclusive };

const char* to_string(ScreeningVerdict v);

struct ScreeningResult {
    ScreeningVerdict verdict = ScreeningVerdict::kInconclusive;
    double sigma_estimate = 0.0;
    stats::Interval sigma_ci;
};

ScreeningResult screen_part(std::uint64_t errors, double fluence_n_cm2,
                            double sigma_max_cm2, double confidence = 0.95);

}  // namespace tnr::beam

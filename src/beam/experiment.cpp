#include "beam/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/obs/metrics.hpp"

namespace tnr::beam {

BeamExperiment::BeamExperiment(Beamline beamline, devices::Device device,
                               std::string workload_name, CodeWeights weights)
    : beamline_(std::move(beamline)),
      device_(std::move(device)),
      workload_(std::move(workload_name)),
      weights_(weights) {}

BeamExperiment::BeamExperiment(
    Beamline beamline, devices::Device device, std::string workload_name,
    const faultinject::VulnerabilityTable& vulnerability)
    : beamline_(std::move(beamline)),
      device_(std::move(device)),
      workload_(std::move(workload_name)) {
    const double sdc = vulnerability.sdc_weight(workload_);
    const double due = vulnerability.due_weight(workload_);
    weights_ = CodeWeights{sdc, due, sdc, due};
}

double BeamExperiment::true_error_rate(devices::ErrorType type) const {
    const double he_weight =
        (type == devices::ErrorType::kSdc) ? weights_.he_sdc : weights_.he_due;
    const double th_weight =
        (type == devices::ErrorType::kSdc) ? weights_.th_sdc : weights_.th_due;
    const double he_rate =
        device_.high_energy_response(type).event_rate(beamline_.spectrum());
    const double th_rate =
        device_.thermal_response(type).event_rate(beamline_.spectrum());
    return he_rate * he_weight + th_rate * th_weight;
}

ExperimentResult BeamExperiment::run(const ExperimentConfig& config,
                                     stats::Rng& rng) const {
    if (config.beam_time_s <= 0.0 || config.derating <= 0.0 ||
        config.derating > 1.0) {
        throw std::invalid_argument("BeamExperiment: bad config");
    }
    ExperimentResult result;
    const double fluence =
        beamline_.reference_flux() * config.derating * config.beam_time_s;

    const auto measure = [&](devices::ErrorType type) {
        CrossSectionMeasurement m;
        m.device = device_.name();
        m.workload = workload_;
        m.beamline = beamline_.name();
        m.type = type;
        m.fluence = fluence;
        const double mean =
            true_error_rate(type) * config.derating * config.beam_time_s;
        m.errors = rng.poisson(mean);
        return m;
    };

    result.sdc = measure(devices::ErrorType::kSdc);
    result.due = measure(devices::ErrorType::kDue);

    static auto& experiments =
        core::obs::Registry::global().counter("beam.experiments");
    static auto& errors = core::obs::Registry::global().counter("beam.errors");
    experiments.add(1);
    errors.add(result.sdc.errors + result.due.errors);
    return result;
}

BeamExperiment::LoggedResult BeamExperiment::run_logged(
    const ExperimentConfig& config, stats::Rng& rng) const {
    LoggedResult logged;
    logged.summary = run(config, rng);
    // Conditioned on the count, homogeneous-Poisson event times are i.i.d.
    // uniform over the run; sorting gives the order statistics.
    const auto stamp = [&](std::uint64_t count) {
        std::vector<double> times(count);
        for (auto& t : times) t = rng.uniform(0.0, config.beam_time_s);
        std::sort(times.begin(), times.end());
        return times;
    };
    logged.sdc_times_s = stamp(logged.summary.sdc.errors);
    logged.due_times_s = stamp(logged.summary.due.errors);
    return logged;
}

}  // namespace tnr::beam

#pragma once
// Per-code sensitivity model: how a device's base cross sections modulate
// with the executed workload, separately for the high-energy and thermal
// channels. This encodes the companion study's per-code observations:
//
//   * HE cross sections vary strongly (>2x) across codes, driven by each
//     code's architectural vulnerability (SWIFI AVF);
//   * on the Xeon Phi the *thermal* SDC cross section is nearly flat across
//     codes (<20% variation) — its 10B is not in the structures causing the
//     HE spread — modelled by the spec's thermal_sdc_code_damping;
//   * DUE trends are similar for both channels;
//   * the FPGA's per-code scaling is *area*-driven, not AVF-driven: the
//     double-precision MNIST build uses ~2x the resources and showed ~4x
//     the thermal cross section.

#include <map>
#include <string>

#include "devices/catalog.hpp"
#include "faultinject/avf.hpp"
#include "workloads/suite.hpp"

namespace tnr::beam {

/// Multiplier on the device's base cross section, per channel x error type.
struct CodeWeights {
    double he_sdc = 1.0;
    double he_due = 1.0;
    double th_sdc = 1.0;
    double th_due = 1.0;
};

/// FPGA per-build resource scaling (HE sigma tracks area; thermal sigma was
/// observed to grow faster on the double build).
struct FpgaBuildScale {
    double area = 1.0;      ///< relative resource usage -> HE scale.
    double thermal = 1.0;   ///< observed thermal scale.
};

/// Per-device map from workload name to CodeWeights.
class CodeSensitivityModel {
public:
    /// Builds the model for a device from its suite's SWIFI vulnerability
    /// table. `spec` may be null (unknown device): AVF weights are then
    /// applied undamped to both channels.
    static CodeSensitivityModel build(
        const devices::DeviceSpec* spec,
        const std::vector<workloads::SuiteEntry>& suite,
        const faultinject::VulnerabilityTable& vulnerability);

    /// Neutral model (all weights 1).
    static CodeSensitivityModel uniform(
        const std::vector<workloads::SuiteEntry>& suite);

    [[nodiscard]] const CodeWeights& weights(const std::string& workload) const;

    /// The FPGA build table (exposed for tests and reports).
    static const std::map<std::string, FpgaBuildScale>& fpga_builds();

private:
    std::map<std::string, CodeWeights> weights_;
};

}  // namespace tnr::beam

#pragma once
// A full ChipIR + ROTAX campaign over the paper's roster: same devices, same
// codes, same inputs at both facilities (§III.C), then the HE/thermal
// cross-section ratio analysis of Fig. 5.
//
// Fault tolerance (docs/robustness.md): the device×workload grid can run in
// an *isolated* mode where every device draws from its own deterministic
// RNG stream, a failing device is retried up to `max_attempts` times and
// then recorded as a DeviceFailure instead of aborting the grid, finished
// devices are streamed to an append-only journal, and a previously
// journaled run can be resumed with bitwise-identical output.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "beam/experiment.hpp"
#include "core/parallel/cancel.hpp"
#include "devices/catalog.hpp"
#include "faultinject/avf.hpp"
#include "physics/transport.hpp"
#include "workloads/suite.hpp"

namespace tnr::beam {

/// The per-device Fig.-5 row: pooled (over workloads) cross sections at each
/// facility and their ratio.
struct DeviceRatioRow {
    std::string device;
    devices::ErrorType type = devices::ErrorType::kSdc;
    std::uint64_t errors_he = 0;
    double fluence_he = 0.0;
    std::uint64_t errors_th = 0;
    double fluence_th = 0.0;

    /// Pooled cross sections. A zero-fluence row means the device was never
    /// irradiated at that facility (it failed or never ran) — asking for its
    /// cross section is a numeric error, not a silent 0.0.
    [[nodiscard]] double sigma_he() const;
    [[nodiscard]] double sigma_th() const;

    /// HE / thermal ratio with conservative CI; nullopt when no thermal
    /// errors were observed (the FPGA DUE case).
    [[nodiscard]] std::optional<stats::RateRatio> ratio() const;
};

/// One device's slice of the campaign: its whole workload suite at both
/// facilities, tallied into the per-device Fig.-5 rows. This is the unit of
/// journaling and resume.
struct DeviceOutcome {
    std::vector<CrossSectionMeasurement> measurements;
    DeviceRatioRow sdc_row;
    DeviceRatioRow due_row;
};

/// One failed attempt at running a device. Devices that eventually succeed
/// keep the failures of their earlier attempts, so retries stay visible.
struct DeviceFailure {
    std::string name;
    std::string what;
    unsigned attempt = 0;
};

struct CampaignConfig {
    double beam_time_per_run_s = 3600.0;
    std::uint64_t seed = 2020;
    /// Derating applied to boards 2..N at ChipIR (board 1 on axis). ROTAX
    /// always tests one board at a time (the DUT blocks the thermal beam).
    /// Every entry must be finite and in (0, 1].
    std::vector<double> chipir_deratings = {1.0, 0.82, 0.67};
    /// AVF trials per workload for the vulnerability table (0 = uniform
    /// weights, much faster).
    std::size_t avf_trials = 0;
    /// Transport defaults (mode / batch size / SIMD tier) inherited by any
    /// MC slab sub-analysis attached to the campaign — the same knob
    /// vocabulary `tnr transmission` exposes, validated by the same code.
    /// The shipped ratio pipeline attenuates the DUT stack analytically, so
    /// these do not perturb the Fig.-5 table itself.
    physics::TransportConfig transport;
    /// Workers for the device×workload experiment grid: 1 = serial (bitwise
    /// identical to the historical single-RNG walk), 0 = all available
    /// cores, N = devices fan out over the shared pool with one split() RNG
    /// stream per device. Any parallel run (threads != 1) is bitwise
    /// reproducible for a fixed seed, independent of the thread count.
    unsigned threads = 1;
    /// Attempts per device (>= 1). With > 1 a device whose run throws is
    /// retried on a fresh deterministic RNG stream (streams are pre-split
    /// device-major, attempt-minor, so retries never perturb other devices
    /// and results stay bitwise reproducible for a fixed config).
    unsigned max_attempts = 1;
    /// Cooperative cancellation: checked before every device attempt. Once
    /// set, no new device starts; run() throws core::RunError(kCancelled)
    /// after in-flight devices drain (their outcomes are still journaled).
    const core::parallel::CancelToken* cancel = nullptr;
    /// Devices already completed by a previous run (journal replay, keyed by
    /// device name): they are not executed, their replayed outcomes slot
    /// into the result in roster order, and the RNG stream layout stays
    /// exactly that of an uninterrupted run.
    std::map<std::string, DeviceOutcome> completed;
    /// Invoked once per finished device (from the executing thread — the
    /// callback must be thread-safe when threads != 1). Progress reporting
    /// only; must not touch campaign state or RNGs.
    std::function<void()> on_device_done;
    /// Journal sink: invoked with every freshly computed device outcome
    /// (not for replayed ones), from the executing thread. Must be
    /// thread-safe when threads != 1.
    std::function<void(const devices::Device&, unsigned attempt,
                       const DeviceOutcome&)>
        on_device_outcome;
    /// Invoked for every failed attempt, from the executing thread.
    std::function<void(const DeviceFailure&)> on_device_failure;
    /// Test hook: called at the start of every device attempt; throwing
    /// simulates a device fault (the grid must isolate it). Never set in
    /// production runs.
    std::function<void(const std::string& device, unsigned attempt)>
        fault_hook;

    /// True when any fault-tolerance feature forces the per-device-stream
    /// grid (journal, resume, retry, fault injection) — see Campaign::run.
    [[nodiscard]] bool wants_isolation() const noexcept {
        return max_attempts > 1 || !completed.empty() ||
               static_cast<bool>(on_device_outcome) ||
               static_cast<bool>(on_device_failure) ||
               static_cast<bool>(fault_hook);
    }
};

struct CampaignResult {
    std::vector<CrossSectionMeasurement> measurements;
    std::vector<DeviceRatioRow> ratio_rows;
    /// Every failed device attempt, in roster order. A device appears here
    /// with attempt == max_attempts - 1 iff it produced no measurements.
    std::vector<DeviceFailure> failures;

    /// All measurements for one device/beamline/type.
    [[nodiscard]] std::vector<CrossSectionMeasurement> for_device(
        const std::string& device, const std::string& beamline,
        devices::ErrorType type) const;

    /// The Fig.-5 row for a device and error type; throws if absent.
    [[nodiscard]] const DeviceRatioRow& row(const std::string& device,
                                            devices::ErrorType type) const;

    /// True when the named device exhausted every attempt without an
    /// outcome.
    [[nodiscard]] bool device_failed(const std::string& device) const;
};

/// Runs the full campaign: every device of the catalog, on its assigned
/// workload suite, at ChipIR and ROTAX.
class Campaign {
public:
    explicit Campaign(CampaignConfig config = {});

    [[nodiscard]] CampaignResult run() const;

    /// Campaign over a custom device list (e.g. ablated devices).
    [[nodiscard]] CampaignResult run(const std::vector<devices::Device>& devices) const;

private:
    CampaignConfig config_;
};

}  // namespace tnr::beam

#pragma once
// A full ChipIR + ROTAX campaign over the paper's roster: same devices, same
// codes, same inputs at both facilities (§III.C), then the HE/thermal
// cross-section ratio analysis of Fig. 5.

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "beam/experiment.hpp"
#include "devices/catalog.hpp"
#include "faultinject/avf.hpp"
#include "workloads/suite.hpp"

namespace tnr::beam {

/// The per-device Fig.-5 row: pooled (over workloads) cross sections at each
/// facility and their ratio.
struct DeviceRatioRow {
    std::string device;
    devices::ErrorType type = devices::ErrorType::kSdc;
    std::uint64_t errors_he = 0;
    double fluence_he = 0.0;
    std::uint64_t errors_th = 0;
    double fluence_th = 0.0;

    [[nodiscard]] double sigma_he() const {
        return fluence_he > 0.0 ? static_cast<double>(errors_he) / fluence_he
                                : 0.0;
    }
    [[nodiscard]] double sigma_th() const {
        return fluence_th > 0.0 ? static_cast<double>(errors_th) / fluence_th
                                : 0.0;
    }
    /// HE / thermal ratio with conservative CI; nullopt when no thermal
    /// errors were observed (the FPGA DUE case).
    [[nodiscard]] std::optional<stats::RateRatio> ratio() const;
};

struct CampaignConfig {
    double beam_time_per_run_s = 3600.0;
    std::uint64_t seed = 2020;
    /// Derating applied to boards 2..N at ChipIR (board 1 on axis). ROTAX
    /// always tests one board at a time (the DUT blocks the thermal beam).
    std::vector<double> chipir_deratings = {1.0, 0.82, 0.67};
    /// AVF trials per workload for the vulnerability table (0 = uniform
    /// weights, much faster).
    std::size_t avf_trials = 0;
    /// Workers for the device×workload experiment grid: 1 = serial (bitwise
    /// identical to the historical single-RNG walk), 0 = all available
    /// cores, N = devices fan out over the shared pool with one split() RNG
    /// stream per device. Any parallel run (threads != 1) is bitwise
    /// reproducible for a fixed seed, independent of the thread count.
    unsigned threads = 1;
    /// Invoked once per finished device (from the executing thread — the
    /// callback must be thread-safe when threads != 1). Progress reporting
    /// only; must not touch campaign state or RNGs.
    std::function<void()> on_device_done;
};

struct CampaignResult {
    std::vector<CrossSectionMeasurement> measurements;
    std::vector<DeviceRatioRow> ratio_rows;

    /// All measurements for one device/beamline/type.
    [[nodiscard]] std::vector<CrossSectionMeasurement> for_device(
        const std::string& device, const std::string& beamline,
        devices::ErrorType type) const;

    /// The Fig.-5 row for a device and error type; throws if absent.
    [[nodiscard]] const DeviceRatioRow& row(const std::string& device,
                                            devices::ErrorType type) const;
};

/// Runs the full campaign: every device of the catalog, on its assigned
/// workload suite, at ChipIR and ROTAX.
class Campaign {
public:
    explicit Campaign(CampaignConfig config = {});

    [[nodiscard]] CampaignResult run() const;

    /// Campaign over a custom device list (e.g. ablated devices).
    [[nodiscard]] CampaignResult run(const std::vector<devices::Device>& devices) const;

private:
    CampaignConfig config_;
};

}  // namespace tnr::beam

#include "beam/code_sensitivity.hpp"

#include <stdexcept>

namespace tnr::beam {

const std::map<std::string, FpgaBuildScale>& CodeSensitivityModel::fpga_builds() {
    // MNIST single precision is the reference build; the double build takes
    // ~2x the CLB/DSP/BRAM resources and showed ~4x the thermal sigma.
    static const std::map<std::string, FpgaBuildScale> builds = {
        {"MNIST", {1.0, 1.0}},
        {"MNIST-dp", {2.0, 4.0}},
    };
    return builds;
}

CodeSensitivityModel CodeSensitivityModel::build(
    const devices::DeviceSpec* spec,
    const std::vector<workloads::SuiteEntry>& suite,
    const faultinject::VulnerabilityTable& vulnerability) {
    CodeSensitivityModel model;

    const bool is_fpga =
        spec != nullptr && spec->name.find("FPGA") != std::string::npos;
    const double damping = spec ? spec->thermal_sdc_code_damping : 1.0;

    for (const auto& entry : suite) {
        CodeWeights w;
        if (is_fpga) {
            // Area-driven: configuration-memory upsets scale with the
            // resources the build occupies, not with data-path AVF.
            const auto it = fpga_builds().find(entry.name);
            const FpgaBuildScale scale =
                (it != fpga_builds().end()) ? it->second : FpgaBuildScale{};
            w.he_sdc = w.he_due = scale.area;
            w.th_sdc = w.th_due = scale.thermal;
        } else {
            const double sdc = vulnerability.sdc_weight(entry.name);
            const double due = vulnerability.due_weight(entry.name);
            w.he_sdc = sdc;
            w.he_due = due;
            // Thermal SDC variation damped toward flat; DUE trends match.
            w.th_sdc = 1.0 + (sdc - 1.0) * damping;
            w.th_due = due;
        }
        model.weights_[entry.name] = w;
    }

    // Normalize every weight field to a suite mean of 1 so that the pooled
    // (device-average) cross sections — and therefore the Fig.-5 ratios —
    // are invariant to the per-code structure. For AVF-derived weights this
    // is already true; for the area-driven FPGA builds it matters.
    const auto n = static_cast<double>(model.weights_.size());
    CodeWeights mean{0.0, 0.0, 0.0, 0.0};
    for (const auto& [name, w] : model.weights_) {
        mean.he_sdc += w.he_sdc / n;
        mean.he_due += w.he_due / n;
        mean.th_sdc += w.th_sdc / n;
        mean.th_due += w.th_due / n;
    }
    for (auto& [name, w] : model.weights_) {
        if (mean.he_sdc > 0.0) w.he_sdc /= mean.he_sdc;
        if (mean.he_due > 0.0) w.he_due /= mean.he_due;
        if (mean.th_sdc > 0.0) w.th_sdc /= mean.th_sdc;
        if (mean.th_due > 0.0) w.th_due /= mean.th_due;
    }
    return model;
}

CodeSensitivityModel CodeSensitivityModel::uniform(
    const std::vector<workloads::SuiteEntry>& suite) {
    CodeSensitivityModel model;
    for (const auto& entry : suite) {
        model.weights_[entry.name] = CodeWeights{};
    }
    return model;
}

const CodeWeights& CodeSensitivityModel::weights(
    const std::string& workload) const {
    const auto it = weights_.find(workload);
    if (it == weights_.end()) {
        throw std::out_of_range("CodeSensitivityModel: unknown workload " +
                                workload);
    }
    return it->second;
}

}  // namespace tnr::beam

#include "beam/campaign.hpp"

#include <chrono>
#include <stdexcept>

#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/parallel/parallel_for.hpp"

namespace tnr::beam {

std::optional<stats::RateRatio> DeviceRatioRow::ratio() const {
    if (errors_th == 0) return std::nullopt;
    return stats::poisson_rate_ratio(errors_he, fluence_he, errors_th,
                                     fluence_th);
}

std::vector<CrossSectionMeasurement> CampaignResult::for_device(
    const std::string& device, const std::string& beamline,
    devices::ErrorType type) const {
    std::vector<CrossSectionMeasurement> out;
    for (const auto& m : measurements) {
        if (m.device == device && m.beamline == beamline && m.type == type) {
            out.push_back(m);
        }
    }
    return out;
}

const DeviceRatioRow& CampaignResult::row(const std::string& device,
                                          devices::ErrorType type) const {
    for (const auto& r : ratio_rows) {
        if (r.device == device && r.type == type) return r;
    }
    throw std::out_of_range("CampaignResult::row: no row for " + device);
}

Campaign::Campaign(CampaignConfig config) : config_(std::move(config)) {
    if (config_.beam_time_per_run_s <= 0.0) {
        throw std::invalid_argument("Campaign: bad beam time");
    }
    if (config_.chipir_deratings.empty()) {
        throw std::invalid_argument("Campaign: need at least one ChipIR slot");
    }
}

CampaignResult Campaign::run() const { return run(devices::standard_catalog()); }

namespace {

/// One device's slice of the campaign: its whole workload suite at both
/// facilities, tallied into the per-device Fig.-5 rows.
struct DeviceOutcome {
    std::vector<CrossSectionMeasurement> measurements;
    DeviceRatioRow sdc_row;
    DeviceRatioRow due_row;
};

DeviceOutcome run_device(const CampaignConfig& config, const Beamline& chipir,
                         const Beamline& rotax, const devices::Device& device,
                         stats::Rng& rng) {
    const auto suite = workloads::suite_for_device(device.name());
    const auto vulnerability =
        (config.avf_trials > 0)
            ? faultinject::VulnerabilityTable::measure(suite, config.avf_trials,
                                                       config.seed)
            : faultinject::VulnerabilityTable::uniform(suite);
    const auto code_model = CodeSensitivityModel::build(
        devices::try_spec_by_name(device.name()), suite, vulnerability);

    DeviceOutcome out;
    out.sdc_row.device = device.name();
    out.sdc_row.type = devices::ErrorType::kSdc;
    out.due_row.device = device.name();
    out.due_row.type = devices::ErrorType::kDue;

    std::size_t slot = 0;
    for (const auto& entry : suite) {
        // ChipIR: boards can share the beam with a distance derating
        // (Fig. 3); slots rotate through the published positions.
        ExperimentConfig he_cfg;
        he_cfg.beam_time_s = config.beam_time_per_run_s;
        he_cfg.derating =
            config.chipir_deratings[slot % config.chipir_deratings.size()];
        ++slot;
        const CodeWeights weights = code_model.weights(entry.name);
        const BeamExperiment he_exp(chipir, device, entry.name, weights);
        const ExperimentResult he = he_exp.run(he_cfg, rng);

        // ROTAX: one board at a time, on axis.
        ExperimentConfig th_cfg;
        th_cfg.beam_time_s = config.beam_time_per_run_s;
        th_cfg.derating = 1.0;
        const BeamExperiment th_exp(rotax, device, entry.name, weights);
        const ExperimentResult th = th_exp.run(th_cfg, rng);

        out.measurements.push_back(he.sdc);
        out.measurements.push_back(he.due);
        out.measurements.push_back(th.sdc);
        out.measurements.push_back(th.due);

        out.sdc_row.errors_he += he.sdc.errors;
        out.sdc_row.fluence_he += he.sdc.fluence;
        out.sdc_row.errors_th += th.sdc.errors;
        out.sdc_row.fluence_th += th.sdc.fluence;
        out.due_row.errors_he += he.due.errors;
        out.due_row.fluence_he += he.due.fluence;
        out.due_row.errors_th += th.due.errors;
        out.due_row.fluence_th += th.due.fluence;
    }
    return out;
}

/// run_device plus the telemetry that wraps every device: a trace span, the
/// per-device wall-time counter, error tallies, and the progress callback.
/// Purely observational — the simulation path and its RNG draws are
/// untouched.
DeviceOutcome run_device_observed(const CampaignConfig& config,
                                  const Beamline& chipir, const Beamline& rotax,
                                  const devices::Device& device,
                                  stats::Rng& rng) {
    namespace obs = tnr::core::obs;
    auto& registry = obs::Registry::global();
    const obs::Span span("device:" + device.name(), "campaign");
    const auto start = std::chrono::steady_clock::now();
    DeviceOutcome out = run_device(config, chipir, rotax, device, rng);
    const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start);

    registry.counter("campaign.device_wall_ns." + device.name())
        .add(static_cast<std::uint64_t>(wall_ns.count()));
    registry.latency("campaign.device_wall")
        .record_ns(static_cast<std::uint64_t>(wall_ns.count()));
    static auto& devices_done = registry.counter("campaign.devices");
    static auto& errors_he = registry.counter("campaign.errors_he");
    static auto& errors_th = registry.counter("campaign.errors_thermal");
    devices_done.add(1);
    errors_he.add(out.sdc_row.errors_he + out.due_row.errors_he);
    errors_th.add(out.sdc_row.errors_th + out.due_row.errors_th);
    if (config.on_device_done) config.on_device_done();
    return out;
}

}  // namespace

CampaignResult Campaign::run(const std::vector<devices::Device>& devices) const {
    const core::obs::Span span("campaign", "campaign");
    static auto& runs_counter =
        core::obs::Registry::global().counter("campaign.runs");
    runs_counter.add(1);

    const Beamline chipir = Beamline::chipir();
    const Beamline rotax = Beamline::rotax();
    stats::Rng rng(config_.seed);

    std::vector<DeviceOutcome> outcomes;
    if (config_.threads == 1 || devices.size() <= 1) {
        // Historical serial walk: one RNG threaded through every experiment
        // in order — bitwise identical to the pre-pool implementation.
        outcomes.reserve(devices.size());
        for (const auto& device : devices) {
            outcomes.push_back(
                run_device_observed(config_, chipir, rotax, device, rng));
        }
    } else {
        // Devices fan out over the shared pool. Streams are split off the
        // campaign RNG serially by device index, so the result depends only
        // on the seed — not on the thread count or scheduling.
        std::vector<stats::Rng> streams;
        streams.reserve(devices.size());
        for (std::size_t i = 0; i < devices.size(); ++i) {
            streams.push_back(rng.split());
        }
        outcomes = core::parallel::parallel_map<DeviceOutcome>(
            devices.size(), config_.threads,
            [this, &chipir, &rotax, &devices, &streams](std::size_t i) {
                return run_device_observed(config_, chipir, rotax, devices[i],
                                           streams[i]);
            });
    }

    CampaignResult result;
    for (auto& out : outcomes) {
        result.measurements.insert(result.measurements.end(),
                                   out.measurements.begin(),
                                   out.measurements.end());
        result.ratio_rows.push_back(out.sdc_row);
        result.ratio_rows.push_back(out.due_row);
    }
    return result;
}

}  // namespace tnr::beam

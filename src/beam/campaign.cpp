#include "beam/campaign.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/error.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/parallel/parallel_for.hpp"

namespace tnr::beam {

double DeviceRatioRow::sigma_he() const {
    if (fluence_he <= 0.0) {
        throw core::RunError::numeric("DeviceRatioRow::sigma_he: " + device +
                                      " has zero HE fluence (device never "
                                      "ran at ChipIR)");
    }
    return static_cast<double>(errors_he) / fluence_he;
}

double DeviceRatioRow::sigma_th() const {
    if (fluence_th <= 0.0) {
        throw core::RunError::numeric("DeviceRatioRow::sigma_th: " + device +
                                      " has zero thermal fluence (device "
                                      "never ran at ROTAX)");
    }
    return static_cast<double>(errors_th) / fluence_th;
}

std::optional<stats::RateRatio> DeviceRatioRow::ratio() const {
    if (errors_th == 0) return std::nullopt;
    return stats::poisson_rate_ratio(errors_he, fluence_he, errors_th,
                                     fluence_th);
}

std::vector<CrossSectionMeasurement> CampaignResult::for_device(
    const std::string& device, const std::string& beamline,
    devices::ErrorType type) const {
    std::vector<CrossSectionMeasurement> out;
    for (const auto& m : measurements) {
        if (m.device == device && m.beamline == beamline && m.type == type) {
            out.push_back(m);
        }
    }
    return out;
}

const DeviceRatioRow& CampaignResult::row(const std::string& device,
                                          devices::ErrorType type) const {
    for (const auto& r : ratio_rows) {
        if (r.device == device && r.type == type) return r;
    }
    throw std::out_of_range(std::string("CampaignResult::row: no ") +
                            devices::to_string(type) + " row for " + device);
}

bool CampaignResult::device_failed(const std::string& device) const {
    for (const auto& r : ratio_rows) {
        if (r.device == device) return false;
    }
    for (const auto& f : failures) {
        if (f.name == device) return true;
    }
    return false;
}

Campaign::Campaign(CampaignConfig config) : config_(std::move(config)) {
    if (config_.beam_time_per_run_s <= 0.0) {
        throw core::RunError::config("Campaign: bad beam time");
    }
    if (config_.chipir_deratings.empty()) {
        throw core::RunError::config("Campaign: need at least one ChipIR slot");
    }
    for (const double d : config_.chipir_deratings) {
        if (!std::isfinite(d) || d <= 0.0 || d > 1.0) {
            throw core::RunError::config(
                "Campaign: ChipIR deratings must be finite and in (0, 1]");
        }
    }
    if (config_.max_attempts == 0) {
        throw core::RunError::config("Campaign: max_attempts must be >= 1");
    }
}

CampaignResult Campaign::run() const { return run(devices::standard_catalog()); }

namespace {

DeviceOutcome run_device(const CampaignConfig& config, const Beamline& chipir,
                         const Beamline& rotax, const devices::Device& device,
                         stats::Rng& rng) {
    const auto suite = workloads::suite_for_device(device.name());
    const auto vulnerability =
        (config.avf_trials > 0)
            ? faultinject::VulnerabilityTable::measure(suite, config.avf_trials,
                                                       config.seed)
            : faultinject::VulnerabilityTable::uniform(suite);
    const auto code_model = CodeSensitivityModel::build(
        devices::try_spec_by_name(device.name()), suite, vulnerability);

    DeviceOutcome out;
    out.sdc_row.device = device.name();
    out.sdc_row.type = devices::ErrorType::kSdc;
    out.due_row.device = device.name();
    out.due_row.type = devices::ErrorType::kDue;

    std::size_t slot = 0;
    for (const auto& entry : suite) {
        // ChipIR: boards can share the beam with a distance derating
        // (Fig. 3); slots rotate through the published positions.
        ExperimentConfig he_cfg;
        he_cfg.beam_time_s = config.beam_time_per_run_s;
        he_cfg.derating =
            config.chipir_deratings[slot % config.chipir_deratings.size()];
        ++slot;
        const CodeWeights weights = code_model.weights(entry.name);
        const BeamExperiment he_exp(chipir, device, entry.name, weights);
        const ExperimentResult he = he_exp.run(he_cfg, rng);

        // ROTAX: one board at a time, on axis.
        ExperimentConfig th_cfg;
        th_cfg.beam_time_s = config.beam_time_per_run_s;
        th_cfg.derating = 1.0;
        const BeamExperiment th_exp(rotax, device, entry.name, weights);
        const ExperimentResult th = th_exp.run(th_cfg, rng);

        out.measurements.push_back(he.sdc);
        out.measurements.push_back(he.due);
        out.measurements.push_back(th.sdc);
        out.measurements.push_back(th.due);

        out.sdc_row.errors_he += he.sdc.errors;
        out.sdc_row.fluence_he += he.sdc.fluence;
        out.sdc_row.errors_th += th.sdc.errors;
        out.sdc_row.fluence_th += th.sdc.fluence;
        out.due_row.errors_he += he.due.errors;
        out.due_row.fluence_he += he.due.fluence;
        out.due_row.errors_th += th.due.errors;
        out.due_row.fluence_th += th.due.fluence;
    }
    return out;
}

/// run_device plus the telemetry that wraps every device: a trace span, the
/// per-device wall-time counter, error tallies, and the progress callback.
/// Purely observational — the simulation path and its RNG draws are
/// untouched.
DeviceOutcome run_device_observed(const CampaignConfig& config,
                                  const Beamline& chipir, const Beamline& rotax,
                                  const devices::Device& device,
                                  stats::Rng& rng) {
    namespace obs = tnr::core::obs;
    auto& registry = obs::Registry::global();
    const obs::Span span("device:" + device.name(), "campaign");
    const auto start = std::chrono::steady_clock::now();
    DeviceOutcome out = run_device(config, chipir, rotax, device, rng);
    const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start);

    registry.counter("campaign.device_wall_ns." + device.name())
        .add(static_cast<std::uint64_t>(wall_ns.count()));
    registry.latency("campaign.device_wall")
        .record_ns(static_cast<std::uint64_t>(wall_ns.count()));
    static auto& devices_done = registry.counter("campaign.devices");
    static auto& errors_he = registry.counter("campaign.errors_he");
    static auto& errors_th = registry.counter("campaign.errors_thermal");
    devices_done.add(1);
    errors_he.add(out.sdc_row.errors_he + out.due_row.errors_he);
    errors_th.add(out.sdc_row.errors_th + out.due_row.errors_th);
    if (config.on_device_done) config.on_device_done();
    return out;
}

/// Per-index result of the fault-isolated grid: at most one outcome, plus
/// the failures of every attempt that threw. A default DeviceRun (neither)
/// means the device was skipped by cancellation.
struct DeviceRun {
    std::optional<DeviceOutcome> outcome;
    std::vector<DeviceFailure> failures;
};

/// One device under fault isolation: every exception an attempt throws is
/// caught and recorded, bounded by max_attempts; each attempt runs on its
/// own pre-split RNG stream so a retry never sees a half-consumed stream
/// and other devices are never perturbed.
DeviceRun run_device_isolated(const CampaignConfig& config,
                              const Beamline& chipir, const Beamline& rotax,
                              const devices::Device& device,
                              const std::vector<stats::Rng>& streams,
                              std::size_t index) {
    static auto& failures_counter =
        core::obs::Registry::global().counter("campaign.device_failures");
    DeviceRun run;
    for (unsigned attempt = 0; attempt < config.max_attempts; ++attempt) {
        if (config.cancel && config.cancel->cancelled()) return run;
        try {
            if (config.fault_hook) config.fault_hook(device.name(), attempt);
            stats::Rng stream = streams[index * config.max_attempts + attempt];
            DeviceOutcome out =
                run_device_observed(config, chipir, rotax, device, stream);
            if (config.on_device_outcome) {
                config.on_device_outcome(device, attempt, out);
            }
            run.outcome = std::move(out);
            return run;
        } catch (const std::exception& e) {
            DeviceFailure failure{device.name(), e.what(), attempt};
            failures_counter.add(1);
            if (config.on_device_failure) config.on_device_failure(failure);
            run.failures.push_back(std::move(failure));
        }
    }
    return run;
}

}  // namespace

CampaignResult Campaign::run(const std::vector<devices::Device>& devices) const {
    const core::obs::Span span("campaign", "campaign");
    static auto& runs_counter =
        core::obs::Registry::global().counter("campaign.runs");
    runs_counter.add(1);

    const Beamline chipir = Beamline::chipir();
    const Beamline rotax = Beamline::rotax();
    stats::Rng rng(config_.seed);

    // The grid runs fault-isolated (one RNG stream per device attempt,
    // failures recorded instead of rethrown) whenever it is parallel or any
    // fault-tolerance feature is on. The plain serial configuration keeps
    // the historical single-RNG walk, bitwise identical to the pre-pool
    // implementation — there a mid-run failure cannot be isolated anyway,
    // because later devices read the shared RNG the failed one half-consumed.
    const bool isolated = (config_.threads != 1 && devices.size() > 1) ||
                          config_.wants_isolation();

    CampaignResult result;
    std::vector<DeviceOutcome> outcomes;
    if (!isolated) {
        outcomes.reserve(devices.size());
        for (const auto& device : devices) {
            if (config_.cancel) config_.cancel->throw_if_cancelled();
            outcomes.push_back(
                run_device_observed(config_, chipir, rotax, device, rng));
        }
    } else {
        // Streams are split off the campaign RNG serially, device-major and
        // attempt-minor, for every roster device — including replayed ones —
        // so the layout depends only on (seed, roster, max_attempts): never
        // on the thread count, on scheduling, on which attempt succeeded, or
        // on which devices a resumed run still has to execute.
        std::vector<stats::Rng> streams;
        streams.reserve(devices.size() * config_.max_attempts);
        for (std::size_t i = 0; i < devices.size() * config_.max_attempts;
             ++i) {
            streams.push_back(rng.split());
        }
        auto runs = core::parallel::parallel_map<DeviceRun>(
            devices.size(), config_.threads,
            [this, &chipir, &rotax, &devices, &streams](std::size_t i) {
                const auto it = config_.completed.find(devices[i].name());
                if (it != config_.completed.end()) {
                    if (config_.on_device_done) config_.on_device_done();
                    return DeviceRun{it->second, {}};
                }
                return run_device_isolated(config_, chipir, rotax, devices[i],
                                           streams, i);
            },
            config_.cancel);

        outcomes.reserve(devices.size());
        for (auto& run : runs) {
            result.failures.insert(result.failures.end(),
                                   run.failures.begin(), run.failures.end());
            if (run.outcome) outcomes.push_back(std::move(*run.outcome));
        }
    }

    if (config_.cancel && config_.cancel->cancelled()) {
        throw core::RunError::cancelled(
            "campaign interrupted (completed devices are journaled)");
    }

    for (auto& out : outcomes) {
        result.measurements.insert(result.measurements.end(),
                                   out.measurements.begin(),
                                   out.measurements.end());
        result.ratio_rows.push_back(out.sdc_row);
        result.ratio_rows.push_back(out.due_row);
    }
    return result;
}

}  // namespace tnr::beam

#include "beam/campaign.hpp"

#include <stdexcept>

namespace tnr::beam {

std::optional<stats::RateRatio> DeviceRatioRow::ratio() const {
    if (errors_th == 0) return std::nullopt;
    return stats::poisson_rate_ratio(errors_he, fluence_he, errors_th,
                                     fluence_th);
}

std::vector<CrossSectionMeasurement> CampaignResult::for_device(
    const std::string& device, const std::string& beamline,
    devices::ErrorType type) const {
    std::vector<CrossSectionMeasurement> out;
    for (const auto& m : measurements) {
        if (m.device == device && m.beamline == beamline && m.type == type) {
            out.push_back(m);
        }
    }
    return out;
}

const DeviceRatioRow& CampaignResult::row(const std::string& device,
                                          devices::ErrorType type) const {
    for (const auto& r : ratio_rows) {
        if (r.device == device && r.type == type) return r;
    }
    throw std::out_of_range("CampaignResult::row: no row for " + device);
}

Campaign::Campaign(CampaignConfig config) : config_(std::move(config)) {
    if (config_.beam_time_per_run_s <= 0.0) {
        throw std::invalid_argument("Campaign: bad beam time");
    }
    if (config_.chipir_deratings.empty()) {
        throw std::invalid_argument("Campaign: need at least one ChipIR slot");
    }
}

CampaignResult Campaign::run() const { return run(devices::standard_catalog()); }

CampaignResult Campaign::run(const std::vector<devices::Device>& devices) const {
    const Beamline chipir = Beamline::chipir();
    const Beamline rotax = Beamline::rotax();
    stats::Rng rng(config_.seed);

    CampaignResult result;

    for (const auto& device : devices) {
        const auto suite = workloads::suite_for_device(device.name());
        const auto vulnerability =
            (config_.avf_trials > 0)
                ? faultinject::VulnerabilityTable::measure(
                      suite, config_.avf_trials, config_.seed)
                : faultinject::VulnerabilityTable::uniform(suite);
        const auto code_model = CodeSensitivityModel::build(
            devices::try_spec_by_name(device.name()), suite, vulnerability);

        DeviceRatioRow sdc_row;
        sdc_row.device = device.name();
        sdc_row.type = devices::ErrorType::kSdc;
        DeviceRatioRow due_row;
        due_row.device = device.name();
        due_row.type = devices::ErrorType::kDue;

        std::size_t slot = 0;
        for (const auto& entry : suite) {
            // ChipIR: boards can share the beam with a distance derating
            // (Fig. 3); slots rotate through the published positions.
            ExperimentConfig he_cfg;
            he_cfg.beam_time_s = config_.beam_time_per_run_s;
            he_cfg.derating =
                config_.chipir_deratings[slot % config_.chipir_deratings.size()];
            ++slot;
            const CodeWeights weights = code_model.weights(entry.name);
            const BeamExperiment he_exp(chipir, device, entry.name, weights);
            const ExperimentResult he = he_exp.run(he_cfg, rng);

            // ROTAX: one board at a time, on axis.
            ExperimentConfig th_cfg;
            th_cfg.beam_time_s = config_.beam_time_per_run_s;
            th_cfg.derating = 1.0;
            const BeamExperiment th_exp(rotax, device, entry.name, weights);
            const ExperimentResult th = th_exp.run(th_cfg, rng);

            result.measurements.push_back(he.sdc);
            result.measurements.push_back(he.due);
            result.measurements.push_back(th.sdc);
            result.measurements.push_back(th.due);

            sdc_row.errors_he += he.sdc.errors;
            sdc_row.fluence_he += he.sdc.fluence;
            sdc_row.errors_th += th.sdc.errors;
            sdc_row.fluence_th += th.sdc.fluence;
            due_row.errors_he += he.due.errors;
            due_row.fluence_he += he.due.fluence;
            due_row.errors_th += th.due.errors;
            due_row.fluence_th += th.due.fluence;
        }
        result.ratio_rows.push_back(sdc_row);
        result.ratio_rows.push_back(due_row);
    }
    return result;
}

}  // namespace tnr::beam

#include "beam/beamline.hpp"

#include <stdexcept>

#include "physics/units.hpp"

namespace tnr::beam {

Beamline::Beamline(std::string name,
                   std::shared_ptr<const physics::Spectrum> spectrum,
                   FluenceConvention convention)
    : name_(std::move(name)),
      spectrum_(std::move(spectrum)),
      convention_(convention) {
    if (!spectrum_) throw std::invalid_argument("Beamline: null spectrum");
    reference_flux_ = (convention_ == FluenceConvention::kAbove10MeV)
                          ? spectrum_->high_energy_flux()
                          : spectrum_->total_flux();
    if (reference_flux_ <= 0.0) {
        throw std::invalid_argument("Beamline: zero reference flux");
    }
}

double Beamline::reference_flux() const { return reference_flux_; }

Beamline Beamline::chipir() {
    return Beamline("ChipIR", physics::chipir_spectrum(),
                    FluenceConvention::kAbove10MeV);
}

Beamline Beamline::rotax() {
    return Beamline("ROTAX", physics::rotax_spectrum(),
                    FluenceConvention::kTotal);
}

Beamline Beamline::dt14() {
    return Beamline("D-T 14 MeV", physics::dt14_spectrum(),
                    FluenceConvention::kTotal);
}

}  // namespace tnr::beam

#pragma once
// Device-under-test beam attenuation. The paper (§III.C): "In ROTAX, as the
// irradiated device blocks most of the incoming neutrons, we must test one
// device at a time" — whereas at ChipIR several boards share the beam with
// a distance derating. This model quantifies that with narrow-beam
// (good-geometry) transmission through a full accelerator-card assembly:
// plastic shroud/fan, aluminum heatsink, FR4 board, silicon die. Any
// interaction removes a neutron from the pencil beam that the *next* board
// would see, so the relevant quantity is exp(-sum_i Sigma_i t_i).

#include <cstddef>

#include "physics/materials.hpp"

namespace tnr::beam {

/// A full accelerator-card assembly in the beam path.
struct DutStack {
    double shroud_plastic_cm = 1.0;  ///< fan + shroud plastics (CH-rich).
    double heatsink_al_cm = 3.0;     ///< aluminum fin stack along the beam.
    double board_fr4_cm = 0.16;      ///< standard 1.6 mm PCB.
    double silicon_cm = 0.08;        ///< die + package silicon budget.
};

struct DutTransmission {
    double thermal = 1.0;       ///< narrow-beam fraction at 25.3 meV.
    double high_energy = 1.0;   ///< narrow-beam fraction at 10 MeV.
};

/// Narrow-beam transmission of the stack at the two reference energies.
DutTransmission dut_transmission(const DutStack& stack);

/// Narrow-beam transmission of the stack at an arbitrary energy.
double dut_transmission_at(const DutStack& stack, double energy_ev);

/// The fluence fraction a board stacked behind `boards_in_front` identical
/// DUTs receives (per-board transmission to the power of the count).
double stacked_board_fluence_fraction(std::size_t boards_in_front,
                                      double per_board_transmission);

}  // namespace tnr::beam

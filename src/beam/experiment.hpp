#pragma once
// One irradiation run: a device aligned with a beam while executing a
// workload, errors counted, cross section = errors / fluence with exact
// Poisson confidence intervals (the paper's methodology, §III.C).

#include <cstdint>
#include <string>
#include <vector>

#include "beam/beamline.hpp"
#include "beam/code_sensitivity.hpp"
#include "devices/device.hpp"
#include "faultinject/avf.hpp"
#include "stats/poisson.hpp"
#include "stats/rng.hpp"

namespace tnr::beam {

/// A measured cross section with its counting statistics.
struct CrossSectionMeasurement {
    std::string device;
    std::string workload;
    std::string beamline;
    devices::ErrorType type = devices::ErrorType::kSdc;
    std::uint64_t errors = 0;
    double fluence = 0.0;  ///< in the beamline's reference convention [n/cm^2].

    [[nodiscard]] double cross_section() const {
        return fluence > 0.0 ? static_cast<double>(errors) / fluence : 0.0;
    }
    [[nodiscard]] stats::Interval confidence_interval(
        double confidence = 0.95) const {
        return stats::poisson_rate_interval(errors, fluence, confidence);
    }
};

/// Result of one beam run (both error types).
struct ExperimentResult {
    CrossSectionMeasurement sdc;
    CrossSectionMeasurement due;
};

/// Configuration of a single run.
struct ExperimentConfig {
    double beam_time_s = 3600.0;
    /// Off-axis derating: boards behind/beside the first see a reduced flux
    /// (ChipIR multi-board setups, Fig. 3). 1.0 = on axis.
    double derating = 1.0;
};

/// Simulates the irradiation of a device running a workload.
class BeamExperiment {
public:
    /// weights modulate the device's base sensitivity per channel (see
    /// CodeSensitivityModel).
    BeamExperiment(Beamline beamline, devices::Device device,
                   std::string workload_name, CodeWeights weights);

    /// Convenience: equal HE/thermal weights taken from a SWIFI
    /// vulnerability table.
    BeamExperiment(Beamline beamline, devices::Device device,
                   std::string workload_name,
                   const faultinject::VulnerabilityTable& vulnerability);

    /// Runs for config.beam_time_s of beam, sampling Poisson error counts.
    [[nodiscard]] ExperimentResult run(const ExperimentConfig& config,
                                       stats::Rng& rng) const;

    /// Like run(), but also produces the error timestamps (sorted, in
    /// seconds of beam time) — what the real test logger writes. Times are
    /// the order statistics of a homogeneous Poisson process.
    struct LoggedResult {
        ExperimentResult summary;
        std::vector<double> sdc_times_s;
        std::vector<double> due_times_s;
    };
    [[nodiscard]] LoggedResult run_logged(const ExperimentConfig& config,
                                          stats::Rng& rng) const;

    /// True error rate per second of the modelled device+workload (both
    /// channels folded over the beam spectrum) — the quantity the Poisson
    /// sampler draws from; exposed for statistical validation.
    [[nodiscard]] double true_error_rate(devices::ErrorType type) const;

private:
    Beamline beamline_;
    devices::Device device_;
    std::string workload_;
    CodeWeights weights_;
};

}  // namespace tnr::beam

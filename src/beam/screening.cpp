#include "beam/screening.hpp"

#include <cmath>
#include <stdexcept>

#include "core/error.hpp"

namespace tnr::beam {

const char* to_string(ScreeningVerdict v) {
    switch (v) {
        case ScreeningVerdict::kAccept:
            return "ACCEPT";
        case ScreeningVerdict::kReject:
            return "REJECT";
        case ScreeningVerdict::kInconclusive:
            return "INCONCLUSIVE";
    }
    return "unknown";
}

double zero_failure_test_time_s(double sigma_max_cm2, double flux_n_cm2_s,
                                double confidence) {
    if (sigma_max_cm2 <= 0.0 || flux_n_cm2_s <= 0.0 || confidence <= 0.0 ||
        confidence >= 1.0) {
        throw core::RunError::config(
            "zero_failure_test_time_s: bad arguments");
    }
    return -std::log(1.0 - confidence) / (sigma_max_cm2 * flux_n_cm2_s);
}

ScreeningResult screen_part(std::uint64_t errors, double fluence_n_cm2,
                            double sigma_max_cm2, double confidence) {
    if (fluence_n_cm2 <= 0.0 || sigma_max_cm2 <= 0.0) {
        throw core::RunError::config("screen_part: bad arguments");
    }
    ScreeningResult out;
    out.sigma_estimate = static_cast<double>(errors) / fluence_n_cm2;
    out.sigma_ci = stats::poisson_rate_interval(errors, fluence_n_cm2,
                                                confidence);
    if (out.sigma_ci.upper < sigma_max_cm2) {
        out.verdict = ScreeningVerdict::kAccept;
    } else if (out.sigma_ci.lower > sigma_max_cm2) {
        out.verdict = ScreeningVerdict::kReject;
    } else {
        out.verdict = ScreeningVerdict::kInconclusive;
    }
    return out;
}

}  // namespace tnr::beam

#pragma once
// Append-only campaign journal: one JSON line per event, flushed as soon as
// it is written, so a crash or SIGINT never loses a finished device. The
// journal is both the campaign's flight recorder and its resume point:
// replay_journal() reconstructs every completed DeviceOutcome bit-for-bit
// (doubles round-trip through obs::json::number), and a resumed run skips
// those devices while producing stdout identical to an uninterrupted run.
//
// Line kinds (docs/robustness.md has the full format):
//   {"kind":"header", seed, hours, avf_trials, threads, devices, version}
//   {"kind":"device", device, attempt, sdc:{...}, due:{...},
//    measurements:[...]}
//   {"kind":"failure", device, attempt, what}
//
// Replay is strict — a malformed line is an error (core::RunError, kIo) —
// with one deliberate exception: a final line without a trailing newline is
// the torn tail of a crashed append and is ignored.

#include <cstddef>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "beam/campaign.hpp"

namespace tnr::beam {

/// Crash-safe JSON-lines writer. Thread-safe: parallel grid workers append
/// concurrently; every append is one write + flush under a mutex.
class CampaignJournal {
public:
    /// Opens `path` for appending; `truncate` starts a fresh journal (a new
    /// campaign) instead of continuing an existing one (resume). Throws
    /// core::RunError (kIo) when the file cannot be opened.
    CampaignJournal(const std::string& path, bool truncate);

    void write_header(const CampaignConfig& config, std::size_t device_count);
    void append_device(const std::string& device, unsigned attempt,
                       const DeviceOutcome& outcome);
    void append_failure(const DeviceFailure& failure);

private:
    void append_line(const std::string& line);

    std::mutex mutex_;
    std::ofstream file_;
    std::string path_;
};

/// What replay recovers: the header fields a resume must validate against
/// its own config, plus every completed device and recorded failure.
struct JournalReplay {
    std::uint64_t seed = 0;
    double beam_time_per_run_s = 0.0;
    std::size_t avf_trials = 0;
    unsigned threads = 0;
    std::size_t device_count = 0;
    std::map<std::string, DeviceOutcome> completed;
    std::vector<DeviceFailure> failures;
};

/// Parses a journal file. Throws core::RunError — kIo for an unreadable
/// file or a malformed line (journal replay fails loudly, never silently
/// drops data), kConfig for a journal without a header.
JournalReplay replay_journal(const std::string& path);

/// Validates a replayed journal against the config of the resuming run;
/// throws core::RunError (kConfig) on a seed / beam-time / avf mismatch
/// (the thread count may differ — isolated-grid results are
/// thread-invariant).
void validate_resume(const JournalReplay& replay, const CampaignConfig& config);

}  // namespace tnr::beam

#pragma once
// A beamline wraps a spectrum with the facility's fluence-accounting
// convention: radiation-test cross sections are quoted against a reference
// flux (the >10 MeV flux at atmospheric-like facilities per JESD89A, the
// total beam flux at thermal facilities), not the total number of neutrons
// of every energy.

#include <memory>
#include <string>

#include "physics/beamline_spectra.hpp"
#include "physics/spectrum.hpp"

namespace tnr::beam {

class Beamline {
public:
    enum class FluenceConvention {
        kAbove10MeV,  ///< fluence counted above 10 MeV (ChipIR / JESD89A).
        kTotal,       ///< all neutrons counted (thermal beamlines).
    };

    Beamline(std::string name, std::shared_ptr<const physics::Spectrum> spectrum,
             FluenceConvention convention);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const physics::Spectrum& spectrum() const noexcept {
        return *spectrum_;
    }
    [[nodiscard]] std::shared_ptr<const physics::Spectrum> spectrum_ptr()
        const noexcept {
        return spectrum_;
    }
    [[nodiscard]] FluenceConvention convention() const noexcept {
        return convention_;
    }

    /// Flux used for fluence accounting [n/cm^2/s].
    [[nodiscard]] double reference_flux() const;

    /// The ISIS beamlines of the paper.
    static Beamline chipir();
    static Beamline rotax();

    /// A D-T 14 MeV generator (the Weulersse et al. comparison facility
    /// discussed in the paper's related work).
    static Beamline dt14();

private:
    std::string name_;
    std::shared_ptr<const physics::Spectrum> spectrum_;
    FluenceConvention convention_;
    double reference_flux_;
};

}  // namespace tnr::beam

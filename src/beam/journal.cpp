#include "beam/journal.hpp"

#include <cmath>
#include <sstream>

#include "core/error.hpp"
#include "core/obs/json.hpp"
#include "core/obs/manifest.hpp"

namespace tnr::beam {

namespace json = core::obs::json;
using core::RunError;

namespace {

void write_row(std::ostringstream& oss, const DeviceRatioRow& row) {
    oss << "{\"errors_he\":" << row.errors_he
        << ",\"fluence_he\":" << json::number(row.fluence_he)
        << ",\"errors_th\":" << row.errors_th
        << ",\"fluence_th\":" << json::number(row.fluence_th) << "}";
}

void write_measurement(std::ostringstream& oss,
                       const CrossSectionMeasurement& m) {
    oss << "{\"workload\":\"" << json::escape(m.workload) << "\",\"beamline\":\""
        << json::escape(m.beamline) << "\",\"type\":\""
        << devices::to_string(m.type) << "\",\"errors\":" << m.errors
        << ",\"fluence\":" << json::number(m.fluence) << "}";
}

/// Strict field access for replay: a missing or mistyped field is a
/// malformed journal, reported with the line number.
const json::Value& require(const json::Value& obj, const char* key,
                           std::size_t line_no) {
    const json::Value* v = obj.find(key);
    if (!v) {
        throw RunError::io("journal line " + std::to_string(line_no) +
                           ": missing field \"" + key + "\"");
    }
    return *v;
}

double require_number(const json::Value& obj, const char* key,
                      std::size_t line_no) {
    const json::Value& v = require(obj, key, line_no);
    if (!v.is_number()) {
        throw RunError::io("journal line " + std::to_string(line_no) +
                           ": field \"" + key + "\" is not a number");
    }
    return v.num;
}

std::string require_string(const json::Value& obj, const char* key,
                           std::size_t line_no) {
    const json::Value& v = require(obj, key, line_no);
    if (!v.is_string()) {
        throw RunError::io("journal line " + std::to_string(line_no) +
                           ": field \"" + key + "\" is not a string");
    }
    return v.str;
}

DeviceRatioRow parse_row(const json::Value& obj, const std::string& device,
                         devices::ErrorType type, std::size_t line_no) {
    DeviceRatioRow row;
    row.device = device;
    row.type = type;
    row.errors_he =
        static_cast<std::uint64_t>(require_number(obj, "errors_he", line_no));
    row.fluence_he = require_number(obj, "fluence_he", line_no);
    row.errors_th =
        static_cast<std::uint64_t>(require_number(obj, "errors_th", line_no));
    row.fluence_th = require_number(obj, "fluence_th", line_no);
    return row;
}

devices::ErrorType parse_type(const std::string& s, std::size_t line_no) {
    if (s == "SDC") return devices::ErrorType::kSdc;
    if (s == "DUE") return devices::ErrorType::kDue;
    throw RunError::io("journal line " + std::to_string(line_no) +
                       ": unknown error type \"" + s + "\"");
}

}  // namespace

CampaignJournal::CampaignJournal(const std::string& path, bool truncate)
    : path_(path) {
    file_.open(path, truncate ? std::ios::out | std::ios::trunc
                              : std::ios::out | std::ios::app);
    if (!file_) {
        throw RunError::io("cannot open journal file: " + path);
    }
}

void CampaignJournal::append_line(const std::string& line) {
    const std::lock_guard lock(mutex_);
    file_ << line << '\n';
    file_.flush();
    if (!file_) {
        throw RunError::io("journal write failed: " + path_);
    }
}

void CampaignJournal::write_header(const CampaignConfig& config,
                                   std::size_t device_count) {
    std::ostringstream oss;
    oss << "{\"kind\":\"header\",\"tool\":\"tnr\",\"version\":\""
        << json::escape(core::obs::build_version())
        << "\",\"seed\":" << config.seed
        << ",\"beam_time_s\":" << json::number(config.beam_time_per_run_s)
        << ",\"avf_trials\":" << config.avf_trials
        << ",\"threads\":" << config.threads
        << ",\"devices\":" << device_count << "}";
    append_line(oss.str());
}

void CampaignJournal::append_device(const std::string& device, unsigned attempt,
                                    const DeviceOutcome& outcome) {
    std::ostringstream oss;
    oss << "{\"kind\":\"device\",\"device\":\"" << json::escape(device)
        << "\",\"attempt\":" << attempt << ",\"sdc\":";
    write_row(oss, outcome.sdc_row);
    oss << ",\"due\":";
    write_row(oss, outcome.due_row);
    oss << ",\"measurements\":[";
    bool first = true;
    for (const auto& m : outcome.measurements) {
        if (!first) oss << ',';
        first = false;
        write_measurement(oss, m);
    }
    oss << "]}";
    append_line(oss.str());
}

void CampaignJournal::append_failure(const DeviceFailure& failure) {
    std::ostringstream oss;
    oss << "{\"kind\":\"failure\",\"device\":\"" << json::escape(failure.name)
        << "\",\"attempt\":" << failure.attempt << ",\"what\":\""
        << json::escape(failure.what) << "\"}";
    append_line(oss.str());
}

JournalReplay replay_journal(const std::string& path) {
    std::ifstream file(path);
    if (!file) {
        throw RunError::io("cannot read journal file: " + path);
    }

    JournalReplay replay;
    bool saw_header = false;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(file, line)) {
        ++line_no;
        const bool torn_tail = file.eof() && !line.empty();
        if (line.empty()) continue;
        const auto doc = json::parse(line);
        if (!doc || !doc->is_object()) {
            // A final line with no trailing newline is the torn tail of a
            // crashed append — drop it. Anything else is corruption.
            if (torn_tail) break;
            throw RunError::io("journal line " + std::to_string(line_no) +
                               ": malformed JSON");
        }
        const std::string kind = require_string(*doc, "kind", line_no);
        if (kind == "header") {
            replay.seed = static_cast<std::uint64_t>(
                require_number(*doc, "seed", line_no));
            replay.beam_time_per_run_s =
                require_number(*doc, "beam_time_s", line_no);
            replay.avf_trials = static_cast<std::size_t>(
                require_number(*doc, "avf_trials", line_no));
            replay.threads = static_cast<unsigned>(
                require_number(*doc, "threads", line_no));
            replay.device_count = static_cast<std::size_t>(
                require_number(*doc, "devices", line_no));
            saw_header = true;
        } else if (kind == "device") {
            const std::string name = require_string(*doc, "device", line_no);
            DeviceOutcome outcome;
            const json::Value& sdc = require(*doc, "sdc", line_no);
            const json::Value& due = require(*doc, "due", line_no);
            outcome.sdc_row =
                parse_row(sdc, name, devices::ErrorType::kSdc, line_no);
            outcome.due_row =
                parse_row(due, name, devices::ErrorType::kDue, line_no);
            const json::Value& ms = require(*doc, "measurements", line_no);
            if (!ms.is_array()) {
                throw RunError::io("journal line " + std::to_string(line_no) +
                                   ": \"measurements\" is not an array");
            }
            for (const auto& mv : ms.array) {
                CrossSectionMeasurement m;
                m.device = name;
                m.workload = require_string(mv, "workload", line_no);
                m.beamline = require_string(mv, "beamline", line_no);
                m.type =
                    parse_type(require_string(mv, "type", line_no), line_no);
                m.errors = static_cast<std::uint64_t>(
                    require_number(mv, "errors", line_no));
                m.fluence = require_number(mv, "fluence", line_no);
                outcome.measurements.push_back(std::move(m));
            }
            // Duplicate device lines (a journal resumed more than once can
            // in principle replay one): first completion wins.
            replay.completed.emplace(name, std::move(outcome));
        } else if (kind == "failure") {
            DeviceFailure failure;
            failure.name = require_string(*doc, "device", line_no);
            failure.what = require_string(*doc, "what", line_no);
            failure.attempt = static_cast<unsigned>(
                require_number(*doc, "attempt", line_no));
            replay.failures.push_back(std::move(failure));
        } else {
            throw RunError::io("journal line " + std::to_string(line_no) +
                               ": unknown kind \"" + kind + "\"");
        }
    }
    if (!saw_header) {
        throw RunError::config("journal " + path +
                               " has no header line — not a campaign journal");
    }
    return replay;
}

void validate_resume(const JournalReplay& replay,
                     const CampaignConfig& config) {
    if (replay.seed != config.seed) {
        throw RunError::config(
            "cannot resume: journal seed " + std::to_string(replay.seed) +
            " != configured seed " + std::to_string(config.seed));
    }
    if (replay.beam_time_per_run_s != config.beam_time_per_run_s) {
        throw RunError::config(
            "cannot resume: journal beam time " +
            std::to_string(replay.beam_time_per_run_s) +
            " s != configured " + std::to_string(config.beam_time_per_run_s) +
            " s");
    }
    if (replay.avf_trials != config.avf_trials) {
        throw RunError::config(
            "cannot resume: journal avf_trials " +
            std::to_string(replay.avf_trials) + " != configured " +
            std::to_string(config.avf_trials));
    }
}

}  // namespace tnr::beam

#pragma once
// Renders a finished fleet study as the exact bytes `tnr fleet` writes to
// stdout. The serve `fleet-slice` method calls the same function, so the
// served response is byte-identical to the one-shot CLI output by
// construction. The report deliberately contains no timing values, shard
// counts, or chunk sizes — nothing that varies between equivalent runs —
// which is what keeps it cacheable and bitwise shard-invariant.

#include <string>

#include "fleet/aggregator.hpp"
#include "fleet/spec.hpp"

namespace tnr::fleet {

struct FleetReportOptions {
    /// When non-empty, restrict the per-site row, the per-class table, and
    /// the timeline to the named site (exact system_name match); unknown
    /// names throw RunError(kConfig).
    std::string slice;
    bool csv = false;
};

std::string render_fleet_report(const ResolvedFleet& fleet,
                                const FleetTally& tally,
                                const FleetReportOptions& options);

}  // namespace tnr::fleet

#pragma once
// The streaming fleet walk. The device range [0, devices) is cut into
// fixed-size chunks (the unit of journaling and progress); chunks are
// grouped into contiguous shard ranges and each shard folds its chunks
// into a private FleetTally, one device at a time — per-device state lives
// only in registers while that device is being walked. Shard tallies (and
// any chunk tallies replayed from a journal) merge by integer addition, so
// the result — and the rendered report — is bitwise invariant to the shard
// count AND to the chunk size. Chunk tallies surface through on_chunk_done
// for crash-safe checkpointing (fleet/checkpoint.hpp).

#include <cstdint>
#include <functional>
#include <map>

#include "core/parallel/cancel.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/spec.hpp"

namespace tnr::fleet {

/// Default devices per chunk: small enough that a kill loses seconds of
/// work, large enough that journal lines stay rare.
inline constexpr std::uint64_t kDefaultChunkDevices = 65'536;

struct FleetRunOptions {
    unsigned shards = 1;  ///< worker count; 0 = pool default.
    std::uint64_t chunk_devices = kDefaultChunkDevices;
    const core::parallel::CancelToken* cancel = nullptr;
    /// Chunk tallies replayed from a journal; these chunks are skipped by
    /// the walk and their tallies merged into the result.
    const std::map<std::uint64_t, FleetTally>* completed = nullptr;
    /// Called from worker threads after each freshly simulated chunk (not
    /// for replayed ones); the callee synchronizes (the journal holds a
    /// mutex per append).
    std::function<void(std::uint64_t chunk, const FleetTally& delta)>
        on_chunk_done;
};

struct FleetResult {
    FleetTally tally;
    std::uint64_t chunks = 0;            ///< total chunks in the fleet.
    std::uint64_t simulated_chunks = 0;  ///< walked this run.
    std::uint64_t replayed_chunks = 0;   ///< merged from the journal.
};

/// Number of chunks a fleet of this spec splits into.
std::uint64_t chunk_count(const FleetSpec& spec, std::uint64_t chunk_devices);

/// Runs the walk. Throws RunError(kCancelled) when the token fires —
/// completed chunks have already been journaled through on_chunk_done, so
/// a subsequent --resume continues where the kill landed.
FleetResult run_fleet(const ResolvedFleet& fleet, const FleetRunOptions& opts);

}  // namespace tnr::fleet

#pragma once
// The streaming fleet walk. The device range [0, devices) is cut into
// fixed-size chunks (the unit of journaling and progress); chunks are
// grouped into contiguous shard ranges and each shard folds its chunks
// into a private FleetTally, one device at a time — per-device state lives
// only in registers while that device is being walked. Shard tallies (and
// any chunk tallies replayed from a journal) merge by integer addition, so
// the result — and the rendered report — is bitwise invariant to the shard
// count AND to the chunk size. Chunk tallies surface through on_chunk_done
// for crash-safe checkpointing (fleet/checkpoint.hpp).
//
// Two sampling modes share this frame (FleetSpec::mode): the dense
// per-bucket Poisson sweep (default, bitwise-pinned) and the event-driven
// skip-ahead walk that jumps over zero-event spans in O(1) — see FleetMode
// in fleet/spec.hpp and docs/performance.md ("fleet fast path").

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "core/parallel/cancel.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/spec.hpp"

namespace tnr::fleet {

/// Default devices per chunk: small enough that a kill loses seconds of
/// work, large enough that journal lines stay rare.
inline constexpr std::uint64_t kDefaultChunkDevices = 65'536;

struct FleetRunOptions {
    unsigned shards = 1;  ///< worker count; 0 = pool default.
    std::uint64_t chunk_devices = kDefaultChunkDevices;
    const core::parallel::CancelToken* cancel = nullptr;
    /// Chunk tallies replayed from a journal; these chunks are skipped by
    /// the walk and their tallies merged into the result.
    const std::map<std::uint64_t, FleetTally>* completed = nullptr;
    /// Called from worker threads after each freshly simulated chunk (not
    /// for replayed ones); the callee synchronizes (the journal holds a
    /// mutex per append).
    std::function<void(std::uint64_t chunk, const FleetTally& delta)>
        on_chunk_done;
};

struct FleetResult {
    FleetTally tally;
    std::uint64_t chunks = 0;            ///< total chunks in the fleet.
    std::uint64_t simulated_chunks = 0;  ///< walked this run.
    std::uint64_t replayed_chunks = 0;   ///< merged from the journal.
};

/// Number of chunks a fleet of this spec splits into.
std::uint64_t chunk_count(const FleetSpec& spec, std::uint64_t chunk_devices);

/// The chunk indices a run still has to walk: [0, chunks) minus the
/// journal-replayed set. Shards are partitioned over THIS list, not over
/// the full index space — otherwise a mostly-complete --resume hands most
/// shards nothing but replayed chunks to skip while one shard walks the
/// whole tail alone.
std::vector<std::uint64_t> pending_chunks(
    std::uint64_t chunks,
    const std::map<std::uint64_t, FleetTally>* completed);

/// Balanced contiguous [begin, end) slice of `pending` items for one shard:
/// every shard gets floor(pending/shards) items and the first
/// pending % shards shards get one more, so no shard is empty while
/// pending >= shards. Exposed for the resume load-balance regression test.
std::pair<std::uint64_t, std::uint64_t> shard_range(std::uint64_t pending,
                                                    unsigned shards,
                                                    unsigned shard);

/// Runs the walk. Throws RunError(kCancelled) when the token fires —
/// completed chunks have already been journaled through on_chunk_done, so
/// a subsequent --resume continues where the kill landed.
FleetResult run_fleet(const ResolvedFleet& fleet, const FleetRunOptions& opts);

}  // namespace tnr::fleet

#include "fleet/render.hpp"

#include <sstream>

#include "core/error.hpp"
#include "core/report.hpp"

namespace tnr::fleet {

namespace {

void print_table(std::ostringstream& oss, const core::TablePrinter& table,
                 bool csv) {
    if (csv) {
        table.print_csv(oss);
    } else {
        table.print(oss);
    }
}

std::string u64(std::uint64_t v) { return std::to_string(v); }

std::string fit_cell(std::uint64_t count, std::uint64_t device_hours,
                     double acceleration) {
    if (device_hours == 0) return "-";
    return core::format_fixed(fit_estimate(count, device_hours, acceleration),
                              2);
}

std::string ci_cell(std::uint64_t count, std::uint64_t device_hours,
                    double acceleration) {
    if (device_hours == 0) return "-";
    const auto ci = fit_interval(count, device_hours, acceleration);
    return "[" + core::format_fixed(ci.lower, 2) + ", " +
           core::format_fixed(ci.upper, 2) + "]";
}

}  // namespace

std::string render_fleet_report(const ResolvedFleet& fleet,
                                const FleetTally& tally,
                                const FleetReportOptions& options) {
    const FleetSpec& spec = fleet.spec();
    const std::size_t S = fleet.site_count();
    const std::size_t C = fleet.class_count();
    const std::size_t B = fleet.bucket_count();
    const double accel = spec.acceleration;

    // Resolve the slice filter up front so an unknown name is a config
    // error, not an empty report.
    std::size_t slice_site = S;  // S = no filter.
    if (!options.slice.empty()) {
        for (std::size_t s = 0; s < S; ++s) {
            if (spec.sites[s].site.system_name == options.slice) {
                slice_site = s;
                break;
            }
        }
        if (slice_site == S) {
            std::string known;
            for (const auto& fs : spec.sites) {
                if (!known.empty()) known += "|";
                known += fs.site.system_name;
            }
            throw core::RunError::config("fleet: unknown slice site: " +
                                         options.slice + " (use " + known +
                                         ")");
        }
    }
    const bool sliced = slice_site < S;

    std::ostringstream oss;

    core::TablePrinter summary({"quantity", "value"});
    summary.add_row({"devices", u64(spec.devices)});
    summary.add_row({"sites", u64(S)});
    summary.add_row({"device classes", u64(C)});
    summary.add_row({"days", u64(spec.days)});
    summary.add_row({"bucket hours", u64(spec.bucket_hours)});
    summary.add_row({"buckets", u64(B)});
    summary.add_row({"seed", u64(spec.seed)});
    summary.add_row({"acceleration", core::format_fixed(accel, 2)});
    if (sliced) summary.add_row({"slice", options.slice});
    print_table(oss, summary, options.csv);

    oss << "\nper-site\n";
    core::TablePrinter sites({"site", "devices", "Phi_th [n/cm^2/h]",
                              "Phi_HE [n/cm^2/h]", "device-hours", "SDC",
                              "DUE", "corrected", "repairs", "SDC FIT",
                              "SDC FIT 95% CI", "DUE FIT",
                              "DUE FIT 95% CI"});
    for (std::size_t s = 0; s < S; ++s) {
        if (sliced && s != slice_site) continue;
        const CellTally total = tally.site_total(s);
        const auto& site = spec.sites[s].site;
        sites.add_row(
            {site.system_name, u64(tally.site_assigned(s)),
             core::format_scientific(site.thermal_flux(), 2),
             core::format_scientific(site.high_energy_flux(), 2),
             u64(total.device_hours), u64(total.sdc), u64(total.due),
             u64(total.corrected), u64(total.repairs),
             fit_cell(total.sdc, total.device_hours, accel),
             ci_cell(total.sdc, total.device_hours, accel),
             fit_cell(total.due, total.device_hours, accel),
             ci_cell(total.due, total.device_hours, accel)});
    }
    print_table(oss, sites, options.csv);

    oss << "\nper-class\n";
    core::TablePrinter classes({"device class", "devices", "device-hours",
                                "SDC", "DUE", "SDC FIT", "SDC FIT 95% CI",
                                "DUE FIT", "DUE FIT 95% CI"});
    for (std::size_t c = 0; c < C; ++c) {
        CellTally total;
        std::uint64_t assigned = 0;
        if (sliced) {
            total = tally.site_class_total(slice_site, c);
            assigned = tally.assigned(slice_site, c);
        } else {
            total = tally.class_total(c);
            assigned = tally.class_assigned(c);
        }
        classes.add_row({spec.mix[c].device, u64(assigned),
                         u64(total.device_hours), u64(total.sdc),
                         u64(total.due),
                         fit_cell(total.sdc, total.device_hours, accel),
                         ci_cell(total.sdc, total.device_hours, accel),
                         fit_cell(total.due, total.device_hours, accel),
                         ci_cell(total.due, total.device_hours, accel)});
    }
    print_table(oss, classes, options.csv);

    oss << "\ntimeline\n";
    core::TablePrinter timeline({"bucket", "start day", "rainy sites",
                                 "device-hours", "SDC", "DUE", "corrected",
                                 "repairs", "cum SDC", "cum DUE"});
    std::uint64_t cum_sdc = 0;
    std::uint64_t cum_due = 0;
    for (std::size_t b = 0; b < B; ++b) {
        const BucketInfo& bucket = fleet.bucket(b);
        const CellTally total = sliced
                                    ? tally.site_bucket_total(slice_site, b)
                                    : tally.bucket_total(b);
        std::uint64_t rainy_sites = 0;
        for (std::size_t s = 0; s < S; ++s) {
            if (sliced && s != slice_site) continue;
            if (fleet.rainy(s, bucket.day)) ++rainy_sites;
        }
        cum_sdc += total.sdc;
        cum_due += total.due;
        timeline.add_row({u64(b), u64(bucket.day), u64(rainy_sites),
                          u64(total.device_hours), u64(total.sdc),
                          u64(total.due), u64(total.corrected),
                          u64(total.repairs), u64(cum_sdc), u64(cum_due)});
    }
    print_table(oss, timeline, options.csv);

    return oss.str();
}

}  // namespace tnr::fleet

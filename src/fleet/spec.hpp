#pragma once
// FleetSpec — the declarative description of a fleet-scale field study
// (ROADMAP item: "simulate a datacenter, not a device"): which sites host
// devices, which device classes populate them, how each site scrubs and
// repairs, how long the study runs, and the single seed everything derives
// from. A ResolvedFleet precomputes everything a shard needs to walk its
// device range in constant memory: calibrated devices, per-(site, class,
// weather, error-type) hourly event rates, the per-site daily weather
// series, and assignment CDFs.
//
// Determinism contract: every random quantity is derived by counter-based
// hashing from (seed, index) — a device's stream from its global device
// index, a site's weather from (site, day) — never from shard-local state,
// so results are bitwise invariant to the shard count and to the
// journaling chunk size (tests/test_fleet.cpp pins this).

#include <cstdint>
#include <string>
#include <vector>

#include "devices/catalog.hpp"
#include "devices/device.hpp"
#include "environment/site.hpp"
#include "stats/rng.hpp"

namespace tnr::fleet {

/// Per-site operational policy.
struct SitePolicy {
    /// Memory-scrub pass interval [h]; 0 disables scrubbing. A latent
    /// corrupted word is consumed (becomes an SDC) only if it is read
    /// before the next scrub pass; with a mean fault-to-consumption
    /// residency of kMeanConsumeHours the survival probability is
    /// scrub_interval_h / (scrub_interval_h + kMeanConsumeHours).
    double scrub_interval_h = 0.0;
    /// Hours a device is offline (no exposure) after a bucket with >= 1
    /// DUE; 0 means DUEs are counted but never take the device down.
    unsigned repair_hours = 0;
    /// Probability that any given day at the site is rainy (thermal flux
    /// doubled per the environment model).
    double rain_probability = 0.0;
};

/// One installation hosting a share of the fleet.
struct FleetSite {
    environment::Site site;
    double weight = 1.0;  ///< relative share of devices assigned here.
    SitePolicy policy;
};

/// One device class in the fleet mix, by catalog name.
struct DeviceMixEntry {
    std::string device;
    double weight = 1.0;
};

/// Mean latent-fault residency before consumption [h] for the scrub model.
inline constexpr double kMeanConsumeHours = 24.0;

/// How the walk samples events.
///
/// kDense is the original per-bucket sweep: two Poisson draws per device
/// per bucket. It is the default and stays bitwise pinned to the pre-mode
/// goldens. kEventDriven replaces the sweep with exponential skip-ahead
/// thinning: inter-event gaps are drawn at a per-(site, class) envelope
/// rate (the max over weather states of the combined SDC+DUE rate), so a
/// device whose next event falls past the study horizon costs O(1) instead
/// of O(buckets) — the field-study regime, where >99.9% of daily Poisson
/// draws return zero. Candidates are accepted with probability
/// rate(bucket)/envelope and classified SDC-vs-DUE by rate proportion,
/// which thins the envelope process into exactly the per-bucket Poisson
/// processes kDense samples (tests pin 3-sigma equivalence). Both modes
/// are bitwise invariant to --shards and chunk size; their event streams
/// differ, so a journal written in one mode refuses to resume in the
/// other (the mode is part of the spec fingerprint).
enum class FleetMode { kDense, kEventDriven };

/// Maps the shared CLI/serve vocabulary ("dense" | "event") onto FleetMode;
/// throws RunError(kConfig) for anything else. `context` prefixes the
/// error ("fleet", "fleet-slice") — the same pattern as
/// serve::apply_transport_knobs, so both layers reject bad values with one
/// message.
FleetMode parse_fleet_mode(const std::string& text,
                           const std::string& context);
const char* to_string(FleetMode mode) noexcept;

/// The full study description. `validate()` throws RunError(kConfig) on
/// nonsense (empty mix, zero devices, out-of-range probabilities, ...).
struct FleetSpec {
    std::uint64_t devices = 100'000;  ///< fleet size (1 .. 2e7).
    unsigned days = 30;               ///< study length.
    unsigned bucket_hours = 24;       ///< timeline resolution.
    std::uint64_t seed = 2020;
    /// Rate multiplier for accelerated studies (HOTNES-style): event rates
    /// are scaled up by this factor during simulation and divided back out
    /// of every reported FIT, so CIs tighten without changing the estimate.
    double acceleration = 1.0;
    /// Sampling mode (see FleetMode); part of the spec fingerprint.
    FleetMode mode = FleetMode::kDense;
    std::vector<FleetSite> sites;
    std::vector<DeviceMixEntry> mix;

    void validate() const;

    [[nodiscard]] std::uint64_t total_hours() const {
        return static_cast<std::uint64_t>(days) * 24ULL;
    }
    [[nodiscard]] std::size_t bucket_count() const {
        return static_cast<std::size_t>((total_hours() + bucket_hours - 1) /
                                        bucket_hours);
    }
};

/// A canonical one-line description of everything that shapes the result
/// (sites, policies, mix, flux overrides) — journal headers store it and
/// --resume compares it, so a resumed run cannot silently continue a
/// different study.
std::string spec_fingerprint(const FleetSpec& spec);

/// One timeline bucket: [start_h, start_h + hours), inheriting the weather
/// of the day containing start_h.
struct BucketInfo {
    std::uint64_t start_h = 0;
    std::uint32_t hours = 0;
    std::uint32_t day = 0;
};

/// The per-device RNG stream: counter-based pre-split keyed on the global
/// device index (the PR 3 device-major scheme extended so any shard opens
/// any device's stream in O(1) instead of splitting serially).
stats::Rng device_stream(std::uint64_t seed, std::uint64_t device_index);

/// Everything precomputed once per run; immutable during the walk so
/// shards share one instance without synchronization.
class ResolvedFleet {
public:
    /// Validates and resolves; throws RunError(kConfig) for an invalid
    /// spec or an unknown catalog device name.
    explicit ResolvedFleet(FleetSpec spec);

    [[nodiscard]] const FleetSpec& spec() const noexcept { return spec_; }
    [[nodiscard]] std::size_t site_count() const noexcept {
        return spec_.sites.size();
    }
    [[nodiscard]] std::size_t class_count() const noexcept {
        return spec_.mix.size();
    }
    [[nodiscard]] std::size_t bucket_count() const noexcept {
        return buckets_.size();
    }
    [[nodiscard]] const BucketInfo& bucket(std::size_t b) const {
        return buckets_[b];
    }
    [[nodiscard]] const devices::Device& device_class(std::size_t c) const {
        return devices_[c];
    }

    /// Weather series: was day `day` rainy at site `s`? Derived by hashing
    /// (seed, site, day) — identical for every shard that asks.
    [[nodiscard]] bool rainy(std::size_t s, std::uint32_t day) const {
        return rainy_[s * spec_.days + day] != 0;
    }

    /// Accelerated event rate [events / device-hour] for one cell.
    [[nodiscard]] double hourly_rate(std::size_t s, std::size_t c, bool rainy,
                                     devices::ErrorType type) const {
        const std::size_t t = type == devices::ErrorType::kSdc ? 0 : 1;
        return rates_[((s * class_count() + c) * 2 + (rainy ? 1 : 0)) * 2 + t];
    }

    /// P(latent fault survives scrubbing) at site `s`.
    [[nodiscard]] double scrub_survival(std::size_t s) const {
        return scrub_survival_[s];
    }

    /// Event-mode envelope rate [events/device-hour] for (s, c): the max
    /// over weather states of the combined accelerated SDC+DUE rate, i.e.
    /// an upper bound on the instantaneous total event rate in any bucket.
    /// Gap draws at this rate dominate the true inhomogeneous process;
    /// thinning by rate(bucket)/envelope recovers it exactly.
    [[nodiscard]] double envelope_rate(std::size_t s, std::size_t c) const {
        return envelope_[s * class_count() + c];
    }

    /// Weighted assignment from a uniform draw in [0, 1).
    [[nodiscard]] std::size_t pick_site(double u) const;
    [[nodiscard]] std::size_t pick_class(double u) const;

private:
    FleetSpec spec_;
    std::vector<devices::Device> devices_;
    std::vector<BucketInfo> buckets_;
    std::vector<std::uint8_t> rainy_;     ///< sites x days.
    std::vector<double> rates_;           ///< sites x classes x 2 x 2.
    std::vector<double> envelope_;        ///< sites x classes.
    std::vector<double> scrub_survival_;  ///< per site.
    std::vector<double> site_cdf_;
    std::vector<double> class_cdf_;
};

}  // namespace tnr::fleet

#pragma once
// Crash-safe fleet checkpointing, journal-compatible with the campaign's
// (beam/journal.hpp): append-only JSON lines, one write+flush per line
// under a mutex, strict replay with the single torn-tail exception. The
// unit of work is the chunk — each line carries one chunk's integer tally
// delta, and because the merged state is integral, replayed chunks merge
// into a resumed run bit-for-bit, keeping resumed stdout identical to an
// uninterrupted run.
//
// Line kinds:
//   {"kind":"fleet-header", seed, devices, days, bucket_hours,
//    acceleration, chunk_devices, chunks, sites, classes, buckets,
//    fingerprint, version}
//   {"kind":"chunk", index, assigned:[...], cells:[...]}  (flat uint64
//    arrays: assigned is sites x classes, cells is sites x classes x
//    buckets x 5 in sdc/due/corrected/repairs/device_hours order)

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>

#include "fleet/aggregator.hpp"
#include "fleet/spec.hpp"

namespace tnr::fleet {

/// Thread-safe appender; shard workers call append_chunk concurrently.
class FleetJournal {
public:
    /// Opens `path` for appending; `truncate` starts a fresh journal.
    /// Throws core::RunError (kIo) when the file cannot be opened.
    FleetJournal(const std::string& path, bool truncate);

    void write_header(const ResolvedFleet& fleet,
                      std::uint64_t chunk_devices);
    void append_chunk(std::uint64_t index, const FleetTally& delta);

private:
    void append_line(const std::string& line);

    std::mutex mutex_;
    std::ofstream file_;
    std::string path_;
};

/// What replay recovers.
struct FleetReplay {
    std::uint64_t seed = 0;
    std::uint64_t devices = 0;
    unsigned days = 0;
    unsigned bucket_hours = 0;
    double acceleration = 1.0;
    std::uint64_t chunk_devices = 0;
    std::uint64_t chunks = 0;
    std::size_t sites = 0;
    std::size_t classes = 0;
    std::size_t buckets = 0;
    std::string fingerprint;
    std::map<std::uint64_t, FleetTally> completed;
};

/// Parses a fleet journal. Throws core::RunError — kIo for an unreadable
/// file or malformed line, kConfig for a missing header.
FleetReplay replay_fleet_journal(const std::string& path);

/// Validates a replayed journal against the resuming run's resolved spec
/// and chunk size; throws core::RunError (kConfig) on any mismatch (the
/// shard count may differ — results are shard-invariant).
void validate_fleet_resume(const FleetReplay& replay,
                           const ResolvedFleet& fleet,
                           std::uint64_t chunk_devices);

}  // namespace tnr::fleet

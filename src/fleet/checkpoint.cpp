#include "fleet/checkpoint.hpp"

#include <sstream>

#include "core/error.hpp"
#include "core/obs/json.hpp"
#include "core/obs/manifest.hpp"

namespace tnr::fleet {

namespace json = core::obs::json;
using core::RunError;

namespace {

const json::Value& require(const json::Value& obj, const char* key,
                           std::size_t line_no) {
    const json::Value* v = obj.find(key);
    if (!v) {
        throw RunError::io("fleet journal line " + std::to_string(line_no) +
                           ": missing field \"" + key + "\"");
    }
    return *v;
}

double require_number(const json::Value& obj, const char* key,
                      std::size_t line_no) {
    const json::Value& v = require(obj, key, line_no);
    if (!v.is_number()) {
        throw RunError::io("fleet journal line " + std::to_string(line_no) +
                           ": field \"" + key + "\" is not a number");
    }
    return v.num;
}

std::uint64_t require_u64(const json::Value& obj, const char* key,
                          std::size_t line_no) {
    return static_cast<std::uint64_t>(require_number(obj, key, line_no));
}

std::string require_string(const json::Value& obj, const char* key,
                           std::size_t line_no) {
    const json::Value& v = require(obj, key, line_no);
    if (!v.is_string()) {
        throw RunError::io("fleet journal line " + std::to_string(line_no) +
                           ": field \"" + key + "\" is not a string");
    }
    return v.str;
}

std::vector<std::uint64_t> require_u64_array(const json::Value& obj,
                                             const char* key,
                                             std::size_t expected,
                                             std::size_t line_no) {
    const json::Value& v = require(obj, key, line_no);
    if (!v.is_array() || v.array.size() != expected) {
        throw RunError::io("fleet journal line " + std::to_string(line_no) +
                           ": field \"" + key + "\" must be an array of " +
                           std::to_string(expected) + " numbers");
    }
    std::vector<std::uint64_t> out;
    out.reserve(expected);
    for (const auto& e : v.array) {
        if (!e.is_number()) {
            throw RunError::io("fleet journal line " +
                               std::to_string(line_no) + ": field \"" + key +
                               "\" holds a non-number");
        }
        out.push_back(static_cast<std::uint64_t>(e.num));
    }
    return out;
}

}  // namespace

FleetJournal::FleetJournal(const std::string& path, bool truncate)
    : path_(path) {
    file_.open(path, truncate ? std::ios::out | std::ios::trunc
                              : std::ios::out | std::ios::app);
    if (!file_) {
        throw RunError::io("cannot open fleet journal file: " + path);
    }
}

void FleetJournal::append_line(const std::string& line) {
    const std::lock_guard lock(mutex_);
    file_ << line << '\n';
    file_.flush();
    if (!file_) {
        throw RunError::io("fleet journal write failed: " + path_);
    }
}

void FleetJournal::write_header(const ResolvedFleet& fleet,
                                std::uint64_t chunk_devices) {
    const FleetSpec& spec = fleet.spec();
    const std::uint64_t chunk =
        chunk_devices > 0 ? chunk_devices : std::uint64_t{1};
    std::ostringstream oss;
    oss << "{\"kind\":\"fleet-header\",\"tool\":\"tnr\",\"version\":\""
        << json::escape(core::obs::build_version())
        << "\",\"seed\":" << spec.seed << ",\"devices\":" << spec.devices
        << ",\"days\":" << spec.days
        << ",\"bucket_hours\":" << spec.bucket_hours
        << ",\"acceleration\":" << json::number(spec.acceleration)
        << ",\"chunk_devices\":" << chunk
        << ",\"chunks\":" << (spec.devices + chunk - 1) / chunk
        << ",\"sites\":" << fleet.site_count()
        << ",\"classes\":" << fleet.class_count()
        << ",\"buckets\":" << fleet.bucket_count() << ",\"fingerprint\":\""
        << json::escape(spec_fingerprint(spec)) << "\"}";
    append_line(oss.str());
}

void FleetJournal::append_chunk(std::uint64_t index,
                                const FleetTally& delta) {
    std::ostringstream oss;
    oss << "{\"kind\":\"chunk\",\"index\":" << index << ",\"assigned\":[";
    bool first = true;
    for (const auto n : delta.assigned_flat()) {
        if (!first) oss << ',';
        first = false;
        oss << n;
    }
    oss << "],\"cells\":[";
    first = true;
    for (const auto& cell : delta.cells()) {
        for (const auto n : {cell.sdc, cell.due, cell.corrected, cell.repairs,
                             cell.device_hours}) {
            if (!first) oss << ',';
            first = false;
            oss << n;
        }
    }
    oss << "]}";
    append_line(oss.str());
}

FleetReplay replay_fleet_journal(const std::string& path) {
    std::ifstream file(path);
    if (!file) {
        throw RunError::io("cannot read fleet journal file: " + path);
    }

    FleetReplay replay;
    bool saw_header = false;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(file, line)) {
        ++line_no;
        const bool torn_tail = file.eof() && !line.empty();
        if (line.empty()) continue;
        const auto doc = json::parse(line);
        if (!doc || !doc->is_object()) {
            if (torn_tail) break;  // crashed mid-append; drop the tail.
            throw RunError::io("fleet journal line " +
                               std::to_string(line_no) + ": malformed JSON");
        }
        const std::string kind = require_string(*doc, "kind", line_no);
        if (kind == "fleet-header") {
            replay.seed = require_u64(*doc, "seed", line_no);
            replay.devices = require_u64(*doc, "devices", line_no);
            replay.days =
                static_cast<unsigned>(require_u64(*doc, "days", line_no));
            replay.bucket_hours = static_cast<unsigned>(
                require_u64(*doc, "bucket_hours", line_no));
            replay.acceleration =
                require_number(*doc, "acceleration", line_no);
            replay.chunk_devices =
                require_u64(*doc, "chunk_devices", line_no);
            replay.chunks = require_u64(*doc, "chunks", line_no);
            replay.sites = static_cast<std::size_t>(
                require_u64(*doc, "sites", line_no));
            replay.classes = static_cast<std::size_t>(
                require_u64(*doc, "classes", line_no));
            replay.buckets = static_cast<std::size_t>(
                require_u64(*doc, "buckets", line_no));
            replay.fingerprint = require_string(*doc, "fingerprint", line_no);
            saw_header = true;
        } else if (kind == "chunk") {
            if (!saw_header) {
                throw RunError::config("fleet journal " + path +
                                       ": chunk line before header");
            }
            const std::uint64_t index = require_u64(*doc, "index", line_no);
            const std::size_t sc = replay.sites * replay.classes;
            const auto assigned =
                require_u64_array(*doc, "assigned", sc, line_no);
            const auto flat = require_u64_array(*doc, "cells",
                                                sc * replay.buckets * 5,
                                                line_no);
            FleetTally tally(replay.sites, replay.classes, replay.buckets);
            tally.assigned_flat() = assigned;
            auto& cells = tally.cells();
            for (std::size_t i = 0; i < cells.size(); ++i) {
                cells[i].sdc = flat[i * 5 + 0];
                cells[i].due = flat[i * 5 + 1];
                cells[i].corrected = flat[i * 5 + 2];
                cells[i].repairs = flat[i * 5 + 3];
                cells[i].device_hours = flat[i * 5 + 4];
            }
            // First completion wins, mirroring the campaign journal.
            replay.completed.emplace(index, std::move(tally));
        } else {
            throw RunError::io("fleet journal line " +
                               std::to_string(line_no) + ": unknown kind \"" +
                               kind + "\"");
        }
    }
    if (!saw_header) {
        throw RunError::config("fleet journal " + path +
                               " has no header line — not a fleet journal");
    }
    return replay;
}

void validate_fleet_resume(const FleetReplay& replay,
                           const ResolvedFleet& fleet,
                           std::uint64_t chunk_devices) {
    const FleetSpec& spec = fleet.spec();
    const auto mismatch = [](const std::string& what) {
        throw RunError::config("cannot resume fleet: journal " + what +
                               " does not match the configured run");
    };
    if (replay.seed != spec.seed) mismatch("seed");
    if (replay.devices != spec.devices) mismatch("devices");
    if (replay.days != spec.days) mismatch("days");
    if (replay.bucket_hours != spec.bucket_hours) mismatch("bucket_hours");
    if (replay.acceleration != spec.acceleration) mismatch("acceleration");
    if (replay.chunk_devices != chunk_devices) mismatch("chunk_devices");
    if (replay.sites != fleet.site_count() ||
        replay.classes != fleet.class_count() ||
        replay.buckets != fleet.bucket_count()) {
        mismatch("dimensions");
    }
    if (replay.fingerprint != spec_fingerprint(spec)) mismatch("fingerprint");
    for (const auto& [index, tally] : replay.completed) {
        (void)tally;
        if (index >= replay.chunks) {
            throw RunError::config(
                "cannot resume fleet: journal chunk index " +
                std::to_string(index) + " out of range");
        }
    }
}

}  // namespace tnr::fleet

#include "fleet/aggregator.hpp"

#include "core/error.hpp"

namespace tnr::fleet {

FleetTally::FleetTally(std::size_t sites, std::size_t classes,
                       std::size_t buckets)
    : sites_(sites),
      classes_(classes),
      buckets_(buckets),
      cells_(sites * classes * buckets),
      assigned_(sites * classes, 0) {}

void FleetTally::merge(const FleetTally& other) {
    if (other.empty_shell()) return;
    if (empty_shell()) {
        *this = other;
        return;
    }
    if (sites_ != other.sites_ || classes_ != other.classes_ ||
        buckets_ != other.buckets_) {
        throw core::RunError::config(
            "fleet: cannot merge tallies with different dimensions");
    }
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        cells_[i].add(other.cells_[i]);
    }
    for (std::size_t i = 0; i < assigned_.size(); ++i) {
        assigned_[i] += other.assigned_[i];
    }
}

CellTally FleetTally::site_total(std::size_t s) const {
    CellTally total;
    for (std::size_t c = 0; c < classes_; ++c) {
        for (std::size_t b = 0; b < buckets_; ++b) total.add(cell(s, c, b));
    }
    return total;
}

CellTally FleetTally::class_total(std::size_t c) const {
    CellTally total;
    for (std::size_t s = 0; s < sites_; ++s) {
        for (std::size_t b = 0; b < buckets_; ++b) total.add(cell(s, c, b));
    }
    return total;
}

CellTally FleetTally::bucket_total(std::size_t b) const {
    CellTally total;
    for (std::size_t s = 0; s < sites_; ++s) {
        for (std::size_t c = 0; c < classes_; ++c) total.add(cell(s, c, b));
    }
    return total;
}

CellTally FleetTally::site_bucket_total(std::size_t s, std::size_t b) const {
    CellTally total;
    for (std::size_t c = 0; c < classes_; ++c) total.add(cell(s, c, b));
    return total;
}

CellTally FleetTally::site_class_total(std::size_t s, std::size_t c) const {
    CellTally total;
    for (std::size_t b = 0; b < buckets_; ++b) total.add(cell(s, c, b));
    return total;
}

CellTally FleetTally::grand_total() const {
    CellTally total;
    for (const auto& cell : cells_) total.add(cell);
    return total;
}

std::uint64_t FleetTally::site_assigned(std::size_t s) const {
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < classes_; ++c) total += assigned(s, c);
    return total;
}

std::uint64_t FleetTally::class_assigned(std::size_t c) const {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < sites_; ++s) total += assigned(s, c);
    return total;
}

std::uint64_t FleetTally::total_assigned() const {
    std::uint64_t total = 0;
    for (const auto n : assigned_) total += n;
    return total;
}

stats::Interval fit_interval(std::uint64_t count, std::uint64_t device_hours,
                             double acceleration) {
    if (device_hours == 0) return {};
    // Exposure in units of 1e9 (accelerated) device-hours puts the rate
    // directly in FIT; acceleration stretches the effective exposure.
    const double exposure =
        static_cast<double>(device_hours) * acceleration / 1e9;
    return stats::poisson_rate_interval(count, exposure);
}

double fit_estimate(std::uint64_t count, std::uint64_t device_hours,
                    double acceleration) {
    if (device_hours == 0) return 0.0;
    return static_cast<double>(count) /
           (static_cast<double>(device_hours) * acceleration) * 1e9;
}

}  // namespace tnr::fleet

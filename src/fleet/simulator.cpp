#include "fleet/simulator.hpp"

#include <algorithm>
#include <chrono>

#include "core/error.hpp"
#include "core/obs/metrics.hpp"
#include "core/parallel/parallel_for.hpp"

namespace tnr::fleet {

namespace {

namespace obs = core::obs;

/// fleet.* telemetry, cached once (Registry::counter takes the registry
/// mutex) and bumped at chunk granularity so the hot device loop stays
/// instrument-free.
struct Instruments {
    obs::Counter& devices;
    obs::Counter& chunks;
    obs::Counter& sdc;
    obs::Counter& due;
    obs::Counter& corrected;
    obs::Counter& repairs;
    obs::LatencyHistogram& chunk_latency;

    static Instruments& get() {
        static Instruments in{
            obs::Registry::global().counter("fleet.devices"),
            obs::Registry::global().counter("fleet.chunks"),
            obs::Registry::global().counter("fleet.events.sdc"),
            obs::Registry::global().counter("fleet.events.due"),
            obs::Registry::global().counter("fleet.events.corrected"),
            obs::Registry::global().counter("fleet.events.repairs"),
            obs::Registry::global().latency("fleet.chunk"),
        };
        return in;
    }
};

/// Walks one device: assignment draws, then one Poisson draw per error
/// type per bucket, folding into `tally`. All randomness comes from the
/// device's own counter-derived stream, so the walk is independent of
/// which shard or chunk invoked it.
void walk_device(const ResolvedFleet& fleet, std::uint64_t index,
                 FleetTally& tally) {
    const FleetSpec& spec = fleet.spec();
    stats::Rng rng = device_stream(spec.seed, index);
    const std::size_t s = fleet.pick_site(rng.uniform());
    const std::size_t c = fleet.pick_class(rng.uniform());
    ++tally.assigned(s, c);

    const SitePolicy& policy = spec.sites[s].policy;
    const double survival = fleet.scrub_survival(s);
    std::uint64_t offline_until_h = 0;

    for (std::size_t b = 0; b < fleet.bucket_count(); ++b) {
        const BucketInfo& bucket = fleet.bucket(b);
        const std::uint64_t end_h = bucket.start_h + bucket.hours;
        const std::uint64_t exposed_from =
            std::max<std::uint64_t>(bucket.start_h, offline_until_h);
        if (exposed_from >= end_h) continue;  // fully inside a repair window.
        const std::uint64_t hours = end_h - exposed_from;

        const bool rainy = fleet.rainy(s, bucket.day);
        CellTally& cell = tally.cell(s, c, b);
        cell.device_hours += hours;

        const double h = static_cast<double>(hours);
        const std::uint64_t raw_sdc = rng.poisson(
            fleet.hourly_rate(s, c, rainy, devices::ErrorType::kSdc) * h);
        // Scrub thinning: each latent fault independently survives to a
        // consuming read with the site's survival probability.
        std::uint64_t surviving = raw_sdc;
        if (survival < 1.0) {
            surviving = 0;
            for (std::uint64_t k = 0; k < raw_sdc; ++k) {
                if (rng.bernoulli(survival)) ++surviving;
            }
        }
        cell.sdc += surviving;
        cell.corrected += raw_sdc - surviving;

        const std::uint64_t dues = rng.poisson(
            fleet.hourly_rate(s, c, rainy, devices::ErrorType::kDue) * h);
        cell.due += dues;
        if (dues > 0 && policy.repair_hours > 0) {
            // The device leaves service for repair at the end of the bucket
            // that detected the DUE.
            ++cell.repairs;
            offline_until_h = end_h + policy.repair_hours;
        }
    }
}

}  // namespace

std::uint64_t chunk_count(const FleetSpec& spec,
                          std::uint64_t chunk_devices) {
    const std::uint64_t chunk = std::max<std::uint64_t>(1, chunk_devices);
    return (spec.devices + chunk - 1) / chunk;
}

FleetResult run_fleet(const ResolvedFleet& fleet,
                      const FleetRunOptions& opts) {
    const FleetSpec& spec = fleet.spec();
    const std::uint64_t chunk_devices =
        std::max<std::uint64_t>(1, opts.chunk_devices);
    const std::uint64_t chunks = chunk_count(spec, chunk_devices);
    const std::size_t S = fleet.site_count();
    const std::size_t C = fleet.class_count();
    const std::size_t B = fleet.bucket_count();
    auto& instruments = Instruments::get();

    FleetResult result;
    result.chunks = chunks;

    const auto is_replayed = [&](std::uint64_t chunk) {
        return opts.completed != nullptr &&
               opts.completed->find(chunk) != opts.completed->end();
    };

    // Contiguous shard ranges over the chunk index space. Each shard walks
    // its range into a private tally; memory scales with the shard count,
    // never with the fleet size.
    const unsigned shards = core::parallel::resolve_threads(
        opts.shards, chunks);
    const std::uint64_t per_shard = (chunks + shards - 1) / shards;

    auto shard_tallies = core::parallel::parallel_map<FleetTally>(
        shards, shards,
        [&](std::size_t shard) {
            FleetTally tally(S, C, B);
            const std::uint64_t begin = per_shard * shard;
            const std::uint64_t end =
                std::min<std::uint64_t>(chunks, begin + per_shard);
            for (std::uint64_t chunk = begin; chunk < end; ++chunk) {
                if (opts.cancel != nullptr && opts.cancel->cancelled()) break;
                if (is_replayed(chunk)) continue;
                const auto t0 = std::chrono::steady_clock::now();
                FleetTally delta(S, C, B);
                const std::uint64_t first = chunk * chunk_devices;
                const std::uint64_t last =
                    std::min<std::uint64_t>(spec.devices,
                                            first + chunk_devices);
                for (std::uint64_t i = first; i < last; ++i) {
                    walk_device(fleet, i, delta);
                }
                const auto elapsed =
                    std::chrono::steady_clock::now() - t0;
                const CellTally chunk_total = delta.grand_total();
                instruments.devices.add(last - first);
                instruments.chunks.add(1);
                instruments.sdc.add(chunk_total.sdc);
                instruments.due.add(chunk_total.due);
                instruments.corrected.add(chunk_total.corrected);
                instruments.repairs.add(chunk_total.repairs);
                instruments.chunk_latency.record_ns(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        elapsed)
                        .count()));
                if (opts.on_chunk_done) opts.on_chunk_done(chunk, delta);
                tally.merge(delta);
            }
            return tally;
        },
        opts.cancel);

    if (opts.cancel != nullptr && opts.cancel->cancelled()) {
        // Completed chunks reached the journal through on_chunk_done; a
        // partial tally must never reach stdout.
        throw core::RunError::cancelled("fleet run cancelled");
    }

    FleetTally merged(S, C, B);
    for (const auto& shard_tally : shard_tallies) {
        merged.merge(shard_tally);
    }
    result.simulated_chunks = chunks;
    if (opts.completed != nullptr) {
        for (const auto& [chunk, tally] : *opts.completed) {
            if (chunk >= chunks) continue;  // validated earlier; belt.
            merged.merge(tally);
            ++result.replayed_chunks;
        }
        result.simulated_chunks -= result.replayed_chunks;
    }
    result.tally = std::move(merged);
    return result;
}

}  // namespace tnr::fleet

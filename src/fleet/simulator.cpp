#include "fleet/simulator.hpp"

#include <algorithm>
#include <chrono>

#include "core/error.hpp"
#include "core/obs/metrics.hpp"
#include "core/parallel/parallel_for.hpp"
#include "core/simd/rng_block.hpp"

namespace tnr::fleet {

namespace {

namespace obs = core::obs;

/// fleet.* telemetry, cached once (Registry::counter takes the registry
/// mutex) and bumped at chunk granularity so the hot device loop stays
/// instrument-free.
struct Instruments {
    obs::Counter& devices;
    obs::Counter& chunks;
    obs::Counter& sdc;
    obs::Counter& due;
    obs::Counter& corrected;
    obs::Counter& repairs;
    obs::LatencyHistogram& chunk_latency;

    static Instruments& get() {
        static Instruments in{
            obs::Registry::global().counter("fleet.devices"),
            obs::Registry::global().counter("fleet.chunks"),
            obs::Registry::global().counter("fleet.events.sdc"),
            obs::Registry::global().counter("fleet.events.due"),
            obs::Registry::global().counter("fleet.events.corrected"),
            obs::Registry::global().counter("fleet.events.repairs"),
            obs::Registry::global().latency("fleet.chunk"),
        };
        return in;
    }
};

/// Walks one device: assignment draws, then one Poisson draw per error
/// type per bucket, folding into `tally`. All randomness comes from the
/// device's own counter-derived stream, so the walk is independent of
/// which shard or chunk invoked it.
void walk_device(const ResolvedFleet& fleet, std::uint64_t index,
                 FleetTally& tally) {
    const FleetSpec& spec = fleet.spec();
    stats::Rng rng = device_stream(spec.seed, index);
    const std::size_t s = fleet.pick_site(rng.uniform());
    const std::size_t c = fleet.pick_class(rng.uniform());
    ++tally.assigned(s, c);

    const SitePolicy& policy = spec.sites[s].policy;
    const double survival = fleet.scrub_survival(s);
    std::uint64_t offline_until_h = 0;

    for (std::size_t b = 0; b < fleet.bucket_count(); ++b) {
        const BucketInfo& bucket = fleet.bucket(b);
        const std::uint64_t end_h = bucket.start_h + bucket.hours;
        const std::uint64_t exposed_from =
            std::max<std::uint64_t>(bucket.start_h, offline_until_h);
        if (exposed_from >= end_h) continue;  // fully inside a repair window.
        const std::uint64_t hours = end_h - exposed_from;

        const bool rainy = fleet.rainy(s, bucket.day);
        CellTally& cell = tally.cell(s, c, b);
        cell.device_hours += hours;

        const double h = static_cast<double>(hours);
        const std::uint64_t raw_sdc = rng.poisson(
            fleet.hourly_rate(s, c, rainy, devices::ErrorType::kSdc) * h);
        // Scrub thinning: each latent fault independently survives to a
        // consuming read with the site's survival probability.
        std::uint64_t surviving = raw_sdc;
        if (survival < 1.0) {
            surviving = 0;
            for (std::uint64_t k = 0; k < raw_sdc; ++k) {
                if (rng.bernoulli(survival)) ++surviving;
            }
        }
        cell.sdc += surviving;
        cell.corrected += raw_sdc - surviving;

        const std::uint64_t dues = rng.poisson(
            fleet.hourly_rate(s, c, rainy, devices::ErrorType::kDue) * h);
        cell.due += dues;
        if (dues > 0 && policy.repair_hours > 0) {
            // The device leaves service for repair at the end of the bucket
            // that detected the DUE.
            ++cell.repairs;
            offline_until_h = end_h + policy.repair_hours;
        }
    }
}

/// Per-chunk working state for the event-driven walk, reused across the
/// devices of a chunk so the hot loop never allocates.
struct EventScratch {
    /// Devices per (site, class) that finished with no repair window; their
    /// full-exposure device-hours are added per bucket in one multiply at
    /// chunk flush (integer distributivity keeps the result bitwise
    /// invariant to the chunk size).
    std::vector<std::uint64_t> clean_devices;
    /// Realized repair windows of the device being walked:
    /// (offline-from hour, offline-until hour), in time order.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> windows;

    explicit EventScratch(std::size_t site_classes)
        : clean_devices(site_classes, 0) {}
};

/// Skip-ahead gap draws, pulled from the device stream through the block
/// RNG facade (core/simd): the first block is small because the common
/// field-study device needs exactly one gap to clear the whole horizon.
struct GapBlock {
    static constexpr std::size_t kFirst = 2;
    static constexpr std::size_t kBlock = 8;
    double gaps[kBlock];
    std::size_t next = 0;
    std::size_t filled = 0;

    double draw(stats::Rng& rng, core::simd::Tier tier) {
        if (next == filled) {
            filled = filled == 0 ? kFirst : kBlock;
            core::simd::fill_unit_exponential(rng, gaps, filled, tier);
            next = 0;
        }
        return gaps[next++];
    }
};

/// Walks one device in event-driven mode: the same assignment draws as the
/// dense walk, then exponential inter-event gaps at the (site, class)
/// envelope rate. Each candidate is accepted with probability
/// rate(bucket)/envelope and classified SDC-vs-DUE by rate proportion (one
/// uniform does both), scrub survival is a per-event Bernoulli thin, and a
/// DUE with repair enabled opens an offline window at the end of its bucket
/// — candidates landing inside a window are discarded and the (memoryless)
/// clock restarts at the window's end. Event tallies go straight into
/// `tally`; device-hours go through `scratch` (clean devices are counted,
/// repaired devices replay the dense exposure arithmetic per bucket).
void walk_device_event(const ResolvedFleet& fleet, std::uint64_t index,
                       FleetTally& tally, EventScratch& scratch,
                       core::simd::Tier tier) {
    const FleetSpec& spec = fleet.spec();
    stats::Rng rng = device_stream(spec.seed, index);
    const std::size_t s = fleet.pick_site(rng.uniform());
    const std::size_t c = fleet.pick_class(rng.uniform());
    ++tally.assigned(s, c);

    const SitePolicy& policy = spec.sites[s].policy;
    const double survival = fleet.scrub_survival(s);
    const double envelope = fleet.envelope_rate(s, c);
    const double total_h = static_cast<double>(spec.total_hours());
    const std::size_t B = fleet.bucket_count();

    auto& windows = scratch.windows;
    windows.clear();

    if (envelope > 0.0) {
        GapBlock block;
        double t = 0.0;
        std::uint64_t offline_start = 0;  // == end of the triggering bucket.
        std::uint64_t offline_until = 0;
        std::size_t b = 0;
        while (true) {
            t += block.draw(rng, tier) / envelope;
            if (!(t < total_h)) break;
            if (offline_until > offline_start &&
                t >= static_cast<double>(offline_start) &&
                t < static_cast<double>(offline_until)) {
                // Not exposed: drop the candidate and restart the clock at
                // the window end (the envelope process is memoryless, so
                // the post-window candidates are a fresh Exp(envelope)
                // stream — never an event AT the window boundary).
                t = static_cast<double>(offline_until);
                if (!(t < total_h)) break;
                continue;
            }
            while (b + 1 < B &&
                   t >= static_cast<double>(fleet.bucket(b).start_h +
                                            fleet.bucket(b).hours)) {
                ++b;
            }
            const BucketInfo& bucket = fleet.bucket(b);
            const bool rainy = fleet.rainy(s, bucket.day);
            const double r_sdc =
                fleet.hourly_rate(s, c, rainy, devices::ErrorType::kSdc);
            const double r_due =
                fleet.hourly_rate(s, c, rainy, devices::ErrorType::kDue);
            const double scaled = rng.uniform() * envelope;
            if (scaled < r_sdc) {
                CellTally& cell = tally.cell(s, c, b);
                if (survival >= 1.0 || rng.bernoulli(survival)) {
                    ++cell.sdc;
                } else {
                    ++cell.corrected;
                }
            } else if (scaled < r_sdc + r_due) {
                CellTally& cell = tally.cell(s, c, b);
                ++cell.due;
                const std::uint64_t end_h = bucket.start_h + bucket.hours;
                if (policy.repair_hours > 0 && offline_start != end_h) {
                    // First DUE of this bucket schedules the (single)
                    // repair; the device stays exposed until the bucket
                    // ends, exactly like the dense walk.
                    ++cell.repairs;
                    offline_start = end_h;
                    offline_until = end_h + policy.repair_hours;
                    windows.emplace_back(offline_start, offline_until);
                }
            }
            // else: envelope slack — the candidate is thinned away.
        }
    }

    if (windows.empty()) {
        ++scratch.clean_devices[s * fleet.class_count() + c];
    } else {
        // Replay the dense exposure arithmetic against the realized repair
        // windows so per-cell device_hours stays the same integer function
        // of the windows in both modes.
        std::uint64_t off = 0;
        std::size_t wi = 0;
        for (std::size_t bi = 0; bi < B; ++bi) {
            const BucketInfo& bucket = fleet.bucket(bi);
            while (wi < windows.size() &&
                   windows[wi].first <= bucket.start_h) {
                off = windows[wi++].second;
            }
            const std::uint64_t end_h = bucket.start_h + bucket.hours;
            const std::uint64_t exposed_from =
                std::max<std::uint64_t>(bucket.start_h, off);
            if (exposed_from >= end_h) continue;
            tally.cell(s, c, bi).device_hours += end_h - exposed_from;
        }
    }
}

/// Adds the full-exposure device-hours of a chunk's clean (never-repaired)
/// devices: count x bucket hours per cell, then resets the counts.
void flush_clean_device_hours(const ResolvedFleet& fleet,
                              EventScratch& scratch, FleetTally& delta) {
    const std::size_t C = fleet.class_count();
    for (std::size_t s = 0; s < fleet.site_count(); ++s) {
        for (std::size_t c = 0; c < C; ++c) {
            std::uint64_t& count = scratch.clean_devices[s * C + c];
            if (count == 0) continue;
            for (std::size_t b = 0; b < fleet.bucket_count(); ++b) {
                delta.cell(s, c, b).device_hours +=
                    count * fleet.bucket(b).hours;
            }
            count = 0;
        }
    }
}

}  // namespace

std::uint64_t chunk_count(const FleetSpec& spec,
                          std::uint64_t chunk_devices) {
    const std::uint64_t chunk = std::max<std::uint64_t>(1, chunk_devices);
    return (spec.devices + chunk - 1) / chunk;
}

std::vector<std::uint64_t> pending_chunks(
    std::uint64_t chunks,
    const std::map<std::uint64_t, FleetTally>* completed) {
    std::vector<std::uint64_t> pending;
    if (completed == nullptr || completed->empty()) {
        pending.resize(chunks);
        for (std::uint64_t chunk = 0; chunk < chunks; ++chunk) {
            pending[chunk] = chunk;
        }
        return pending;
    }
    pending.reserve(chunks >= completed->size()
                        ? static_cast<std::size_t>(chunks -
                                                   completed->size())
                        : 0);
    for (std::uint64_t chunk = 0; chunk < chunks; ++chunk) {
        if (completed->find(chunk) == completed->end()) {
            pending.push_back(chunk);
        }
    }
    return pending;
}

std::pair<std::uint64_t, std::uint64_t> shard_range(std::uint64_t pending,
                                                    unsigned shards,
                                                    unsigned shard) {
    const std::uint64_t base = pending / shards;
    const std::uint64_t extra = pending % shards;
    const std::uint64_t begin =
        base * shard + std::min<std::uint64_t>(shard, extra);
    return {begin, begin + base + (shard < extra ? 1 : 0)};
}

FleetResult run_fleet(const ResolvedFleet& fleet,
                      const FleetRunOptions& opts) {
    const FleetSpec& spec = fleet.spec();
    const std::uint64_t chunk_devices =
        std::max<std::uint64_t>(1, opts.chunk_devices);
    const std::uint64_t chunks = chunk_count(spec, chunk_devices);
    const std::size_t S = fleet.site_count();
    const std::size_t C = fleet.class_count();
    const std::size_t B = fleet.bucket_count();
    const bool event_mode = spec.mode == FleetMode::kEventDriven;
    const core::simd::Tier tier = core::simd::default_tier();
    auto& instruments = Instruments::get();
    core::obs::Registry::global().gauge("fleet.mode").set(event_mode ? 1.0
                                                                    : 0.0);

    FleetResult result;
    result.chunks = chunks;

    // Contiguous shard ranges over the NOT-yet-completed chunks (a resumed
    // run partitions only the live work, so every shard simulates). Each
    // shard walks its slice into a private tally; memory scales with the
    // shard count, never with the fleet size.
    const std::vector<std::uint64_t> pending =
        pending_chunks(chunks, opts.completed);
    const unsigned shards = core::parallel::resolve_threads(
        opts.shards, pending.empty() ? 1 : pending.size());

    auto shard_tallies = core::parallel::parallel_map<FleetTally>(
        shards, shards,
        [&](std::size_t shard) {
            FleetTally tally(S, C, B);
            const auto [begin, end] = shard_range(
                pending.size(), shards, static_cast<unsigned>(shard));
            EventScratch scratch(S * C);
            for (std::uint64_t p = begin; p < end; ++p) {
                if (opts.cancel != nullptr && opts.cancel->cancelled()) break;
                const std::uint64_t chunk = pending[p];
                const auto t0 = std::chrono::steady_clock::now();
                FleetTally delta(S, C, B);
                const std::uint64_t first = chunk * chunk_devices;
                const std::uint64_t last =
                    std::min<std::uint64_t>(spec.devices,
                                            first + chunk_devices);
                if (event_mode) {
                    for (std::uint64_t i = first; i < last; ++i) {
                        walk_device_event(fleet, i, delta, scratch, tier);
                    }
                    flush_clean_device_hours(fleet, scratch, delta);
                } else {
                    for (std::uint64_t i = first; i < last; ++i) {
                        walk_device(fleet, i, delta);
                    }
                }
                const auto elapsed =
                    std::chrono::steady_clock::now() - t0;
                const CellTally chunk_total = delta.grand_total();
                instruments.devices.add(last - first);
                instruments.chunks.add(1);
                instruments.sdc.add(chunk_total.sdc);
                instruments.due.add(chunk_total.due);
                instruments.corrected.add(chunk_total.corrected);
                instruments.repairs.add(chunk_total.repairs);
                instruments.chunk_latency.record_ns(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        elapsed)
                        .count()));
                if (opts.on_chunk_done) opts.on_chunk_done(chunk, delta);
                tally.merge(delta);
            }
            return tally;
        },
        opts.cancel);

    if (opts.cancel != nullptr && opts.cancel->cancelled()) {
        // Completed chunks reached the journal through on_chunk_done; a
        // partial tally must never reach stdout.
        throw core::RunError::cancelled("fleet run cancelled");
    }

    FleetTally merged(S, C, B);
    for (const auto& shard_tally : shard_tallies) {
        merged.merge(shard_tally);
    }
    result.simulated_chunks = chunks;
    if (opts.completed != nullptr) {
        for (const auto& [chunk, tally] : *opts.completed) {
            if (chunk >= chunks) continue;  // validated earlier; belt.
            merged.merge(tally);
            ++result.replayed_chunks;
        }
        result.simulated_chunks -= result.replayed_chunks;
    }
    result.tally = std::move(merged);
    return result;
}

}  // namespace tnr::fleet

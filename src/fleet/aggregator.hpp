#pragma once
// The streaming fleet aggregator: a fixed-size lattice of integer tallies,
// sites x device-classes x time-buckets, that devices fold into as they are
// walked. Its size depends only on the study dimensions — never on the
// fleet size — which is what makes the simulator constant-memory.
//
// Everything merged across shards is integral (event counts and whole
// device-hours). Integer addition is associative and commutative, so
// merging shard tallies in any grouping yields bit-identical state — the
// foundation of the `--shards N` bitwise-invariance guarantee. Derived
// floating-point quantities (FIT, Poisson CIs) are computed once at render
// time from the merged integers.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/poisson.hpp"

namespace tnr::fleet {

/// Integer tallies for one (site, class, bucket) cell.
struct CellTally {
    std::uint64_t sdc = 0;        ///< silent corruptions that reached a read.
    std::uint64_t due = 0;        ///< detected unrecoverable errors.
    std::uint64_t corrected = 0;  ///< latent faults removed by scrubbing.
    std::uint64_t repairs = 0;    ///< repair windows entered.
    std::uint64_t device_hours = 0;  ///< exposure actually accumulated.

    void add(const CellTally& o) noexcept {
        sdc += o.sdc;
        due += o.due;
        corrected += o.corrected;
        repairs += o.repairs;
        device_hours += o.device_hours;
    }
    bool operator==(const CellTally&) const = default;
};

/// The mergeable aggregator. Default-constructed tallies are empty shells
/// (parallel_map slot placeholders); merging one is a no-op.
class FleetTally {
public:
    FleetTally() = default;
    FleetTally(std::size_t sites, std::size_t classes, std::size_t buckets);

    [[nodiscard]] std::size_t sites() const noexcept { return sites_; }
    [[nodiscard]] std::size_t classes() const noexcept { return classes_; }
    [[nodiscard]] std::size_t buckets() const noexcept { return buckets_; }
    [[nodiscard]] bool empty_shell() const noexcept { return cells_.empty(); }

    [[nodiscard]] CellTally& cell(std::size_t s, std::size_t c,
                                  std::size_t b) {
        return cells_[(s * classes_ + c) * buckets_ + b];
    }
    [[nodiscard]] const CellTally& cell(std::size_t s, std::size_t c,
                                        std::size_t b) const {
        return cells_[(s * classes_ + c) * buckets_ + b];
    }
    [[nodiscard]] std::uint64_t& assigned(std::size_t s, std::size_t c) {
        return assigned_[s * classes_ + c];
    }
    [[nodiscard]] std::uint64_t assigned(std::size_t s, std::size_t c) const {
        return assigned_[s * classes_ + c];
    }

    /// Elementwise integer addition. Merging an empty shell is a no-op;
    /// merging mismatched dimensions throws RunError(kConfig).
    void merge(const FleetTally& other);

    /// Marginals (computed on demand; cheap — the lattice is small).
    [[nodiscard]] CellTally site_total(std::size_t s) const;
    [[nodiscard]] CellTally class_total(std::size_t c) const;
    [[nodiscard]] CellTally bucket_total(std::size_t b) const;
    [[nodiscard]] CellTally site_bucket_total(std::size_t s,
                                              std::size_t b) const;
    [[nodiscard]] CellTally site_class_total(std::size_t s,
                                             std::size_t c) const;
    [[nodiscard]] CellTally grand_total() const;
    [[nodiscard]] std::uint64_t site_assigned(std::size_t s) const;
    [[nodiscard]] std::uint64_t class_assigned(std::size_t c) const;
    [[nodiscard]] std::uint64_t total_assigned() const;

    /// Flat views for serialization (journal) and property tests.
    [[nodiscard]] const std::vector<CellTally>& cells() const noexcept {
        return cells_;
    }
    [[nodiscard]] const std::vector<std::uint64_t>& assigned_flat()
        const noexcept {
        return assigned_;
    }
    [[nodiscard]] std::vector<CellTally>& cells() noexcept { return cells_; }
    [[nodiscard]] std::vector<std::uint64_t>& assigned_flat() noexcept {
        return assigned_;
    }

    bool operator==(const FleetTally&) const = default;

private:
    std::size_t sites_ = 0;
    std::size_t classes_ = 0;
    std::size_t buckets_ = 0;
    std::vector<CellTally> cells_;          ///< sites x classes x buckets.
    std::vector<std::uint64_t> assigned_;   ///< sites x classes.
};

/// 95% Garwood CI on a FIT estimate from merged integers: `count` events
/// over `device_hours` of (accelerated) exposure. The acceleration factor
/// divides back out so the interval is in true (unaccelerated) FIT.
stats::Interval fit_interval(std::uint64_t count, std::uint64_t device_hours,
                             double acceleration);

/// The point estimate matching fit_interval: count / exposure in FIT.
double fit_estimate(std::uint64_t count, std::uint64_t device_hours,
                    double acceleration);

}  // namespace tnr::fleet

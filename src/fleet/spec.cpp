#include "fleet/spec.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"
#include "core/fit.hpp"
#include "core/obs/json.hpp"

namespace tnr::fleet {

namespace {

using core::RunError;

/// Domain-separation tags for the counter-based stream derivations; the
/// values are arbitrary but fixed forever (changing one changes every
/// result).
constexpr std::uint64_t kDeviceStreamTag = 0x666c6565742d646dULL;  // "fleet-dm"
constexpr std::uint64_t kWeatherTag = 0x666c6565742d7778ULL;       // "fleet-wx"

std::uint64_t scramble(std::uint64_t x) {
    return stats::SplitMix64(x).next();
}

std::vector<double> weight_cdf(const std::vector<double>& weights,
                               const char* what) {
    double total = 0.0;
    for (const double w : weights) {
        if (!(w > 0.0)) {
            throw RunError::config(std::string("fleet: every ") + what +
                                   " weight must be > 0");
        }
        total += w;
    }
    std::vector<double> cdf;
    cdf.reserve(weights.size());
    double acc = 0.0;
    for (const double w : weights) {
        acc += w;
        cdf.push_back(acc / total);
    }
    cdf.back() = 1.0;  // guard against rounding shaving the last bin.
    return cdf;
}

std::size_t pick(const std::vector<double>& cdf, double u) {
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
    const auto idx = static_cast<std::size_t>(it - cdf.begin());
    return idx < cdf.size() ? idx : cdf.size() - 1;
}

}  // namespace

void FleetSpec::validate() const {
    if (devices == 0 || devices > 20'000'000ULL) {
        throw RunError::config("fleet: devices must be in [1, 2e7]");
    }
    if (days == 0 || days > 3650) {
        throw RunError::config("fleet: days must be in [1, 3650]");
    }
    if (bucket_hours == 0 || bucket_hours > total_hours()) {
        throw RunError::config(
            "fleet: bucket-hours must be in [1, days*24]");
    }
    if (!(acceleration > 0.0) || acceleration > 1e9) {
        throw RunError::config("fleet: acceleration must be in (0, 1e9]");
    }
    if (sites.empty()) {
        throw RunError::config("fleet: at least one site is required");
    }
    if (mix.empty()) {
        throw RunError::config("fleet: at least one device class is required");
    }
    for (const auto& fs : sites) {
        if (fs.policy.rain_probability < 0.0 ||
            fs.policy.rain_probability > 1.0) {
            throw RunError::config(
                "fleet: rain probability must be in [0, 1]");
        }
        if (fs.policy.scrub_interval_h < 0.0) {
            throw RunError::config("fleet: scrub interval must be >= 0");
        }
    }
}

FleetMode parse_fleet_mode(const std::string& text,
                           const std::string& context) {
    if (text == "dense") return FleetMode::kDense;
    if (text == "event") return FleetMode::kEventDriven;
    throw RunError::config(context + ": unknown fleet-mode: " + text +
                           " (use dense|event)");
}

const char* to_string(FleetMode mode) noexcept {
    return mode == FleetMode::kEventDriven ? "event" : "dense";
}

std::string spec_fingerprint(const FleetSpec& spec) {
    // v2: the sampling mode joined the fingerprint — the two modes consume
    // a device's stream differently, so their chunk tallies must never be
    // merged into one another through --resume.
    std::ostringstream oss;
    oss << "v2;devices=" << spec.devices << ";days=" << spec.days
        << ";bucket_h=" << spec.bucket_hours << ";seed=" << spec.seed
        << ";accel=" << core::obs::json::number(spec.acceleration)
        << ";mode=" << to_string(spec.mode);
    for (const auto& fs : spec.sites) {
        oss << ";site=" << fs.site.system_name << "|w="
            << core::obs::json::number(fs.weight) << "|phi_th="
            << core::obs::json::number(fs.site.thermal_flux()) << "|phi_he="
            << core::obs::json::number(fs.site.high_energy_flux()) << "|scrub="
            << core::obs::json::number(fs.policy.scrub_interval_h)
            << "|repair=" << fs.policy.repair_hours << "|rain="
            << core::obs::json::number(fs.policy.rain_probability);
    }
    for (const auto& m : spec.mix) {
        oss << ";class=" << m.device << "|w="
            << core::obs::json::number(m.weight);
    }
    return oss.str();
}

stats::Rng device_stream(std::uint64_t seed, std::uint64_t device_index) {
    // Two scramble rounds decorrelate neighbouring indices before the Rng
    // constructor expands the state through SplitMix64 once more.
    return stats::Rng(scramble(scramble(seed ^ kDeviceStreamTag) ^
                               device_index));
}

ResolvedFleet::ResolvedFleet(FleetSpec spec) : spec_(std::move(spec)) {
    spec_.validate();
    const std::size_t S = spec_.sites.size();
    const std::size_t C = spec_.mix.size();

    devices_.reserve(C);
    for (const auto& entry : spec_.mix) {
        const devices::DeviceSpec* device_spec =
            devices::try_spec_by_name(entry.device);
        if (device_spec == nullptr) {
            throw RunError::config("fleet: unknown device: " + entry.device +
                                   " (see `tnr list-devices`)");
        }
        devices_.push_back(devices::build_calibrated(*device_spec));
    }

    // Timeline buckets; the last one may be partial.
    const std::uint64_t total = spec_.total_hours();
    buckets_.reserve(spec_.bucket_count());
    for (std::uint64_t start = 0; start < total;
         start += spec_.bucket_hours) {
        BucketInfo b;
        b.start_h = start;
        b.hours = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(spec_.bucket_hours, total - start));
        b.day = static_cast<std::uint32_t>(start / 24);
        buckets_.push_back(b);
    }

    // Weather series: hash (seed, site, day) so every shard reconstructs
    // the identical series without coordination.
    rainy_.assign(S * spec_.days, 0);
    for (std::size_t s = 0; s < S; ++s) {
        const double p = spec_.sites[s].policy.rain_probability;
        const std::uint64_t site_key =
            scramble(scramble(spec_.seed ^ kWeatherTag) ^ s);
        for (unsigned day = 0; day < spec_.days; ++day) {
            stats::Rng rng(scramble(site_key ^ day));
            rainy_[s * spec_.days + day] = rng.bernoulli(p) ? 1 : 0;
        }
    }

    // Accelerated hourly event rates per (site, class, weather, type):
    // FIT is events per 1e9 device-hours, so rate/h = FIT/1e9 x accel.
    rates_.assign(S * C * 4, 0.0);
    for (std::size_t s = 0; s < S; ++s) {
        for (int w = 0; w < 2; ++w) {
            environment::Site site = spec_.sites[s].site;
            site.environment.weather = w == 1 ? environment::Weather::kRainy
                                              : environment::Weather::kSunny;
            for (std::size_t c = 0; c < C; ++c) {
                for (const auto type :
                     {devices::ErrorType::kSdc, devices::ErrorType::kDue}) {
                    const std::size_t t =
                        type == devices::ErrorType::kSdc ? 0 : 1;
                    const double fit =
                        core::device_fit(devices_[c], type, site).total();
                    rates_[((s * C + c) * 2 + static_cast<std::size_t>(w)) *
                               2 +
                           t] = fit / 1e9 * spec_.acceleration;
                }
            }
        }
    }

    // Event-mode envelopes: the rainy state can only raise the thermal
    // term, but max over both states keeps the bound correct for any
    // future modifier that cuts a rate instead.
    envelope_.assign(S * C, 0.0);
    for (std::size_t s = 0; s < S; ++s) {
        for (std::size_t c = 0; c < C; ++c) {
            double env = 0.0;
            for (int w = 0; w < 2; ++w) {
                const bool rainy = w == 1;
                env = std::max(env,
                               hourly_rate(s, c, rainy,
                                           devices::ErrorType::kSdc) +
                                   hourly_rate(s, c, rainy,
                                               devices::ErrorType::kDue));
            }
            envelope_[s * C + c] = env;
        }
    }

    scrub_survival_.resize(S);
    for (std::size_t s = 0; s < S; ++s) {
        const double interval = spec_.sites[s].policy.scrub_interval_h;
        scrub_survival_[s] =
            interval > 0.0 ? interval / (interval + kMeanConsumeHours) : 1.0;
    }

    std::vector<double> sw;
    sw.reserve(S);
    for (const auto& fs : spec_.sites) sw.push_back(fs.weight);
    site_cdf_ = weight_cdf(sw, "site");
    std::vector<double> cw;
    cw.reserve(C);
    for (const auto& m : spec_.mix) cw.push_back(m.weight);
    class_cdf_ = weight_cdf(cw, "device-class");
}

std::size_t ResolvedFleet::pick_site(double u) const {
    return pick(site_cdf_, u);
}

std::size_t ResolvedFleet::pick_class(double u) const {
    return pick(class_cdf_, u);
}

}  // namespace tnr::fleet

#pragma once
// The query handlers behind `tnr serve` — and the single source of truth
// for what the equivalent one-shot CLI commands print. Each render_*
// function returns exactly the bytes `tnr <command>` writes to stdout for
// the same parameters; the CLI commands call the same functions, so a
// served response is byte-identical to the one-shot output by construction
// (tests/test_serve.cpp pins this down).

#include <cstdint>
#include <string>

#include "beam/campaign.hpp"
#include "core/parallel/cancel.hpp"
#include "environment/site.hpp"
#include "fleet/spec.hpp"
#include "physics/transport.hpp"

namespace tnr::serve {

/// Shared validation for the transport-kernel knobs every transport-running
/// command exposes (`--mode`, `--batch-size`, `--simd`): maps the string
/// values onto `cfg` and throws RunError(kConfig) for anything unknown, so
/// the CLI commands and the serve method schema reject bad values with one
/// message. `context` prefixes the error ("transmission", "campaign").
///
///   mode        "analog" | "implicit"
///   batch_size  lanes per SoA block; 0 keeps the kernel default
///   simd        "auto" | "avx2" | "scalar" | "off" — "avx2" is an explicit
///               request and fails fast when the tier is unavailable (not
///               compiled in, CPU lacks AVX2+FMA, or TNR_SIMD disabled it)
void apply_transport_knobs(physics::TransportConfig& cfg,
                           const std::string& mode, std::uint32_t batch_size,
                           const std::string& simd,
                           const std::string& context);

/// Site lookup shared by the fit/checkpoint commands and the fit handler;
/// throws RunError(kConfig) for an unknown name.
environment::Site site_by_name(const std::string& name, bool rainy);

/// `tnr list-devices`: the calibrated roster table.
std::string render_list_devices();

/// `tnr fit`: FIT decomposition of one device at one site.
struct FitParams {
    std::string device = "NVIDIA K20";
    std::string site = "nyc";
    bool rainy = false;
    bool csv = false;
};
std::string render_fit(const FitParams& params);

/// `tnr detector`: the Tin-II deployment + step analysis.
struct DetectorParams {
    double days = 4.0;
    double water_days = 3.0;
    std::uint64_t seed = 420;
    bool csv = false;
};
std::string render_detector(const DetectorParams& params);

/// `transmission`: a direct slab-transport query — transmission, reflection
/// and absorption (with error bars and figure of merit) for a monoenergetic
/// beam on one material slab, in analog or implicit-capture (variance-
/// reduced) mode.
struct TransmissionParams {
    std::string material = "water";
    double thickness_cm = 5.0;
    double energy_ev = 0.0253;
    std::uint64_t histories = 100'000;
    std::string mode = "analog";    ///< "analog" | "implicit".
    std::uint32_t batch_size = 0;   ///< SoA lanes per block; 0 = kernel default.
    std::string simd = "auto";      ///< "auto" | "avx2" | "scalar" | "off".
    std::uint64_t seed = 7;
    unsigned threads = 1;
    bool csv = false;
};
std::string render_transmission(
    const TransmissionParams& params,
    const core::parallel::CancelToken* cancel = nullptr);

/// Campaign parameters shared by `tnr campaign` and the sigma-ratio /
/// campaign-slice handlers (defaults match the CLI flags).
struct CampaignParams {
    double hours = 24.0;
    std::uint64_t seed = 2020;
    unsigned threads = 1;
    std::size_t avf_trials = 0;
    unsigned max_attempts = 1;
    /// Transport-kernel knobs, validated exactly like `transmission`'s (the
    /// shared --mode/--batch-size/--simd vocabulary); they configure
    /// CampaignConfig::transport, the defaults any MC slab sub-analysis of
    /// the campaign inherits. The shipped ratio pipeline attenuates
    /// analytically, so defaults leave its output bitwise unchanged.
    std::string mode = "analog";
    std::uint32_t batch_size = 0;
    std::string simd = "auto";
    bool csv = false;
};

/// The CampaignConfig both layers build from the same parameters (the
/// caller wires its own cancel token and journal/progress callbacks).
beam::CampaignConfig make_campaign_config(const CampaignParams& params);

/// The Fig.-5 ratio table `tnr campaign` prints for a finished campaign.
std::string render_ratio_table(const beam::CampaignResult& result, bool csv);

/// `sigma-ratio`: a full two-facility campaign, rendered like
/// `tnr campaign` (stdout only — failures/progress are diagnostics).
std::string render_sigma_ratio(const CampaignParams& params,
                               const core::parallel::CancelToken* cancel);

/// `campaign-slice`: one device's slice of the campaign (its whole workload
/// suite at both facilities), rendered as its two ratio rows.
struct SliceParams {
    std::string device;  ///< required.
    CampaignParams campaign;
};
std::string render_campaign_slice(const SliceParams& params,
                                  const core::parallel::CancelToken* cancel);

/// Fleet parameters shared by `tnr fleet` and the `fleet-slice` handler
/// (defaults match the CLI flags). `sites` is "top10" or a comma list of
/// site slugs (nyc|leadville|star-hall|hotnes); `mix` is "standard" (the
/// whole calibrated roster, equal weights) or "Name:weight,Name:weight"
/// with catalog device names. `fleet_mode` is "dense" (the default
/// per-bucket sweep, bitwise-pinned) or "event" (skip-ahead sampling —
/// docs/performance.md); make_fleet_spec validates it through
/// fleet::parse_fleet_mode, so the CLI flag and the serve param reject bad
/// values with one message. The report is bitwise invariant to `shards`,
/// which only sets worker parallelism.
struct FleetParams {
    std::uint64_t devices = 100'000;
    unsigned days = 30;
    unsigned bucket_hours = 24;
    std::uint64_t seed = 2020;
    double acceleration = 1.0;
    std::string fleet_mode = "dense";
    std::string sites = "top10";
    std::string mix = "standard";
    double scrub_hours = 0.0;
    unsigned repair_hours = 0;
    double rain_probability = 0.25;
    unsigned shards = 1;
    std::string slice;  ///< optional site filter (exact system name).
    bool csv = false;
};

/// Builds the FleetSpec both layers run; throws RunError(kConfig) for an
/// unknown site slug, device name, or malformed mix/sites string.
fleet::FleetSpec make_fleet_spec(const FleetParams& params);

/// `fleet-slice` / `tnr fleet`: resolve, run, render.
std::string render_fleet(const FleetParams& params,
                         const core::parallel::CancelToken* cancel = nullptr);

/// Live server state the introspection renderers cannot read from the
/// metrics registry; Server::serve fills one per stats/health request.
struct IntrospectionState {
    double uptime_s = 0.0;
    std::size_t inflight = 0;      ///< computations running right now.
    std::size_t max_inflight = 0;
    std::size_t queue_depth = 0;   ///< admitted, waiting for a slot.
    std::size_t queue_capacity = 0;
    std::size_t cache_size = 0;    ///< LRU entries currently resident.
    std::size_t cache_capacity = 0;
    std::size_t max_clients = 0;   ///< socket front-end connection cap.
};

/// `stats`: one JSON line of live introspection — uptime, inflight, per-
/// method latency summaries (p50/p90/p99 in ms), cache hit/miss/collision/
/// eviction counts and rates, throughput over (up to) the last `window_s`
/// seconds via Registry::snapshot_delta, kernel telemetry (histories, lane
/// compactions, roulette kills/survivals, implicit-capture bank events,
/// simd tier), and pool gauges. Responses are computed per call and never
/// cached: two identical stats requests legitimately differ.
std::string render_stats(const IntrospectionState& state, double window_s);

/// `health`: a one-line liveness probe (status, uptime, inflight headroom).
std::string render_health(const IntrospectionState& state);

}  // namespace tnr::serve

#pragma once
// Bounded LRU response cache for the serve engine. Keys are 64-bit FNV-1a
// hashes of the canonical request text; every entry keeps the canonical
// text itself so a hash collision degrades to a miss instead of serving the
// wrong bytes. Counts are reported into the obs Registry: serve.cache.hits,
// .misses (absent entries only), .collisions (present entry, different
// canonical text — degraded to a miss), and .evictions — the admission
// scheduler and the CI smoke step read them back through --metrics-out, and
// a rising collision count is the signal to widen the hash, which a single
// merged miss counter would hide.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/obs/metrics.hpp"

namespace tnr::serve {

/// FNV-1a 64-bit over the canonical request text.
std::uint64_t canonical_hash(std::string_view canonical) noexcept;

/// Thread-safe bounded LRU map: canonical request -> response body.
/// Capacity 0 disables caching (every lookup is a miss, puts are dropped).
class ResponseCache {
public:
    explicit ResponseCache(std::size_t capacity);

    /// The cached body for this request, refreshing its recency; nullopt on
    /// miss (also counts the hit, miss, or collision-degraded miss).
    std::optional<std::string> get(std::uint64_t key,
                                   std::string_view canonical);

    /// Inserts or refreshes an entry, evicting the least recently used
    /// entries down to capacity.
    void put(std::uint64_t key, std::string canonical, std::string body);

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    struct Entry {
        std::uint64_t key = 0;
        std::string canonical;
        std::string body;
    };

    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::list<Entry> lru_;  ///< front = most recently used.
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
    core::obs::Counter& hits_;
    core::obs::Counter& misses_;
    core::obs::Counter& collisions_;
    core::obs::Counter& evictions_;
};

}  // namespace tnr::serve

#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <utility>

#include "core/parallel/thread_pool.hpp"

namespace tnr::serve {

namespace {
namespace obs = core::obs;

double steady_ms() noexcept {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}
}  // namespace

Scheduler::Scheduler(Options options, ResponseCache& cache, Compute compute)
    : options_(options),
      cache_(cache),
      compute_(std::move(compute)),
      queue_gauge_(obs::Registry::global().gauge("serve.queue.depth")),
      queue_max_gauge_(
          obs::Registry::global().gauge("serve.queue.depth_max")),
      inflight_gauge_(obs::Registry::global().gauge("serve.inflight")) {
    if (options_.max_inflight == 0) options_.max_inflight = 1;
    if (options_.queue_depth == 0) options_.queue_depth = 1;
}

Scheduler::~Scheduler() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return runners_ == 0 && queued_ == 0; });
    inflight_gauge_.set(0.0);
    queue_gauge_.set(0.0);
}

std::size_t Scheduler::queue_depth() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queued_;
}

std::size_t Scheduler::inflight() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return running_;
}

double Scheduler::retry_after_ms_hint() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return retry_after_locked();
}

double Scheduler::retry_after_locked() const {
    const double base = ewma_ms_ > 0.0 ? ewma_ms_ : 100.0;
    const double backlog = static_cast<double>(queued_ + running_ + 1);
    const double hint =
        base * backlog / static_cast<double>(options_.max_inflight);
    return std::clamp(hint, 10.0, 10'000.0);
}

void Scheduler::spawn_runner_locked() {
    if (runners_ >= options_.max_inflight) return;
    if (runners_ >= running_ + queued_) return;  // an idle runner will pop it.
    ++runners_;
    core::parallel::ThreadPool::shared().submit([this] { run_worker(); });
}

std::shared_ptr<Scheduler::Job> Scheduler::pop_locked() {
    for (auto& cls : queue_) {
        if (!cls.empty()) {
            std::shared_ptr<Job> job = std::move(cls.front());
            cls.pop_front();
            return job;
        }
    }
    return nullptr;
}

Scheduler::Admit Scheduler::admit(Request req, std::string canonical,
                                  std::uint64_t key, Priority priority,
                                  bool allow_shed, Deliver deliver) {
    double shed_hint = 0.0;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (true) {
            // A duplicate of a queued/in-flight request rides the leader's
            // flight instead of taking a queue slot of its own.
            const auto it = flights_.find(canonical);
            if (it != flights_.end()) {
                it->second->followers.push_back(
                    {std::move(req), std::move(deliver)});
                return Admit::kCoalesced;
            }
            if (queued_ < options_.queue_depth) break;
            if (allow_shed) {
                shed_hint = retry_after_locked();
                break;
            }
            // Backpressure path (stdin): block the reader. A stop while
            // blocked over-admits — the line was already read, so it must
            // still be answered; the runner drains it as a fast cancelled
            // response.
            if (options_.stop != nullptr && options_.stop->cancelled()) break;
            space_cv_.wait_for(lock, std::chrono::milliseconds(100));
        }
        if (shed_hint == 0.0) {
            auto job = std::make_shared<Job>();
            job->req = std::move(req);
            job->canonical = canonical;
            job->key = key;
            job->priority = priority;
            job->deliver = std::move(deliver);
            flights_.emplace(std::move(canonical), job);
            queue_[static_cast<std::size_t>(priority)].push_back(
                std::move(job));
            ++queued_;
            high_water_ = std::max(high_water_, queued_);
            queue_gauge_.set(static_cast<double>(queued_));
            queue_max_gauge_.set(static_cast<double>(high_water_));
            spawn_runner_locked();
            return Admit::kQueued;
        }
    }
    // Shed outside the lock: deliver may grab session/writer mutexes.
    deliver(overloaded_body(shed_hint), /*cache_hit=*/false);
    return Admit::kShed;
}

void Scheduler::run_worker() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        std::shared_ptr<Job> job = pop_locked();
        if (!job) break;
        --queued_;
        ++running_;
        queue_gauge_.set(static_cast<double>(queued_));
        inflight_gauge_.set(static_cast<double>(running_));
        space_cv_.notify_one();
        lock.unlock();

        const double t0_ms = steady_ms();
        std::string body;
        try {
            body = compute_(job->req);
        } catch (const std::exception& e) {
            // compute() maps its own exceptions; anything landing here is a
            // harness bug, but it must still produce a typed response.
            body = error_body(core::ErrorCategory::kNumeric, e.what());
        }
        const double elapsed_ms = steady_ms() - t0_ms;
        if (body_is_ok(body)) cache_.put(job->key, job->canonical, body);

        std::vector<Follower> followers;
        lock.lock();
        ewma_ms_ = ewma_ms_ > 0.0 ? 0.8 * ewma_ms_ + 0.2 * elapsed_ms
                                  : elapsed_ms;
        const auto it = flights_.find(job->canonical);
        if (it != flights_.end() && it->second == job) {
            if (body_is_ok(body) || job->followers.empty()) {
                followers = std::move(job->followers);
                flights_.erase(it);
            } else {
                // The leader failed and failures are never cached: promote
                // the first follower to leader (front of its class — it was
                // admitted long ago) and keep the rest on the new flight.
                auto promoted = std::make_shared<Job>();
                promoted->req = std::move(job->followers.front().req);
                promoted->deliver = std::move(job->followers.front().deliver);
                promoted->canonical = job->canonical;
                promoted->key = job->key;
                promoted->priority = job->priority;
                promoted->followers.assign(
                    std::make_move_iterator(job->followers.begin() + 1),
                    std::make_move_iterator(job->followers.end()));
                it->second = promoted;
                queue_[static_cast<std::size_t>(promoted->priority)]
                    .push_front(promoted);
                ++queued_;  // over-admitted by design: it was already counted.
                queue_gauge_.set(static_cast<double>(queued_));
            }
        } else {
            followers = std::move(job->followers);
        }
        --running_;
        inflight_gauge_.set(static_cast<double>(running_));
        lock.unlock();

        if (followers.empty()) {
            job->deliver(std::move(body), /*cache_hit=*/false);
        } else {
            job->deliver(std::string(body), /*cache_hit=*/false);
            for (auto& f : followers) {
                // Served from the leader's answer — the same cache-hit
                // accounting as the old wait-then-re-lookup path.
                auto hit = cache_.get(job->key, job->canonical);
                f.deliver(hit ? std::move(*hit) : std::string(body),
                          /*cache_hit=*/true);
            }
        }
        lock.lock();
    }
    --runners_;
    idle_cv_.notify_all();
}

}  // namespace tnr::serve

#pragma once
// Routes a parsed request to its handler. Owns parameter validation: every
// method declares the parameter names it accepts, an unknown name or a
// wrong-kind value throws RunError(kConfig), and the server turns that into
// an error *response* — a bad request must never take the process down.

#include <string>
#include <vector>

#include "core/parallel/cancel.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"

namespace tnr::serve {

/// The methods the engine serves, in display order (usage/docs).
const std::vector<std::string>& method_names();

/// True when `method` names a handler.
bool known_method(const std::string& method);

/// The `(use fit|sigma-ratio|...)` suffix of unknown-method errors, derived
/// from method_names() so it can never go stale when a method is added.
const std::string& method_hint();

/// The admission-queue priority class of a computable method: cheap
/// renders (fit, detector, list-devices) pop before the long Monte Carlo
/// methods (sigma-ratio, campaign-slice, transmission), so an interactive
/// query never waits behind a pile of campaign slices. Introspection
/// methods never reach the queue at all.
Priority method_priority(const std::string& method);

/// True for the server-state introspection methods (`stats`, `health`):
/// they are answered inline on the admission thread — never cached, never
/// single-flighted, never dispatched to the pool.
bool introspection_method(const std::string& method);

/// Runs the request's handler and returns its rendered output (the bytes
/// the equivalent one-shot CLI command writes to stdout). Throws RunError
/// for validation failures and cancellation; other exceptions propagate for
/// the server to map onto error categories.
std::string dispatch(const Request& req,
                     const core::parallel::CancelToken* cancel);

}  // namespace tnr::serve

#pragma once
// The `tnr serve` engine: a long-running request/response loop that reads
// newline-delimited JSON requests, routes them to handlers, and writes one
// JSON response line per request — in admission order per stream, whatever
// order the computations finish in.
//
// Two front-ends share one engine:
//   * the stdin loop (serve): one NDJSON stream, bounded line reads,
//     blocking admission (backpressure on the pipe, never shedding);
//   * the unix-socket event loop (serve_unix_socket): an event-driven
//     poll() acceptor serving many concurrent clients, each with its own
//     bounded incremental read framer, backpressure-aware write buffer
//     (EAGAIN-safe partial writes, EINTR retry, SIGPIPE-proof sends), idle
//     timeout, and per-connection response ordering. See event_loop.cpp.
//
// Scheduling model (shared by both front-ends):
//   * parsed requests consult the response cache, then enter the bounded
//     priority-classed admission queue (serve/scheduler.hpp) in front of at
//     most `max_inflight` concurrent computations on the shared ThreadPool;
//   * when the queue is full the socket front-end sheds: the request is
//     answered immediately with a typed `overloaded` body carrying a
//     retry_after_ms hint — never a silent stall;
//   * stats/health and cache hits are answered inline on the admitting
//     thread, so introspection stays fast while campaign slices saturate
//     the pool;
//   * identical concurrent requests are single-flighted: a duplicate of an
//     in-flight request takes the leader's answer instead of recomputing;
//   * each computation gets its own CancelToken, linked to the server-wide
//     stop token and deadline-armed from the request's deadline_ms, so a
//     late request turns into a "cancelled" response while the server keeps
//     serving;
//   * on stop (SIGINT), admission ends, every admitted request still gets
//     its response (queued work drains as fast cancelled bodies), buffered
//     responses flush, and the front-end returns with stopped=true for the
//     CLI's exit-130 path.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/obs/metrics.hpp"
#include "core/parallel/cancel.hpp"
#include "serve/cache.hpp"
#include "serve/handlers.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"

namespace tnr::serve {

struct ServeOptions {
    std::size_t max_inflight = 4;    ///< concurrent computations (>= 1).
    std::size_t queue_depth = 64;    ///< admission queue bound (>= 1).
    std::size_t cache_capacity = 128;  ///< LRU entries; 0 disables caching.
    std::size_t max_clients = 64;    ///< concurrent socket connections.
    /// Close a socket connection (typed `timeout` line, counted in the obs
    /// registry) after this long without a complete request; 0 disables.
    double idle_timeout_ms = 60'000.0;
    /// Request-line byte cap for both front-ends: longer lines answer with
    /// a typed bad-request error instead of growing an unbounded buffer.
    std::size_t max_line_bytes = 64 * 1024;
    /// Per-connection write-buffer cap: a client that stops reading while
    /// responses pile up past this is dropped (counted, never blocking the
    /// event loop).
    std::size_t write_buffer_limit = 4 * 1024 * 1024;
    bool verbose = false;            ///< per-response diagnostics lines.
    /// Server-wide stop token (the CLI passes the SIGINT token); optional.
    const core::parallel::CancelToken* stop = nullptr;
    /// Slow-request log: a computed request whose admission-to-response time
    /// exceeds `slow_ms` emits one structured JSON line to `slow_log` (the
    /// diagnostics stream when null). 0 disables the log entirely.
    double slow_ms = 0.0;
    std::ostream* slow_log = nullptr;
};

/// What one serve session did (also mirrored into the obs Registry under
/// serve.* for --metrics-out and the run manifest).
struct ServeStats {
    std::uint64_t requests = 0;    ///< non-blank lines read.
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t shed = 0;        ///< overloaded responses (queue full).
    std::uint64_t cache_hits = 0;  ///< responses served without computing.
    std::uint64_t coalesced = 0;   ///< duplicates that rode a leader.
    std::uint64_t timeouts = 0;    ///< idle connections closed (typed line).
    bool stopped = false;          ///< ended by the stop token, not EOF.
};

class Server {
public:
    explicit Server(ServeOptions options);

    /// Serves requests from `in` until EOF or stop. Responses go to `out`
    /// (one line each, flushed); human diagnostics go to `diag`.
    ServeStats serve(std::istream& in, std::ostream& out, std::ostream& diag);

    /// Unix-socket front-end: binds `path` and serves up to `max_clients`
    /// concurrent connections from one poll() event loop until the stop
    /// token fires. The response cache and admission queue are shared
    /// across connections.
    ServeStats serve_unix_socket(const std::string& path, std::ostream& diag);

    [[nodiscard]] ResponseCache& cache() noexcept { return cache_; }
    [[nodiscard]] const ServeOptions& options() const noexcept {
        return options_;
    }

    // ---- internal surface shared by the stdin loop and the socket event
    // ---- loop (event_loop.cpp); not a public API.

    /// Per-front-end accounting: response tallies plus the count of
    /// admitted-but-unanswered requests, so a front-end can drain before it
    /// returns. One Session spans one stdin stream or one whole event loop.
    struct Session {
        ServeStats stats;
        std::mutex mutex;
        std::condition_variable cv;
        std::size_t pending = 0;  ///< admitted, response not yet delivered.
    };

    /// Receives each finished response; must be callable from any thread.
    /// `seq` is the per-stream admission sequence for reorder buffering.
    using ResponseSink =
        std::function<void(std::uint64_t seq, std::string id,
                           std::string body)>;

    /// Runs one raw request line through parse -> introspection -> cache ->
    /// admission. Exactly one response eventually reaches `sink` (possibly
    /// before this returns, possibly from a pool thread); session tallies
    /// and per-method accounting happen on the way. `oversized` marks a
    /// line the framer discarded for exceeding max_line_bytes. Without
    /// `allow_shed`, a full admission queue blocks the caller instead of
    /// shedding.
    void process_line(Session& session, const std::string& line,
                      std::uint64_t seq, bool oversized, bool allow_shed,
                      std::ostream& diag, const ResponseSink& sink);

    /// Emits one already-built response body for an admitted line through
    /// the accounting path: tally, then sink, then the pending decrement
    /// process_line's admission incremented. Connection-level lines the
    /// event loop fabricates (accept-time rejects, idle-timeout closes) do
    /// NOT go through here — they are responses without requests and are
    /// counted by their own serve.connections.* instruments instead.
    void finish_direct(Session& session, std::uint64_t seq,
                       const std::string& id, std::string body,
                       std::ostream& diag, const ResponseSink& sink);

    /// Blocks until every admitted request of this session was answered.
    static void wait_drained(Session& session);

    /// The scheduler's live client-backoff hint — the event loop stamps it
    /// into accept-time reject lines.
    [[nodiscard]] double retry_after_ms_hint() {
        return scheduler_.retry_after_ms_hint();
    }

    [[nodiscard]] IntrospectionState introspection_state();

private:
    class OrderedWriter;

    /// Per-request accounting handles for one method, prebuilt at
    /// construction from router::method_names() so the cache-hit path never
    /// touches the registry mutex. The family is
    /// serve.request{method=...}, with outcome/cache labels on the
    /// counters (a cache hit is always an ok response — errors are never
    /// cached).
    struct MethodInstruments {
        core::obs::LatencyHistogram* latency = nullptr;
        core::obs::Counter* ok_hit = nullptr;
        core::obs::Counter* ok_miss = nullptr;
        core::obs::Counter* error_miss = nullptr;
        core::obs::Counter* cancelled_miss = nullptr;
        core::obs::Counter* overloaded_miss = nullptr;
    };

    /// Runs one request to a response body on the calling (pool) thread.
    std::string compute(const Request& req);

    /// Answers a stats/health request inline on the admitting thread —
    /// state is read live, the body never enters the cache or a flight.
    std::string introspect(const Request& req);

    /// Per-method latency + outcome accounting and the slow-request log;
    /// `admitted_ns` is the steady-clock stamp taken at admission.
    void account(const Request& req, std::string_view body, bool cache_hit,
                 std::uint64_t admitted_ns, std::ostream& diag);

    /// Session + registry response tallies and the verbose status line.
    void tally(Session& session, std::string_view body, std::ostream& diag);

    ServeOptions options_;
    ResponseCache cache_;
    std::uint64_t start_ns_ = 0;  ///< steady-clock construction stamp.

    std::mutex slow_log_mutex_;

    core::obs::Counter& requests_;
    core::obs::Counter& coalesced_;
    core::obs::LatencyHistogram& latency_;
    core::obs::Counter& resp_ok_;
    core::obs::Counter& resp_error_;
    core::obs::Counter& resp_cancelled_;
    core::obs::Counter& resp_overloaded_;
    std::unordered_map<std::string, MethodInstruments> method_obs_;

    /// Declared last: its destructor waits for every runner, so runners can
    /// never touch a dead cache_/options_/instrument.
    Scheduler scheduler_;
};

}  // namespace tnr::serve

#pragma once
// The `tnr serve` engine: a long-running request/response loop that reads
// newline-delimited JSON requests, routes them to handlers, and writes one
// JSON response line per request — in admission order, whatever order the
// computations finish in.
//
// Scheduling model (one admission thread + the shared ThreadPool):
//   * the admission thread reads lines, parses, consults the response
//     cache, and submits cache misses to the pool — at most `max_inflight`
//     computations run concurrently, the admission thread blocks on a free
//     slot beyond that;
//   * identical concurrent requests are single-flighted: a duplicate of an
//     in-flight request waits for the leader, then takes the answer from
//     the cache instead of recomputing;
//   * each computation gets its own CancelToken, linked to the server-wide
//     stop token and deadline-armed from the request's deadline_ms, so a
//     late request turns into a "cancelled" response while the server keeps
//     serving;
//   * on stop (SIGINT), admission ends, in-flight work drains (observing
//     the stop token through the parent link), buffered responses flush,
//     and serve() returns with stopped=true for the CLI's exit-130 path.

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/obs/metrics.hpp"
#include "core/parallel/cancel.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"

namespace tnr::serve {

struct ServeOptions {
    std::size_t max_inflight = 4;    ///< concurrent computations (>= 1).
    std::size_t cache_capacity = 128;  ///< LRU entries; 0 disables caching.
    bool verbose = false;            ///< per-response diagnostics lines.
    /// Server-wide stop token (the CLI passes the SIGINT token); optional.
    const core::parallel::CancelToken* stop = nullptr;
};

/// What one serve session did (also mirrored into the obs Registry under
/// serve.* for --metrics-out and the run manifest).
struct ServeStats {
    std::uint64_t requests = 0;    ///< non-blank lines read.
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t cache_hits = 0;  ///< responses served without computing.
    std::uint64_t coalesced = 0;   ///< duplicates that waited on a leader.
    bool stopped = false;          ///< ended by the stop token, not EOF.
};

class Server {
public:
    explicit Server(ServeOptions options);

    /// Serves requests from `in` until EOF or stop. Responses go to `out`
    /// (one line each, flushed); human diagnostics go to `diag`.
    ServeStats serve(std::istream& in, std::ostream& out, std::ostream& diag);

    /// Unix-socket front-end: binds `path`, accepts one client at a time,
    /// and runs serve() over each connection until the stop token fires.
    /// The response cache persists across connections.
    ServeStats serve_unix_socket(const std::string& path, std::ostream& diag);

    [[nodiscard]] ResponseCache& cache() noexcept { return cache_; }

private:
    class OrderedWriter;
    struct Flight;

    /// Runs one request to a response body on the calling (pool) thread.
    std::string compute(const Request& req);

    void acquire_slot();
    void release_slot();
    void finish_flight(const std::string& canonical);

    ServeOptions options_;
    ResponseCache cache_;

    std::mutex slots_mutex_;
    std::condition_variable slots_cv_;
    std::size_t inflight_ = 0;

    std::mutex flights_mutex_;
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;

    core::obs::Counter& requests_;
    core::obs::Counter& coalesced_;
    core::obs::LatencyHistogram& latency_;
};

}  // namespace tnr::serve

#pragma once
// The `tnr serve` engine: a long-running request/response loop that reads
// newline-delimited JSON requests, routes them to handlers, and writes one
// JSON response line per request — in admission order, whatever order the
// computations finish in.
//
// Scheduling model (one admission thread + the shared ThreadPool):
//   * the admission thread reads lines, parses, consults the response
//     cache, and submits cache misses to the pool — at most `max_inflight`
//     computations run concurrently, the admission thread blocks on a free
//     slot beyond that;
//   * identical concurrent requests are single-flighted: a duplicate of an
//     in-flight request waits for the leader, then takes the answer from
//     the cache instead of recomputing;
//   * each computation gets its own CancelToken, linked to the server-wide
//     stop token and deadline-armed from the request's deadline_ms, so a
//     late request turns into a "cancelled" response while the server keeps
//     serving;
//   * on stop (SIGINT), admission ends, in-flight work drains (observing
//     the stop token through the parent link), buffered responses flush,
//     and serve() returns with stopped=true for the CLI's exit-130 path.

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/obs/metrics.hpp"
#include "core/parallel/cancel.hpp"
#include "serve/cache.hpp"
#include "serve/handlers.hpp"
#include "serve/protocol.hpp"

namespace tnr::serve {

struct ServeOptions {
    std::size_t max_inflight = 4;    ///< concurrent computations (>= 1).
    std::size_t cache_capacity = 128;  ///< LRU entries; 0 disables caching.
    bool verbose = false;            ///< per-response diagnostics lines.
    /// Server-wide stop token (the CLI passes the SIGINT token); optional.
    const core::parallel::CancelToken* stop = nullptr;
    /// Slow-request log: a computed request whose admission-to-response time
    /// exceeds `slow_ms` emits one structured JSON line to `slow_log` (the
    /// diagnostics stream when null). 0 disables the log entirely.
    double slow_ms = 0.0;
    std::ostream* slow_log = nullptr;
};

/// What one serve session did (also mirrored into the obs Registry under
/// serve.* for --metrics-out and the run manifest).
struct ServeStats {
    std::uint64_t requests = 0;    ///< non-blank lines read.
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t cache_hits = 0;  ///< responses served without computing.
    std::uint64_t coalesced = 0;   ///< duplicates that waited on a leader.
    bool stopped = false;          ///< ended by the stop token, not EOF.
};

class Server {
public:
    explicit Server(ServeOptions options);

    /// Serves requests from `in` until EOF or stop. Responses go to `out`
    /// (one line each, flushed); human diagnostics go to `diag`.
    ServeStats serve(std::istream& in, std::ostream& out, std::ostream& diag);

    /// Unix-socket front-end: binds `path`, accepts one client at a time,
    /// and runs serve() over each connection until the stop token fires.
    /// The response cache persists across connections.
    ServeStats serve_unix_socket(const std::string& path, std::ostream& diag);

    [[nodiscard]] ResponseCache& cache() noexcept { return cache_; }

private:
    class OrderedWriter;
    struct Flight;

    /// Per-request accounting handles for one method, prebuilt at
    /// construction from router::method_names() so the cache-hit path never
    /// touches the registry mutex. The family is
    /// serve.request{method=...}, with outcome/cache labels on the
    /// counters (a cache hit is always an ok response — errors are never
    /// cached).
    struct MethodInstruments {
        core::obs::LatencyHistogram* latency = nullptr;
        core::obs::Counter* ok_hit = nullptr;
        core::obs::Counter* ok_miss = nullptr;
        core::obs::Counter* error_miss = nullptr;
        core::obs::Counter* cancelled_miss = nullptr;
    };

    /// Runs one request to a response body on the calling (pool) thread.
    std::string compute(const Request& req);

    /// Answers a stats/health request inline on the admission thread —
    /// state is read live, the body never enters the cache or a flight.
    std::string introspect(const Request& req);

    /// Per-method latency + outcome accounting and the slow-request log;
    /// `admitted_ns` is the steady-clock stamp taken at admission.
    void account(const Request& req, std::string_view body, bool cache_hit,
                 std::uint64_t admitted_ns, std::ostream& diag);

    [[nodiscard]] IntrospectionState introspection_state();

    void acquire_slot();
    void release_slot();
    void finish_flight(const std::string& canonical);

    ServeOptions options_;
    ResponseCache cache_;
    std::uint64_t start_ns_ = 0;  ///< steady-clock construction stamp.

    std::mutex slots_mutex_;
    std::condition_variable slots_cv_;
    std::size_t inflight_ = 0;

    std::mutex flights_mutex_;
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;

    std::mutex slow_log_mutex_;

    core::obs::Counter& requests_;
    core::obs::Counter& coalesced_;
    core::obs::LatencyHistogram& latency_;
    core::obs::Gauge& inflight_gauge_;
    std::unordered_map<std::string, MethodInstruments> method_obs_;
};

}  // namespace tnr::serve

#pragma once
// The unix-socket front-end of `tnr serve`: a single-threaded poll() event
// loop multiplexing up to max_clients concurrent connections onto one
// Server engine (shared cache, shared admission queue). Computations run on
// the shared ThreadPool; finished responses come back to the loop through a
// completion queue and a self-pipe wakeup, then flow out through each
// connection's reorder buffer and backpressure-aware write buffer.
//
// Overload and failure handling, per the degradation ladder:
//   * accept beyond max_clients -> one typed `overloaded` reject line
//     (retry_after_ms stamped from the scheduler hint), then close;
//   * admission queue full -> the request sheds with a typed `overloaded`
//     response (process_line with allow_shed=true) — never a silent stall;
//   * a connection idle past idle_timeout_ms with nothing outstanding gets
//     one typed `timeout` error line, a flush, and a close;
//   * a client that stops reading while its write buffer grows past
//     write_buffer_limit is dropped (counted, never blocking the loop);
//   * partial writes (EAGAIN) buffer and resume on POLLOUT; EINTR retries;
//     sends use MSG_NOSIGNAL so a dead peer is an error, not a SIGPIPE;
//   * on stop, accepting ends, every admitted request drains to its typed
//     response, write buffers flush, and the loop returns stopped=true.

#include <iosfwd>
#include <string>

#include "serve/server.hpp"

namespace tnr::serve {

/// Binds `path` and serves until the stop token fires (throws RunError(kIo)
/// for bind/listen failures). Diagnostics (one "# serving..." line plus
/// verbose/slow-request output) go to `diag`.
ServeStats run_event_loop(Server& server, const std::string& path,
                          std::ostream& diag);

}  // namespace tnr::serve

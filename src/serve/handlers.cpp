#include "serve/handlers.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"
#include "core/obs/json.hpp"
#include "core/obs/metrics.hpp"
#include "core/simd/dispatch.hpp"
#include "serve/router.hpp"
#include "core/fit.hpp"
#include "core/report.hpp"
#include "detector/analysis.hpp"
#include "detector/tin2.hpp"
#include "devices/catalog.hpp"
#include "fleet/render.hpp"
#include "fleet/simulator.hpp"
#include "physics/materials.hpp"
#include "physics/transport.hpp"
#include "stats/rng.hpp"

namespace tnr::serve {

namespace {

std::string print_table(const core::TablePrinter& table, bool csv) {
    std::ostringstream oss;
    if (csv) {
        table.print_csv(oss);
    } else {
        table.print(oss);
    }
    return oss.str();
}

physics::Material material_by_name(const std::string& name) {
    if (name == "water") return physics::Material::water();
    if (name == "concrete") return physics::Material::concrete();
    if (name == "polyethylene") return physics::Material::polyethylene();
    if (name == "cadmium") return physics::Material::cadmium();
    if (name == "borated-poly") return physics::Material::borated_poly();
    if (name == "air") return physics::Material::air();
    if (name == "silicon") return physics::Material::silicon();
    if (name == "fr4") return physics::Material::fr4();
    if (name == "aluminum") return physics::Material::aluminum();
    throw core::RunError::config(
        "unknown material: " + name +
        " (use water|concrete|polyethylene|cadmium|borated-poly|air|"
        "silicon|fr4|aluminum)");
}

}  // namespace

void apply_transport_knobs(physics::TransportConfig& cfg,
                           const std::string& mode, std::uint32_t batch_size,
                           const std::string& simd,
                           const std::string& context) {
    if (mode == "implicit") {
        cfg.mode = physics::TransportMode::kImplicitCapture;
    } else if (mode == "analog") {
        cfg.mode = physics::TransportMode::kAnalog;
    } else {
        throw core::RunError::config(context + ": mode must be analog|implicit");
    }
    if (batch_size > 0) {
        constexpr std::uint32_t kMaxBatch = 1u << 20;
        if (batch_size > kMaxBatch) {
            throw core::RunError::config(
                context + ": batch-size must be between 1 and " +
                std::to_string(kMaxBatch));
        }
        cfg.batch_size = batch_size;
    }
    if (simd == "auto") {
        cfg.simd = core::simd::Policy::kAuto;
    } else if (simd == "scalar" || simd == "off") {
        cfg.simd = core::simd::Policy::kForceScalar;
    } else if (simd == "avx2") {
        // An explicit tier request fails fast instead of silently running
        // scalar: resolve() folds in the build, CPU and TNR_SIMD switches.
        if (core::simd::resolve(core::simd::Policy::kForceAvx2) !=
            core::simd::Tier::kAvx2) {
            throw core::RunError::config(
                context +
                ": simd=avx2 requested but the AVX2 tier is unavailable "
                "(not compiled in, unsupported CPU, or disabled by TNR_SIMD)");
        }
        cfg.simd = core::simd::Policy::kForceAvx2;
    } else {
        throw core::RunError::config(context +
                                     ": simd must be auto|avx2|scalar|off");
    }
}

environment::Site site_by_name(const std::string& name, bool rainy) {
    const environment::Site* found = environment::site_by_slug(name);
    if (found == nullptr) {
        std::string slugs;
        for (const auto& slug : environment::site_slugs()) {
            if (!slugs.empty()) slugs += "|";
            slugs += slug;
        }
        throw core::RunError::config("unknown site: " + name + " (use " +
                                     slugs + ")");
    }
    environment::Site site = *found;
    if (rainy) site.environment.weather = environment::Weather::kRainy;
    return site;
}

std::string render_list_devices() {
    core::TablePrinter table({"device", "node", "transistor", "foundry",
                              "SDC ratio", "DUE ratio"});
    for (const auto& spec : devices::standard_specs()) {
        table.add_row({spec.name, spec.tech.node,
                       devices::to_string(spec.tech.transistor),
                       spec.tech.foundry,
                       spec.ratio_sdc ? core::format_fixed(*spec.ratio_sdc, 2)
                                      : "-",
                       spec.ratio_due ? core::format_fixed(*spec.ratio_due, 2)
                                      : "-"});
    }
    return print_table(table, false);
}

std::string render_fit(const FitParams& params) {
    const auto device =
        devices::build_calibrated(devices::spec_by_name(params.device));
    const auto site = site_by_name(params.site, params.rainy);

    core::TablePrinter table({"device", "site", "type", "FIT HE",
                              "FIT thermal", "total", "thermal share"});
    for (const auto type :
         {devices::ErrorType::kSdc, devices::ErrorType::kDue}) {
        const auto fit = core::device_fit(device, type, site);
        table.add_row({device.name(), site.system_name,
                       devices::to_string(type),
                       core::format_fixed(fit.high_energy, 2),
                       core::format_fixed(fit.thermal, 2),
                       core::format_fixed(fit.total(), 2),
                       core::format_percent(fit.thermal_share())});
    }
    return print_table(table, params.csv);
}

std::string render_detector(const DetectorParams& params) {
    const detector::Tin2Detector tin2;
    stats::Rng rng(params.seed);
    const auto rec = tin2.record(
        detector::fig6_schedule(params.days, params.water_days), rng);
    const auto analysis = detector::analyze_step(rec);

    core::TablePrinter table({"quantity", "value"});
    table.add_row({"bins", std::to_string(rec.bare.size())});
    if (analysis) {
        table.add_row({"change bin", std::to_string(analysis->change_bin)});
        table.add_row({"relative step",
                       core::format_percent(analysis->relative_step)});
        table.add_row(
            {"step 95% CI",
             "[" + core::format_percent(analysis->step_ci.lower) + ", " +
                 core::format_percent(analysis->step_ci.upper) + "]"});
    } else {
        table.add_row({"step", "none detected"});
    }
    return print_table(table, params.csv);
}

std::string render_transmission(const TransmissionParams& params,
                                const core::parallel::CancelToken* cancel) {
    if (!(params.thickness_cm > 0.0)) {
        throw core::RunError::config("transmission: thickness-cm must be > 0");
    }
    if (params.histories == 0) {
        throw core::RunError::config("transmission: histories must be > 0");
    }
    physics::TransportConfig cfg;
    cfg.threads = params.threads;
    cfg.cancel = cancel;
    apply_transport_knobs(cfg, params.mode, params.batch_size, params.simd,
                          "transmission");
    const physics::SlabTransport slab(material_by_name(params.material),
                                      params.thickness_cm, cfg);
    stats::Rng rng(params.seed);
    const auto result =
        slab.run_monoenergetic(params.energy_ev, params.histories, rng);

    // Deterministic for a fixed (seed, threads, mode): no wall-clock values
    // here, so served responses stay cacheable and byte-stable. Timing-based
    // figures of merit live in bench_kernels.
    core::TablePrinter table({"channel", "estimate", "rel err"});
    const auto add = [&table](const char* channel,
                              const physics::EstimatorStats& s) {
        table.add_row({channel, core::format_scientific(s.mean),
                       core::format_percent(s.rel_std_error)});
    };
    add("transmission", result.transmission_estimate());
    add("reflection", result.reflection_estimate());
    add("absorption", result.absorption_estimate());
    return print_table(table, params.csv);
}

beam::CampaignConfig make_campaign_config(const CampaignParams& params) {
    beam::CampaignConfig cfg;
    cfg.beam_time_per_run_s = params.hours * 3600.0;
    cfg.seed = params.seed;
    cfg.threads = params.threads;
    cfg.avf_trials = params.avf_trials;
    cfg.max_attempts = std::max(1u, params.max_attempts);
    apply_transport_knobs(cfg.transport, params.mode, params.batch_size,
                          params.simd, "campaign");
    return cfg;
}

std::string render_ratio_table(const beam::CampaignResult& result, bool csv) {
    core::TablePrinter table({"device", "type", "sigma_HE", "sigma_thermal",
                              "ratio"});
    for (const auto& row : result.ratio_rows) {
        const auto ratio = row.ratio();
        table.add_row({row.device, devices::to_string(row.type),
                       core::format_scientific(row.sigma_he()),
                       core::format_scientific(row.sigma_th()),
                       ratio ? core::format_fixed(ratio->ratio, 2)
                             : "no thermal errors"});
    }
    return print_table(table, csv);
}

std::string render_sigma_ratio(const CampaignParams& params,
                               const core::parallel::CancelToken* cancel) {
    beam::CampaignConfig cfg = make_campaign_config(params);
    cfg.cancel = cancel;
    const auto result = beam::Campaign(cfg).run();
    return render_ratio_table(result, params.csv);
}

std::string render_campaign_slice(const SliceParams& params,
                                  const core::parallel::CancelToken* cancel) {
    if (params.device.empty()) {
        throw core::RunError::config("campaign-slice: device is required");
    }
    beam::CampaignConfig cfg = make_campaign_config(params.campaign);
    cfg.cancel = cancel;
    const auto device =
        devices::build_calibrated(devices::spec_by_name(params.device));
    const auto result = beam::Campaign(cfg).run({device});
    return render_ratio_table(result, params.campaign.csv);
}

namespace {

std::vector<std::string> split_list(const std::string& text) {
    std::vector<std::string> parts;
    std::string current;
    for (const char ch : text) {
        if (ch == ',') {
            parts.push_back(current);
            current.clear();
        } else {
            current += ch;
        }
    }
    parts.push_back(current);
    return parts;
}

/// Parses "Name" or "Name:weight"; the name may contain spaces and colons
/// never appear in catalog names, so the last ':' splits the weight.
std::pair<std::string, double> parse_weighted(const std::string& entry,
                                              const char* context) {
    const auto colon = entry.rfind(':');
    if (colon == std::string::npos) return {entry, 1.0};
    const std::string name = entry.substr(0, colon);
    const std::string weight_text = entry.substr(colon + 1);
    try {
        std::size_t used = 0;
        const double weight = std::stod(weight_text, &used);
        if (used != weight_text.size() || !(weight > 0.0)) {
            throw std::invalid_argument(weight_text);
        }
        return {name, weight};
    } catch (const std::exception&) {
        throw core::RunError::config(std::string(context) +
                                     ": bad weight in \"" + entry + "\"");
    }
}

}  // namespace

fleet::FleetSpec make_fleet_spec(const FleetParams& params) {
    fleet::FleetSpec spec;
    spec.devices = params.devices;
    spec.days = params.days;
    spec.bucket_hours = params.bucket_hours;
    spec.seed = params.seed;
    spec.acceleration = params.acceleration;
    spec.mode = fleet::parse_fleet_mode(params.fleet_mode, "fleet");

    fleet::SitePolicy policy;
    policy.scrub_interval_h = params.scrub_hours;
    policy.repair_hours = params.repair_hours;
    policy.rain_probability = params.rain_probability;

    if (params.sites == "top10") {
        for (const auto& site : environment::top10_supercomputers()) {
            spec.sites.push_back({site, 1.0, policy});
        }
    } else {
        for (const auto& entry : split_list(params.sites)) {
            const auto [slug, weight] = parse_weighted(entry, "fleet sites");
            const environment::Site* site = environment::site_by_slug(slug);
            if (site == nullptr) {
                std::string slugs = "top10";
                for (const auto& s : environment::site_slugs()) {
                    slugs += "|" + s;
                }
                throw core::RunError::config("fleet: unknown site: " + slug +
                                             " (use " + slugs + ")");
            }
            spec.sites.push_back({*site, weight, policy});
        }
    }

    if (params.mix == "standard") {
        for (const auto& device_spec : devices::standard_specs()) {
            spec.mix.push_back({device_spec.name, 1.0});
        }
    } else {
        for (const auto& entry : split_list(params.mix)) {
            const auto [name, weight] = parse_weighted(entry, "fleet mix");
            if (!devices::try_spec_by_name(name)) {
                throw core::RunError::config("fleet: unknown device: " + name);
            }
            spec.mix.push_back({name, weight});
        }
    }
    return spec;
}

std::string render_fleet(const FleetParams& params,
                         const core::parallel::CancelToken* cancel) {
    const fleet::ResolvedFleet resolved(make_fleet_spec(params));
    fleet::FleetRunOptions options;
    options.shards = params.shards;
    options.cancel = cancel;
    const auto result = fleet::run_fleet(resolved, options);
    fleet::FleetReportOptions report;
    report.slice = params.slice;
    report.csv = params.csv;
    return fleet::render_fleet_report(resolved, result.tally, report);
}

namespace {

namespace obs = core::obs;

/// `"name":count` from the live registry (creates-on-read: a counter the
/// process never touched reads as 0, which keeps the stats shape stable).
void put_counter(std::ostream& out, const char* json_key,
                 const std::string& counter_name, bool leading_comma = true) {
    if (leading_comma) out << ',';
    out << '"' << json_key
        << "\":" << obs::Registry::global().counter(counter_name).value();
}

void put_latency_ms(std::ostream& out,
                    const obs::LatencyHistogram::Summary& s) {
    out << "\"count\":" << s.count << ",\"mean_ms\":"
        << obs::json::number(s.mean_ns * 1e-6)
        << ",\"p50_ms\":" << obs::json::number(s.p50_ns * 1e-6)
        << ",\"p90_ms\":" << obs::json::number(s.p90_ns * 1e-6)
        << ",\"p99_ms\":" << obs::json::number(s.p99_ns * 1e-6)
        << ",\"max_ms\":" << obs::json::number(s.max_ns * 1e-6);
}

}  // namespace

std::string render_stats(const IntrospectionState& state, double window_s) {
    auto& reg = obs::Registry::global();
    const obs::DeltaSnapshot delta = reg.snapshot_delta(window_s);

    std::ostringstream out;
    out << "{\"uptime_s\":" << obs::json::number(state.uptime_s)
        << ",\"window_s\":" << obs::json::number(delta.window_s)
        << ",\"inflight\":" << state.inflight
        << ",\"max_inflight\":" << state.max_inflight;

    // Lifetime request/response tallies plus the windowed request rate.
    const auto req_delta = delta.get("serve.requests");
    out << ",\"requests\":{\"total\":"
        << reg.counter("serve.requests").value();
    put_counter(out, "ok", "serve.responses.ok");
    put_counter(out, "error", "serve.responses.error");
    put_counter(out, "cancelled", "serve.responses.cancelled");
    put_counter(out, "overloaded", "serve.responses.overloaded");
    put_counter(out, "coalesced", "serve.coalesced");
    out << ",\"window_delta\":" << req_delta.delta << ",\"rate_per_s\":"
        << obs::json::number(req_delta.rate_per_s) << '}';

    // Admission queue: live depth vs capacity, the deepest it has been, and
    // the lifetime shed count (requests answered `overloaded`).
    out << ",\"queue\":{\"depth\":" << state.queue_depth
        << ",\"capacity\":" << state.queue_capacity << ",\"depth_max\":"
        << static_cast<std::uint64_t>(
               reg.gauge("serve.queue.depth_max").value())
        << ",\"shed\":" << reg.counter("serve.responses.overloaded").value()
        << '}';

    // Socket front-end connection lifecycle (all zero under the stdin
    // front-end).
    out << ",\"connections\":{\"active\":"
        << static_cast<std::uint64_t>(
               reg.gauge("serve.connections.active").value())
        << ",\"max_clients\":" << state.max_clients;
    put_counter(out, "accepted", "serve.connections.accepted");
    put_counter(out, "rejected", "serve.connections.rejected");
    put_counter(out, "idle_timeouts", "serve.connections.idle_timeouts");
    put_counter(out, "write_overflows", "serve.connections.write_overflows");
    out << '}';

    // Cache: lifetime counts + hit rates, lifetime and windowed. A
    // collision is a lookup that found a different request's entry — kept
    // apart from a true miss, but still a non-hit in the rates.
    const std::uint64_t hits = reg.counter("serve.cache.hits").value();
    const std::uint64_t misses = reg.counter("serve.cache.misses").value();
    const std::uint64_t collisions =
        reg.counter("serve.cache.collisions").value();
    const std::uint64_t lookups = hits + misses + collisions;
    const auto whits = delta.get("serve.cache.hits");
    const std::uint64_t wlookups = whits.delta +
                                   delta.get("serve.cache.misses").delta +
                                   delta.get("serve.cache.collisions").delta;
    out << ",\"cache\":{\"size\":" << state.cache_size
        << ",\"capacity\":" << state.cache_capacity << ",\"hits\":" << hits
        << ",\"misses\":" << misses << ",\"collisions\":" << collisions;
    put_counter(out, "evictions", "serve.cache.evictions");
    out << ",\"hit_rate\":"
        << obs::json::number(
               lookups > 0 ? static_cast<double>(hits) / lookups : 0.0)
        << ",\"windowed_hit_rate\":"
        << obs::json::number(wlookups > 0 ? static_cast<double>(whits.delta) /
                                                wlookups
                                          : 0.0)
        << '}';

    // Per-method latency summaries from the labeled serve.request family.
    out << ",\"methods\":{";
    bool first = true;
    for (const auto& method : method_names()) {
        const auto s =
            reg.latency(obs::labeled("serve.request", {{"method", method}}))
                .summary();
        if (!first) out << ',';
        first = false;
        out << '"' << obs::json::escape(method) << "\":{";
        put_latency_ms(out, s);
        out << '}';
    }
    out << '}';

    // Kernel telemetry: flushed at batch granularity by run_histories, so a
    // campaign slice in flight shows up here while it runs.
    out << ",\"kernel\":{";
    put_counter(out, "histories", "transport.histories", false);
    put_counter(out, "collisions", "transport.collisions");
    put_counter(out, "compactions", "transport.compactions");
    put_counter(out, "roulette_kills", "transport.roulette_kills");
    put_counter(out, "roulette_survivals", "transport.roulette_survivals");
    put_counter(out, "bank_events", "transport.bank_events");
    const int tier =
        static_cast<int>(reg.gauge("simd.tier").value());
    out << ",\"simd_tier\":\"" << core::simd::tier_name(tier) << "\"}";

    out << ",\"pool\":{\"queue_depth_max\":"
        << obs::json::number(reg.gauge("pool.queue_depth_max").value())
        << ",\"workers\":"
        << obs::json::number(reg.gauge("pool.workers").value()) << "}}\n";
    return out.str();
}

std::string render_health(const IntrospectionState& state) {
    std::ostringstream out;
    out << "{\"status\":\"ok\",\"uptime_s\":"
        << obs::json::number(state.uptime_s)
        << ",\"inflight\":" << state.inflight
        << ",\"max_inflight\":" << state.max_inflight
        << ",\"queue_depth\":" << state.queue_depth
        << ",\"queue_capacity\":" << state.queue_capacity << "}\n";
    return out.str();
}

}  // namespace tnr::serve

#include "serve/server.hpp"

#include <array>
#include <cctype>
#include <chrono>
#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/parallel/thread_pool.hpp"
#include "serve/router.hpp"

namespace tnr::serve {

namespace {

namespace obs = core::obs;
namespace parallel = core::parallel;

std::uint64_t steady_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool is_blank(const std::string& line) {
    for (const char c : line) {
        if (std::isspace(static_cast<unsigned char>(c)) == 0) return false;
    }
    return true;
}

const char* body_status(std::string_view body) {
    if (body_is_ok(body)) return "ok";
    if (body.rfind("\"status\":\"cancelled\"", 0) == 0) return "cancelled";
    return "error";
}

}  // namespace

/// A duplicate request waits here until its leader finishes (success or
/// failure), then re-consults the cache.
struct Server::Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
};

/// Reorder buffer: responses are pushed in completion order but emitted in
/// admission (sequence) order, so a transcript is deterministic no matter
/// how the pool schedules the work. Also the single place response statuses
/// are tallied.
class Server::OrderedWriter {
public:
    OrderedWriter(std::ostream& out, std::ostream& diag, bool verbose,
                  ServeStats& stats)
        : out_(out),
          diag_(diag),
          verbose_(verbose),
          stats_(stats),
          ok_(obs::Registry::global().counter("serve.responses.ok")),
          errors_(obs::Registry::global().counter("serve.responses.error")),
          cancelled_(
              obs::Registry::global().counter("serve.responses.cancelled")) {}

    void push(std::uint64_t seq, std::string_view id, std::string body) {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_.emplace(seq, assemble_response(id, body));
        tally(body);
        while (true) {
            const auto it = pending_.find(next_);
            if (it == pending_.end()) break;
            out_ << it->second << '\n';
            out_.flush();
            pending_.erase(it);
            ++next_;
        }
    }

private:
    void tally(std::string_view body) {
        const std::string_view status = body_status(body);
        if (status == "ok") {
            ++stats_.ok;
            ok_.add(1);
        } else if (status == "cancelled") {
            ++stats_.cancelled;
            cancelled_.add(1);
        } else {
            ++stats_.errors;
            errors_.add(1);
        }
        if (verbose_) {
            diag_ << "# response status=" << status << '\n';
            diag_.flush();
        }
    }

    std::ostream& out_;
    std::ostream& diag_;
    bool verbose_;
    ServeStats& stats_;
    obs::Counter& ok_;
    obs::Counter& errors_;
    obs::Counter& cancelled_;
    std::mutex mutex_;
    std::uint64_t next_ = 0;
    std::map<std::uint64_t, std::string> pending_;
};

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity),
      start_ns_(steady_ns()),
      requests_(obs::Registry::global().counter("serve.requests")),
      coalesced_(obs::Registry::global().counter("serve.coalesced")),
      latency_(obs::Registry::global().latency("serve.request")),
      inflight_gauge_(obs::Registry::global().gauge("serve.inflight")) {
    if (options_.max_inflight == 0) options_.max_inflight = 1;
    auto& reg = obs::Registry::global();
    for (const auto& m : method_names()) {
        MethodInstruments mi;
        mi.latency =
            &reg.latency(obs::labeled("serve.request", {{"method", m}}));
        mi.ok_hit = &reg.counter(obs::labeled(
            "serve.request",
            {{"method", m}, {"outcome", "ok"}, {"cache", "hit"}}));
        mi.ok_miss = &reg.counter(obs::labeled(
            "serve.request",
            {{"method", m}, {"outcome", "ok"}, {"cache", "miss"}}));
        mi.error_miss = &reg.counter(obs::labeled(
            "serve.request",
            {{"method", m}, {"outcome", "error"}, {"cache", "miss"}}));
        mi.cancelled_miss = &reg.counter(obs::labeled(
            "serve.request",
            {{"method", m}, {"outcome", "cancelled"}, {"cache", "miss"}}));
        method_obs_.emplace(m, mi);
    }
}

std::string Server::compute(const Request& req) {
    // Per-request token: observes the server-wide stop token through the
    // parent link and, when the client set deadline_ms, trips on its own
    // once the budget elapses — at which point the Monte Carlo checkpoints
    // bail with RunError(kCancelled) and the request becomes a "cancelled"
    // response instead of taking the server down.
    parallel::CancelToken token;
    token.link_parent(options_.stop);
    if (req.has_deadline) {
        token.arm_deadline(std::chrono::nanoseconds(
            static_cast<std::int64_t>(req.deadline_ms * 1e6)));
    }
    obs::ScopedTimer timer(latency_);
    try {
        token.throw_if_cancelled();
        return ok_body(dispatch(req, &token));
    } catch (const core::RunError& e) {
        return error_body(e.category(), e.what());
    } catch (const std::invalid_argument& e) {
        return error_body(core::ErrorCategory::kConfig, e.what());
    } catch (const std::exception& e) {
        return error_body(core::ErrorCategory::kNumeric, e.what());
    }
}

void Server::acquire_slot() {
    std::unique_lock<std::mutex> lock(slots_mutex_);
    slots_cv_.wait(lock, [this] { return inflight_ < options_.max_inflight; });
    ++inflight_;
    inflight_gauge_.set(static_cast<double>(inflight_));
}

void Server::release_slot() {
    {
        std::lock_guard<std::mutex> lock(slots_mutex_);
        --inflight_;
        inflight_gauge_.set(static_cast<double>(inflight_));
    }
    slots_cv_.notify_one();
}

IntrospectionState Server::introspection_state() {
    IntrospectionState st;
    st.uptime_s = static_cast<double>(steady_ns() - start_ns_) * 1e-9;
    {
        std::lock_guard<std::mutex> lock(slots_mutex_);
        st.inflight = inflight_;
    }
    st.max_inflight = options_.max_inflight;
    st.cache_size = cache_.size();
    st.cache_capacity = cache_.capacity();
    return st;
}

std::string Server::introspect(const Request& req) {
    try {
        double window_s = 10.0;
        std::string format = "json";
        for (const auto& [key, value] : req.params) {
            if (req.method == "stats" && key == "window-s") {
                if (value.kind != ParamValue::Kind::kNumber ||
                    !(value.num > 0.0)) {
                    throw core::RunError::config(
                        "stats: parameter window-s must be a positive number");
                }
                window_s = value.num;
            } else if (req.method == "stats" && key == "format") {
                if (value.kind != ParamValue::Kind::kString ||
                    (value.str != "json" && value.str != "prometheus")) {
                    throw core::RunError::config(
                        "stats: parameter format must be \"json\" or "
                        "\"prometheus\"");
                }
                format = value.str;
            } else {
                throw core::RunError::config(req.method +
                                             ": unknown parameter: " + key);
            }
        }
        if (format == "prometheus") {
            return ok_body(obs::Registry::global().to_prometheus());
        }
        if (req.method == "health") {
            return ok_body(render_health(introspection_state()));
        }
        return ok_body(render_stats(introspection_state(), window_s));
    } catch (const core::RunError& e) {
        return error_body(e.category(), e.what());
    }
}

void Server::account(const Request& req, std::string_view body,
                     bool cache_hit, std::uint64_t admitted_ns,
                     std::ostream& diag) {
    const std::uint64_t elapsed = steady_ns() - admitted_ns;
    const auto it = method_obs_.find(req.method);
    if (it != method_obs_.end()) {
        const MethodInstruments& m = it->second;
        m.latency->record_ns(elapsed);
        const std::string_view status = body_status(body);
        if (cache_hit) {
            m.ok_hit->add(1);
        } else if (status == "ok") {
            m.ok_miss->add(1);
        } else if (status == "cancelled") {
            m.cancelled_miss->add(1);
        } else {
            m.error_miss->add(1);
        }
    }
    if (options_.slow_ms <= 0.0 ||
        static_cast<double>(elapsed) * 1e-6 <= options_.slow_ms) {
        return;
    }
    static obs::Counter& slow =
        obs::Registry::global().counter("serve.requests.slow");
    slow.add(1);
    std::ostringstream line;
    line << "{\"slow_request\":{\"id\":\"" << obs::json::escape(req.id)
         << "\",\"method\":\"" << obs::json::escape(req.method)
         << "\",\"elapsed_ms\":"
         << obs::json::number(static_cast<double>(elapsed) * 1e-6)
         << ",\"threshold_ms\":" << obs::json::number(options_.slow_ms)
         << ",\"status\":\"" << body_status(body) << "\",\"cache\":\""
         << (cache_hit ? "hit" : "miss") << "\"}}";
    std::ostream& log = options_.slow_log != nullptr ? *options_.slow_log
                                                     : diag;
    const std::lock_guard<std::mutex> lock(slow_log_mutex_);
    log << line.str() << '\n';
    log.flush();
}

void Server::finish_flight(const std::string& canonical) {
    std::shared_ptr<Flight> flight;
    {
        std::lock_guard<std::mutex> lock(flights_mutex_);
        const auto it = flights_.find(canonical);
        if (it == flights_.end()) return;
        flight = it->second;
        flights_.erase(it);
    }
    {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->done = true;
    }
    flight->cv.notify_all();
}

ServeStats Server::serve(std::istream& in, std::ostream& out,
                         std::ostream& diag) {
    ServeStats stats;
    OrderedWriter writer(out, diag, options_.verbose, stats);
    parallel::TaskGroup group(parallel::ThreadPool::shared());
    const parallel::CancelToken* stop = options_.stop;

    std::uint64_t seq = 0;
    std::string line;
    while (true) {
        if (stop != nullptr && stop->cancelled()) {
            stats.stopped = true;
            break;
        }
        if (!std::getline(in, line)) {
            // A stop that landed while we were blocked in getline (the
            // SIGINT test drives this through a streambuf that trips the
            // token at EOF) still counts as a stop, not a clean EOF.
            if (stop != nullptr && stop->cancelled()) stats.stopped = true;
            break;
        }
        if (is_blank(line)) continue;
        ++stats.requests;
        requests_.add(1);
        const std::uint64_t admitted_ns = steady_ns();

        const auto doc = core::obs::json::parse(line);
        if (!doc) {
            writer.push(seq++, "",
                        error_body(core::ErrorCategory::kConfig,
                                   "invalid JSON request line"));
            continue;
        }
        Request req;
        try {
            req = parse_request(*doc);
            if (!known_method(req.method)) {
                throw core::RunError::config("unknown method: " + req.method +
                                             " " + method_hint());
            }
        } catch (const core::RunError& e) {
            writer.push(seq++, extract_id(*doc),
                        error_body(e.category(), e.what()));
            continue;
        }

        // stats/health are answered inline from live server state: their
        // bodies legitimately differ between identical requests, so they
        // must never enter the LRU cache or coalesce onto a flight.
        if (introspection_method(req.method)) {
            std::string body = introspect(req);
            account(req, body, /*cache_hit=*/false, admitted_ns, diag);
            writer.push(seq++, req.id, std::move(body));
            continue;
        }

        const std::string canonical = canonical_request(req);
        const std::uint64_t key = canonical_hash(canonical);

        // Cache, then single-flight: a duplicate of an in-flight request
        // waits for the leader on the admission thread (no slot held), then
        // re-consults the cache. If the leader failed (errors are never
        // cached), the loop promotes the duplicate to leader.
        std::optional<std::string> ready;
        bool leader = false;
        while (true) {
            if (auto hit = cache_.get(key, canonical)) {
                ready = std::move(*hit);
                ++stats.cache_hits;
                break;
            }
            std::shared_ptr<Flight> flight;
            {
                std::lock_guard<std::mutex> lock(flights_mutex_);
                const auto it = flights_.find(canonical);
                if (it == flights_.end()) {
                    flight = std::make_shared<Flight>();
                    flights_.emplace(canonical, flight);
                    leader = true;
                } else {
                    flight = it->second;
                }
            }
            if (leader) break;
            ++stats.coalesced;
            coalesced_.add(1);
            std::unique_lock<std::mutex> lock(flight->mutex);
            flight->cv.wait(lock, [&flight] { return flight->done; });
        }
        if (ready) {
            account(req, *ready, /*cache_hit=*/true, admitted_ns, diag);
            writer.push(seq++, req.id, std::move(*ready));
            continue;
        }

        acquire_slot();
        const std::uint64_t s = seq++;
        group.run([this, s, req = std::move(req), canonical, key, &writer,
                   &diag, admitted_ns] {
            std::string body = compute(req);
            if (body_is_ok(body)) cache_.put(key, canonical, body);
            account(req, body, /*cache_hit=*/false, admitted_ns, diag);
            writer.push(s, req.id, std::move(body));
            finish_flight(canonical);
            release_slot();
        });
    }

    group.wait();
    out.flush();
    return stats;
}

namespace {

/// Bidirectional streambuf over a connected socket fd (blocking I/O).
class FdStreamBuf : public std::streambuf {
public:
    explicit FdStreamBuf(int fd) : fd_(fd) {
        setg(in_.data(), in_.data(), in_.data());
        setp(out_.data(), out_.data() + out_.size());
    }
    ~FdStreamBuf() override { sync(); }

protected:
    int_type underflow() override {
        if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
        const ssize_t n = ::read(fd_, in_.data(), in_.size());
        if (n <= 0) return traits_type::eof();
        setg(in_.data(), in_.data(), in_.data() + n);
        return traits_type::to_int_type(*gptr());
    }

    int_type overflow(int_type ch) override {
        if (sync() != 0) return traits_type::eof();
        if (!traits_type::eq_int_type(ch, traits_type::eof())) {
            *pptr() = traits_type::to_char_type(ch);
            pbump(1);
        }
        return traits_type::not_eof(ch);
    }

    int sync() override {
        const char* p = pbase();
        while (p < pptr()) {
            const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
            if (n <= 0) return -1;
            p += n;
        }
        setp(out_.data(), out_.data() + out_.size());
        return 0;
    }

private:
    int fd_;
    std::array<char, 4096> in_{};
    std::array<char, 4096> out_{};
};

/// Owns the listening socket and its filesystem name.
struct ListenGuard {
    int fd = -1;
    std::string path;
    ~ListenGuard() {
        if (fd >= 0) ::close(fd);
        if (!path.empty()) ::unlink(path.c_str());
    }
};

}  // namespace

ServeStats Server::serve_unix_socket(const std::string& path,
                                     std::ostream& diag) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw core::RunError::config("socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    ListenGuard guard;
    guard.fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (guard.fd < 0) {
        throw core::RunError::io("socket() failed: " +
                                 std::string(std::strerror(errno)));
    }
    ::unlink(path.c_str());  // stale socket from a previous run.
    if (::bind(guard.fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        throw core::RunError::io("bind(" + path +
                                 ") failed: " + std::strerror(errno));
    }
    guard.path = path;
    if (::listen(guard.fd, 4) != 0) {
        throw core::RunError::io("listen(" + path +
                                 ") failed: " + std::strerror(errno));
    }
    diag << "# serving on unix socket " << path << '\n';
    diag.flush();

    ServeStats total;
    const parallel::CancelToken* stop = options_.stop;
    while (stop == nullptr || !stop->cancelled()) {
        pollfd pfd{guard.fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 200);  // wake to re-check stop.
        if (rc < 0) {
            if (errno == EINTR) continue;
            throw core::RunError::io("poll() failed: " +
                                     std::string(std::strerror(errno)));
        }
        if (rc == 0) continue;
        const int client = ::accept(guard.fd, nullptr, nullptr);
        if (client < 0) continue;
        FdStreamBuf buf(client);
        std::istream in(&buf);
        std::ostream out(&buf);
        const ServeStats s = serve(in, out, diag);
        ::close(client);
        total.requests += s.requests;
        total.ok += s.ok;
        total.errors += s.errors;
        total.cancelled += s.cancelled;
        total.cache_hits += s.cache_hits;
        total.coalesced += s.coalesced;
        if (s.stopped) break;
    }
    if (stop != nullptr && stop->cancelled()) total.stopped = true;
    return total;
}

}  // namespace tnr::serve

#include "serve/server.hpp"

#include <cctype>
#include <chrono>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "serve/event_loop.hpp"
#include "serve/framing.hpp"
#include "serve/router.hpp"

namespace tnr::serve {

namespace {

namespace obs = core::obs;
namespace parallel = core::parallel;

std::uint64_t steady_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool is_blank(const std::string& line) {
    for (const char c : line) {
        if (std::isspace(static_cast<unsigned char>(c)) == 0) return false;
    }
    return true;
}

}  // namespace

/// Reorder buffer: responses are pushed in completion order but emitted in
/// admission (sequence) order, so a transcript is deterministic no matter
/// how the pool schedules the work.
class Server::OrderedWriter {
public:
    explicit OrderedWriter(std::ostream& out) : out_(out) {}

    void push(std::uint64_t seq, std::string_view id, std::string body) {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_.emplace(seq, assemble_response(id, body));
        while (true) {
            const auto it = pending_.find(next_);
            if (it == pending_.end()) break;
            out_ << it->second << '\n';
            out_.flush();
            pending_.erase(it);
            ++next_;
        }
    }

private:
    std::ostream& out_;
    std::mutex mutex_;
    std::uint64_t next_ = 0;
    std::map<std::uint64_t, std::string> pending_;
};

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity),
      start_ns_(steady_ns()),
      requests_(obs::Registry::global().counter("serve.requests")),
      coalesced_(obs::Registry::global().counter("serve.coalesced")),
      latency_(obs::Registry::global().latency("serve.request")),
      resp_ok_(obs::Registry::global().counter("serve.responses.ok")),
      resp_error_(obs::Registry::global().counter("serve.responses.error")),
      resp_cancelled_(
          obs::Registry::global().counter("serve.responses.cancelled")),
      resp_overloaded_(
          obs::Registry::global().counter("serve.responses.overloaded")),
      scheduler_({options_.max_inflight == 0 ? 1 : options_.max_inflight,
                  options_.queue_depth == 0 ? 1 : options_.queue_depth,
                  options_.stop},
                 cache_, [this](const Request& req) { return compute(req); }) {
    if (options_.max_inflight == 0) options_.max_inflight = 1;
    if (options_.queue_depth == 0) options_.queue_depth = 1;
    if (options_.max_clients == 0) options_.max_clients = 1;
    if (options_.max_line_bytes == 0) options_.max_line_bytes = 1;
    auto& reg = obs::Registry::global();
    for (const auto& m : method_names()) {
        MethodInstruments mi;
        mi.latency =
            &reg.latency(obs::labeled("serve.request", {{"method", m}}));
        mi.ok_hit = &reg.counter(obs::labeled(
            "serve.request",
            {{"method", m}, {"outcome", "ok"}, {"cache", "hit"}}));
        mi.ok_miss = &reg.counter(obs::labeled(
            "serve.request",
            {{"method", m}, {"outcome", "ok"}, {"cache", "miss"}}));
        mi.error_miss = &reg.counter(obs::labeled(
            "serve.request",
            {{"method", m}, {"outcome", "error"}, {"cache", "miss"}}));
        mi.cancelled_miss = &reg.counter(obs::labeled(
            "serve.request",
            {{"method", m}, {"outcome", "cancelled"}, {"cache", "miss"}}));
        mi.overloaded_miss = &reg.counter(obs::labeled(
            "serve.request",
            {{"method", m}, {"outcome", "overloaded"}, {"cache", "miss"}}));
        method_obs_.emplace(m, mi);
    }
}

std::string Server::compute(const Request& req) {
    // Per-request token: observes the server-wide stop token through the
    // parent link and, when the client set deadline_ms, trips on its own
    // once the budget elapses — at which point the Monte Carlo checkpoints
    // bail with RunError(kCancelled) and the request becomes a "cancelled"
    // response instead of taking the server down.
    parallel::CancelToken token;
    token.link_parent(options_.stop);
    if (req.has_deadline) {
        token.arm_deadline(std::chrono::nanoseconds(
            static_cast<std::int64_t>(req.deadline_ms * 1e6)));
    }
    obs::ScopedTimer timer(latency_);
    try {
        token.throw_if_cancelled();
        return ok_body(dispatch(req, &token));
    } catch (const core::RunError& e) {
        return error_body(e.category(), e.what());
    } catch (const std::invalid_argument& e) {
        return error_body(core::ErrorCategory::kConfig, e.what());
    } catch (const std::exception& e) {
        return error_body(core::ErrorCategory::kNumeric, e.what());
    }
}

IntrospectionState Server::introspection_state() {
    IntrospectionState st;
    st.uptime_s = static_cast<double>(steady_ns() - start_ns_) * 1e-9;
    st.inflight = scheduler_.inflight();
    st.max_inflight = scheduler_.max_inflight();
    st.cache_size = cache_.size();
    st.cache_capacity = cache_.capacity();
    st.queue_depth = scheduler_.queue_depth();
    st.queue_capacity = scheduler_.queue_capacity();
    st.max_clients = options_.max_clients;
    return st;
}

std::string Server::introspect(const Request& req) {
    try {
        double window_s = 10.0;
        std::string format = "json";
        for (const auto& [key, value] : req.params) {
            if (req.method == "stats" && key == "window-s") {
                if (value.kind != ParamValue::Kind::kNumber ||
                    !(value.num > 0.0)) {
                    throw core::RunError::config(
                        "stats: parameter window-s must be a positive number");
                }
                window_s = value.num;
            } else if (req.method == "stats" && key == "format") {
                if (value.kind != ParamValue::Kind::kString ||
                    (value.str != "json" && value.str != "prometheus")) {
                    throw core::RunError::config(
                        "stats: parameter format must be \"json\" or "
                        "\"prometheus\"");
                }
                format = value.str;
            } else {
                throw core::RunError::config(req.method +
                                             ": unknown parameter: " + key);
            }
        }
        if (format == "prometheus") {
            return ok_body(obs::Registry::global().to_prometheus());
        }
        if (req.method == "health") {
            return ok_body(render_health(introspection_state()));
        }
        return ok_body(render_stats(introspection_state(), window_s));
    } catch (const core::RunError& e) {
        return error_body(e.category(), e.what());
    }
}

void Server::account(const Request& req, std::string_view body,
                     bool cache_hit, std::uint64_t admitted_ns,
                     std::ostream& diag) {
    const std::uint64_t elapsed = steady_ns() - admitted_ns;
    const auto it = method_obs_.find(req.method);
    if (it != method_obs_.end()) {
        const MethodInstruments& m = it->second;
        m.latency->record_ns(elapsed);
        const std::string_view status = body_status(body);
        if (cache_hit) {
            m.ok_hit->add(1);
        } else if (status == "ok") {
            m.ok_miss->add(1);
        } else if (status == "cancelled") {
            m.cancelled_miss->add(1);
        } else if (status == "overloaded") {
            m.overloaded_miss->add(1);
        } else {
            m.error_miss->add(1);
        }
    }
    if (options_.slow_ms <= 0.0 ||
        static_cast<double>(elapsed) * 1e-6 <= options_.slow_ms) {
        return;
    }
    static obs::Counter& slow =
        obs::Registry::global().counter("serve.requests.slow");
    slow.add(1);
    std::ostringstream line;
    line << "{\"slow_request\":{\"id\":\"" << obs::json::escape(req.id)
         << "\",\"method\":\"" << obs::json::escape(req.method)
         << "\",\"elapsed_ms\":"
         << obs::json::number(static_cast<double>(elapsed) * 1e-6)
         << ",\"threshold_ms\":" << obs::json::number(options_.slow_ms)
         << ",\"status\":\"" << body_status(body) << "\",\"cache\":\""
         << (cache_hit ? "hit" : "miss") << "\"}}";
    std::ostream& log = options_.slow_log != nullptr ? *options_.slow_log
                                                     : diag;
    const std::lock_guard<std::mutex> lock(slow_log_mutex_);
    log << line.str() << '\n';
    log.flush();
}

void Server::tally(Session& session, std::string_view body,
                   std::ostream& diag) {
    const std::string_view status = body_status(body);
    {
        const std::lock_guard<std::mutex> lock(session.mutex);
        if (status == "ok") {
            ++session.stats.ok;
        } else if (status == "cancelled") {
            ++session.stats.cancelled;
        } else if (status == "overloaded") {
            ++session.stats.shed;
        } else {
            ++session.stats.errors;
        }
        if (options_.verbose) {
            // Serialized under the session mutex: deliveries come from pool
            // threads and the admitting thread alike.
            diag << "# response status=" << status << '\n';
            diag.flush();
        }
    }
    if (status == "ok") {
        resp_ok_.add(1);
    } else if (status == "cancelled") {
        resp_cancelled_.add(1);
    } else if (status == "overloaded") {
        resp_overloaded_.add(1);
    } else {
        resp_error_.add(1);
    }
}

void Server::finish_direct(Session& session, std::uint64_t seq,
                           const std::string& id, std::string body,
                           std::ostream& diag, const ResponseSink& sink) {
    tally(session, body, diag);
    sink(seq, id, std::move(body));
    // Notify while holding the lock: a waiter in wait_drained may destroy
    // the session the instant it observes pending == 0.
    const std::lock_guard<std::mutex> lock(session.mutex);
    --session.pending;
    session.cv.notify_all();
}

void Server::wait_drained(Session& session) {
    std::unique_lock<std::mutex> lock(session.mutex);
    session.cv.wait(lock, [&session] { return session.pending == 0; });
}

void Server::process_line(Session& session, const std::string& line,
                          std::uint64_t seq, bool oversized, bool allow_shed,
                          std::ostream& diag, const ResponseSink& sink) {
    {
        const std::lock_guard<std::mutex> lock(session.mutex);
        ++session.stats.requests;
        ++session.pending;
    }
    requests_.add(1);
    const std::uint64_t admitted_ns = steady_ns();

    if (oversized) {
        finish_direct(session, seq, "",
                      error_body(core::ErrorCategory::kConfig,
                                 "bad-request: request line exceeds " +
                                     std::to_string(options_.max_line_bytes) +
                                     " bytes"),
                      diag, sink);
        return;
    }

    const auto doc = core::obs::json::parse(line);
    if (!doc) {
        finish_direct(session, seq, "",
                      error_body(core::ErrorCategory::kConfig,
                                 "invalid JSON request line"),
                      diag, sink);
        return;
    }
    Request req;
    try {
        req = parse_request(*doc);
        if (!known_method(req.method)) {
            throw core::RunError::config("unknown method: " + req.method +
                                         " " + method_hint());
        }
    } catch (const core::RunError& e) {
        finish_direct(session, seq, extract_id(*doc),
                      error_body(e.category(), e.what()), diag, sink);
        return;
    }

    // stats/health are answered inline from live server state on the
    // admitting thread: their bodies legitimately differ between identical
    // requests, so they must never enter the LRU cache or coalesce onto a
    // flight — and under saturation they bypass the admission queue
    // entirely, which is what keeps introspection p99 bounded while
    // campaign slices occupy every slot.
    if (introspection_method(req.method)) {
        if (!allow_shed) {
            // Single-stream front-end: the transcript is ordered, so a
            // stats body should reflect every request admitted before it.
            // Wait for them (pending == 1 is this very line). The socket
            // front-end must never block its loop thread — there the stats
            // body is a live snapshot of whatever has finished so far.
            std::unique_lock<std::mutex> lock(session.mutex);
            session.cv.wait(lock, [&session] { return session.pending == 1; });
        }
        std::string body = introspect(req);
        account(req, body, /*cache_hit=*/false, admitted_ns, diag);
        finish_direct(session, seq, req.id, std::move(body), diag, sink);
        return;
    }

    const std::string canonical = canonical_request(req);
    const std::uint64_t key = canonical_hash(canonical);
    if (auto hit = cache_.get(key, canonical)) {
        {
            const std::lock_guard<std::mutex> lock(session.mutex);
            ++session.stats.cache_hits;
        }
        account(req, *hit, /*cache_hit=*/true, admitted_ns, diag);
        finish_direct(session, seq, req.id, std::move(*hit), diag, sink);
        return;
    }

    // Cache miss: into the bounded admission queue. The deliver closure runs
    // exactly once — on the admitting thread for sheds, on a pool runner for
    // computed flights and coalesced followers.
    auto deliver = [this, &session, seq, sink, &diag, admitted_ns,
                    req](std::string body, bool cache_hit) {
        if (cache_hit) {
            const std::lock_guard<std::mutex> lock(session.mutex);
            ++session.stats.cache_hits;
        }
        account(req, body, cache_hit, admitted_ns, diag);
        finish_direct(session, seq, req.id, std::move(body), diag, sink);
    };
    const Priority priority = method_priority(req.method);
    const auto admitted =
        scheduler_.admit(std::move(req), canonical, key, priority, allow_shed,
                         std::move(deliver));
    if (admitted == Scheduler::Admit::kCoalesced) {
        {
            const std::lock_guard<std::mutex> lock(session.mutex);
            ++session.stats.coalesced;
        }
        coalesced_.add(1);
    }
}

ServeStats Server::serve(std::istream& in, std::ostream& out,
                         std::ostream& diag) {
    Session session;
    OrderedWriter writer(out);
    const ResponseSink sink = [&writer](std::uint64_t seq, std::string id,
                                        std::string body) {
        writer.push(seq, id, std::move(body));
    };
    const parallel::CancelToken* stop = options_.stop;

    std::uint64_t seq = 0;
    std::string line;
    while (true) {
        if (stop != nullptr && stop->cancelled()) {
            session.stats.stopped = true;
            break;
        }
        const LineRead rd =
            read_bounded_line(in, line, options_.max_line_bytes);
        if (rd == LineRead::kEof) {
            // A stop that landed while we were blocked reading (the SIGINT
            // test drives this through a streambuf that trips the token at
            // EOF) still counts as a stop, not a clean EOF.
            if (stop != nullptr && stop->cancelled()) {
                session.stats.stopped = true;
            }
            break;
        }
        if (rd == LineRead::kLine && is_blank(line)) continue;
        process_line(session, line, seq++, rd == LineRead::kTooLong,
                     /*allow_shed=*/false, diag, sink);
    }

    wait_drained(session);
    out.flush();
    return session.stats;
}

ServeStats Server::serve_unix_socket(const std::string& path,
                                     std::ostream& diag) {
    return run_event_loop(*this, path, diag);
}

}  // namespace tnr::serve

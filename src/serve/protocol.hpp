#pragma once
// Wire protocol of `tnr serve` (docs/serving.md): newline-delimited JSON.
//
// Request line:
//   {"id":"r1","method":"fit","params":{"site":"nyc"},"deadline_ms":5000}
// Response line:
//   {"id":"r1","status":"ok","output":"<the one-shot CLI stdout bytes>"}
//   {"id":"r1","status":"error","error":{"category":"config","message":..}}
//   {"id":"r1","status":"cancelled","error":{...,"category":"cancelled"}}
//   {"id":"r1","status":"overloaded","error":{"category":"overloaded",
//    "message":...,"retry_after_ms":120}}   (load shed: admission queue full)
//
// Every admitted request gets exactly one typed response line — including
// the shed ones. An `overloaded` body carries a retry_after_ms backoff hint
// derived from the live queue backlog; it is never cached and never counts
// as an ok or error outcome.
//
// Responses are split into an *id* and a *body* (everything after the id):
// the body is what gets cached and must be byte-identical whether it was
// computed or served from the cache, while the id is echoed per request, so
// two clients asking the same question share one cache entry. Timing and
// cache-hit information deliberately live on the diagnostics channel and in
// the metrics registry, never in the response body — a timed payload could
// not be byte-stable.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "core/error.hpp"
#include "core/obs/json.hpp"

namespace tnr::serve {

/// One typed request parameter, canonicalized at parse time.
struct ParamValue {
    enum class Kind { kString, kNumber, kBool };
    Kind kind = Kind::kString;
    std::string str;   ///< kString payload.
    double num = 0.0;  ///< kNumber payload.
    bool flag = false; ///< kBool payload.

    /// Kind-tagged canonical text ("s:nyc", "n:0.2", "b:true") — the unit
    /// of the cache key, so "0.20" and "0.2" hash identically.
    [[nodiscard]] std::string canonical() const;
};

/// A parsed request. `params` is sorted by key (std::map), which makes the
/// canonical form deterministic regardless of client key order.
struct Request {
    std::string id;  ///< echoed verbatim in the response ("" if absent).
    std::string method;
    std::map<std::string, ParamValue> params;
    double deadline_ms = 0.0;
    bool has_deadline = false;
};

/// Best-effort id extraction from a parsed request document, so even a
/// request that fails validation gets its error response addressed.
std::string extract_id(const core::obs::json::Value& doc);

/// Validates and converts a parsed JSON document into a Request. Unknown
/// top-level keys, a missing/non-string method, a non-object params, or a
/// negative/non-number deadline_ms throw RunError(kConfig).
Request parse_request(const core::obs::json::Value& doc);

/// The cache identity of a request: method + sorted canonical params.
/// Excludes the id and the deadline — neither changes the answer.
std::string canonical_request(const Request& req);

/// Response bodies (the part after `"id":…,`).
std::string ok_body(std::string_view output);
std::string error_body(core::ErrorCategory category, std::string_view message);
/// The load-shed response: status "overloaded" plus a client backoff hint
/// (milliseconds, rounded) computed from the live admission backlog. The
/// default message covers a queue-full shed; the accept path substitutes a
/// connection-limit message.
std::string overloaded_body(double retry_after_ms,
                            std::string_view message =
                                "admission queue full, retry later");
/// True for bodies built by ok_body (the only ones the cache stores).
bool body_is_ok(std::string_view body);
/// The status discriminant of a response body: "ok", "error", "cancelled",
/// or "overloaded" (anything unrecognized tallies as "error").
const char* body_status(std::string_view body) noexcept;

/// The full response line (no trailing newline): `{"id":"...",<body>}`.
std::string assemble_response(std::string_view id, std::string_view body);

}  // namespace tnr::serve

#include "serve/router.hpp"

#include <algorithm>
#include <cmath>
#include <initializer_list>

#include "serve/handlers.hpp"

namespace tnr::serve {

namespace {

/// Validated, typed access to a request's params against the allow-list of
/// one method.
class Params {
public:
    Params(const Request& req, std::initializer_list<const char*> allowed)
        : req_(req) {
        for (const auto& [key, value] : req.params) {
            (void)value;
            const bool known =
                std::any_of(allowed.begin(), allowed.end(),
                            [&key](const char* name) { return key == name; });
            if (!known) {
                throw core::RunError::config(req.method +
                                             ": unknown parameter: " + key);
            }
        }
    }

    [[nodiscard]] std::string get_string(const char* key,
                                         const std::string& fallback) const {
        const auto* p = find(key);
        if (p == nullptr) return fallback;
        if (p->kind != ParamValue::Kind::kString) {
            throw bad_kind(key, "a string");
        }
        return p->str;
    }

    [[nodiscard]] double get_number(const char* key, double fallback) const {
        const auto* p = find(key);
        if (p == nullptr) return fallback;
        if (p->kind != ParamValue::Kind::kNumber || !std::isfinite(p->num)) {
            throw bad_kind(key, "a finite number");
        }
        return p->num;
    }

    [[nodiscard]] bool get_bool(const char* key, bool fallback) const {
        const auto* p = find(key);
        if (p == nullptr) return fallback;
        if (p->kind != ParamValue::Kind::kBool) {
            throw bad_kind(key, "a boolean");
        }
        return p->flag;
    }

    [[nodiscard]] std::uint64_t get_seed(const char* key,
                                         std::uint64_t fallback) const {
        const double v = get_number(key, static_cast<double>(fallback));
        if (v < 0.0) throw bad_kind(key, "a non-negative number");
        return static_cast<std::uint64_t>(v);
    }

private:
    [[nodiscard]] const ParamValue* find(const char* key) const {
        const auto it = req_.params.find(key);
        return it != req_.params.end() ? &it->second : nullptr;
    }

    [[nodiscard]] core::RunError bad_kind(const char* key,
                                          const char* expected) const {
        return core::RunError::config(req_.method + ": parameter " + key +
                                      " must be " + expected);
    }

    const Request& req_;
};

CampaignParams campaign_params(const Params& params) {
    CampaignParams cfg;
    cfg.hours = params.get_number("hours", cfg.hours);
    cfg.seed = params.get_seed("seed", cfg.seed);
    cfg.threads = static_cast<unsigned>(
        std::max(0.0, params.get_number("threads", cfg.threads)));
    cfg.avf_trials = static_cast<std::size_t>(std::max(
        0.0, params.get_number("avf-trials",
                               static_cast<double>(cfg.avf_trials))));
    cfg.mode = params.get_string("mode", cfg.mode);
    cfg.batch_size = static_cast<std::uint32_t>(std::max(
        0.0, params.get_number("batch-size",
                               static_cast<double>(cfg.batch_size))));
    cfg.simd = params.get_string("simd", cfg.simd);
    cfg.csv = params.get_bool("csv", cfg.csv);
    return cfg;
}

}  // namespace

const std::vector<std::string>& method_names() {
    static const std::vector<std::string> names = {
        "fit",      "sigma-ratio",  "campaign-slice", "fleet-slice",
        "detector", "list-devices", "transmission",   "stats",
        "health"};
    return names;
}

bool known_method(const std::string& method) {
    const auto& names = method_names();
    return std::find(names.begin(), names.end(), method) != names.end();
}

const std::string& method_hint() {
    static const std::string hint = [] {
        std::string h = "(use ";
        bool first = true;
        for (const auto& name : method_names()) {
            if (!first) h += '|';
            first = false;
            h += name;
        }
        h += ')';
        return h;
    }();
    return hint;
}

Priority method_priority(const std::string& method) {
    if (method == "sigma-ratio" || method == "campaign-slice" ||
        method == "fleet-slice" || method == "transmission") {
        return Priority::kBatch;
    }
    return Priority::kInteractive;
}

bool introspection_method(const std::string& method) {
    return method == "stats" || method == "health";
}

std::string dispatch(const Request& req,
                     const core::parallel::CancelToken* cancel) {
    if (req.method == "list-devices") {
        const Params params(req, {});
        return render_list_devices();
    }
    if (req.method == "fit") {
        const Params params(req, {"device", "site", "rainy", "csv"});
        FitParams fit;
        fit.device = params.get_string("device", fit.device);
        fit.site = params.get_string("site", fit.site);
        fit.rainy = params.get_bool("rainy", fit.rainy);
        fit.csv = params.get_bool("csv", fit.csv);
        return render_fit(fit);
    }
    if (req.method == "detector") {
        const Params params(req, {"days", "water-days", "seed", "csv"});
        DetectorParams det;
        det.days = params.get_number("days", det.days);
        det.water_days = params.get_number("water-days", det.water_days);
        det.seed = params.get_seed("seed", det.seed);
        det.csv = params.get_bool("csv", det.csv);
        return render_detector(det);
    }
    if (req.method == "transmission") {
        const Params params(req, {"material", "thickness-cm", "energy-ev",
                                  "histories", "mode", "batch-size", "simd",
                                  "seed", "threads", "csv"});
        TransmissionParams tx;
        tx.material = params.get_string("material", tx.material);
        tx.thickness_cm = params.get_number("thickness-cm", tx.thickness_cm);
        tx.energy_ev = params.get_number("energy-ev", tx.energy_ev);
        tx.histories = params.get_seed("histories", tx.histories);
        tx.mode = params.get_string("mode", tx.mode);
        tx.batch_size = static_cast<std::uint32_t>(std::max(
            0.0, params.get_number("batch-size",
                                   static_cast<double>(tx.batch_size))));
        tx.simd = params.get_string("simd", tx.simd);
        tx.seed = params.get_seed("seed", tx.seed);
        tx.threads = static_cast<unsigned>(std::max(
            0.0, params.get_number("threads", tx.threads)));
        tx.csv = params.get_bool("csv", tx.csv);
        return render_transmission(tx, cancel);
    }
    if (req.method == "sigma-ratio") {
        const Params params(req, {"hours", "seed", "threads", "avf-trials",
                                  "mode", "batch-size", "simd", "csv"});
        return render_sigma_ratio(campaign_params(params), cancel);
    }
    if (req.method == "campaign-slice") {
        const Params params(req, {"device", "hours", "seed", "threads",
                                  "avf-trials", "mode", "batch-size", "simd",
                                  "csv"});
        SliceParams slice;
        slice.device = params.get_string("device", "");
        slice.campaign = campaign_params(params);
        return render_campaign_slice(slice, cancel);
    }
    if (req.method == "fleet-slice") {
        const Params params(req,
                            {"devices", "days", "bucket-hours", "seed",
                             "acceleration", "fleet-mode", "sites", "mix",
                             "scrub-hours", "repair-hours", "rain-prob",
                             "shards", "slice", "csv"});
        FleetParams fp;
        fp.devices = params.get_seed("devices", fp.devices);
        fp.fleet_mode = params.get_string("fleet-mode", fp.fleet_mode);
        fp.days = static_cast<unsigned>(std::max(
            0.0, params.get_number("days", fp.days)));
        fp.bucket_hours = static_cast<unsigned>(std::max(
            0.0, params.get_number("bucket-hours", fp.bucket_hours)));
        fp.seed = params.get_seed("seed", fp.seed);
        fp.acceleration =
            params.get_number("acceleration", fp.acceleration);
        fp.sites = params.get_string("sites", fp.sites);
        fp.mix = params.get_string("mix", fp.mix);
        fp.scrub_hours = params.get_number("scrub-hours", fp.scrub_hours);
        fp.repair_hours = static_cast<unsigned>(std::max(
            0.0, params.get_number("repair-hours", fp.repair_hours)));
        fp.rain_probability =
            params.get_number("rain-prob", fp.rain_probability);
        fp.shards = static_cast<unsigned>(std::max(
            0.0, params.get_number("shards", fp.shards)));
        fp.slice = params.get_string("slice", fp.slice);
        fp.csv = params.get_bool("csv", fp.csv);
        return render_fleet(fp, cancel);
    }
    if (introspection_method(req.method)) {
        // stats/health read live server state (uptime, inflight) the router
        // cannot see; Server::serve answers them before dispatch, so landing
        // here means dispatch() was called without a server.
        throw core::RunError::config(req.method +
                                     " is answered by a running server "
                                     "(tnr serve), not the router");
    }
    throw core::RunError::config("unknown method: " + req.method + " " +
                                 method_hint());
}

}  // namespace tnr::serve

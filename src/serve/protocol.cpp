#include "serve/protocol.hpp"

#include <cmath>

namespace tnr::serve {

namespace json = core::obs::json;

std::string ParamValue::canonical() const {
    switch (kind) {
        case Kind::kString: return "s:" + str;
        case Kind::kNumber: return "n:" + json::number(num);
        case Kind::kBool: return flag ? "b:true" : "b:false";
    }
    return "";
}

std::string extract_id(const json::Value& doc) {
    const json::Value* id = doc.find("id");
    return id != nullptr && id->is_string() ? id->str : "";
}

Request parse_request(const json::Value& doc) {
    if (!doc.is_object()) {
        throw core::RunError::config("request must be a JSON object");
    }
    Request req;
    req.id = extract_id(doc);
    for (const auto& [key, value] : doc.object) {
        if (key == "id") {
            if (!value.is_string()) {
                throw core::RunError::config("request id must be a string");
            }
        } else if (key == "method") {
            if (!value.is_string()) {
                throw core::RunError::config("request method must be a string");
            }
            req.method = value.str;
        } else if (key == "params") {
            if (!value.is_object()) {
                throw core::RunError::config("request params must be an object");
            }
            for (const auto& [pkey, pvalue] : value.object) {
                ParamValue param;
                switch (pvalue.kind) {
                    case json::Value::Kind::kString:
                        param.kind = ParamValue::Kind::kString;
                        param.str = pvalue.str;
                        break;
                    case json::Value::Kind::kNumber:
                        param.kind = ParamValue::Kind::kNumber;
                        param.num = pvalue.num;
                        break;
                    case json::Value::Kind::kBool:
                        param.kind = ParamValue::Kind::kBool;
                        param.flag = pvalue.boolean;
                        break;
                    default:
                        throw core::RunError::config(
                            "parameter " + pkey +
                            ": must be a string, number, or boolean");
                }
                req.params[pkey] = std::move(param);
            }
        } else if (key == "deadline_ms") {
            if (!value.is_number() || !std::isfinite(value.num) ||
                value.num < 0.0) {
                throw core::RunError::config(
                    "deadline_ms must be a non-negative number");
            }
            req.deadline_ms = value.num;
            req.has_deadline = true;
        } else {
            throw core::RunError::config("unknown request field: " + key);
        }
    }
    if (req.method.empty()) {
        throw core::RunError::config("request is missing a method");
    }
    return req;
}

std::string canonical_request(const Request& req) {
    std::string out = req.method;
    for (const auto& [key, value] : req.params) {
        out += '\n';
        out += key;
        out += '=';
        out += value.canonical();
    }
    return out;
}

std::string ok_body(std::string_view output) {
    std::string body = "\"status\":\"ok\",\"output\":\"";
    body += json::escape(output);
    body += '"';
    return body;
}

std::string error_body(core::ErrorCategory category, std::string_view message) {
    const bool cancelled = category == core::ErrorCategory::kCancelled;
    std::string body = "\"status\":\"";
    body += cancelled ? "cancelled" : "error";
    body += "\",\"error\":{\"category\":\"";
    body += core::to_string(category);
    body += "\",\"message\":\"";
    body += json::escape(message);
    body += "\"}";
    return body;
}

std::string overloaded_body(double retry_after_ms, std::string_view message) {
    std::string body =
        "\"status\":\"overloaded\",\"error\":{\"category\":\"overloaded\","
        "\"message\":\"";
    body += json::escape(message);
    body += "\",\"retry_after_ms\":";
    body += json::number(retry_after_ms < 0.0 ? 0.0 : retry_after_ms);
    body += '}';
    return body;
}

bool body_is_ok(std::string_view body) {
    return body.rfind("\"status\":\"ok\"", 0) == 0;
}

const char* body_status(std::string_view body) noexcept {
    if (body_is_ok(body)) return "ok";
    if (body.rfind("\"status\":\"cancelled\"", 0) == 0) return "cancelled";
    if (body.rfind("\"status\":\"overloaded\"", 0) == 0) return "overloaded";
    return "error";
}

std::string assemble_response(std::string_view id, std::string_view body) {
    std::string line = "{\"id\":\"";
    line += json::escape(id);
    line += "\",";
    line += body;
    line += '}';
    return line;
}

}  // namespace tnr::serve

#pragma once
// Bounded NDJSON line framing for the serve front-ends. Both readers cap
// the bytes they will buffer for a single request line: an oversized line
// is discarded up to its newline and surfaces as a typed bad-request error
// instead of growing an unbounded buffer on behalf of a hostile or broken
// client. The socket event loop feeds raw recv() chunks into a LineFramer;
// the stdin loop uses read_bounded_line over its istream.

#include <cstddef>
#include <deque>
#include <iosfwd>
#include <string>

namespace tnr::serve {

/// Incremental splitter of a byte stream into newline-delimited lines with
/// a hard per-line byte cap. feed() never keeps more than max_line_bytes of
/// an unfinished line buffered; once a line crosses the cap its remaining
/// bytes are discarded until the newline and the line surfaces as one
/// kOverflow event (in arrival order relative to the surrounding lines).
class LineFramer {
public:
    explicit LineFramer(std::size_t max_line_bytes)
        : max_(max_line_bytes == 0 ? 1 : max_line_bytes) {}

    /// Appends raw bytes from the transport.
    void feed(const char* data, std::size_t n);

    enum class Result {
        kNone,      ///< no complete line buffered yet.
        kLine,      ///< `line` holds the next complete line (no newline).
        kOverflow,  ///< the next line exceeded the cap and was discarded.
    };

    /// Pops the next framed event; `line` is filled only for kLine.
    Result next(std::string& line);

    /// Bytes of the current unfinished line (bounded by the cap).
    [[nodiscard]] std::size_t partial_bytes() const noexcept {
        return current_.size();
    }

    [[nodiscard]] std::size_t max_line_bytes() const noexcept { return max_; }

private:
    struct Event {
        bool overflow = false;
        std::string line;
    };

    std::size_t max_;
    std::string current_;
    bool skipping_ = false;  ///< discarding an oversized line's tail.
    std::deque<Event> events_;
};

enum class LineRead {
    kLine,     ///< a complete (possibly final, unterminated) line.
    kTooLong,  ///< the line exceeded the cap; its bytes were discarded.
    kEof,      ///< end of stream with nothing read.
};

/// getline with a byte cap: reads up to the next newline (or EOF), storing
/// at most `max_line_bytes` into `line`. A line that crosses the cap is
/// consumed to its newline and reported as kTooLong with `line` empty.
LineRead read_bounded_line(std::istream& in, std::string& line,
                           std::size_t max_line_bytes);

}  // namespace tnr::serve

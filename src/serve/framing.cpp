#include "serve/framing.hpp"

#include <istream>

namespace tnr::serve {

void LineFramer::feed(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const char c = data[i];
        if (skipping_) {
            if (c == '\n') {
                skipping_ = false;
                events_.push_back({true, {}});
            }
            continue;
        }
        if (c == '\n') {
            events_.push_back({false, std::move(current_)});
            current_.clear();
            continue;
        }
        current_.push_back(c);
        if (current_.size() > max_) {
            current_.clear();
            skipping_ = true;
        }
    }
}

LineFramer::Result LineFramer::next(std::string& line) {
    if (events_.empty()) return Result::kNone;
    Event ev = std::move(events_.front());
    events_.pop_front();
    if (ev.overflow) return Result::kOverflow;
    line = std::move(ev.line);
    return Result::kLine;
}

LineRead read_bounded_line(std::istream& in, std::string& line,
                           std::size_t max_line_bytes) {
    line.clear();
    std::streambuf* sb = in.rdbuf();
    using traits = std::istream::traits_type;
    bool any = false;
    bool toolong = false;
    while (true) {
        const int ci = sb->sbumpc();
        if (traits::eq_int_type(ci, traits::eof())) {
            in.setstate(std::ios::eofbit);
            if (!any) return LineRead::kEof;
            break;
        }
        any = true;
        const char c = traits::to_char_type(ci);
        if (c == '\n') break;
        if (toolong) continue;
        line.push_back(c);
        if (line.size() > max_line_bytes) {
            toolong = true;
            line.clear();
        }
    }
    return toolong ? LineRead::kTooLong : LineRead::kLine;
}

}  // namespace tnr::serve

#include "serve/cache.hpp"

namespace tnr::serve {

std::uint64_t canonical_hash(std::string_view canonical) noexcept {
    std::uint64_t h = 1469598103934665603ull;  // FNV offset basis.
    for (const char c : canonical) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;  // FNV prime.
    }
    return h;
}

ResponseCache::ResponseCache(std::size_t capacity)
    : capacity_(capacity),
      hits_(core::obs::Registry::global().counter("serve.cache.hits")),
      misses_(core::obs::Registry::global().counter("serve.cache.misses")),
      collisions_(
          core::obs::Registry::global().counter("serve.cache.collisions")),
      evictions_(
          core::obs::Registry::global().counter("serve.cache.evictions")) {}

std::optional<std::string> ResponseCache::get(std::uint64_t key,
                                              std::string_view canonical) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        misses_.add(1);
        return std::nullopt;
    }
    if (it->second->canonical != canonical) {
        // A different request hashed to the same 64-bit key: serve nothing
        // (the stored bytes answer a different question) and count it apart
        // from a true miss.
        collisions_.add(1);
        return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency.
    hits_.add(1);
    return it->second->body;
}

void ResponseCache::put(std::uint64_t key, std::string canonical,
                        std::string body) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        // Refresh (or replace a hash-colliding entry: last writer wins).
        it->second->canonical = std::move(canonical);
        it->second->body = std::move(body);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(Entry{key, std::move(canonical), std::move(body)});
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        evictions_.add(1);
    }
}

std::size_t ResponseCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

}  // namespace tnr::serve

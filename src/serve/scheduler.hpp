#pragma once
// Bounded admission scheduling for the serve engine: the stage between a
// parsed, cache-missed request and the shared ThreadPool.
//
// Degradation ladder (docs/robustness.md):
//   admit -> queue -> shed -> drain
//   * at most `max_inflight` computations run concurrently (runner tasks on
//     the shared pool);
//   * behind them a bounded queue of at most `queue_depth` admitted
//     requests, popped strictly by priority class (interactive before
//     batch, FIFO within a class) so a cheap fit never waits behind a pile
//     of campaign slices;
//   * when the queue is full, admission either sheds — the request is
//     answered immediately with a typed `overloaded` body carrying a
//     retry_after_ms hint derived from the live backlog — or, for the
//     single-stream stdin front-end, blocks the reader (backpressure on a
//     pipe beats shedding a request the client cannot retry);
//   * on stop, everything already admitted still gets a response: queued
//     requests run to completion, observing the stop token through their
//     per-request CancelToken, so they drain as fast "cancelled" bodies.
//
// Identical concurrent requests are single-flighted here: a duplicate of a
// queued or in-flight request attaches to the leader's flight and receives
// the leader's answer (counted as a cache hit) instead of recomputing. If
// the leader fails — failures are never cached — the first follower is
// promoted to leader and recomputes, exactly like the old blocking loop.
//
// Every admitted request's Deliver callback is invoked exactly once, from
// an arbitrary thread (the admitting thread for sheds, a pool runner
// otherwise). The destructor blocks until all runners retired, so the
// callbacks never outlive their captures as long as sessions drain first.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/obs/metrics.hpp"
#include "core/parallel/cancel.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"

namespace tnr::serve {

/// Priority classes of the admission queue, lowest value pops first.
enum class Priority : int {
    kInteractive = 0,  ///< cheap renders: fit, detector, list-devices.
    kBatch = 1,        ///< long computations: sigma-ratio, campaign-slice,
                       ///< transmission.
};
inline constexpr std::size_t kPriorityClasses = 2;

class Scheduler {
public:
    struct Options {
        std::size_t max_inflight = 4;  ///< concurrent computations (>= 1).
        std::size_t queue_depth = 64;  ///< admitted-but-not-running bound.
        const core::parallel::CancelToken* stop = nullptr;
    };

    /// Runs one request to a response body on the calling (pool) thread.
    using Compute = std::function<std::string(const Request&)>;
    /// Called exactly once per admitted request, from an arbitrary thread.
    using Deliver = std::function<void(std::string body, bool cache_hit)>;

    enum class Admit {
        kQueued,     ///< enqueued as a flight leader.
        kCoalesced,  ///< attached to an in-flight duplicate's answer.
        kShed,       ///< queue full; delivered a typed overloaded body.
    };

    Scheduler(Options options, ResponseCache& cache, Compute compute);
    /// Blocks until every runner retired and the queue is empty.
    ~Scheduler();

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Admits one parsed, cache-missed request. With `allow_shed`, a full
    /// queue delivers an overloaded body immediately and returns kShed;
    /// without it, admission blocks until the queue has room (or the stop
    /// token fires, in which case the request is over-admitted and drains
    /// as a cancelled response).
    Admit admit(Request req, std::string canonical, std::uint64_t key,
                Priority priority, bool allow_shed, Deliver deliver);

    [[nodiscard]] std::size_t queue_depth();
    [[nodiscard]] std::size_t queue_capacity() const noexcept {
        return options_.queue_depth;
    }
    [[nodiscard]] std::size_t inflight();
    [[nodiscard]] std::size_t max_inflight() const noexcept {
        return options_.max_inflight;
    }

    /// The client backoff hint for a shed response right now: the recent
    /// per-request compute EWMA scaled by the backlog per slot, clamped to
    /// [10 ms, 10 s].
    [[nodiscard]] double retry_after_ms_hint();

private:
    struct Follower {
        Request req;  ///< kept for promotion when the leader fails.
        Deliver deliver;
    };

    /// One flight: the leader's request plus everything coalesced onto it.
    struct Job {
        Request req;
        std::string canonical;
        std::uint64_t key = 0;
        Priority priority = Priority::kInteractive;
        Deliver deliver;
        std::vector<Follower> followers;
    };

    void spawn_runner_locked();
    void run_worker();
    [[nodiscard]] std::shared_ptr<Job> pop_locked();
    [[nodiscard]] double retry_after_locked() const;

    Options options_;
    ResponseCache& cache_;
    Compute compute_;

    std::mutex mutex_;
    std::condition_variable space_cv_;  ///< queue has room (blocking admit).
    std::condition_variable idle_cv_;   ///< a runner retired (destructor).
    std::deque<std::shared_ptr<Job>> queue_[kPriorityClasses];
    std::unordered_map<std::string, std::shared_ptr<Job>> flights_;
    std::size_t queued_ = 0;
    std::size_t running_ = 0;     ///< jobs currently computing.
    std::size_t runners_ = 0;     ///< pool tasks alive (>= running_).
    std::size_t high_water_ = 0;  ///< deepest the queue has been.
    double ewma_ms_ = 0.0;        ///< recent compute latency estimate.

    core::obs::Gauge& queue_gauge_;
    core::obs::Gauge& queue_max_gauge_;
    core::obs::Gauge& inflight_gauge_;
};

}  // namespace tnr::serve

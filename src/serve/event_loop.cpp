#include "serve/event_loop.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/framing.hpp"

namespace tnr::serve {

namespace {

namespace obs = core::obs;
namespace parallel = core::parallel;

std::uint64_t steady_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Owns the listening socket and its filesystem name.
struct ListenGuard {
    int fd = -1;
    std::string path;
    ~ListenGuard() {
        if (fd >= 0) ::close(fd);
        if (!path.empty()) ::unlink(path.c_str());
    }
};

/// One finished response on its way back to the event loop thread.
struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string line;  ///< full response line, newline included.
};

/// The cross-thread mailbox: pool runners (and the loop thread itself, for
/// inline answers) push completions here and poke the self-pipe; the loop
/// drains it after every poll() return. Outlives every in-flight deliver
/// callback because the loop calls Server::wait_drained before destroying
/// it.
struct Mailbox {
    std::mutex mutex;
    std::deque<Completion> completions;
    int wake_fd = -1;  ///< write end of the self-pipe.

    void post(std::uint64_t conn_id, std::uint64_t seq, std::string line) {
        {
            const std::lock_guard<std::mutex> lock(mutex);
            completions.push_back({conn_id, seq, std::move(line)});
        }
        // A full pipe already guarantees a pending wakeup; EINTR on a
        // 1-byte pipe write cannot leave it half-done.
        const char byte = 'x';
        while (::write(wake_fd, &byte, 1) < 0 && errno == EINTR) {
        }
    }
};

/// Per-client state machine.
struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    LineFramer framer;
    Server::ResponseSink sink;
    std::string wbuf;          ///< assembled-but-unsent response bytes.
    std::size_t woff = 0;      ///< consumed prefix of wbuf.
    std::map<std::uint64_t, std::string> reorder;  ///< seq -> response line.
    std::uint64_t next_assign = 0;  ///< admission sequence for new lines.
    std::uint64_t next_emit = 0;    ///< next sequence wbuf may take.
    std::uint64_t last_activity_ns = 0;
    std::size_t outstanding = 0;  ///< admitted lines awaiting completion.
    bool input_closed = false;    ///< peer EOF: close once drained+flushed.
    bool doomed = false;          ///< error/timeout: close once flushed.

    explicit Connection(std::size_t max_line) : framer(max_line) {}

    [[nodiscard]] std::size_t unsent() const { return wbuf.size() - woff; }
    [[nodiscard]] bool drained() const {
        return outstanding == 0 && reorder.empty() && unsent() == 0;
    }
};

/// Appends every reorder-buffer line that is next in sequence to wbuf.
void flush_reorder(Connection& conn) {
    while (true) {
        const auto it = conn.reorder.find(conn.next_emit);
        if (it == conn.reorder.end()) break;
        conn.wbuf += it->second;
        conn.reorder.erase(it);
        ++conn.next_emit;
    }
    if (conn.woff > 0 && conn.woff == conn.wbuf.size()) {
        conn.wbuf.clear();
        conn.woff = 0;
    }
}

/// Writes as much of wbuf as the socket accepts right now. Returns false
/// when the connection died (EPIPE/ECONNRESET/...).
bool try_write(Connection& conn) {
    while (conn.unsent() > 0) {
        const ssize_t n =
            ::send(conn.fd, conn.wbuf.data() + conn.woff, conn.unsent(),
                   MSG_NOSIGNAL);
        if (n > 0) {
            conn.woff += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
        return false;  // peer gone.
    }
    conn.wbuf.clear();
    conn.woff = 0;
    return true;
}

}  // namespace

ServeStats run_event_loop(Server& server, const std::string& path,
                          std::ostream& diag) {
    const ServeOptions& opts = server.options();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw core::RunError::config("socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    ListenGuard guard;
    guard.fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (guard.fd < 0) {
        throw core::RunError::io("socket() failed: " +
                                 std::string(std::strerror(errno)));
    }
    ::unlink(path.c_str());  // stale socket from a previous run.
    if (::bind(guard.fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        throw core::RunError::io("bind(" + path +
                                 ") failed: " + std::strerror(errno));
    }
    guard.path = path;
    if (::listen(guard.fd, 256) != 0) {
        throw core::RunError::io("listen(" + path +
                                 ") failed: " + std::strerror(errno));
    }
    set_nonblocking(guard.fd);

    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0) {
        throw core::RunError::io("pipe() failed: " +
                                 std::string(std::strerror(errno)));
    }
    set_nonblocking(pipe_fds[0]);
    set_nonblocking(pipe_fds[1]);

    diag << "# serving on unix socket " << path << '\n';
    diag.flush();

    auto& reg = obs::Registry::global();
    obs::Gauge& active_gauge = reg.gauge("serve.connections.active");
    obs::Counter& accepted = reg.counter("serve.connections.accepted");
    obs::Counter& rejected = reg.counter("serve.connections.rejected");
    obs::Counter& idle_timeouts =
        reg.counter("serve.connections.idle_timeouts");
    obs::Counter& write_overflows =
        reg.counter("serve.connections.write_overflows");

    Server::Session session;
    Mailbox mailbox;
    mailbox.wake_fd = pipe_fds[1];

    std::unordered_map<int, Connection> conns;          // by fd.
    std::unordered_map<std::uint64_t, int> fd_by_id;    // conn id -> fd.
    std::uint64_t next_conn_id = 1;

    const auto close_conn = [&](int fd) {
        const auto it = conns.find(fd);
        if (it == conns.end()) return;
        fd_by_id.erase(it->second.id);
        ::close(fd);
        conns.erase(it);
        active_gauge.set(static_cast<double>(conns.size()));
    };

    const parallel::CancelToken* stop = opts.stop;
    bool stopping = false;
    std::uint64_t stop_deadline_ns = 0;
    constexpr std::uint64_t kDrainBudgetNs = 5'000'000'000ULL;
    std::vector<pollfd> pfds;
    std::vector<int> io_fds;  // pfds index -> connection fd, aligned.
    std::string line;

    while (true) {
        if (!stopping && stop != nullptr && stop->cancelled()) {
            // Drain phase: no new connections or request lines; everything
            // admitted still gets its typed response, buffers flush, then
            // the loop returns for the CLI's exit-130 path.
            stopping = true;
            stop_deadline_ns = steady_ns() + kDrainBudgetNs;
        }
        if (stopping) {
            bool drained;
            {
                const std::lock_guard<std::mutex> lock(session.mutex);
                drained = session.pending == 0;
            }
            {
                const std::lock_guard<std::mutex> lock(mailbox.mutex);
                drained = drained && mailbox.completions.empty();
            }
            if (drained) {
                drained = std::all_of(
                    conns.begin(), conns.end(),
                    [](const auto& kv) { return kv.second.drained(); });
            }
            if (drained) break;
            if (steady_ns() >= stop_deadline_ns) {
                diag << "# drain budget exhausted with responses in flight; "
                        "flushing best-effort\n";
                diag.flush();
                break;
            }
        }

        pfds.clear();
        io_fds.clear();
        pfds.push_back({pipe_fds[0], POLLIN, 0});
        io_fds.push_back(-1);
        if (!stopping) {
            pfds.push_back({guard.fd, POLLIN, 0});
            io_fds.push_back(-1);
        }
        const std::uint64_t now = steady_ns();
        const std::uint64_t idle_ns = static_cast<std::uint64_t>(
            opts.idle_timeout_ms > 0.0 ? opts.idle_timeout_ms * 1e6 : 0.0);
        int timeout_ms = 200;
        for (auto& [fd, conn] : conns) {
            short events = 0;
            if (!stopping && !conn.doomed && !conn.input_closed) {
                events |= POLLIN;
            }
            if (conn.unsent() > 0) events |= POLLOUT;
            pfds.push_back({fd, events, 0});
            io_fds.push_back(fd);
            if (idle_ns > 0 && !conn.doomed && conn.outstanding == 0) {
                const std::uint64_t deadline = conn.last_activity_ns + idle_ns;
                const int left =
                    deadline > now
                        ? static_cast<int>(
                              std::min<std::uint64_t>((deadline - now) / 1'000'000 + 1, 200))
                        : 0;
                timeout_ms = std::min(timeout_ms, left);
            }
        }

        const int rc = ::poll(pfds.data(),
                              static_cast<nfds_t>(pfds.size()), timeout_ms);
        if (rc < 0) {
            if (errno == EINTR) continue;
            throw core::RunError::io("poll() failed: " +
                                     std::string(std::strerror(errno)));
        }

        // 1) Drain the self-pipe and the completion mailbox.
        {
            char buf[256];
            while (::read(pipe_fds[0], buf, sizeof buf) > 0) {
            }
        }
        std::deque<Completion> done;
        {
            const std::lock_guard<std::mutex> lock(mailbox.mutex);
            done.swap(mailbox.completions);
        }
        for (auto& c : done) {
            const auto fit = fd_by_id.find(c.conn_id);
            if (fit == fd_by_id.end()) continue;  // client already gone.
            Connection& conn = conns.at(fit->second);
            if (conn.outstanding > 0) --conn.outstanding;
            conn.reorder.emplace(c.seq, std::move(c.line));
            flush_reorder(conn);
        }
        // Processed entries must not survive into the second swap below, or
        // they would ride back into the mailbox and re-run as duplicates.
        done.clear();

        // 2) Accept. Beyond max_clients each new connection gets one typed
        // reject line (best effort on a fresh socket) and an immediate
        // close — a full server must never leave a client hanging.
        if (!stopping) {
            while (true) {
                const int client = ::accept(guard.fd, nullptr, nullptr);
                if (client < 0) {
                    if (errno == EINTR) continue;
                    break;  // EAGAIN or transient accept error: poll again.
                }
                set_nonblocking(client);
                if (conns.size() >= opts.max_clients) {
                    rejected.add(1);
                    std::string reject = assemble_response(
                        "", overloaded_body(
                                server.retry_after_ms_hint(),
                                "connection limit reached, retry later"));
                    reject += '\n';
                    (void)::send(client, reject.data(), reject.size(),
                                 MSG_NOSIGNAL);
                    ::close(client);
                    continue;
                }
                accepted.add(1);
                const std::uint64_t id = next_conn_id++;
                Connection& conn =
                    conns.emplace(client, Connection(opts.max_line_bytes))
                        .first->second;
                conn.fd = client;
                conn.id = id;
                conn.last_activity_ns = steady_ns();
                conn.sink = [&mailbox, id](std::uint64_t seq, std::string rid,
                                           std::string body) {
                    std::string full = assemble_response(rid, body);
                    full += '\n';
                    mailbox.post(id, seq, std::move(full));
                };
                fd_by_id.emplace(id, client);
                active_gauge.set(static_cast<double>(conns.size()));
            }
        }

        // 3) Per-connection I/O, driven by poll's revents.
        for (std::size_t i = 0; i < pfds.size(); ++i) {
            const int fd = io_fds[i];
            if (fd < 0) continue;
            const auto it = conns.find(fd);
            if (it == conns.end()) continue;
            Connection& conn = it->second;
            const short re = pfds[i].revents;

            if ((re & (POLLERR | POLLNVAL)) != 0) {
                close_conn(fd);
                continue;
            }
            if ((re & POLLIN) != 0) {
                char buf[4096];
                while (true) {
                    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
                    if (n > 0) {
                        conn.framer.feed(buf, static_cast<std::size_t>(n));
                        conn.last_activity_ns = steady_ns();
                        continue;
                    }
                    if (n == 0) {
                        conn.input_closed = true;
                        break;
                    }
                    if (errno == EINTR) continue;
                    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
                    conn.input_closed = true;  // hard read error.
                    conn.doomed = true;
                    break;
                }
                // Every complete line goes through the same
                // parse/cache/admit path as stdin, but with shedding
                // allowed: the loop thread must never block on admission.
                while (true) {
                    const LineFramer::Result r = conn.framer.next(line);
                    if (r == LineFramer::Result::kNone) break;
                    if (r == LineFramer::Result::kLine &&
                        line.find_first_not_of(" \t\r") ==
                            std::string::npos) {
                        continue;
                    }
                    const std::uint64_t seq = conn.next_assign++;
                    ++conn.outstanding;
                    server.process_line(
                        session, line, seq,
                        /*oversized=*/r == LineFramer::Result::kOverflow,
                        /*allow_shed=*/true, diag, conn.sink);
                }
            } else if ((re & POLLHUP) != 0 && conn.unsent() == 0) {
                // Peer hung up and nothing is left to flush toward it.
                if (conn.drained()) {
                    close_conn(fd);
                    continue;
                }
                conn.input_closed = true;
            }
            if ((re & POLLOUT) != 0 && !try_write(conn)) {
                close_conn(fd);
                continue;
            }
        }

        // 4) Deferred completions may have landed inline during step 3
        // (cache hits, parse errors, sheds are delivered on this thread):
        // pull them into the write buffers now instead of waiting a poll
        // cycle.
        {
            const std::lock_guard<std::mutex> lock(mailbox.mutex);
            done.swap(mailbox.completions);
        }
        for (auto& c : done) {
            const auto fit = fd_by_id.find(c.conn_id);
            if (fit == fd_by_id.end()) continue;
            Connection& conn = conns.at(fit->second);
            if (conn.outstanding > 0) --conn.outstanding;
            conn.reorder.emplace(c.seq, std::move(c.line));
            flush_reorder(conn);
        }
        done.clear();

        // 5) Lifecycle sweep: opportunistic writes, write-buffer caps, idle
        // timeouts, and close-when-done.
        const std::uint64_t sweep_now = steady_ns();
        std::vector<int> dead;
        for (auto& [fd, conn] : conns) {
            if (conn.unsent() > 0 && !try_write(conn)) {
                dead.push_back(fd);
                continue;
            }
            if (conn.unsent() > opts.write_buffer_limit) {
                // Slow or dead reader: its buffered bytes will never drain
                // at a useful rate. Cut it loose rather than hoarding
                // memory or blocking the loop.
                write_overflows.add(1);
                dead.push_back(fd);
                continue;
            }
            if (idle_ns > 0 && !conn.doomed && !conn.input_closed &&
                conn.outstanding == 0 && conn.reorder.empty() &&
                sweep_now - conn.last_activity_ns >= idle_ns) {
                // Typed close: the client learns why the connection ends.
                idle_timeouts.add(1);
                {
                    const std::lock_guard<std::mutex> lock(session.mutex);
                    ++session.stats.timeouts;
                }
                std::string bye = assemble_response(
                    "", error_body(core::ErrorCategory::kTimeout,
                                   "idle timeout: no request in " +
                                       std::to_string(static_cast<long long>(
                                           opts.idle_timeout_ms)) +
                                       " ms"));
                bye += '\n';
                conn.wbuf += bye;
                conn.doomed = true;
                (void)try_write(conn);
            }
            if ((conn.doomed || conn.input_closed) && conn.drained()) {
                dead.push_back(fd);
            }
        }
        for (const int fd : dead) close_conn(fd);
    }

    // Every admitted request must deliver (their sinks post to the mailbox,
    // which is still alive) before connection state goes away.
    Server::wait_drained(session);
    // Responses that landed after the drain deadline broke the loop are
    // still in the mailbox: give each client one best-effort flush so a
    // slow drain degrades to late answers, not silently dropped ones.
    {
        std::deque<Completion> late;
        {
            const std::lock_guard<std::mutex> lock(mailbox.mutex);
            late.swap(mailbox.completions);
        }
        for (auto& c : late) {
            const auto fit = fd_by_id.find(c.conn_id);
            if (fit == fd_by_id.end()) continue;
            Connection& conn = conns.at(fit->second);
            conn.reorder.emplace(c.seq, std::move(c.line));
            flush_reorder(conn);
        }
        for (auto& [fd, conn] : conns) {
            if (conn.unsent() > 0) (void)try_write(conn);
        }
    }
    for (auto& [fd, conn] : conns) ::close(fd);
    conns.clear();
    active_gauge.set(0.0);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);

    if (stop != nullptr && stop->cancelled()) session.stats.stopped = true;
    return session.stats;
}

}  // namespace tnr::serve

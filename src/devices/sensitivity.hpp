#pragma once
// Per-mechanism neutron sensitivity models.
//
// A device's observable cross section is the sum of two physical channels:
//
//   * High-energy channel — (n,Si) spallation/recoil. Modelled with the
//     standard Weibull response used throughout the SER literature
//     (JESD89A): zero below a threshold, rising to a saturation plateau.
//
//   * Thermal channel — 10B(n,alpha)7Li capture. The cross section is the
//     10B areal density over the sensitive layers times the 1/v capture
//     cross section times the probability that a given capture's alpha/7Li
//     pair upsets a latch AND that the upset manifests as the observed
//     error type. The 10B content is exactly the quantity the paper says is
//     proprietary and only measurable by irradiation — here it is the model
//     parameter the calibration recovers.

#include "physics/spectrum.hpp"

namespace tnr::devices {

/// Cumulative-Weibull high-energy response.
class WeibullResponse {
public:
    /// sigma_sat: plateau cross section [cm^2]; threshold/width in eV;
    /// shape dimensionless. A sigma_sat of 0 makes the channel inert.
    WeibullResponse(double sigma_sat_cm2, double threshold_ev, double width_ev,
                    double shape);

    /// Default: inert channel.
    WeibullResponse() : WeibullResponse(0.0, 1.0e6, 25.0e6, 1.5) {}

    [[nodiscard]] double cross_section(double energy_ev) const;

    /// Flux-weighted average cross section over a spectrum:
    /// integral(sigma(E) phi(E) dE) / integral(phi(E) dE), both over the
    /// full support of the spectrum.
    [[nodiscard]] double folded(const physics::Spectrum& spectrum) const;

    /// Event rate per unit time under a spectrum: integral(sigma phi dE)
    /// [events/s when phi is n/cm^2/s/eV].
    [[nodiscard]] double event_rate(const physics::Spectrum& spectrum) const;

    [[nodiscard]] double sigma_sat() const noexcept { return sigma_sat_; }
    /// Returns a copy scaled by `factor` (used by calibration).
    [[nodiscard]] WeibullResponse scaled(double factor) const;

private:
    double sigma_sat_;
    double threshold_;
    double width_;
    double shape_;
};

/// 10B(n,alpha) thermal response.
class B10Response {
public:
    /// areal_density: 10B atoms per cm^2 integrated over sensitive layers;
    /// upset_probability: P(observable error of this type | capture).
    B10Response(double areal_density_cm2, double upset_probability);

    /// Default: boron-free device (immune to thermals).
    B10Response() : B10Response(0.0, 0.0) {}

    [[nodiscard]] double cross_section(double energy_ev) const;
    [[nodiscard]] double folded(const physics::Spectrum& spectrum) const;
    [[nodiscard]] double event_rate(const physics::Spectrum& spectrum) const;

    [[nodiscard]] double areal_density() const noexcept { return areal_density_; }
    [[nodiscard]] double upset_probability() const noexcept {
        return upset_probability_;
    }
    [[nodiscard]] B10Response scaled(double factor) const;

private:
    double areal_density_;
    double upset_probability_;
};

/// Weighted sum of two Weibull channels that share the catalog's shape
/// parameters (sigma_sat is the only degree of freedom): the result has
/// sigma_sat = wa * a.sigma_sat + wb * b.sigma_sat.
WeibullResponse blend(const WeibullResponse& a, const WeibullResponse& b,
                      double wa, double wb);

/// Weighted sum of two 10B channels sharing the catalog's upset-probability
/// convention: areal densities add.
B10Response blend(const B10Response& a, const B10Response& b, double wa,
                  double wb);

}  // namespace tnr::devices

#include "devices/sensitivity.hpp"

#include <cmath>
#include <stdexcept>

#include "physics/cross_sections.hpp"
#include "physics/units.hpp"

namespace tnr::devices {

namespace {

/// Log-grid trapezoid of sigma(E)*phi(E) over the spectrum's support.
template <typename SigmaFn>
double fold_rate(const physics::Spectrum& spectrum, SigmaFn&& sigma) {
    constexpr std::size_t kPanels = 3000;
    const double lo = spectrum.min_energy_ev();
    const double hi = spectrum.max_energy_ev();
    const double log_lo = std::log(lo);
    const double step = (std::log(hi) - log_lo) / static_cast<double>(kPanels);
    double sum = 0.0;
    double e_prev = lo;
    double f_prev = sigma(lo) * spectrum.flux_density(lo);
    for (std::size_t i = 1; i <= kPanels; ++i) {
        const double e = std::exp(log_lo + step * static_cast<double>(i));
        const double fe = sigma(e) * spectrum.flux_density(e);
        sum += 0.5 * (f_prev + fe) * (e - e_prev);
        e_prev = e;
        f_prev = fe;
    }
    return sum;
}

}  // namespace

// --- WeibullResponse ---------------------------------------------------------

WeibullResponse::WeibullResponse(double sigma_sat_cm2, double threshold_ev,
                                 double width_ev, double shape)
    : sigma_sat_(sigma_sat_cm2),
      threshold_(threshold_ev),
      width_(width_ev),
      shape_(shape) {
    if (sigma_sat_cm2 < 0.0 || width_ev <= 0.0 || shape <= 0.0) {
        throw std::invalid_argument("WeibullResponse: bad parameters");
    }
}

double WeibullResponse::cross_section(double energy_ev) const {
    if (sigma_sat_ == 0.0 || energy_ev <= threshold_) return 0.0;
    const double x = (energy_ev - threshold_) / width_;
    return sigma_sat_ * (1.0 - std::exp(-std::pow(x, shape_)));
}

double WeibullResponse::folded(const physics::Spectrum& spectrum) const {
    const double total = spectrum.total_flux();
    if (total <= 0.0) return 0.0;
    return event_rate(spectrum) / total;
}

double WeibullResponse::event_rate(const physics::Spectrum& spectrum) const {
    if (sigma_sat_ == 0.0) return 0.0;
    return fold_rate(spectrum, [this](double e) { return cross_section(e); });
}

WeibullResponse WeibullResponse::scaled(double factor) const {
    if (factor < 0.0) throw std::invalid_argument("WeibullResponse::scaled");
    return WeibullResponse(sigma_sat_ * factor, threshold_, width_, shape_);
}

// --- B10Response -------------------------------------------------------------

B10Response::B10Response(double areal_density_cm2, double upset_probability)
    : areal_density_(areal_density_cm2), upset_probability_(upset_probability) {
    if (areal_density_cm2 < 0.0 || upset_probability < 0.0 ||
        upset_probability > 1.0) {
        throw std::invalid_argument("B10Response: bad parameters");
    }
}

double B10Response::cross_section(double energy_ev) const {
    if (areal_density_ == 0.0 || upset_probability_ == 0.0) return 0.0;
    return areal_density_ * physics::b10_capture_barns(energy_ev) *
           physics::kBarnToCm2 * upset_probability_;
}

double B10Response::folded(const physics::Spectrum& spectrum) const {
    const double total = spectrum.total_flux();
    if (total <= 0.0) return 0.0;
    return event_rate(spectrum) / total;
}

double B10Response::event_rate(const physics::Spectrum& spectrum) const {
    if (areal_density_ == 0.0 || upset_probability_ == 0.0) return 0.0;
    return fold_rate(spectrum, [this](double e) { return cross_section(e); });
}

B10Response B10Response::scaled(double factor) const {
    if (factor < 0.0) throw std::invalid_argument("B10Response::scaled");
    return B10Response(areal_density_ * factor, upset_probability_);
}

WeibullResponse blend(const WeibullResponse& a, const WeibullResponse& b,
                      double wa, double wb) {
    if (wa < 0.0 || wb < 0.0) {
        throw std::invalid_argument("blend: negative weights");
    }
    if (a.sigma_sat() == 0.0) return b.scaled(wb);
    if (b.sigma_sat() == 0.0) return a.scaled(wa);
    // Shared shape: fold b's plateau into a's and scale.
    const double combined = wa * a.sigma_sat() + wb * b.sigma_sat();
    return a.scaled(combined / a.sigma_sat());
}

B10Response blend(const B10Response& a, const B10Response& b, double wa,
                  double wb) {
    if (wa < 0.0 || wb < 0.0) {
        throw std::invalid_argument("blend: negative weights");
    }
    if (a.areal_density() == 0.0) return b.scaled(wb);
    if (b.areal_density() == 0.0) return a.scaled(wa);
    const double combined = wa * a.areal_density() + wb * b.areal_density();
    return a.scaled(combined / a.areal_density());
}

}  // namespace tnr::devices

#include "devices/heterogeneous.hpp"

#include <cmath>
#include <stdexcept>

#include "devices/catalog.hpp"

namespace tnr::devices {

Device compose_heterogeneous(const Device& cpu, const Device& gpu,
                             double gpu_fraction, const SyncChannel& sync) {
    if (gpu_fraction < 0.0 || gpu_fraction > 1.0) {
        throw std::invalid_argument(
            "compose_heterogeneous: gpu_fraction in [0,1]");
    }
    if (sync.sigma_he_due_cm2 < 0.0 || sync.ratio_due <= 0.0) {
        throw std::invalid_argument("compose_heterogeneous: bad sync channel");
    }
    const double f = gpu_fraction;
    const double cpu_w = 1.0 - f;

    // Work-weighted blends of the two parts.
    WeibullResponse he_sdc = blend(cpu.high_energy_response(ErrorType::kSdc),
                                   gpu.high_energy_response(ErrorType::kSdc),
                                   cpu_w, f);
    B10Response th_sdc = blend(cpu.thermal_response(ErrorType::kSdc),
                               gpu.thermal_response(ErrorType::kSdc), cpu_w, f);
    WeibullResponse he_due = blend(cpu.high_energy_response(ErrorType::kDue),
                                   gpu.high_energy_response(ErrorType::kDue),
                                   cpu_w, f);
    B10Response th_due = blend(cpu.thermal_response(ErrorType::kDue),
                               gpu.thermal_response(ErrorType::kDue), cpu_w, f);

    // Synchronization machinery: active only when both sides compute.
    const double activity = 4.0 * f * (1.0 - f);
    if (activity > 0.0 && sync.sigma_he_due_cm2 > 0.0) {
        const WeibullResponse sync_he =
            standard_he_channel(sync.sigma_he_due_cm2);
        const B10Response sync_th = standard_thermal_channel(
            sync.sigma_he_due_cm2 / sync.ratio_due);
        he_due = blend(he_due, sync_he, 1.0, activity);
        th_due = blend(th_due, sync_th, 1.0, activity);
    }

    char label[64];
    std::snprintf(label, sizeof(label), " (composed, %.0f%% GPU)", 100.0 * f);
    return Device(cpu.name() + label, cpu.technology(), he_sdc, he_due, th_sdc,
                  th_due);
}

SyncChannel calibrated_apu_sync_channel() {
    const auto& cpu = spec_by_name("AMD APU (CPU)");
    const auto& gpu = spec_by_name("AMD APU (GPU)");
    const auto& both = spec_by_name("AMD APU (CPU+GPU)");

    SyncChannel sync;
    // At f = 0.5 the blend contributes A (HE) and B (thermal); the sync
    // channel contributes s and s/r; solving (A + s)/(B + s/r) = R for s:
    //   s = (R*B - A) / (1 - R/r).
    const double a =
        0.5 * (cpu.sigma_he_due_cm2 + gpu.sigma_he_due_cm2);
    const double b = 0.5 * (cpu.sigma_he_due_cm2 / *cpu.ratio_due +
                            gpu.sigma_he_due_cm2 / *gpu.ratio_due);
    const double target = *both.ratio_due;
    const double denom = 1.0 - target / sync.ratio_due;
    if (std::abs(denom) < 1e-9) {
        throw std::logic_error(
            "calibrated_apu_sync_channel: degenerate sync ratio");
    }
    sync.sigma_he_due_cm2 = (target * b - a) / denom;
    if (sync.sigma_he_due_cm2 <= 0.0) {
        throw std::logic_error(
            "calibrated_apu_sync_channel: calibration infeasible");
    }
    return sync;
}

}  // namespace tnr::devices

#include "devices/catalog.hpp"

#include <cmath>
#include <stdexcept>

#include "physics/beamline_spectra.hpp"
#include "physics/units.hpp"

namespace tnr::devices {

namespace {

/// Shared Weibull shape for the high-energy channel: threshold at 1 MeV,
/// ~40 MeV width — a typical fit for logic/SRAM in the JESD89 literature.
WeibullResponse he_channel(double sigma_sat) {
    return WeibullResponse(sigma_sat, 1.0 * physics::kMeV, 40.0 * physics::kMeV,
                           1.2);
}

/// P(observable error | 10B capture): the alpha/7Li pair must land in a
/// sensitive node with enough collected charge. A nominal 5% is consistent
/// with sensitive-volume geometry arguments; the areal density absorbs any
/// residual scale during calibration.
constexpr double kUpsetProbability = 0.05;

}  // namespace

const std::vector<DeviceSpec>& standard_specs() {
    static const std::vector<DeviceSpec> specs = {
        {"Intel Xeon Phi",
         {"22nm", TransistorType::kTriGate, "Intel"},
         2.0e-8, 1.2e-8, 10.14, 6.37, 0.08},
        {"NVIDIA K20",
         {"28nm", TransistorType::kPlanarCmos, "TSMC"},
         8.0e-8, 4.0e-8, 2.0, 3.0},
        {"NVIDIA TitanX",
         {"16nm", TransistorType::kFinFet, "TSMC"},
         5.0e-8, 2.5e-8, 3.0, 7.0},
        {"NVIDIA TitanV",
         {"12nm", TransistorType::kFinFet, "TSMC"},
         6.0e-8, 3.0e-8, 5.0, 8.0},
        {"AMD APU (CPU)",
         {"28nm", TransistorType::kPlanarCmos, "GlobalFoundries"},
         3.0e-8, 1.0e-8, 2.2, 2.0},
        {"AMD APU (GPU)",
         {"28nm", TransistorType::kPlanarCmos, "GlobalFoundries"},
         1.5e-8, 1.5e-8, 2.8, 1.3},
        {"AMD APU (CPU+GPU)",
         {"28nm", TransistorType::kPlanarCmos, "GlobalFoundries"},
         2.5e-8, 2.0e-8, 2.5, 1.18},
        {"Xilinx Zynq-7000 FPGA",
         {"28nm", TransistorType::kPlanarCmos, "TSMC"},
         1.0e-8, 2.0e-9, 2.33, std::nullopt},
    };
    return specs;
}

Device build_calibrated(const DeviceSpec& spec) {
    if (spec.sigma_he_sdc_cm2 < 0.0 || spec.sigma_he_due_cm2 < 0.0) {
        throw std::invalid_argument("build_calibrated: negative target sigma");
    }
    const auto chipir = physics::chipir_spectrum();
    const auto rotax = physics::rotax_spectrum();
    const double phi_he = physics::kChipIrHighEnergyFlux;
    const double phi_rotax = physics::kRotaxTotalFlux;

    // --- High-energy channels: scale sigma_sat so that the channel's event
    // rate at ChipIR divided by the >10 MeV flux hits the target.
    const auto calibrate_he = [&](double target) {
        if (target <= 0.0) return WeibullResponse();  // inert
        const WeibullResponse probe = he_channel(1.0e-8);
        const double reported = probe.event_rate(*chipir) / phi_he;
        return probe.scaled(target / reported);
    };

    // --- Thermal channels: scale the 10B areal density so the folded ROTAX
    // cross section equals sigma_he / ratio.
    const auto calibrate_th = [&](double sigma_he,
                                  const std::optional<double>& ratio) {
        if (!ratio.has_value() || sigma_he <= 0.0) return B10Response();
        if (*ratio <= 0.0) {
            throw std::invalid_argument("build_calibrated: ratio must be > 0");
        }
        const double target_sigma_th = sigma_he / *ratio;
        const B10Response probe(1.0e14, kUpsetProbability);
        const double reported = probe.event_rate(*rotax) / phi_rotax;
        return probe.scaled(target_sigma_th / reported);
    };

    return Device(spec.name, spec.tech, calibrate_he(spec.sigma_he_sdc_cm2),
                  calibrate_he(spec.sigma_he_due_cm2),
                  calibrate_th(spec.sigma_he_sdc_cm2, spec.ratio_sdc),
                  calibrate_th(spec.sigma_he_due_cm2, spec.ratio_due));
}

std::vector<Device> standard_catalog() {
    std::vector<Device> devices;
    devices.reserve(standard_specs().size());
    for (const auto& spec : standard_specs()) {
        devices.push_back(build_calibrated(spec));
    }
    return devices;
}

const DeviceSpec& spec_by_name(const std::string& name) {
    if (const DeviceSpec* spec = try_spec_by_name(name)) return *spec;
    throw std::out_of_range("spec_by_name: unknown device " + name);
}

const DeviceSpec* try_spec_by_name(const std::string& name) noexcept {
    for (const auto& spec : standard_specs()) {
        if (spec.name == name) return &spec;
    }
    return nullptr;
}

WeibullResponse standard_he_channel(double sigma_he_cm2) {
    if (sigma_he_cm2 == 0.0) return WeibullResponse();
    if (sigma_he_cm2 < 0.0) {
        throw std::invalid_argument("standard_he_channel: negative sigma");
    }
    const auto chipir = physics::chipir_spectrum();
    const WeibullResponse probe = he_channel(1.0e-8);
    const double reported =
        probe.event_rate(*chipir) / physics::kChipIrHighEnergyFlux;
    return probe.scaled(sigma_he_cm2 / reported);
}

B10Response standard_thermal_channel(double sigma_th_cm2) {
    if (sigma_th_cm2 == 0.0) return B10Response();
    if (sigma_th_cm2 < 0.0) {
        throw std::invalid_argument("standard_thermal_channel: negative sigma");
    }
    const auto rotax = physics::rotax_spectrum();
    const B10Response probe(1.0e14, kUpsetProbability);
    const double reported =
        probe.event_rate(*rotax) / physics::kRotaxTotalFlux;
    return probe.scaled(sigma_th_cm2 / reported);
}

const std::vector<MemoryPartSpec>& weulersse_parts() {
    // Whole-part cross sections (order 1e-7 cm^2: tens of Mbit at
    // ~1e-14 cm^2/bit), spanning the published thermal/14 MeV ratio range.
    static const std::vector<MemoryPartSpec> parts = {
        {"SRAM 65nm (boron-heavy)", 1.5e-7, 1.4},
        {"SRAM 40nm", 8.0e-8, 0.5},
        {"L2 cache array", 3.0e-8, 0.2},
        {"FPGA CLB cells", 5.0e-8, 0.03},
    };
    return parts;
}

Device build_memory_part(const MemoryPartSpec& spec) {
    if (spec.sigma_14mev_cm2 <= 0.0 || spec.thermal_to_14mev_ratio <= 0.0) {
        throw std::invalid_argument("build_memory_part: bad spec");
    }
    const auto dt14 = physics::dt14_spectrum();
    const auto rotax = physics::rotax_spectrum();

    // 14 MeV channel: scale the shared Weibull so the folded D-T sigma hits
    // the target.
    const WeibullResponse he_probe = he_channel(1.0e-13);
    const double he_reported =
        he_probe.event_rate(*dt14) / dt14->total_flux();
    const WeibullResponse he =
        he_probe.scaled(spec.sigma_14mev_cm2 / he_reported);

    // Thermal channel: sigma_th = ratio * sigma_14MeV.
    const B10Response th_probe(1.0e12, kUpsetProbability);
    const double th_reported =
        th_probe.event_rate(*rotax) / physics::kRotaxTotalFlux;
    const B10Response th = th_probe.scaled(
        spec.sigma_14mev_cm2 * spec.thermal_to_14mev_ratio / th_reported);

    return Device(spec.name,
                  {"memory", TransistorType::kPlanarCmos, "various"}, he,
                  WeibullResponse(), th, B10Response());
}

}  // namespace tnr::devices

#include "devices/ecc_policy.hpp"

#include <stdexcept>

namespace tnr::devices {

namespace {

/// Combines base + transfer * fraction for Weibull channels that share the
/// catalog's shape parameters (sigma_sat is the only degree of freedom).
WeibullResponse combine(const WeibullResponse& base,
                        const WeibullResponse& transfer, double fraction) {
    if (transfer.sigma_sat() == 0.0 || fraction == 0.0) return base;
    if (base.sigma_sat() == 0.0) return transfer.scaled(fraction);
    const double factor =
        1.0 + fraction * transfer.sigma_sat() / base.sigma_sat();
    return base.scaled(factor);
}

B10Response combine(const B10Response& base, const B10Response& transfer,
                    double fraction) {
    if (transfer.areal_density() == 0.0 || fraction == 0.0) return base;
    if (base.areal_density() == 0.0) return transfer.scaled(fraction);
    // Shared upset probability (catalog convention): densities add.
    const double factor =
        1.0 + fraction * transfer.areal_density() / base.areal_density();
    return base.scaled(factor);
}

}  // namespace

Device with_ecc(const Device& device, const EccProtection& protection) {
    const auto& p = protection;
    if (p.memory_fraction_sdc < 0.0 || p.memory_fraction_sdc > 1.0 ||
        p.memory_fraction_due < 0.0 || p.memory_fraction_due > 1.0 ||
        p.correctable_fraction < 0.0 || p.correctable_fraction > 1.0) {
        throw std::invalid_argument("with_ecc: fractions must be in [0,1]");
    }

    // Uncorrectable memory-SDC share migrates to the DUE channel.
    const double sdc_to_due = p.memory_fraction_sdc * (1.0 - p.correctable_fraction);

    const auto& he_sdc = device.high_energy_response(ErrorType::kSdc);
    const auto& he_due = device.high_energy_response(ErrorType::kDue);
    const auto& th_sdc = device.thermal_response(ErrorType::kSdc);
    const auto& th_due = device.thermal_response(ErrorType::kDue);

    return Device(device.name() + " (ECC)", device.technology(),
                  he_sdc.scaled(1.0 - p.memory_fraction_sdc),
                  combine(he_due, he_sdc, sdc_to_due),
                  th_sdc.scaled(1.0 - p.memory_fraction_sdc),
                  combine(th_due, th_sdc, sdc_to_due));
}

}  // namespace tnr::devices

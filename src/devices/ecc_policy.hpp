#pragma once
// Memory-protection (ECC) configurations for HPC devices. The paper tested
// devices "under operative configurations (i.e., protection mechanisms
// enabled)"; this model makes the mechanism explicit so it can be ablated:
//
//   * a fraction of a device's raw faults originates in ECC-protectable
//     memory structures (register files, caches, DRAM);
//   * with ECC enabled, the correctable share of those faults (single-bit)
//     is masked, and the uncorrectable share is *detected* — it stops being
//     an SDC and becomes a DUE (machine-check / retired kernel).
//
// Net effect: ECC trades silent corruption for detected errors — SDC sigma
// drops, DUE sigma rises — which is exactly what HPC operators configure
// for.

#include "devices/device.hpp"

namespace tnr::devices {

struct EccProtection {
    /// Fraction of the raw SDC channel that originates in protectable
    /// memory (typical GPU/accelerator estimates: 50-70%).
    double memory_fraction_sdc = 0.6;
    /// Same for the raw DUE channel (faults already detected by other
    /// means; ECC neither helps nor hurts them much).
    double memory_fraction_due = 0.0;
    /// Of memory faults, the share ECC corrects outright (single-bit).
    double correctable_fraction = 0.95;
};

/// Returns a device with the protection applied:
///   sigma_SDC' = sigma_SDC * (1 - mf_sdc)
///   sigma_DUE' = sigma_DUE + sigma_SDC * mf_sdc * (1 - correctable)
/// applied channel-by-channel (high-energy and thermal alike). Assumes the
/// catalog's shared Weibull shape / upset-probability conventions (true for
/// all calibrated devices).
Device with_ecc(const Device& device, const EccProtection& protection);

}  // namespace tnr::devices

#pragma once
// The device under test: identity, process technology, and the two-channel
// neutron sensitivity model for SDC and DUE outcomes.

#include <string>

#include "devices/sensitivity.hpp"
#include "physics/spectrum.hpp"

namespace tnr::devices {

/// Observable error classes (paper §II): Silent Data Corruption and
/// Detected Unrecoverable Error.
enum class ErrorType { kSdc, kDue };

const char* to_string(ErrorType t);

enum class TransistorType { kPlanarCmos, kFinFet, kTriGate };

const char* to_string(TransistorType t);

/// Process information as published for each part (paper §III.A).
struct Technology {
    std::string node;        ///< e.g. "28nm".
    TransistorType transistor = TransistorType::kPlanarCmos;
    std::string foundry;     ///< e.g. "TSMC".
};

/// A computing device with calibrated neutron sensitivity.
class Device {
public:
    Device(std::string name, Technology tech, WeibullResponse he_sdc,
           WeibullResponse he_due, B10Response th_sdc, B10Response th_due);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const Technology& technology() const noexcept { return tech_; }

    /// Differential cross section [cm^2] at a single energy, summing both
    /// channels (a high-energy beam with a thermal tail triggers both).
    [[nodiscard]] double cross_section(ErrorType type, double energy_ev) const;

    /// Flux-weighted cross section over a spectrum [cm^2].
    [[nodiscard]] double folded_cross_section(
        ErrorType type, const physics::Spectrum& spectrum) const;

    /// Error rate per second under a spectrum [errors/s].
    [[nodiscard]] double error_rate(ErrorType type,
                                    const physics::Spectrum& spectrum) const;

    /// Channel accessors (for reports and ablations).
    [[nodiscard]] const WeibullResponse& high_energy_response(ErrorType t) const;
    [[nodiscard]] const B10Response& thermal_response(ErrorType t) const;

    /// A copy with the thermal channels scaled (boron-depletion ablation:
    /// factor 0 models purified-11B manufacturing).
    [[nodiscard]] Device with_thermal_scale(double factor) const;

private:
    std::string name_;
    Technology tech_;
    WeibullResponse he_sdc_;
    WeibullResponse he_due_;
    B10Response th_sdc_;
    B10Response th_due_;
};

}  // namespace tnr::devices

#include "devices/device.hpp"

#include <stdexcept>

namespace tnr::devices {

const char* to_string(ErrorType t) {
    switch (t) {
        case ErrorType::kSdc:
            return "SDC";
        case ErrorType::kDue:
            return "DUE";
    }
    return "unknown";
}

const char* to_string(TransistorType t) {
    switch (t) {
        case TransistorType::kPlanarCmos:
            return "planar CMOS";
        case TransistorType::kFinFet:
            return "FinFET";
        case TransistorType::kTriGate:
            return "Tri-Gate";
    }
    return "unknown";
}

Device::Device(std::string name, Technology tech, WeibullResponse he_sdc,
               WeibullResponse he_due, B10Response th_sdc, B10Response th_due)
    : name_(std::move(name)),
      tech_(std::move(tech)),
      he_sdc_(he_sdc),
      he_due_(he_due),
      th_sdc_(th_sdc),
      th_due_(th_due) {
    if (name_.empty()) throw std::invalid_argument("Device: empty name");
}

double Device::cross_section(ErrorType type, double energy_ev) const {
    const auto& he = (type == ErrorType::kSdc) ? he_sdc_ : he_due_;
    const auto& th = (type == ErrorType::kSdc) ? th_sdc_ : th_due_;
    return he.cross_section(energy_ev) + th.cross_section(energy_ev);
}

double Device::folded_cross_section(ErrorType type,
                                    const physics::Spectrum& spectrum) const {
    const double total = spectrum.total_flux();
    if (total <= 0.0) return 0.0;
    return error_rate(type, spectrum) / total;
}

double Device::error_rate(ErrorType type,
                          const physics::Spectrum& spectrum) const {
    const auto& he = (type == ErrorType::kSdc) ? he_sdc_ : he_due_;
    const auto& th = (type == ErrorType::kSdc) ? th_sdc_ : th_due_;
    return he.event_rate(spectrum) + th.event_rate(spectrum);
}

const WeibullResponse& Device::high_energy_response(ErrorType t) const {
    return (t == ErrorType::kSdc) ? he_sdc_ : he_due_;
}

const B10Response& Device::thermal_response(ErrorType t) const {
    return (t == ErrorType::kSdc) ? th_sdc_ : th_due_;
}

Device Device::with_thermal_scale(double factor) const {
    return Device(name_, tech_, he_sdc_, he_due_, th_sdc_.scaled(factor),
                  th_due_.scaled(factor));
}

}  // namespace tnr::devices

#pragma once
// Heterogeneous (CPU+GPU) composition — the paper's APU observation made
// predictive. The APU was tested in three configurations: CPU-only,
// GPU-only, and CPU+GPU with the work split 50/50. The striking result is
// the CPU+GPU *DUE* ratio of 1.18 — worse (closer to 1) than either part
// alone — which the paper attributes to "the mechanism responsible for
// communication and synchronism between CPU and GPU" being particularly
// thermal-sensitive.
//
// Model: a composed device is the work-weighted blend of the two parts plus
// a synchronization channel that only exists when both sides are active —
// its strength scales as 4 f (1-f) (zero at either pure configuration,
// maximal at the 50/50 split), and its thermal ratio is near 1 (sync logic
// is the boron-heavy structure).

#include "devices/device.hpp"

namespace tnr::devices {

/// The synchronization channel's parameters.
struct SyncChannel {
    /// DUE cross section of the fully-active (f=0.5) sync machinery at
    /// ChipIR [cm^2].
    double sigma_he_due_cm2 = 1.0e-8;
    /// HE/thermal ratio of the sync logic — near 1 per the paper.
    double ratio_due = 1.05;
};

/// Composes CPU-only and GPU-only calibrated devices into the predicted
/// device for a workload placing `gpu_fraction` of the work on the GPU.
/// gpu_fraction = 0 reproduces `cpu`; 1 reproduces `gpu`; in between the
/// blend plus the 4f(1-f)-scaled sync channel.
Device compose_heterogeneous(const Device& cpu, const Device& gpu,
                             double gpu_fraction,
                             const SyncChannel& sync = {});

/// The sync channel calibrated so that compose_heterogeneous(cpu, gpu, 0.5)
/// reproduces the catalog's "AMD APU (CPU+GPU)" DUE ratio (1.18): solves
/// for sigma and uses the spec's published ratios.
SyncChannel calibrated_apu_sync_channel();

}  // namespace tnr::devices

#pragma once
// The paper's device roster (§III.A) with sensitivities calibrated so that a
// simulated ChipIR + ROTAX campaign reproduces the published high-energy /
// thermal cross-section ratios (Fig. 5):
//
//   device        SDC ratio   DUE ratio   note
//   Xeon Phi        10.14        6.37     little/depleted boron
//   NVIDIA K20      ~2           ~3       planar CMOS, lots of 10B
//   NVIDIA TitanX   ~3           ~7       FinFET
//   NVIDIA TitanV   ~5           ~8       FinFET (companion-paper trend)
//   APU (CPU)       ~2.2         ~2.0
//   APU (GPU)       ~2.8         ~1.3     CPU-GPU sync logic thermal-weak
//   APU (CPU+GPU)   ~2.5         ~1.18    worst DUE ratio in the study
//   FPGA (Zynq)      2.33         —       DUEs never observed at beam
//
// Absolute cross sections are nominal (the paper normalizes to protect
// business-sensitive data); only ratios and orderings are calibration
// targets.

#include <optional>
#include <string>
#include <vector>

#include "devices/device.hpp"

namespace tnr::devices {

/// Specification for one calibrated device.
struct DeviceSpec {
    std::string name;
    Technology tech;
    /// Target high-energy cross sections as reported at ChipIR, i.e.
    /// (HE-channel events) / (>10 MeV fluence) [cm^2].
    double sigma_he_sdc_cm2 = 0.0;
    double sigma_he_due_cm2 = 0.0;
    /// Target Fig.-5 ratios sigma_HE / sigma_thermal. nullopt means the
    /// thermal channel is absent (no thermal errors of this type observed).
    std::optional<double> ratio_sdc;
    std::optional<double> ratio_due;
    /// How much of the code-to-code SDC variation survives in the thermal
    /// channel (companion study: on the Xeon Phi the HE SDC cross section
    /// varies >2x across codes while the thermal one varies <20%, hinting
    /// that the 10B sits outside the structures that drive the HE
    /// variation). 1.0 = thermal tracks HE fully; 0 = thermal flat.
    double thermal_sdc_code_damping = 1.0;
};

/// The paper's roster with calibration targets.
const std::vector<DeviceSpec>& standard_specs();

/// Builds a Device whose channels are numerically calibrated against the
/// ChipIR and ROTAX reference spectra so that:
///   * HE channel event rate / Phi_ChipIR(>10 MeV) == sigma_he target;
///   * total ROTAX event rate / Phi_ROTAX == sigma_he / ratio.
Device build_calibrated(const DeviceSpec& spec);

/// All devices of the roster, calibrated.
std::vector<Device> standard_catalog();

/// Look up a spec by device name (exact match); throws if absent.
const DeviceSpec& spec_by_name(const std::string& name);

/// Non-throwing lookup: nullptr when the device is not in the roster.
const DeviceSpec* try_spec_by_name(const std::string& name) noexcept;

/// A memory part of the Weulersse et al. comparison (related work §II):
/// SRAMs, caches and CLB cells whose thermal sensitivity spans 1.4x down to
/// 0.03x their 14 MeV sensitivity.
struct MemoryPartSpec {
    std::string name;
    /// Sensitivity at a D-T 14 MeV generator [cm^2] (per device, SDC).
    double sigma_14mev_cm2 = 0.0;
    /// sigma_thermal / sigma_14MeV — the published comparison metric.
    double thermal_to_14mev_ratio = 0.0;
};

/// The published range of parts: ratios 1.4, 0.5, 0.2, 0.03.
const std::vector<MemoryPartSpec>& weulersse_parts();

/// A high-energy channel with the catalog's shared Weibull shape and the
/// given ChipIR-reported cross section [cm^2] (for building custom devices
/// compatible with blend()/with_ecc()).
WeibullResponse standard_he_channel(double sigma_he_cm2);

/// A 10B channel calibrated to report `sigma_th_cm2` at ROTAX.
B10Response standard_thermal_channel(double sigma_th_cm2);

/// Builds a memory part calibrated against the D-T and ROTAX spectra
/// (SDC channel only; raw memories have no DUE channel of their own).
Device build_memory_part(const MemoryPartSpec& spec);

}  // namespace tnr::devices

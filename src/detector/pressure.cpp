#include "detector/pressure.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tnr::detector {

std::vector<double> random_walk_pressure(std::size_t bins, double base_hpa,
                                         double step_sigma_hpa,
                                         stats::Rng& rng) {
    if (bins == 0 || base_hpa <= 0.0 || step_sigma_hpa < 0.0) {
        throw std::invalid_argument("random_walk_pressure: bad arguments");
    }
    std::vector<double> out(bins);
    double p = base_hpa;
    for (std::size_t i = 0; i < bins; ++i) {
        p += rng.normal(0.0, step_sigma_hpa);
        // Weak mean reversion keeps the walk within meteorological bounds.
        p += 0.02 * (base_hpa - p);
        out[i] = p;
    }
    return out;
}

std::vector<double> pressure_front(std::size_t bins, double base_hpa,
                                   double delta_hpa, std::size_t front_bin,
                                   stats::Rng& rng) {
    if (bins == 0 || front_bin > bins) {
        throw std::invalid_argument("pressure_front: bad arguments");
    }
    std::vector<double> out(bins);
    for (std::size_t i = 0; i < bins; ++i) {
        out[i] = base_hpa + (i >= front_bin ? delta_hpa : 0.0) +
                 rng.normal(0.0, 0.3);
    }
    return out;
}

Tin2Recording apply_pressure_modulation(const Tin2Recording& recording,
                                        std::span<const double> pressure_hpa,
                                        double beta, stats::Rng& rng) {
    if (pressure_hpa.size() != recording.bare.size()) {
        throw std::invalid_argument(
            "apply_pressure_modulation: series length mismatch");
    }
    Tin2Recording out{
        stats::CountTimeSeries(recording.bare.t0_s(),
                               recording.bare.bin_width_s()),
        stats::CountTimeSeries(recording.shielded.t0_s(),
                               recording.shielded.bin_width_s()),
        recording.phase_start_bins};
    for (std::size_t i = 0; i < recording.bare.size(); ++i) {
        const double factor =
            std::exp(-beta * (pressure_hpa[i] - kReferencePressure));
        out.bare.append(rng.poisson(
            static_cast<double>(recording.bare.count(i)) * factor));
        out.shielded.append(rng.poisson(
            static_cast<double>(recording.shielded.count(i)) * factor));
    }
    return out;
}

std::vector<std::uint64_t> pressure_corrected_counts(
    const stats::CountTimeSeries& series, std::span<const double> pressure_hpa,
    double beta) {
    if (pressure_hpa.size() != series.size()) {
        throw std::invalid_argument(
            "pressure_corrected_counts: series length mismatch");
    }
    std::vector<std::uint64_t> out(series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
        const double factor =
            std::exp(beta * (pressure_hpa[i] - kReferencePressure));
        out[i] = static_cast<std::uint64_t>(
            std::llround(static_cast<double>(series.count(i)) * factor));
    }
    return out;
}

}  // namespace tnr::detector

#include "detector/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tnr::detector {

double thermal_rate(const Tin2Recording& recording, std::size_t lo,
                    std::size_t hi) {
    if (lo >= hi || hi > recording.bare.size()) {
        throw std::out_of_range("thermal_rate: bad range");
    }
    const auto bare = recording.bare.total(lo, hi);
    const auto shielded = recording.shielded.total(lo, hi);
    const double net = static_cast<double>(bare) - static_cast<double>(shielded);
    const double seconds =
        recording.bare.bin_width_s() * static_cast<double>(hi - lo);
    return std::max(0.0, net) / seconds;
}

std::optional<StepAnalysis> analyze_step(const Tin2Recording& recording,
                                         std::size_t min_segment_bins) {
    if (recording.bare.size() != recording.shielded.size() ||
        recording.bare.empty()) {
        throw std::invalid_argument("analyze_step: malformed recording");
    }
    // Difference series, clamped at zero (counts cannot go negative).
    std::vector<std::uint64_t> diff(recording.bare.size());
    for (std::size_t i = 0; i < diff.size(); ++i) {
        const auto b = static_cast<std::int64_t>(recording.bare.count(i));
        const auto s = static_cast<std::int64_t>(recording.shielded.count(i));
        diff[i] = static_cast<std::uint64_t>(std::max<std::int64_t>(0, b - s));
    }

    const auto cp = stats::detect_single_changepoint(diff, min_segment_bins);
    if (!cp.has_value()) return std::nullopt;

    StepAnalysis out;
    out.change_bin = cp->index;
    const double bin_s = recording.bare.bin_width_s();
    out.thermal_rate_before = cp->rate_before / bin_s;
    out.thermal_rate_after = cp->rate_after / bin_s;
    out.relative_step = cp->relative_step();

    // CI on the ratio of the two segment rates, propagated to the step.
    const std::size_t n = diff.size();
    std::uint64_t before = 0;
    std::uint64_t after = 0;
    for (std::size_t i = 0; i < cp->index; ++i) before += diff[i];
    for (std::size_t i = cp->index; i < n; ++i) after += diff[i];
    const auto ratio = stats::poisson_rate_ratio(
        after, static_cast<double>(n - cp->index), before,
        static_cast<double>(cp->index));
    out.step_ci = {ratio.ci.lower - 1.0, ratio.ci.upper - 1.0};
    return out;
}

}  // namespace tnr::detector

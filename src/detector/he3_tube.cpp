#include "detector/he3_tube.hpp"

#include <cmath>
#include <stdexcept>

#include "physics/cross_sections.hpp"
#include "physics/units.hpp"

namespace tnr::detector {

namespace {
/// Loschmidt-like number density of an ideal gas at 1 atm, 273 K [1/cm^3].
constexpr double kIdealGasDensity0 = 2.6868e19;
}

He3Tube::He3Tube(He3TubeConfig config) : config_(config) {
    if (config.length_cm <= 0.0 || config.diameter_cm <= 0.0 ||
        config.pressure_atm <= 0.0 || config.temperature_k <= 0.0) {
        throw std::invalid_argument("He3Tube: bad geometry");
    }
}

double He3Tube::helium_density() const {
    return kIdealGasDensity0 * config_.pressure_atm *
           (273.15 / config_.temperature_k);
}

double He3Tube::intrinsic_efficiency(double energy_ev) const {
    const double sigma =
        physics::he3_capture_barns(energy_ev) * physics::kBarnToCm2;
    return 1.0 - std::exp(-helium_density() * sigma * config_.diameter_cm);
}

double He3Tube::folded_efficiency(const physics::Spectrum& spectrum) const {
    // Flux-weighted efficiency on a log grid over the spectrum support.
    constexpr std::size_t kPanels = 800;
    const double lo = spectrum.min_energy_ev();
    const double hi = spectrum.max_energy_ev();
    const double log_lo = std::log(lo);
    const double step = (std::log(hi) - log_lo) / static_cast<double>(kPanels);
    double num = 0.0;
    double den = 0.0;
    double e_prev = lo;
    double fe_prev = spectrum.flux_density(lo);
    double ne_prev = fe_prev * intrinsic_efficiency(lo);
    for (std::size_t i = 1; i <= kPanels; ++i) {
        const double e = std::exp(log_lo + step * static_cast<double>(i));
        const double fe = spectrum.flux_density(e);
        const double ne = fe * intrinsic_efficiency(e);
        den += 0.5 * (fe_prev + fe) * (e - e_prev);
        num += 0.5 * (ne_prev + ne) * (e - e_prev);
        e_prev = e;
        fe_prev = fe;
        ne_prev = ne;
    }
    return den > 0.0 ? num / den : 0.0;
}

double He3Tube::sensitive_area() const {
    return config_.length_cm * config_.diameter_cm;
}

double He3Tube::count_rate(double thermal_flux, double background_flux) const {
    if (thermal_flux < 0.0 || background_flux < 0.0) {
        throw std::invalid_argument("He3Tube: negative flux");
    }
    // Thermal channel at the Maxwellian-average efficiency; background at
    // the flat plateau efficiency.
    const double thermal_rate = thermal_flux * sensitive_area() *
                                intrinsic_efficiency(physics::kThermalReferenceEv);
    const double background_rate =
        background_flux * sensitive_area() * config_.background_efficiency;
    return thermal_rate + background_rate;
}

}  // namespace tnr::detector

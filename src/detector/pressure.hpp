#pragma once
// Barometric-pressure correction for neutron counters. Ground-level neutron
// count rates anti-correlate with atmospheric pressure (more air overhead =
// more absorption; the standard correction is exp(beta * (P - P0)) with
// beta ~ 0.7%/hPa). A weather front passing during a deployment produces a
// sustained rate shift that looks exactly like a materials step — the
// false-positive the Tin-II analysis must rule out before attributing a
// step to the water box.

#include <span>
#include <vector>

#include "detector/tin2.hpp"
#include "stats/rng.hpp"
#include "stats/timeseries.hpp"

namespace tnr::detector {

/// Standard barometric coefficient for thermal-neutron counters [1/hPa].
inline constexpr double kPressureBeta = 0.007;

/// Reference (station) pressure [hPa].
inline constexpr double kReferencePressure = 1013.25;

/// A bounded random-walk pressure series [hPa], one value per bin.
std::vector<double> random_walk_pressure(std::size_t bins, double base_hpa,
                                         double step_sigma_hpa,
                                         stats::Rng& rng);

/// A pressure series with a sustained front: `base` before `front_bin`,
/// `base + delta` from there on (plus small jitter).
std::vector<double> pressure_front(std::size_t bins, double base_hpa,
                                   double delta_hpa, std::size_t front_bin,
                                   stats::Rng& rng);

/// Applies barometric modulation to a recording: each bin's counts are
/// re-sampled as Poisson(counts * exp(-beta * (P - P0))) for both tubes.
/// (The compounding of two Poisson stages slightly overdisperses — fine for
/// methodology work, and conservative for the changepoint test.)
Tin2Recording apply_pressure_modulation(const Tin2Recording& recording,
                                        std::span<const double> pressure_hpa,
                                        double beta, stats::Rng& rng);

/// The correction the analyst applies: counts scaled by
/// exp(+beta * (P - P0)) and rounded, ready for changepoint detection.
std::vector<std::uint64_t> pressure_corrected_counts(
    const stats::CountTimeSeries& series, std::span<const double> pressure_hpa,
    double beta);

}  // namespace tnr::detector

#pragma once
// Tin-II: two identical 3He tubes, one bare and one wrapped in cadmium.
// Cadmium blocks thermal neutrons (its 0.5 eV absorption edge) while passing
// everything else, so
//
//   bare     counts = thermal + other radiation
//   shielded counts = thermal * T_Cd (~0) + other radiation
//   bare - shielded ~= the thermal neutron signal.
//
// The simulator produces hourly count time series over a multi-day deployment
// with a configurable environment schedule (e.g. "2 inches of water placed
// over the detector on April 20th"), which the analysis pipeline must
// recover — the Fig. 6 experiment end to end.

#include <string>
#include <vector>

#include "detector/he3_tube.hpp"
#include "stats/rng.hpp"
#include "stats/timeseries.hpp"

namespace tnr::detector {

/// A period of constant environment during the deployment.
struct SchedulePhase {
    std::string label;            ///< e.g. "baseline", "water over detector".
    double duration_s = 0.0;
    double thermal_flux = 0.0;    ///< [n/cm^2/s] at the detector.
    double background_flux = 0.0; ///< non-thermal ambient [events/cm^2/s].
};

struct Tin2Config {
    He3TubeConfig tube{};
    double cd_thickness_cm = 0.05;  ///< 0.5 mm cadmium wrap.
    double bin_width_s = 3600.0;    ///< hourly bins, as in Fig. 6.
};

/// Both tubes' binned counts for a deployment.
struct Tin2Recording {
    stats::CountTimeSeries bare;
    stats::CountTimeSeries shielded;
    /// Bin index at which each phase starts (parallel to the schedule).
    std::vector<std::size_t> phase_start_bins;
};

class Tin2Detector {
public:
    explicit Tin2Detector(Tin2Config config = {});

    /// Thermal transmission of the cadmium wrap (Maxwellian-folded
    /// narrow-beam attenuation) — essentially zero for real Cd thicknesses.
    [[nodiscard]] double cadmium_thermal_transmission() const;

    /// Simulates a deployment over the schedule.
    [[nodiscard]] Tin2Recording record(const std::vector<SchedulePhase>& schedule,
                                       stats::Rng& rng) const;

    /// Expected bare/shielded rates in one phase [counts/s].
    [[nodiscard]] double expected_bare_rate(const SchedulePhase& phase) const;
    [[nodiscard]] double expected_shielded_rate(const SchedulePhase& phase) const;

    [[nodiscard]] const He3Tube& tube() const noexcept { return tube_; }

private:
    Tin2Config config_;
    He3Tube tube_;
    double cd_transmission_;
};

/// The Fig.-6 deployment: `baseline_days` of data-center background, then
/// `water_days` with 2 inches of water over the detector raising the thermal
/// flux by `water_boost` (the paper measured +24%).
std::vector<SchedulePhase> fig6_schedule(double baseline_days = 4.0,
                                         double water_days = 3.0,
                                         double thermal_flux = 4.0 / 3600.0,
                                         double water_boost = 0.24);

}  // namespace tnr::detector

#pragma once
// A 3He proportional counter tube — the sensing element of Tin-II (§III.D).
// Thermal neutrons convert via 3He(n,p)3H (5330 b at 25.3 meV, 1/v); the
// charged products are counted. Gammas/betas/fast neutrons produce a small
// flat background identical for a bare and a shielded tube, which is why
// the bare-minus-shielded difference isolates the thermal component.

#include "physics/spectrum.hpp"

namespace tnr::detector {

struct He3TubeConfig {
    double length_cm = 30.0;
    double diameter_cm = 2.54;
    double pressure_atm = 4.0;
    double temperature_k = 293.0;
    /// Counting efficiency for non-thermal radiation (gammas, fast n) per
    /// unit ambient rate — a small, energy-independent plateau.
    double background_efficiency = 0.01;
};

class He3Tube {
public:
    explicit He3Tube(He3TubeConfig config = {});

    /// 3He number density [atoms/cm^3].
    [[nodiscard]] double helium_density() const;

    /// Intrinsic detection efficiency for a neutron of energy E crossing the
    /// tube diameter: 1 - exp(-N * sigma(E) * d).
    [[nodiscard]] double intrinsic_efficiency(double energy_ev) const;

    /// Efficiency folded over a spectrum (flux-weighted).
    [[nodiscard]] double folded_efficiency(const physics::Spectrum& spectrum) const;

    /// Projected sensitive area [cm^2] (length x diameter).
    [[nodiscard]] double sensitive_area() const;

    /// Count rate [counts/s] for a thermal flux [n/cm^2/s] through the tube
    /// plus an ambient non-thermal rate [events/cm^2/s].
    [[nodiscard]] double count_rate(double thermal_flux,
                                    double background_flux) const;

    [[nodiscard]] const He3TubeConfig& config() const noexcept { return config_; }

private:
    He3TubeConfig config_;
};

}  // namespace tnr::detector

#pragma once
// Analysis pipeline for Tin-II recordings: difference the bare and shielded
// tubes to isolate the thermal signal, locate the step (water placement),
// and quantify the flux change — recovering the paper's "+24% when water is
// placed over the detector" (Fig. 6).

#include <optional>

#include "detector/tin2.hpp"
#include "stats/changepoint.hpp"
#include "stats/poisson.hpp"

namespace tnr::detector {

/// Result of the step analysis on a recording.
struct StepAnalysis {
    /// Index of the first bin of the "after" regime.
    std::size_t change_bin = 0;
    /// Thermal count rate before/after [counts/s], from the differenced
    /// (bare - shielded) series.
    double thermal_rate_before = 0.0;
    double thermal_rate_after = 0.0;
    /// Fractional step (+0.24 for a 24% increase).
    double relative_step = 0.0;
    /// Approximate 95% CI on the relative step (propagated Poisson).
    stats::Interval step_ci;
};

/// Runs changepoint detection on the thermal difference series. Returns
/// nullopt when no significant step exists.
std::optional<StepAnalysis> analyze_step(const Tin2Recording& recording,
                                         std::size_t min_segment_bins = 6);

/// Mean thermal count rate [counts/s] of a recording over bins [lo, hi),
/// from the bare-minus-shielded difference.
double thermal_rate(const Tin2Recording& recording, std::size_t lo,
                    std::size_t hi);

}  // namespace tnr::detector

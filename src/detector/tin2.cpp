#include "detector/tin2.hpp"

#include <cmath>
#include <stdexcept>

#include "physics/materials.hpp"
#include "physics/spectrum.hpp"
#include "physics/transport.hpp"
#include "physics/units.hpp"

namespace tnr::detector {

Tin2Detector::Tin2Detector(Tin2Config config)
    : config_(config), tube_(config.tube) {
    if (config.cd_thickness_cm <= 0.0 || config.bin_width_s <= 0.0) {
        throw std::invalid_argument("Tin2Detector: bad config");
    }
    // Fold the narrow-beam Cd transmission over a room-temperature
    // Maxwellian: integral(phi(E) exp(-Sigma(E) t) dE) / Phi.
    const physics::SlabTransport cd(physics::Material::cadmium(),
                                    config.cd_thickness_cm);
    const physics::MaxwellianSpectrum maxwellian(1.0,
                                                 physics::kThermalReferenceEv);
    constexpr std::size_t kPanels = 400;
    const double lo = maxwellian.min_energy_ev();
    const double hi = maxwellian.max_energy_ev();
    const double log_lo = std::log(lo);
    const double step = (std::log(hi) - log_lo) / static_cast<double>(kPanels);
    double num = 0.0;
    double den = 0.0;
    double e_prev = lo;
    double f_prev = maxwellian.flux_density(lo);
    double t_prev = f_prev * cd.analytic_transmission(lo);
    for (std::size_t i = 1; i <= kPanels; ++i) {
        const double e = std::exp(log_lo + step * static_cast<double>(i));
        const double f = maxwellian.flux_density(e);
        const double t = f * cd.analytic_transmission(e);
        den += 0.5 * (f_prev + f) * (e - e_prev);
        num += 0.5 * (t_prev + t) * (e - e_prev);
        e_prev = e;
        f_prev = f;
        t_prev = t;
    }
    cd_transmission_ = (den > 0.0) ? num / den : 0.0;
}

double Tin2Detector::cadmium_thermal_transmission() const {
    return cd_transmission_;
}

double Tin2Detector::expected_bare_rate(const SchedulePhase& phase) const {
    return tube_.count_rate(phase.thermal_flux, phase.background_flux);
}

double Tin2Detector::expected_shielded_rate(const SchedulePhase& phase) const {
    return tube_.count_rate(phase.thermal_flux * cd_transmission_,
                            phase.background_flux);
}

Tin2Recording Tin2Detector::record(const std::vector<SchedulePhase>& schedule,
                                   stats::Rng& rng) const {
    if (schedule.empty()) {
        throw std::invalid_argument("Tin2Detector: empty schedule");
    }
    Tin2Recording rec{stats::CountTimeSeries(0.0, config_.bin_width_s),
                      stats::CountTimeSeries(0.0, config_.bin_width_s),
                      {}};
    for (const auto& phase : schedule) {
        if (phase.duration_s <= 0.0) {
            throw std::invalid_argument("Tin2Detector: bad phase duration");
        }
        rec.phase_start_bins.push_back(rec.bare.size());
        const auto bins =
            static_cast<std::size_t>(phase.duration_s / config_.bin_width_s);
        const double bare_mean = expected_bare_rate(phase) * config_.bin_width_s;
        const double shielded_mean =
            expected_shielded_rate(phase) * config_.bin_width_s;
        for (std::size_t b = 0; b < bins; ++b) {
            rec.bare.append(rng.poisson(bare_mean));
            rec.shielded.append(rng.poisson(shielded_mean));
        }
    }
    return rec;
}

std::vector<SchedulePhase> fig6_schedule(double baseline_days,
                                         double water_days,
                                         double thermal_flux,
                                         double water_boost) {
    if (baseline_days <= 0.0 || water_days <= 0.0 || thermal_flux <= 0.0) {
        throw std::invalid_argument("fig6_schedule: bad parameters");
    }
    constexpr double kDay = 86400.0;
    // Non-thermal ambient (gammas, fast neutrons): a steady plateau around
    // half the thermal signal at the plateau efficiency.
    const double background = 50.0 * thermal_flux;
    return {
        {"baseline (data-center background)", baseline_days * kDay,
         thermal_flux, background},
        {"2 inches of water over detector", water_days * kDay,
         thermal_flux * (1.0 + water_boost), background},
    };
}

}  // namespace tnr::detector

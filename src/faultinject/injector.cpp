#include "faultinject/injector.hpp"

#include <stdexcept>

namespace tnr::faultinject {

const char* to_string(Outcome o) {
    switch (o) {
        case Outcome::kMasked:
            return "masked";
        case Outcome::kSdc:
            return "SDC";
        case Outcome::kDueCrash:
            return "DUE(crash)";
        case Outcome::kDueHang:
            return "DUE(hang)";
    }
    return "unknown";
}

FaultInjector::FaultInjector(std::uint64_t seed) : rng_(seed) {}

InjectionRecord FaultInjector::inject_once(workloads::Workload& w) {
    w.reset();
    auto segments = w.segments();
    if (segments.empty()) {
        throw std::logic_error("FaultInjector: workload exposes no state");
    }
    std::size_t total = 0;
    for (const auto& s : segments) total += s.bytes.size();
    if (total == 0) {
        throw std::logic_error("FaultInjector: workload state is empty");
    }

    // Uniform byte across all segments, then a uniform bit.
    std::size_t target = rng_.uniform_index(total);
    InjectionRecord record;
    for (const auto& s : segments) {
        if (target < s.bytes.size()) {
            record.segment = std::string(s.name);
            record.byte_offset = target;
            record.bit = static_cast<std::uint8_t>(rng_.uniform_index(8));
            s.bytes[target] ^= static_cast<std::byte>(1u << record.bit);
            break;
        }
        target -= s.bytes.size();
    }
    return execute_and_classify(w, std::move(record));
}

InjectionRecord FaultInjector::inject_at(workloads::Workload& w,
                                         std::size_t segment_index,
                                         std::size_t byte_offset,
                                         std::uint8_t bit) {
    w.reset();
    auto segments = w.segments();
    if (segment_index >= segments.size()) {
        throw std::out_of_range("FaultInjector::inject_at: bad segment");
    }
    auto& seg = segments[segment_index];
    if (byte_offset >= seg.bytes.size() || bit >= 8) {
        throw std::out_of_range("FaultInjector::inject_at: bad byte/bit");
    }
    InjectionRecord record;
    record.segment = std::string(seg.name);
    record.byte_offset = byte_offset;
    record.bit = bit;
    seg.bytes[byte_offset] ^= static_cast<std::byte>(1u << bit);
    return execute_and_classify(w, std::move(record));
}

InjectionRecord FaultInjector::execute_and_classify(workloads::Workload& w,
                                                    InjectionRecord record) {
    try {
        w.run();
    } catch (const workloads::WorkloadFailure& failure) {
        record.outcome = failure.kind() == workloads::WorkloadFailure::Kind::kHang
                             ? Outcome::kDueHang
                             : Outcome::kDueCrash;
        record.severity = workloads::SdcSeverity::kNone;
        return record;
    }
    record.severity = w.severity();
    record.outcome = (record.severity == workloads::SdcSeverity::kNone)
                         ? Outcome::kMasked
                         : Outcome::kSdc;
    return record;
}

}  // namespace tnr::faultinject

#include "faultinject/avf.hpp"

#include <stdexcept>

#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/parallel/parallel_for.hpp"

namespace tnr::faultinject {

void AvfResult::merge(const AvfResult& other) {
    trials += other.trials;
    masked += other.masked;
    sdc += other.sdc;
    sdc_critical += other.sdc_critical;
    due_crash += other.due_crash;
    due_hang += other.due_hang;
    for (const auto& [segment, count] : other.sdc_by_segment) {
        sdc_by_segment[segment] += count;
    }
}

namespace {

/// One worker's share of the trials: fresh workload instance, injector on
/// the worker's RNG stream.
AvfResult run_trials(const workloads::SuiteEntry& entry, std::size_t trials,
                     stats::Rng& rng) {
    auto workload = entry.make();
    FaultInjector injector(rng);
    AvfResult result;
    result.trials = trials;
    for (std::size_t t = 0; t < trials; ++t) {
        const InjectionRecord rec = injector.inject_once(*workload);
        switch (rec.outcome) {
            case Outcome::kMasked:
                ++result.masked;
                break;
            case Outcome::kSdc:
                ++result.sdc;
                ++result.sdc_by_segment[rec.segment];
                if (rec.severity == workloads::SdcSeverity::kCritical) {
                    ++result.sdc_critical;
                }
                break;
            case Outcome::kDueCrash:
                ++result.due_crash;
                break;
            case Outcome::kDueHang:
                ++result.due_hang;
                break;
        }
    }
    return result;
}

}  // namespace

AvfResult measure_avf(const workloads::SuiteEntry& entry, std::size_t trials,
                      std::uint64_t seed, unsigned threads) {
    if (trials == 0) throw std::invalid_argument("measure_avf: zero trials");
    const core::obs::Span span("avf:" + entry.name, "avf");
    static auto& trials_counter =
        core::obs::Registry::global().counter("avf.trials");
    static auto& runs_counter = core::obs::Registry::global().counter("avf.runs");
    trials_counter.add(trials);
    runs_counter.add(1);
    stats::Rng rng(seed);
    AvfResult result = core::parallel::parallel_for_reduce<AvfResult>(
        trials, threads, rng,
        [&entry](std::uint64_t, std::uint64_t count, stats::Rng& stream) {
            return run_trials(entry, count, stream);
        },
        [](AvfResult& acc, const AvfResult& p) { acc.merge(p); });
    result.workload = entry.name;
    return result;
}

VulnerabilityTable VulnerabilityTable::measure(
    const std::vector<workloads::SuiteEntry>& suite,
    std::size_t trials_per_workload, std::uint64_t seed, unsigned threads) {
    if (suite.empty()) {
        throw std::invalid_argument("VulnerabilityTable: empty suite");
    }
    const core::obs::Span span("avf.vulnerability_table", "avf");
    VulnerabilityTable table;
    // Per-entry seeds match the historical serial walk (seed+1, seed+2, ...)
    // and each entry's trials run serially, so the table is independent of
    // the thread count.
    table.results_ = core::parallel::parallel_map<AvfResult>(
        suite.size(), threads, [&suite, seed, trials_per_workload](std::size_t i) {
            return measure_avf(suite[i], trials_per_workload,
                               seed + 1 + static_cast<std::uint64_t>(i),
                               /*threads=*/1);
        });
    double sdc_sum = 0.0;
    double due_sum = 0.0;
    for (const auto& r : table.results_) {
        sdc_sum += r.avf_sdc();
        due_sum += r.avf_due();
    }
    const auto n = static_cast<double>(suite.size());
    const double sdc_mean = sdc_sum / n;
    const double due_mean = due_sum / n;
    for (const auto& r : table.results_) {
        // Degenerate suites (a workload that never SDCs/DUEs) fall back to
        // weight 1 rather than dividing by zero.
        table.sdc_weights_[r.workload] =
            (sdc_mean > 0.0) ? r.avf_sdc() / sdc_mean : 1.0;
        table.due_weights_[r.workload] =
            (due_mean > 0.0) ? r.avf_due() / due_mean : 1.0;
    }
    return table;
}

VulnerabilityTable VulnerabilityTable::uniform(
    const std::vector<workloads::SuiteEntry>& suite) {
    VulnerabilityTable table;
    for (const auto& entry : suite) {
        table.sdc_weights_[entry.name] = 1.0;
        table.due_weights_[entry.name] = 1.0;
    }
    return table;
}

double VulnerabilityTable::sdc_weight(const std::string& workload) const {
    const auto it = sdc_weights_.find(workload);
    if (it == sdc_weights_.end()) {
        throw std::out_of_range("VulnerabilityTable: unknown workload " +
                                workload);
    }
    return it->second;
}

double VulnerabilityTable::due_weight(const std::string& workload) const {
    const auto it = due_weights_.find(workload);
    if (it == due_weights_.end()) {
        throw std::out_of_range("VulnerabilityTable: unknown workload " +
                                workload);
    }
    return it->second;
}

}  // namespace tnr::faultinject

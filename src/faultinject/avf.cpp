#include "faultinject/avf.hpp"

#include <stdexcept>

namespace tnr::faultinject {

AvfResult measure_avf(const workloads::SuiteEntry& entry, std::size_t trials,
                      std::uint64_t seed) {
    if (trials == 0) throw std::invalid_argument("measure_avf: zero trials");
    auto workload = entry.make();
    FaultInjector injector(seed);
    AvfResult result;
    result.workload = entry.name;
    result.trials = trials;
    for (std::size_t t = 0; t < trials; ++t) {
        const InjectionRecord rec = injector.inject_once(*workload);
        switch (rec.outcome) {
            case Outcome::kMasked:
                ++result.masked;
                break;
            case Outcome::kSdc:
                ++result.sdc;
                ++result.sdc_by_segment[rec.segment];
                if (rec.severity == workloads::SdcSeverity::kCritical) {
                    ++result.sdc_critical;
                }
                break;
            case Outcome::kDueCrash:
                ++result.due_crash;
                break;
            case Outcome::kDueHang:
                ++result.due_hang;
                break;
        }
    }
    return result;
}

VulnerabilityTable VulnerabilityTable::measure(
    const std::vector<workloads::SuiteEntry>& suite,
    std::size_t trials_per_workload, std::uint64_t seed) {
    if (suite.empty()) {
        throw std::invalid_argument("VulnerabilityTable: empty suite");
    }
    VulnerabilityTable table;
    double sdc_sum = 0.0;
    double due_sum = 0.0;
    std::uint64_t stream = seed;
    for (const auto& entry : suite) {
        table.results_.push_back(measure_avf(entry, trials_per_workload, ++stream));
        sdc_sum += table.results_.back().avf_sdc();
        due_sum += table.results_.back().avf_due();
    }
    const auto n = static_cast<double>(suite.size());
    const double sdc_mean = sdc_sum / n;
    const double due_mean = due_sum / n;
    for (const auto& r : table.results_) {
        // Degenerate suites (a workload that never SDCs/DUEs) fall back to
        // weight 1 rather than dividing by zero.
        table.sdc_weights_[r.workload] =
            (sdc_mean > 0.0) ? r.avf_sdc() / sdc_mean : 1.0;
        table.due_weights_[r.workload] =
            (due_mean > 0.0) ? r.avf_due() / due_mean : 1.0;
    }
    return table;
}

VulnerabilityTable VulnerabilityTable::uniform(
    const std::vector<workloads::SuiteEntry>& suite) {
    VulnerabilityTable table;
    for (const auto& entry : suite) {
        table.sdc_weights_[entry.name] = 1.0;
        table.due_weights_[entry.name] = 1.0;
    }
    return table;
}

double VulnerabilityTable::sdc_weight(const std::string& workload) const {
    const auto it = sdc_weights_.find(workload);
    if (it == sdc_weights_.end()) {
        throw std::out_of_range("VulnerabilityTable: unknown workload " +
                                workload);
    }
    return it->second;
}

double VulnerabilityTable::due_weight(const std::string& workload) const {
    const auto it = due_weights_.find(workload);
    if (it == due_weights_.end()) {
        throw std::out_of_range("VulnerabilityTable: unknown workload " +
                                workload);
    }
    return it->second;
}

}  // namespace tnr::faultinject

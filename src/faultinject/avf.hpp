#pragma once
// Architectural Vulnerability Factor measurement: the fraction of injected
// faults that become SDCs / DUEs for each workload. These per-code factors
// are what make beam cross sections code-dependent (the paper: "different
// codes executed on the same device can have very different ... error
// rates"); the beam campaign scales each device's base sensitivity by the
// workload's relative vulnerability.

#include <map>
#include <string>
#include <vector>

#include "faultinject/injector.hpp"
#include "stats/poisson.hpp"
#include "workloads/suite.hpp"

namespace tnr::faultinject {

/// Outcome tallies for one workload.
struct AvfResult {
    std::string workload;
    std::size_t trials = 0;
    std::size_t masked = 0;
    std::size_t sdc = 0;
    std::size_t sdc_critical = 0;  ///< subset of sdc with critical severity.
    std::size_t due_crash = 0;
    std::size_t due_hang = 0;
    /// Per-segment SDC counts (where do dangerous faults live?).
    std::map<std::string, std::size_t> sdc_by_segment;

    [[nodiscard]] double avf_sdc() const noexcept {
        return trials ? static_cast<double>(sdc) / static_cast<double>(trials)
                      : 0.0;
    }
    [[nodiscard]] double avf_due() const noexcept {
        return trials ? static_cast<double>(due_crash + due_hang) /
                            static_cast<double>(trials)
                      : 0.0;
    }
    [[nodiscard]] double masked_fraction() const noexcept {
        return trials ? static_cast<double>(masked) / static_cast<double>(trials)
                      : 0.0;
    }
    [[nodiscard]] double critical_fraction() const noexcept {
        return sdc ? static_cast<double>(sdc_critical) / static_cast<double>(sdc)
                   : 0.0;
    }

    /// Accumulates another result's tallies (parallel-reduction merge).
    void merge(const AvfResult& other);
};

/// Runs `trials` single-bit injections on a fresh instance of the workload.
/// threads: 1 = serial (bitwise identical to the historical loop), 0 = all
/// available cores, N = N deterministic RNG streams — each worker gets its
/// own workload instance and injector. Bitwise reproducible for a fixed
/// (seed, threads) pair.
AvfResult measure_avf(const workloads::SuiteEntry& entry, std::size_t trials,
                      std::uint64_t seed, unsigned threads = 1);

/// Vulnerability weights for a whole suite, normalized so the mean SDC (and
/// mean DUE) weight over the suite is 1 — beam campaigns multiply a device's
/// suite-average cross section by these to get per-code cross sections while
/// preserving the device-average ratios.
class VulnerabilityTable {
public:
    /// Measures every workload in the suite. Workloads fan out across
    /// `threads` pool workers (0 = all cores); each keeps its historical
    /// per-entry seed and serial trial loop, so the table is bitwise
    /// identical for every thread count (including the old serial path).
    static VulnerabilityTable measure(const std::vector<workloads::SuiteEntry>& suite,
                                      std::size_t trials_per_workload,
                                      std::uint64_t seed,
                                      unsigned threads = 1);

    /// A neutral table (all weights 1) for quick campaigns.
    static VulnerabilityTable uniform(
        const std::vector<workloads::SuiteEntry>& suite);

    [[nodiscard]] double sdc_weight(const std::string& workload) const;
    [[nodiscard]] double due_weight(const std::string& workload) const;
    [[nodiscard]] const std::vector<AvfResult>& results() const noexcept {
        return results_;
    }

private:
    VulnerabilityTable() = default;

    std::map<std::string, double> sdc_weights_;
    std::map<std::string, double> due_weights_;
    std::vector<AvfResult> results_;
};

}  // namespace tnr::faultinject

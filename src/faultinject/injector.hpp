#pragma once
// Software fault injection (SWIFI) over the workload kernels. One injection
// = one transient bit flip in live kernel state, then a full execution and
// outcome classification:
//
//   Masked — output bit-identical to golden (the fault was overwritten or
//            logically masked);
//   SDC    — output differs silently (further split critical/tolerable for
//            the CNNs);
//   DUE    — the kernel detected the fault (bounds check, watchdog,
//            singularity, NaN guard) — the analogue of a crash/hang.
//
// This is the standard methodology the paper cites ([Wilkening2014, GPUQin,
// Cher2014]) for explaining *why* beam cross sections differ across codes.

#include <cstdint>
#include <string>

#include "stats/rng.hpp"
#include "workloads/workload.hpp"

namespace tnr::faultinject {

enum class Outcome : std::uint8_t {
    kMasked,
    kSdc,
    kDueCrash,
    kDueHang,
};

const char* to_string(Outcome o);

/// Everything about a single injection, for logs and segment breakdowns.
struct InjectionRecord {
    std::string segment;        ///< which state region was hit.
    std::size_t byte_offset = 0;
    std::uint8_t bit = 0;
    Outcome outcome = Outcome::kMasked;
    workloads::SdcSeverity severity = workloads::SdcSeverity::kNone;
};

/// Injects single bit flips into a workload and classifies outcomes.
class FaultInjector {
public:
    explicit FaultInjector(std::uint64_t seed = 0xFA017ULL);

    /// Injector driven by an existing RNG stream (parallel AVF measurement
    /// hands each worker a split() stream).
    explicit FaultInjector(stats::Rng rng) : rng_(rng) {}

    /// Runs one injection trial: reset -> flip one random bit (uniform over
    /// all injectable bytes) -> run -> classify. Leaves the workload dirty;
    /// callers run reset() or just call inject_once again.
    InjectionRecord inject_once(workloads::Workload& w);

    /// Flip a specific bit (for directed tests): segment index, byte, bit.
    InjectionRecord inject_at(workloads::Workload& w, std::size_t segment_index,
                              std::size_t byte_offset, std::uint8_t bit);

    [[nodiscard]] stats::Rng& rng() noexcept { return rng_; }

private:
    InjectionRecord execute_and_classify(workloads::Workload& w,
                                         InjectionRecord record);

    stats::Rng rng_;
};

}  // namespace tnr::faultinject

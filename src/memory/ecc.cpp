#include "memory/ecc.hpp"

#include <array>
#include <bit>
#include <stdexcept>

namespace tnr::memory {

namespace {

/// Positions 1..71 of the extended Hamming code; powers of two are check
/// bits, the remaining 64 positions carry data bits in ascending order.
constexpr bool is_power_of_two(unsigned p) { return (p & (p - 1)) == 0; }

/// data bit k -> code position.
constexpr std::array<std::uint8_t, 64> build_data_positions() {
    std::array<std::uint8_t, 64> table{};
    std::size_t k = 0;
    for (unsigned p = 1; p <= 71 && k < 64; ++p) {
        if (!is_power_of_two(p)) table[k++] = static_cast<std::uint8_t>(p);
    }
    return table;
}

/// code position -> data bit k (0xFF for check positions).
constexpr std::array<std::uint8_t, 72> build_position_to_data() {
    std::array<std::uint8_t, 72> table{};
    for (auto& t : table) t = 0xFF;
    std::size_t k = 0;
    for (unsigned p = 1; p <= 71 && k < 64; ++p) {
        if (!is_power_of_two(p)) table[p] = static_cast<std::uint8_t>(k++);
    }
    return table;
}

constexpr auto kDataPosition = build_data_positions();
constexpr auto kPositionToData = build_position_to_data();

/// Check bit index (0..6) for a power-of-two position.
constexpr std::uint8_t check_index(unsigned p) {
    return static_cast<std::uint8_t>(std::countr_zero(p));
}

}  // namespace

const char* to_string(EccOutcome o) {
    switch (o) {
        case EccOutcome::kClean:
            return "clean";
        case EccOutcome::kCorrectedSingle:
            return "corrected-single";
        case EccOutcome::kDetectedDouble:
            return "detected-double";
        case EccOutcome::kUndetected:
            return "undetected";
    }
    return "unknown";
}

void Codeword::flip(std::uint8_t index) {
    if (index < 64) {
        data ^= (1ULL << index);
    } else if (index < 72) {
        check ^= static_cast<std::uint8_t>(1u << (index - 64));
    } else {
        throw std::out_of_range("Codeword::flip: bad bit index");
    }
}

Codeword Secded::encode(std::uint64_t data) {
    // Syndrome accumulator: XOR of the positions of all set data bits. Each
    // check bit c_i is then bit i of the accumulator, making every parity
    // group even.
    unsigned acc = 0;
    for (unsigned k = 0; k < 64; ++k) {
        if ((data >> k) & 1ULL) acc ^= kDataPosition[k];
    }
    Codeword word;
    word.data = data;
    std::uint8_t check = 0;
    for (unsigned i = 0; i < 7; ++i) {
        if ((acc >> i) & 1u) check |= static_cast<std::uint8_t>(1u << i);
    }
    // Overall parity (bit 7 of `check`) covers all 71 code bits.
    const bool parity =
        (std::popcount(data) + std::popcount(static_cast<unsigned>(check))) % 2;
    if (parity) check |= 0x80;
    word.check = check;
    return word;
}

std::uint8_t Secded::syndrome(const Codeword& word) {
    unsigned acc = 0;
    for (unsigned k = 0; k < 64; ++k) {
        if ((word.data >> k) & 1ULL) acc ^= kDataPosition[k];
    }
    for (unsigned i = 0; i < 7; ++i) {
        if ((word.check >> i) & 1u) acc ^= (1u << i);
    }
    return static_cast<std::uint8_t>(acc);
}

bool Secded::overall_parity(const Codeword& word) {
    return ((std::popcount(word.data) +
             std::popcount(static_cast<unsigned>(word.check))) %
            2) != 0;
}

EccOutcome Secded::decode(Codeword& word) {
    const std::uint8_t s = syndrome(word);
    const bool parity_odd = overall_parity(word);

    if (s == 0 && !parity_odd) return EccOutcome::kClean;

    if (parity_odd) {
        // Odd weight error: assume single (SECDED guarantee for <=2 flips).
        if (s == 0) {
            // The overall parity bit itself flipped.
            word.check ^= 0x80;
            return EccOutcome::kCorrectedSingle;
        }
        if (s > 71) {
            // Syndrome points outside the code: >=3 flips; flag it.
            return EccOutcome::kDetectedDouble;
        }
        if (is_power_of_two(s)) {
            word.check ^= static_cast<std::uint8_t>(1u << check_index(s));
        } else {
            word.data ^= (1ULL << kPositionToData[s]);
        }
        return EccOutcome::kCorrectedSingle;
    }

    // Even weight, nonzero syndrome: uncorrectable double error.
    return EccOutcome::kDetectedDouble;
}

}  // namespace tnr::memory

#include "memory/dram_array.hpp"

#include <algorithm>
#include <stdexcept>

namespace tnr::memory {

DramArray::DramArray(std::size_t cells, bool pattern_ones)
    : cells_(cells), pattern_ones_(pattern_ones) {
    if (cells == 0) throw std::invalid_argument("DramArray: zero cells");
    words_.resize((cells + 63) / 64);
    rewrite_all();
}

void DramArray::rewrite_all() {
    const std::uint64_t fill = pattern_ones_ ? ~0ULL : 0ULL;
    for (auto& w : words_) w = fill;
}

void DramArray::rewrite(std::size_t cell) { store(cell, pattern_ones_); }

bool DramArray::stored(std::size_t cell) const {
    if (cell >= cells_) throw std::out_of_range("DramArray: cell out of range");
    return (words_[cell / 64] >> (cell % 64)) & 1ULL;
}

void DramArray::store(std::size_t cell, bool value) {
    if (cell >= cells_) throw std::out_of_range("DramArray: cell out of range");
    const std::uint64_t mask = 1ULL << (cell % 64);
    if (value) {
        words_[cell / 64] |= mask;
    } else {
        words_[cell / 64] &= ~mask;
    }
}

bool DramArray::read(std::size_t cell, stats::Rng& rng) const {
    // Stuck cells dominate everything.
    if (const auto it = stuck_.find(cell); it != stuck_.end()) {
        return it->second;
    }
    const bool value = stored(cell);
    if (const auto it = intermittent_.find(cell); it != intermittent_.end()) {
        if (value != it->second.faulty_value &&
            rng.bernoulli(it->second.probability)) {
            return it->second.faulty_value;
        }
    }
    return value;
}

bool DramArray::apply_transient(std::size_t cell, FlipDirection direction) {
    const bool from = direction == FlipDirection::kOneToZero;
    if (stored(cell) != from) return false;  // nothing to flip.
    store(cell, !from);
    return true;
}

void DramArray::apply_intermittent(std::size_t cell, double error_probability,
                                   FlipDirection direction) {
    if (error_probability <= 0.0 || error_probability > 1.0) {
        throw std::invalid_argument("DramArray: bad intermittent probability");
    }
    if (cell >= cells_) throw std::out_of_range("DramArray: cell out of range");
    intermittent_[cell] = {error_probability,
                           direction == FlipDirection::kZeroToOne};
    special_words_.insert(cell / 64);
}

void DramArray::apply_permanent(std::size_t cell, FlipDirection direction) {
    if (cell >= cells_) throw std::out_of_range("DramArray: cell out of range");
    stuck_[cell] = direction == FlipDirection::kZeroToOne;
    special_words_.insert(cell / 64);
}

void DramArray::apply_sefi(std::size_t start_cell, std::size_t burst) {
    if (cells_ == 0) return;
    for (std::size_t k = 0; k < burst; ++k) {
        const std::size_t cell = (start_cell + k) % cells_;
        store(cell, !pattern_ones_);
    }
}

bool DramArray::is_stuck(std::size_t cell) const {
    return stuck_.contains(cell);
}

bool DramArray::is_intermittent(std::size_t cell) const {
    return intermittent_.contains(cell);
}

void DramArray::anneal() {
    stuck_.clear();
    // Rebuild the special-word index from the remaining intermittents.
    special_words_.clear();
    for (const auto& [cell, fault] : intermittent_) {
        (void)fault;
        special_words_.insert(cell / 64);
    }
}

std::vector<std::size_t> DramArray::scan_errors(stats::Rng& rng) const {
    std::vector<std::size_t> wrong;
    const std::uint64_t fill = pattern_ones_ ? ~0ULL : 0ULL;
    for (std::size_t w = 0; w < words_.size(); ++w) {
        const bool clean_word =
            words_[w] == fill && !special_words_.contains(w);
        if (clean_word) continue;
        const std::size_t base = w * 64;
        const std::size_t limit = std::min<std::size_t>(64, cells_ - base);
        for (std::size_t b = 0; b < limit; ++b) {
            const std::size_t cell = base + b;
            if (read(cell, rng) != pattern_ones_) wrong.push_back(cell);
        }
    }
    return wrong;
}

}  // namespace tnr::memory

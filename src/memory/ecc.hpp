#pragma once
// SECDED Hamming(72,64): the ECC HPC systems deploy on DRAM. The paper's
// §IV conclusion — "SECDED ECC is shown to be sufficient to correct most
// thermal neutron induced errors" because all transient/intermittent events
// were single-bit, while SEFI bursts escape — is checked against this
// implementation by the ECC ablation bench.

#include <cstdint>

namespace tnr::memory {

/// Result of decoding a 72-bit codeword.
enum class EccOutcome : std::uint8_t {
    kClean,           ///< no error detected.
    kCorrectedSingle, ///< single-bit error corrected.
    kDetectedDouble,  ///< double-bit error detected, not correctable (DUE).
    kUndetected,      ///< (only reachable with >=3 flips) silently wrong.
};

const char* to_string(EccOutcome o);

/// A 72-bit SECDED codeword: 64 data bits + 8 check bits.
struct Codeword {
    std::uint64_t data = 0;
    std::uint8_t check = 0;

    /// Flips bit `index` (0-63 data, 64-71 check).
    void flip(std::uint8_t index);
};

/// Hamming(72,64) with an overall parity bit (Hsiao-style SECDED).
class Secded {
public:
    /// Encodes 64 data bits into a codeword.
    [[nodiscard]] static Codeword encode(std::uint64_t data);

    /// Decodes in place: corrects single-bit errors, flags double-bit
    /// errors. Returns the outcome; `word.data` holds the best-effort data.
    static EccOutcome decode(Codeword& word);

private:
    [[nodiscard]] static std::uint8_t syndrome(const Codeword& word);
    [[nodiscard]] static bool overall_parity(const Codeword& word);
};

}  // namespace tnr::memory

#pragma once
// The two DIMMs of the paper's memory study (§IV): a DDR3-1866 4 GB module
// and a DDR4-2133 8 GB module, both single-rank x8 without ECC, with their
// thermal-neutron sensitivities per fault category.
//
// Published findings encoded here as nominal per-Gbit cross sections:
//   * DDR4 total sensitivity ~= one order of magnitude below DDR3;
//   * >95% of flips are 1->0 on DDR3 but 0->1 on DDR4 (complementary cell
//     logic);
//   * permanent errors are <30% of DDR3 errors but >50% on DDR4;
//   * both parts show SEFIs; all transient/intermittent errors single-bit.

#include <array>
#include <string>

namespace tnr::memory {

/// Direction of a DRAM bit flip.
enum class FlipDirection { kOneToZero, kZeroToOne };

const char* to_string(FlipDirection d);

/// The paper's four observed error categories (§IV).
enum class FaultCategory : std::size_t {
    kTransient = 0,
    kIntermittent = 1,
    kPermanent = 2,
    kSefi = 3,
};

inline constexpr std::size_t kFaultCategoryCount = 4;

const char* to_string(FaultCategory c);

struct DramConfig {
    std::string name;
    double capacity_gbit = 0.0;
    double voltage = 0.0;
    double frequency_mhz = 0.0;
    std::string timings;
    /// Thermal cross section per Gbit for each category [cm^2/Gbit],
    /// indexed by FaultCategory.
    std::array<double, kFaultCategoryCount> sigma_per_gbit{};
    /// Dominant flip direction and its share of all bit flips.
    FlipDirection dominant_direction = FlipDirection::kOneToZero;
    double dominant_fraction = 0.95;
    /// Cells corrupted by one SEFI (control-logic event touching a region).
    std::size_t sefi_burst_cells = 512;

    [[nodiscard]] double sigma_total_per_gbit() const;
    /// Full-module cross section for one category [cm^2].
    [[nodiscard]] double sigma_module(FaultCategory c) const;
};

/// DDR3-1866, 4 GB, 1.5 V, 10-11-10.
DramConfig ddr3_module();

/// DDR4-2133, 8 GB, 1.2 V, 13-15-15-28.
DramConfig ddr4_module();

/// A 64 Mbit asynchronous SRAM (the Weulersse-style comparison part). SRAM
/// cells are symmetric cross-coupled inverters: no flip-direction
/// asymmetry, almost no radiation-induced permanent faults, and a far
/// higher per-Gbit transient sensitivity than DRAM.
DramConfig sram_module();

}  // namespace tnr::memory

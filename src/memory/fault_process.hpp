#pragma once
// Radiation fault process for DRAM under a neutron beam: events arrive as a
// Poisson process with per-category rates sigma_category * Phi, land on
// uniformly random cells, and honor each module's flip-direction asymmetry.

#include <cstdint>
#include <vector>

#include "memory/dram_array.hpp"
#include "memory/dram_config.hpp"
#include "stats/rng.hpp"

namespace tnr::memory {

/// Ground-truth log entry of an injected fault (for classifier validation).
struct InjectedFault {
    double time_s = 0.0;
    FaultCategory category = FaultCategory::kTransient;
    FlipDirection direction = FlipDirection::kOneToZero;
    std::size_t cell = 0;
    bool effective = true;  ///< transient flip on an opposite-state cell is not.
};

/// Drives faults into a DramArray while "beam is on".
class FaultProcess {
public:
    /// flux: beam flux [n/cm^2/s]. When model_full_module is true (default)
    /// the array *aliases* the whole module: fault rates are computed for
    /// the full capacity and landed into the simulated window, which is how
    /// the real tester sees them (it scans the whole DIMM). When false,
    /// rates are scaled down to the window's share of the capacity.
    FaultProcess(const DramConfig& config, double flux_n_cm2_s,
                 std::uint64_t seed, bool model_full_module = true);

    /// Advances the beam clock by dt seconds, injecting faults into `array`.
    /// Returns the faults injected during this step.
    std::vector<InjectedFault> advance(DramArray& array, double dt_s);

    /// Total fluence delivered so far [n/cm^2].
    [[nodiscard]] double fluence() const noexcept { return fluence_; }

    /// Event rate for one category over the simulated window [faults/s].
    [[nodiscard]] double category_rate(FaultCategory c,
                                       const DramArray& array) const;

    [[nodiscard]] const std::vector<InjectedFault>& history() const noexcept {
        return history_;
    }

private:
    FlipDirection sample_direction(stats::Rng& rng) const;

    DramConfig config_;
    double flux_;
    bool model_full_module_;
    double fluence_ = 0.0;
    double now_s_ = 0.0;
    stats::Rng rng_;
    std::vector<InjectedFault> history_;
};

}  // namespace tnr::memory

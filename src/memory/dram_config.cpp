#include "memory/dram_config.hpp"

#include <numeric>

namespace tnr::memory {

const char* to_string(FlipDirection d) {
    return d == FlipDirection::kOneToZero ? "1->0" : "0->1";
}

const char* to_string(FaultCategory c) {
    switch (c) {
        case FaultCategory::kTransient:
            return "transient";
        case FaultCategory::kIntermittent:
            return "intermittent";
        case FaultCategory::kPermanent:
            return "permanent";
        case FaultCategory::kSefi:
            return "SEFI";
    }
    return "unknown";
}

double DramConfig::sigma_total_per_gbit() const {
    return std::accumulate(sigma_per_gbit.begin(), sigma_per_gbit.end(), 0.0);
}

double DramConfig::sigma_module(FaultCategory c) const {
    return sigma_per_gbit[static_cast<std::size_t>(c)] * capacity_gbit;
}

DramConfig ddr3_module() {
    DramConfig cfg;
    cfg.name = "DDR3-1866 4GB x8";
    cfg.capacity_gbit = 32.0;  // 4 GB.
    cfg.voltage = 1.5;
    cfg.frequency_mhz = 1866.0;
    cfg.timings = "10-11-10";
    // Nominal per-Gbit thermal cross sections [cm^2/Gbit]; split keeps
    // permanents below 30% of all DDR3 errors.
    cfg.sigma_per_gbit = {
        4.5e-10,  // transient  (45%)
        2.0e-10,  // intermittent (20%)
        2.8e-10,  // permanent (28%)
        0.7e-10,  // SEFI (7%)
    };
    cfg.dominant_direction = FlipDirection::kOneToZero;
    cfg.dominant_fraction = 0.96;
    cfg.sefi_burst_cells = 512;
    return cfg;
}

DramConfig ddr4_module() {
    DramConfig cfg;
    cfg.name = "DDR4-2133 8GB x8";
    cfg.capacity_gbit = 64.0;  // 8 GB.
    cfg.voltage = 1.2;
    cfg.frequency_mhz = 2133.0;
    cfg.timings = "13-15-15-28";
    // One order of magnitude below DDR3 per Gbit; permanents above 50%.
    cfg.sigma_per_gbit = {
        2.5e-11,  // transient (25%)
        1.2e-11,  // intermittent (12%)
        5.5e-11,  // permanent (55%)
        0.8e-11,  // SEFI (8%)
    };
    cfg.dominant_direction = FlipDirection::kZeroToOne;
    cfg.dominant_fraction = 0.97;
    cfg.sefi_burst_cells = 512;
    return cfg;
}

DramConfig sram_module() {
    DramConfig cfg;
    cfg.name = "SRAM 64Mbit async";
    cfg.capacity_gbit = 0.064;
    cfg.voltage = 3.3;
    cfg.frequency_mhz = 100.0;
    cfg.timings = "10ns";
    cfg.sigma_per_gbit = {
        2.0e-8,   // transient: SRAM is the classic SEU-sensitive array.
        1.0e-9,   // intermittent.
        2.0e-10,  // permanent: rare (no storage-capacitor damage channel).
        5.0e-10,  // SEFI.
    };
    // The symmetric cell has no preferred direction.
    cfg.dominant_direction = FlipDirection::kOneToZero;
    cfg.dominant_fraction = 0.5;
    cfg.sefi_burst_cells = 256;
    return cfg;
}

}  // namespace tnr::memory

#include "memory/scrub_policy.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace tnr::memory {

namespace {

constexpr double kBitsPerEccWord = 64.0;
constexpr double kSecondsPerYear = 365.25 * 86400.0;

/// Single-bit fault rate of the whole module [faults/s] at the given
/// thermal flux. Uses the transient + intermittent + permanent categories
/// (all single-bit per the paper); SEFIs are control-logic events handled
/// separately.
double module_fault_rate(const DramConfig& config, double thermal_flux_per_h) {
    const double sigma =
        config.sigma_module(FaultCategory::kTransient) +
        config.sigma_module(FaultCategory::kIntermittent) +
        config.sigma_module(FaultCategory::kPermanent);
    return sigma * thermal_flux_per_h / 3600.0;
}

}  // namespace

ScrubAnalysis analyze_scrub_interval(const DramConfig& config,
                                     double thermal_flux_per_h,
                                     double scrub_interval_s) {
    if (thermal_flux_per_h <= 0.0 || scrub_interval_s <= 0.0) {
        throw std::invalid_argument("analyze_scrub_interval: bad arguments");
    }
    ScrubAnalysis out;
    out.fault_rate_per_s = module_fault_rate(config, thermal_flux_per_h);
    out.faults_per_interval = out.fault_rate_per_s * scrub_interval_s;

    const double words = config.capacity_gbit * 1.0e9 / kBitsPerEccWord;
    // Birthday approximation conditioned on the Poisson fault count:
    // P(collision) = 1 - E[exp(-K(K-1)/(2W))]; for K Poisson(k) with
    // k << W the mean-value approximation with k^2 (E[K(K-1)] = k^2) holds.
    const double k = out.faults_per_interval;
    out.collision_probability = -std::expm1(-k * k / (2.0 * words));

    const double intervals_per_year = kSecondsPerYear / scrub_interval_s;
    out.uncorrectable_per_year =
        out.collision_probability * intervals_per_year;
    return out;
}

double simulate_collision_probability(const DramConfig& config,
                                      double thermal_flux_per_h,
                                      double scrub_interval_s,
                                      std::uint64_t trials, stats::Rng& rng) {
    if (trials == 0) {
        throw std::invalid_argument("simulate_collision_probability: trials");
    }
    const double k =
        module_fault_rate(config, thermal_flux_per_h) * scrub_interval_s;
    const auto words = static_cast<std::uint64_t>(config.capacity_gbit * 1.0e9 /
                                                  kBitsPerEccWord);
    std::uint64_t collisions = 0;
    std::unordered_set<std::uint64_t> hit;
    for (std::uint64_t t = 0; t < trials; ++t) {
        hit.clear();
        const std::uint64_t faults = rng.poisson(k);
        for (std::uint64_t f = 0; f < faults; ++f) {
            if (!hit.insert(rng.uniform_index(words)).second) {
                ++collisions;
                break;
            }
        }
    }
    return static_cast<double>(collisions) / static_cast<double>(trials);
}

}  // namespace tnr::memory

#pragma once
// DRAM patrol scrubbing economics. SECDED corrects any single bit per
// 64-bit word — but field faults *accumulate*: once two independent faults
// land in the same ECC word before a scrub rewrites it, the word is
// uncorrectable (a DUE at best). The scrub interval therefore trades memory
// bandwidth against the probability of double-fault alignment — the
// operational consequence of the paper's thermal DRAM rates.
//
// Both an analytic birthday-collision model and a Monte Carlo validator are
// provided.

#include <cstdint>

#include "memory/dram_config.hpp"
#include "stats/rng.hpp"

namespace tnr::memory {

struct ScrubAnalysis {
    double fault_rate_per_s = 0.0;       ///< whole-module single-bit faults.
    double faults_per_interval = 0.0;
    /// P(at least one ECC word holds >=2 faults at the end of an interval).
    double collision_probability = 0.0;
    /// Expected uncorrectable events per year of operation.
    double uncorrectable_per_year = 0.0;
};

/// Analytic model: faults arrive Poisson at `fit`-equivalent rate over the
/// module; k faults among W = capacity/64 words collide with probability
/// ~ 1 - exp(-k(k-1)/(2W)) (birthday approximation); collisions across
/// intervals are cleared by the scrub.
ScrubAnalysis analyze_scrub_interval(const DramConfig& config,
                                     double thermal_flux_per_h,
                                     double scrub_interval_s);

/// Monte Carlo cross-check of the per-interval collision probability:
/// simulates `trials` scrub intervals, placing Poisson(k) faults uniformly
/// over the module's ECC words.
double simulate_collision_probability(const DramConfig& config,
                                      double thermal_flux_per_h,
                                      double scrub_interval_s,
                                      std::uint64_t trials, stats::Rng& rng);

}  // namespace tnr::memory

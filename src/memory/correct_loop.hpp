#pragma once
// The paper's DRAM test harness (§IV): banks are set to 0xFF (or 0x00) and
// continually read under beam; when an unexpected value appears the error is
// counted, the corrupted data downloaded, and the bank rewritten. The
// re-read protocol after rewrite distinguishes the four categories:
//
//   transient    — never wrong again after rewrite;
//   intermittent — wrong in some but not all confirmation reads;
//   permanent    — wrong in every confirmation read (stuck-at);
//   SEFI         — a large burst of cells wrong in one pass (control logic).

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "memory/dram_array.hpp"
#include "memory/dram_config.hpp"
#include "memory/fault_process.hpp"
#include "stats/poisson.hpp"

namespace tnr::memory {

/// One error event as seen (and classified) by the tester.
struct ObservedError {
    double time_s = 0.0;
    std::size_t cell = 0;           ///< first wrong cell of the event.
    std::size_t corrupted_cells = 1;///< cells wrong in the same pass/event.
    FlipDirection direction = FlipDirection::kOneToZero;
    FaultCategory classified = FaultCategory::kTransient;
};

/// Aggregated campaign result.
struct CorrectLoopReport {
    double fluence = 0.0;           ///< delivered fluence [n/cm^2].
    double tested_gbit = 0.0;       ///< simulated capacity [Gbit].
    std::array<std::uint64_t, kFaultCategoryCount> count_by_category{};
    std::uint64_t flips_one_to_zero = 0;
    std::uint64_t flips_zero_to_one = 0;
    std::uint64_t single_bit_events = 0;
    std::uint64_t multi_bit_events = 0;
    std::vector<ObservedError> errors;

    [[nodiscard]] std::uint64_t total_errors() const;
    /// Cross section per Gbit for one category [cm^2/Gbit].
    [[nodiscard]] double sigma_per_gbit(FaultCategory c) const;
    /// Exact 95% Poisson CI on that cross section.
    [[nodiscard]] stats::Interval sigma_ci(FaultCategory c) const;
    /// Fraction of all bit flips in the dominant direction.
    [[nodiscard]] double dominant_direction_fraction() const;
    /// Fraction of errors classified permanent.
    [[nodiscard]] double permanent_fraction() const;
};

/// Tester configuration.
struct CorrectLoopConfig {
    std::size_t array_cells = 1u << 22;  ///< simulated window (aliases module).
    bool pattern_ones = true;            ///< 0xFF background (vs 0x00).
    double pass_interval_s = 10.0;       ///< time per full scan pass.
    std::size_t confirmation_reads = 8;  ///< re-reads after rewrite.
    std::size_t sefi_threshold = 64;     ///< wrong cells in one pass => SEFI.
};

/// Runs the correct loop against a simulated module under beam.
class CorrectLoopTester {
public:
    CorrectLoopTester(DramConfig config, CorrectLoopConfig loop,
                      double flux_n_cm2_s, std::uint64_t seed);

    /// Runs for `duration_s` of beam time and returns the report.
    CorrectLoopReport run(double duration_s);

private:
    FaultCategory classify_cell(std::size_t cell);

    DramConfig config_;
    CorrectLoopConfig loop_;
    DramArray array_;
    FaultProcess process_;
    stats::Rng rng_;
    double now_s_ = 0.0;
    /// Locations already classified intermittent/permanent: the tester
    /// excludes them from further scans (as the real harness masks known-bad
    /// addresses) so one physical fault is counted once.
    std::unordered_set<std::size_t> known_bad_;
};

}  // namespace tnr::memory

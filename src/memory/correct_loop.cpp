#include "memory/correct_loop.hpp"

#include <numeric>
#include <stdexcept>

namespace tnr::memory {

std::uint64_t CorrectLoopReport::total_errors() const {
    return std::accumulate(count_by_category.begin(), count_by_category.end(),
                           std::uint64_t{0});
}

double CorrectLoopReport::sigma_per_gbit(FaultCategory c) const {
    if (fluence <= 0.0 || tested_gbit <= 0.0) return 0.0;
    return static_cast<double>(count_by_category[static_cast<std::size_t>(c)]) /
           fluence / tested_gbit;
}

stats::Interval CorrectLoopReport::sigma_ci(FaultCategory c) const {
    return stats::poisson_rate_interval(
        count_by_category[static_cast<std::size_t>(c)], fluence * tested_gbit);
}

double CorrectLoopReport::dominant_direction_fraction() const {
    const std::uint64_t total = flips_one_to_zero + flips_zero_to_one;
    if (total == 0) return 0.0;
    return static_cast<double>(std::max(flips_one_to_zero, flips_zero_to_one)) /
           static_cast<double>(total);
}

double CorrectLoopReport::permanent_fraction() const {
    const std::uint64_t total = total_errors();
    if (total == 0) return 0.0;
    return static_cast<double>(
               count_by_category[static_cast<std::size_t>(
                   FaultCategory::kPermanent)]) /
           static_cast<double>(total);
}

CorrectLoopTester::CorrectLoopTester(DramConfig config, CorrectLoopConfig loop,
                                     double flux_n_cm2_s, std::uint64_t seed)
    : config_(std::move(config)),
      loop_(loop),
      array_(loop.array_cells, loop.pattern_ones),
      process_(config_, flux_n_cm2_s, seed),
      rng_(seed ^ 0x5eedULL) {
    if (loop.array_cells == 0 || loop.confirmation_reads == 0 ||
        loop.sefi_threshold == 0 || loop.pass_interval_s <= 0.0) {
        throw std::invalid_argument("CorrectLoopTester: bad loop config");
    }
}

FaultCategory CorrectLoopTester::classify_cell(std::size_t cell) {
    // The paper's protocol: rewrite the location, then confirm with repeated
    // reads. Always-wrong => permanent (stuck-at); sometimes-wrong =>
    // intermittent; never-wrong => the original event was transient.
    array_.rewrite(cell);
    std::size_t wrong = 0;
    for (std::size_t r = 0; r < loop_.confirmation_reads; ++r) {
        if (array_.read(cell, rng_) != array_.expected()) ++wrong;
    }
    if (wrong == loop_.confirmation_reads) return FaultCategory::kPermanent;
    if (wrong > 0) return FaultCategory::kIntermittent;
    return FaultCategory::kTransient;
}

CorrectLoopReport CorrectLoopTester::run(double duration_s) {
    if (duration_s <= 0.0) {
        throw std::invalid_argument("CorrectLoopTester: bad duration");
    }
    CorrectLoopReport report;
    report.tested_gbit = config_.capacity_gbit;  // window aliases the module.

    const std::size_t passes =
        static_cast<std::size_t>(duration_s / loop_.pass_interval_s);
    for (std::size_t pass = 0; pass < passes; ++pass) {
        process_.advance(array_, loop_.pass_interval_s);
        now_s_ += loop_.pass_interval_s;

        // Scan: collect every cell reading wrong this pass.
        std::vector<std::size_t> wrong_cells;
        for (const std::size_t cell : array_.scan_errors(rng_)) {
            if (!known_bad_.contains(cell)) wrong_cells.push_back(cell);
        }
        if (wrong_cells.empty()) continue;

        if (wrong_cells.size() >= loop_.sefi_threshold) {
            // A large portion of the array wrong at once: SEFI. Rewrite
            // everything; subsequent reads recover (per the paper).
            ObservedError err;
            err.time_s = now_s_;
            err.cell = wrong_cells.front();
            err.corrupted_cells = wrong_cells.size();
            err.classified = FaultCategory::kSefi;
            // Direction of the burst: cells read the complement of the
            // background.
            err.direction = array_.expected() ? FlipDirection::kOneToZero
                                              : FlipDirection::kZeroToOne;
            report.errors.push_back(err);
            ++report.count_by_category[static_cast<std::size_t>(
                FaultCategory::kSefi)];
            report.multi_bit_events += 1;
            array_.rewrite_all();
            continue;
        }

        for (const std::size_t cell : wrong_cells) {
            ObservedError err;
            err.time_s = now_s_;
            err.cell = cell;
            err.corrupted_cells = 1;
            err.direction = array_.expected() ? FlipDirection::kOneToZero
                                              : FlipDirection::kZeroToOne;
            err.classified = classify_cell(cell);
            if (err.classified == FaultCategory::kIntermittent ||
                err.classified == FaultCategory::kPermanent) {
                known_bad_.insert(cell);
            }
            report.errors.push_back(err);
            ++report.count_by_category[static_cast<std::size_t>(err.classified)];
            ++report.single_bit_events;
            if (err.direction == FlipDirection::kOneToZero) {
                ++report.flips_one_to_zero;
            } else {
                ++report.flips_zero_to_one;
            }
        }
    }
    report.fluence = process_.fluence();
    return report;
}

}  // namespace tnr::memory

#pragma once
// A simulated DRAM cell array with radiation fault state. The array models a
// test window of the module (the correct-loop tester walks it bank by bank);
// faults land as transient flips, intermittent cells, stuck-at cells, or
// SEFI bursts, and reads reflect the composed state — which is exactly what
// the classifier has to untangle.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "memory/dram_config.hpp"
#include "stats/rng.hpp"

namespace tnr::memory {

/// One simulated DRAM array (a window of `cells` bits).
class DramArray {
public:
    /// cells: number of simulated bits; pattern_ones: true writes 0xFF
    /// background (all ones), false writes 0x00.
    DramArray(std::size_t cells, bool pattern_ones);

    [[nodiscard]] std::size_t cells() const noexcept { return cells_; }
    [[nodiscard]] bool pattern_ones() const noexcept { return pattern_ones_; }

    /// Writes the background pattern to every cell (clears stored values,
    /// not fault state — permanents stay stuck).
    void rewrite_all();

    /// Rewrites one cell with its background value.
    void rewrite(std::size_t cell);

    /// Reads a cell through its fault state.
    [[nodiscard]] bool read(std::size_t cell, stats::Rng& rng) const;

    /// Fast full scan: returns all cells whose read deviates from the
    /// background this pass. Words holding neither stored deviations nor
    /// stuck/intermittent cells are skipped with one 64-bit compare, making
    /// a pass O(cells/64) in the common case.
    [[nodiscard]] std::vector<std::size_t> scan_errors(stats::Rng& rng) const;

    /// Expected (background) value of every cell.
    [[nodiscard]] bool expected() const noexcept { return pattern_ones_; }

    // --- Fault application (called by the fault process) ---------------------
    /// Transient: flip the stored value once. Honors direction: a 1->0 flip
    /// on a cell already at 0 has no effect (returns false).
    bool apply_transient(std::size_t cell, FlipDirection direction);

    /// Intermittent: the cell flips toward the fault's direction with
    /// probability `error_probability` on each read, from now on. Like
    /// transients, the fault has a direction: a 1->0 intermittent cell reads
    /// correctly while it stores 0.
    void apply_intermittent(std::size_t cell, double error_probability,
                            FlipDirection direction);

    /// Permanent: stuck at the faulty value dictated by direction.
    void apply_permanent(std::size_t cell, FlipDirection direction);

    /// SEFI: corrupt `burst` consecutive stored values starting at cell
    /// (wrapping); subsequent rewrites fully recover.
    void apply_sefi(std::size_t start_cell, std::size_t burst);

    /// Ground truth accessors, for classifier validation in tests.
    [[nodiscard]] bool is_stuck(std::size_t cell) const;
    [[nodiscard]] bool is_intermittent(std::size_t cell) const;

    /// Anneal: clear all permanent faults (heating the device, §IV).
    void anneal();

private:
    [[nodiscard]] bool stored(std::size_t cell) const;
    void store(std::size_t cell, bool value);

    std::size_t cells_;
    bool pattern_ones_;
    std::vector<std::uint64_t> words_;
    /// cell -> stuck value.
    std::unordered_map<std::size_t, bool> stuck_;
    struct IntermittentFault {
        double probability;
        bool faulty_value;  ///< value the cell flips toward.
    };
    /// cell -> intermittent fault state.
    std::unordered_map<std::size_t, IntermittentFault> intermittent_;
    /// word indices containing stuck/intermittent cells (scan fast path).
    std::unordered_set<std::size_t> special_words_;
};

}  // namespace tnr::memory

#include "memory/fault_process.hpp"

#include <stdexcept>

namespace tnr::memory {

namespace {
/// Per-read error probability given to intermittent cells: wrong often
/// enough to be caught by a handful of confirmation reads, rarely enough to
/// not look stuck.
constexpr double kIntermittentReadErrorProbability = 0.35;
}  // namespace

FaultProcess::FaultProcess(const DramConfig& config, double flux_n_cm2_s,
                           std::uint64_t seed, bool model_full_module)
    : config_(config),
      flux_(flux_n_cm2_s),
      model_full_module_(model_full_module),
      rng_(seed) {
    if (flux_n_cm2_s <= 0.0) {
        throw std::invalid_argument("FaultProcess: flux must be > 0");
    }
}

double FaultProcess::category_rate(FaultCategory c,
                                   const DramArray& array) const {
    if (model_full_module_) return config_.sigma_module(c) * flux_;
    const double bits_total = config_.capacity_gbit * 1.0e9;
    const double coverage = static_cast<double>(array.cells()) / bits_total;
    return config_.sigma_module(c) * flux_ * coverage;
}

FlipDirection FaultProcess::sample_direction(stats::Rng& rng) const {
    const bool dominant = rng.bernoulli(config_.dominant_fraction);
    if (dominant) return config_.dominant_direction;
    return config_.dominant_direction == FlipDirection::kOneToZero
               ? FlipDirection::kZeroToOne
               : FlipDirection::kOneToZero;
}

std::vector<InjectedFault> FaultProcess::advance(DramArray& array,
                                                 double dt_s) {
    if (dt_s < 0.0) throw std::invalid_argument("FaultProcess: negative dt");
    std::vector<InjectedFault> injected;
    for (std::size_t ci = 0; ci < kFaultCategoryCount; ++ci) {
        const auto category = static_cast<FaultCategory>(ci);
        const double mean = category_rate(category, array) * dt_s;
        const std::uint64_t n = rng_.poisson(mean);
        for (std::uint64_t k = 0; k < n; ++k) {
            InjectedFault f;
            f.time_s = now_s_ + rng_.uniform() * dt_s;
            f.category = category;
            f.direction = sample_direction(rng_);
            f.cell = rng_.uniform_index(array.cells());
            switch (category) {
                case FaultCategory::kTransient:
                    f.effective = array.apply_transient(f.cell, f.direction);
                    break;
                case FaultCategory::kIntermittent:
                    array.apply_intermittent(
                        f.cell, kIntermittentReadErrorProbability, f.direction);
                    break;
                case FaultCategory::kPermanent:
                    array.apply_permanent(f.cell, f.direction);
                    break;
                case FaultCategory::kSefi:
                    array.apply_sefi(f.cell, config_.sefi_burst_cells);
                    break;
            }
            injected.push_back(f);
            history_.push_back(f);
        }
    }
    now_s_ += dt_s;
    fluence_ += flux_ * dt_s;
    return injected;
}

}  // namespace tnr::memory

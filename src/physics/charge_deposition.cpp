#include "physics/charge_deposition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tnr::physics {

Ion b10_alpha() { return {1471.0, 5.0}; }

Ion b10_lithium() { return {840.0, 2.6}; }

double charge_fc(double deposited_kev) {
    if (deposited_kev < 0.0) {
        throw std::domain_error("charge_fc: negative deposit");
    }
    return deposited_kev / kKevPerFc;
}

namespace {

/// Deposited energy [keV] of an ion starting at depth z0 (measured downward
/// from the bottom of the 10B layer; the sensitive window spans
/// [standoff, standoff + depth]) travelling with direction cosine mu
/// (mu > 0 = downward, toward the volume).
double deposit_in_window(const Ion& ion, double z0, double mu,
                         double window_lo, double window_hi) {
    if (mu <= 0.0) return 0.0;  // flying up and away.
    // Track: z(t) = z0 + mu * s, s in [0, range]. Depth travelled inside
    // the window:
    const double s_enter = (window_lo - z0) / mu;
    const double s_exit = (window_hi - z0) / mu;
    const double s0 = std::max(0.0, s_enter);
    const double s1 = std::min(ion.range_um, s_exit);
    if (s1 <= s0) return 0.0;
    return ion.mean_let() * (s1 - s0);
}

}  // namespace

double upset_probability(double b10_layer_um, const SensitiveVolume& volume,
                         std::uint64_t samples, stats::Rng& rng) {
    if (!(b10_layer_um > 0.0) || volume.depth_um <= 0.0 ||
        volume.standoff_um < 0.0 || volume.qcrit_fc <= 0.0 || samples == 0 ||
        volume.area_coverage < 0.0 || volume.area_coverage > 1.0) {
        throw std::invalid_argument("upset_probability: bad arguments");
    }
    const Ion alpha = b10_alpha();
    const Ion lithium = b10_lithium();
    const double window_lo = volume.standoff_um;
    const double window_hi = volume.standoff_um + volume.depth_um;

    std::uint64_t upsets = 0;
    for (std::uint64_t i = 0; i < samples; ++i) {
        // Reaction depth, measured upward into the boron layer: the track
        // origin sits z0 *above* the window start.
        const double z0 = -rng.uniform(0.0, b10_layer_um);
        // Isotropic emission: alpha at +mu, lithium at -mu.
        const double mu = rng.uniform(-1.0, 1.0);
        const double q_alpha = charge_fc(
            deposit_in_window(alpha, z0, mu, window_lo, window_hi));
        const double q_li = charge_fc(
            deposit_in_window(lithium, z0, -mu, window_lo, window_hi));
        if (q_alpha > volume.qcrit_fc || q_li > volume.qcrit_fc) ++upsets;
    }
    return volume.area_coverage * static_cast<double>(upsets) /
           static_cast<double>(samples);
}

SensitiveVolume volume_90nm_legacy() {
    // Old planar node: deep collection, large critical charge, big cells.
    return {1.5, 0.8, 10.0, 0.12};
}

SensitiveVolume volume_28nm_planar() {
    // The paper's 28 nm parts (K20, APU, Zynq).
    return {1.0, 0.5, 2.0, 0.08};
}

SensitiveVolume volume_16nm_finfet() {
    // FinFET: tiny fin collects little charge, Qcrit tiny, fins sparse.
    return {0.25, 0.4, 0.6, 0.03};
}

}  // namespace tnr::physics

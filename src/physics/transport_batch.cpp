#include "physics/transport_batch.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "physics/kinematics.hpp"
#include "physics/units.hpp"

namespace tnr::physics {

SlabBatchKernel::SlabBatchKernel(const Material& material,
                                 const MaterialXsTable& xs,
                                 double thickness_cm,
                                 const TransportConfig& config)
    : material_(&material),
      xs_(&xs),
      thickness_(thickness_cm),
      config_(config) {
    if (!(config.weight_floor > 0.0) ||
        !(config.weight_survival >= config.weight_floor)) {
        throw std::invalid_argument(
            "SlabBatchKernel: need 0 < weight_floor <= weight_survival");
    }
}

void SlabBatchKernel::run(const SourceSampler& sample, std::uint64_t count,
                          stats::Rng& rng, TransportResult& result) const {
    run(sample, SourceBlockSampler{}, count, rng, result);
}

void SlabBatchKernel::run(const SourceSampler& sample,
                          const SourceBlockSampler& block,
                          std::uint64_t count, stats::Rng& rng,
                          TransportResult& result) const {
    // The exact-formula path has no batched cross-section evaluation, so it
    // always runs the scalar tier.
    const core::simd::Tier tier = config_.use_xs_table
                                      ? core::simd::resolve(config_.simd)
                                      : core::simd::Tier::kScalar;
#if TNR_SIMD_X86_AVX2
    if (tier == core::simd::Tier::kAvx2) {
        if (block) {
            run_avx2(block, count, rng, result);
        } else {
            run_avx2(
                [&sample](stats::Rng& stream, double* out, std::uint32_t n) {
                    for (std::uint32_t i = 0; i < n; ++i) out[i] = sample(stream);
                },
                count, rng, result);
        }
        return;
    }
#else
    (void)block;
#endif
    (void)tier;
    run_scalar(sample, count, rng, result);
}

void SlabBatchKernel::run_scalar(const SourceSampler& sample,
                                 std::uint64_t count, stats::Rng& rng,
                                 TransportResult& result) const {
    const std::uint32_t max_lanes = std::max<std::uint32_t>(1, config_.batch_size);
    const bool use_table = config_.use_xs_table;
    const double w_floor = config_.weight_floor;
    const double w_survival = config_.weight_survival;
    const double kt = config_.maxwellian_kt_ev;
    const double thermal_floor = config_.thermal_floor_ev;

    // Structure-of-arrays lane state. `absorbed` is the history's running
    // implicit-capture tally; squared at termination for the variance.
    std::vector<double> e(max_lanes);
    std::vector<double> x(max_lanes);
    std::vector<double> mu(max_lanes);
    std::vector<double> w(max_lanes);
    std::vector<double> absorbed(max_lanes);
    std::vector<double> sig_s(max_lanes);
    std::vector<double> sig_a(max_lanes);
    std::vector<MaterialXsTable::Lookup> lk(max_lanes);
    std::vector<std::uint32_t> steps(max_lanes);
    std::vector<std::uint32_t> active;
    std::vector<std::uint32_t> next_active;
    active.reserve(max_lanes);
    next_active.reserve(max_lanes);

    const auto tally_exit = [&result](bool transmitted, double weight,
                                      double energy) {
        if (transmitted) {
            ++result.transmitted;
            result.transmitted_w += weight;
            result.transmitted_w2 += weight * weight;
            if (energy < kThermalCutoffEv) {
                ++result.transmitted_thermal;
                result.transmitted_thermal_w += weight;
            }
        } else {
            ++result.reflected;
            result.reflected_w += weight;
            result.reflected_w2 += weight * weight;
            if (energy < kThermalCutoffEv) {
                ++result.reflected_thermal;
                result.reflected_thermal_w += weight;
            }
        }
    };
    // Every history banks its accumulated capture weight once, at the end.
    const auto tally_absorbed = [&result](double acc) {
        result.absorbed_w += acc;
        result.absorbed_w2 += acc * acc;
    };

    std::uint64_t remaining = count;
    while (remaining > 0) {
        if (config_.cancel != nullptr) config_.cancel->throw_if_cancelled();
        const auto lanes = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(max_lanes, remaining));
        remaining -= lanes;
        result.total += lanes;

        active.clear();
        for (std::uint32_t i = 0; i < lanes; ++i) {
            e[i] = sample(rng);
            x[i] = 0.0;
            mu[i] = 1.0;
            w[i] = 1.0;
            absorbed[i] = 0.0;
            steps[i] = 0;
            active.push_back(i);
        }

        while (!active.empty()) {
            // Sweep 1: cross sections for every in-flight lane. No RNG and
            // no branches on history state in the body, so the compiler can
            // pipeline/vectorize the interpolation arithmetic over the
            // contiguous SoA reads.
            if (use_table) {
                for (const std::uint32_t i : active) {
                    lk[i] = xs_->lookup(e[i]);
                    sig_s[i] = lk[i].sigma_scatter;
                    sig_a[i] = lk[i].sigma_absorb;
                }
            } else {
                for (const std::uint32_t i : active) {
                    sig_s[i] = material_->sigma_scatter(e[i]);
                    sig_a[i] = material_->sigma_absorb(e[i]);
                }
            }

            // Sweep 2: flight, exits, implicit capture, roulette, scatter.
            // Lanes are visited in index order, so the draw sequence is a
            // pure function of the chunk stream.
            next_active.clear();
            for (const std::uint32_t i : active) {
                const double sig_t = sig_s[i] + sig_a[i];
                if (sig_t <= 0.0) {
                    // Transparent medium: fly straight out.
                    tally_exit(mu[i] > 0.0, w[i], e[i]);
                    tally_absorbed(absorbed[i]);
                    continue;
                }

                x[i] += mu[i] * rng.exponential(sig_t);
                if (x[i] >= thickness_ || x[i] <= 0.0) {
                    tally_exit(x[i] >= thickness_, w[i], e[i]);
                    tally_absorbed(absorbed[i]);
                    continue;
                }

                // Collision: capture reduces the weight instead of ending
                // the history.
                ++result.collisions;
                ++result.bank_events;
                absorbed[i] += w[i] * (sig_a[i] / sig_t);
                w[i] *= sig_s[i] / sig_t;

                if (++steps[i] >= config_.max_scatters) {
                    // Scatter budget exceeded: treated as absorbed, like the
                    // analog kernel's kLost.
                    ++result.lost;
                    tally_absorbed(absorbed[i] + w[i]);
                    continue;
                }
                // Telemetry: whether roulette is played is decided by the
                // weight alone, so peeking at it here costs no draw.
                const bool rouletted = w[i] < w_floor;
                if (!roulette_survives(w[i], w_floor, w_survival, rng)) {
                    ++result.roulette_kills;
                    ++result.absorbed;
                    tally_absorbed(absorbed[i]);
                    continue;
                }
                if (rouletted) ++result.roulette_survivals;

                // Elastic scatter kinematics, identical to the analog loop.
                const double a = use_table
                                     ? xs_->sample_scatter_mass(lk[i], rng)
                                     : material_->sample_scatter_mass(
                                           e[i], sig_s[i], rng);
                scatter_elastic(a, thermal_floor, kt, e[i], mu[i], rng);
                next_active.push_back(i);
            }
            if (next_active.size() < active.size()) ++result.compactions;
            std::swap(active, next_active);
        }
    }
}

}  // namespace tnr::physics

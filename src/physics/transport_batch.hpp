#pragma once
// Batched structure-of-arrays Monte Carlo kernel with implicit capture.
//
// The analog inner loop (transport.cpp) walks one history at a time and
// kills it on absorption, so a rare tally (thermal capture in a thin layer,
// transmission through a shield) is resolved by the few histories that
// happen to end there. This kernel advances a batch of histories in
// lockstep over contiguous arrays and trades analog absorption for weight
// bookkeeping:
//
//   * implicit capture — every collision scatters; the history's weight is
//     multiplied by sigma_s/sigma_t and the absorbed share
//     w * sigma_a/sigma_t is tallied immediately. Every colliding history
//     contributes to the capture estimate instead of one in
//     1/p(absorption), which is where the variance reduction comes from;
//   * Russian roulette — weights below TransportConfig::weight_floor
//     survive with probability w/weight_survival (continuing at
//     weight_survival) or die, bounding the work spent on near-zero
//     weights while staying unbiased;
//   * lockstep sweeps — the cross-section lookup runs as its own pass over
//     the in-flight lanes (no RNG in the loop body, contiguous SoA reads),
//     then a second pass does flight/collision updates in lane order so
//     the RNG draw sequence is deterministic per chunk stream.
//
// Expectations match the analog kernel; draw sequences do not, so the two
// modes are statistically — not bitwise — equivalent (pinned to 3 sigma by
// tests/test_transport.cpp).

#include <cstdint>
#include <functional>

#include "physics/materials.hpp"
#include "physics/transport.hpp"
#include "physics/xs_table.hpp"
#include "stats/rng.hpp"

namespace tnr::physics {

/// Weight-window Russian roulette. Plays only when `w` has fallen below
/// `floor`; survivors continue at `survival`, losers have their weight
/// zeroed. Returns whether the history survives. Unbiased for any
/// 0 < floor <= survival (the survivor boost exactly offsets the kill
/// probability).
inline bool roulette_survives(double& w, double floor, double survival,
                              stats::Rng& rng) noexcept {
    if (w >= floor) return true;
    if (rng.uniform() * survival < w) {
        w = survival;
        return true;
    }
    w = 0.0;
    return false;
}

/// The slab implicit-capture kernel. Stateless between runs: `run`
/// allocates its lane arrays locally, so a single kernel instance can be
/// shared by concurrent chunk workers.
class SlabBatchKernel {
public:
    /// `material` and `xs` must outlive the kernel (SlabTransport owns
    /// both). Throws std::invalid_argument for a bad weight window.
    SlabBatchKernel(const Material& material, const MaterialXsTable& xs,
                    double thickness_cm, const TransportConfig& config);

    using SourceSampler = std::function<double(stats::Rng&)>;
    /// Block source: fills `out[0..n)` with source energies, consuming the
    /// stream in order. The AVX2 tier refills freed lanes through this
    /// (Spectrum::sample_energy_block vectorizes the Maxwellian fill); the
    /// scalar tier never calls it, preserving its historical draw sequence.
    using SourceBlockSampler =
        std::function<void(stats::Rng&, double*, std::uint32_t)>;

    /// Transports `count` histories whose source energies come from
    /// `sample`, accumulating counts and weighted tallies into `result`.
    /// Dispatches on resolve(config.simd): the scalar tier is bitwise
    /// identical to the pre-SIMD kernel; the AVX2 tier is statistically
    /// equivalent (different draw assignment, same physics). When no block
    /// sampler is supplied the AVX2 tier derives one from `sample`.
    void run(const SourceSampler& sample, std::uint64_t count,
             stats::Rng& rng, TransportResult& result) const;
    void run(const SourceSampler& sample, const SourceBlockSampler& block,
             std::uint64_t count, stats::Rng& rng,
             TransportResult& result) const;

private:
    void run_scalar(const SourceSampler& sample, std::uint64_t count,
                    stats::Rng& rng, TransportResult& result) const;
#if TNR_SIMD_X86_AVX2
    void run_avx2(const SourceBlockSampler& block, std::uint64_t count,
                  stats::Rng& rng, TransportResult& result) const;
#endif

    const Material* material_;
    const MaterialXsTable* xs_;
    double thickness_;
    TransportConfig config_;
};

}  // namespace tnr::physics

#pragma once
// Microscopic neutron cross sections for the handful of nuclides that matter
// to this study. Capture reactions in this energy range follow the 1/v law
// (sigma ∝ 1/speed ∝ 1/sqrt(E)); cadmium adds a sharp absorption edge at
// ~0.5 eV which is why a Cd sheet passes fast neutrons but blocks thermals
// (the Tin-II shielded tube).

namespace tnr::physics {

/// 1/v extrapolation of a thermal-point cross section:
/// sigma(E) = sigma_thermal * sqrt(0.0253 eV / E).
double one_over_v(double sigma_thermal_barns, double energy_ev);

/// 10B(n,alpha)7Li capture cross section [barns].
double b10_capture_barns(double energy_ev);

/// 3He(n,p)3H capture cross section [barns].
double he3_capture_barns(double energy_ev);

/// Natural-cadmium absorption cross section [barns]: 1/v below the cutoff,
/// suppressed smoothly above it (giant 113Cd resonance edge at ~0.5 eV).
double cd_absorption_barns(double energy_ev);

/// 1H radiative capture cross section [barns].
double h1_capture_barns(double energy_ev);

/// Average fraction of energy retained per elastic scatter off mass-A:
/// <E'/E> = (A^2 + 1) / (A + 1)^2 + ... for isotropic CM scattering the mean
/// is 1 - 2A/(A+1)^2.
double elastic_mean_energy_fraction(double mass_number);

/// Mean logarithmic energy decrement xi for mass-A (xi=1 for hydrogen).
double mean_log_energy_decrement(double mass_number);

/// Number of elastic scatters needed on average to moderate from e_from to
/// e_to on a nuclide with decrement xi: n = ln(e_from/e_to)/xi.
double scatters_to_thermalize(double e_from_ev, double e_to_ev, double xi);

}  // namespace tnr::physics

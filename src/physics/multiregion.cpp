#include "physics/multiregion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/parallel/parallel_for.hpp"
#include "physics/cross_sections.hpp"
#include "physics/transport_batch.hpp"
#include "physics/units.hpp"

namespace tnr::physics {

Layer Layer::gap(double thickness_cm) {
    Layer layer{Material::air(), thickness_cm, true};
    return layer;
}

Layer Layer::slab(Material material, double thickness_cm) {
    return Layer{std::move(material), thickness_cm, false};
}

LayeredTransport::LayeredTransport(std::vector<Layer> layers,
                                   TransportConfig config)
    : layers_(std::move(layers)), config_(config) {
    if (layers_.empty()) {
        throw std::invalid_argument("LayeredTransport: no layers");
    }
    boundaries_.reserve(layers_.size());
    xs_.reserve(layers_.size());
    for (const auto& layer : layers_) {
        if (!(layer.thickness_cm > 0.0)) {
            throw std::invalid_argument("LayeredTransport: bad thickness");
        }
        total_ += layer.thickness_cm;
        boundaries_.push_back(total_);
        xs_.emplace_back(layer.material);
    }
}

std::size_t LayeredTransport::layer_at(double x) const {
    const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), x);
    return std::min<std::size_t>(
        static_cast<std::size_t>(std::distance(boundaries_.begin(), it)),
        layers_.size() - 1);
}

LayeredFate LayeredTransport::transport_one(double energy_ev,
                                            stats::Rng& rng) const {
    double e = energy_ev;
    double x = 0.0;
    double mu = 1.0;
    std::uint64_t collisions = 0;
    const bool use_table = config_.use_xs_table;

    for (std::uint32_t step = 0; step < config_.max_scatters; ++step) {
        const std::size_t li = layer_at(x);
        const Layer& layer = layers_[li];
        const double layer_lo = (li == 0) ? 0.0 : boundaries_[li - 1];
        const double layer_hi = boundaries_[li];

        if (layer.vacuum) {
            // Free streaming to the next boundary (or out).
            x = (mu > 0.0) ? layer_hi + 1e-12 : layer_lo - 1e-12;
        } else {
            MaterialXsTable::Lookup lk;
            double sigma_s;
            double sigma_a;
            if (use_table) {
                lk = xs_[li].lookup(e);
                sigma_s = lk.sigma_scatter;
                sigma_a = lk.sigma_absorb;
            } else {
                sigma_s = layer.material.sigma_scatter(e);
                sigma_a = layer.material.sigma_absorb(e);
            }
            const double sigma_t = sigma_s + sigma_a;
            if (sigma_t <= 0.0) {
                x = (mu > 0.0) ? layer_hi + 1e-12 : layer_lo - 1e-12;
            } else {
                const double path = rng.exponential(sigma_t);
                const double x_new = x + mu * path;
                if (x_new > layer_hi || x_new < layer_lo) {
                    // Crossed into the neighbouring layer (or out): move to
                    // the boundary and continue there.
                    x = (mu > 0.0) ? layer_hi + 1e-12 : layer_lo - 1e-12;
                } else {
                    x = x_new;
                    // Interaction.
                    if (rng.uniform() * sigma_t < sigma_a) {
                        return {Fate::kAbsorbed, e, li, collisions};
                    }
                    ++collisions;
                    // Elastic scatter off a nuclide sampled at energy e.
                    const double a =
                        use_table
                            ? xs_[li].sample_scatter_mass(lk, rng)
                            : layer.material.sample_scatter_mass(e, sigma_s,
                                                                 rng);
                    if (e > config_.thermal_floor_ev) {
                        const double mu_cm = rng.uniform(-1.0, 1.0);
                        const double a1 = a + 1.0;
                        e *= (a * a + 1.0 + 2.0 * a * mu_cm) / (a1 * a1);
                    }
                    if (e <= config_.thermal_floor_ev) {
                        e = config_.maxwellian_kt_ev *
                            (rng.exponential(1.0) + rng.exponential(1.0));
                    }
                    mu = rng.uniform(-1.0, 1.0);
                    if (mu == 0.0) mu = 1e-12;
                }
            }
        }

        if (x >= total_) return {Fate::kTransmitted, e, 0, collisions};
        if (x <= 0.0) return {Fate::kReflected, e, 0, collisions};
    }
    return {Fate::kLost, e, 0, collisions};
}

void LayeredResult::merge(const LayeredResult& other) {
    total += other.total;
    collisions += other.collisions;
    transmitted += other.transmitted;
    transmitted_thermal += other.transmitted_thermal;
    reflected += other.reflected;
    reflected_thermal += other.reflected_thermal;
    absorbed += other.absorbed;
    lost += other.lost;
    transmitted_w += other.transmitted_w;
    reflected_w += other.reflected_w;
    absorbed_w += other.absorbed_w;
    transmitted_thermal_w += other.transmitted_thermal_w;
    reflected_thermal_w += other.reflected_thermal_w;
    transmitted_w2 += other.transmitted_w2;
    reflected_w2 += other.reflected_w2;
    absorbed_w2 += other.absorbed_w2;
    if (absorbed_by_layer.empty()) {
        absorbed_by_layer = other.absorbed_by_layer;
    } else if (!other.absorbed_by_layer.empty()) {
        if (absorbed_by_layer.size() != other.absorbed_by_layer.size()) {
            throw std::invalid_argument(
                "LayeredResult::merge: layer count mismatch");
        }
        for (std::size_t i = 0; i < absorbed_by_layer.size(); ++i) {
            absorbed_by_layer[i] += other.absorbed_by_layer[i];
        }
    }
    if (absorbed_w_by_layer.empty()) {
        absorbed_w_by_layer = other.absorbed_w_by_layer;
    } else if (!other.absorbed_w_by_layer.empty()) {
        if (absorbed_w_by_layer.size() != other.absorbed_w_by_layer.size()) {
            throw std::invalid_argument(
                "LayeredResult::merge: layer count mismatch");
        }
        for (std::size_t i = 0; i < absorbed_w_by_layer.size(); ++i) {
            absorbed_w_by_layer[i] += other.absorbed_w_by_layer[i];
        }
    }
}

namespace {

void record(LayeredResult& r, const LayeredFate& f) {
    // Analog histories carry unit weight: weighted tallies get the 0/1
    // contributions, mirroring the slab engine's record().
    ++r.total;
    r.collisions += f.collisions;
    switch (f.fate) {
        case Fate::kTransmitted:
            ++r.transmitted;
            r.transmitted_w += 1.0;
            r.transmitted_w2 += 1.0;
            if (f.exit_energy_ev < kThermalCutoffEv) {
                ++r.transmitted_thermal;
                r.transmitted_thermal_w += 1.0;
            }
            break;
        case Fate::kReflected:
            ++r.reflected;
            r.reflected_w += 1.0;
            r.reflected_w2 += 1.0;
            if (f.exit_energy_ev < kThermalCutoffEv) {
                ++r.reflected_thermal;
                r.reflected_thermal_w += 1.0;
            }
            break;
        case Fate::kAbsorbed:
            ++r.absorbed;
            ++r.absorbed_by_layer[f.absorbed_layer];
            r.absorbed_w += 1.0;
            r.absorbed_w2 += 1.0;
            r.absorbed_w_by_layer[f.absorbed_layer] += 1.0;
            break;
        case Fate::kLost:
            ++r.lost;
            r.absorbed_w += 1.0;  // lost folds into absorption, keep parity.
            r.absorbed_w2 += 1.0;
            break;
    }
}

}  // namespace

void LayeredTransport::transport_one_implicit(double energy_ev,
                                              stats::Rng& rng,
                                              LayeredResult& r) const {
    double e = energy_ev;
    double x = 0.0;
    double mu = 1.0;
    double w = 1.0;
    double acc = 0.0;  // capture weight banked so far by this history.
    const bool use_table = config_.use_xs_table;
    ++r.total;

    const auto tally_exit = [&](bool transmitted) {
        if (transmitted) {
            ++r.transmitted;
            r.transmitted_w += w;
            r.transmitted_w2 += w * w;
            if (e < kThermalCutoffEv) {
                ++r.transmitted_thermal;
                r.transmitted_thermal_w += w;
            }
        } else {
            ++r.reflected;
            r.reflected_w += w;
            r.reflected_w2 += w * w;
            if (e < kThermalCutoffEv) {
                ++r.reflected_thermal;
                r.reflected_thermal_w += w;
            }
        }
        r.absorbed_w += acc;
        r.absorbed_w2 += acc * acc;
    };

    for (std::uint32_t step = 0; step < config_.max_scatters; ++step) {
        const std::size_t li = layer_at(x);
        const Layer& layer = layers_[li];
        const double layer_lo = (li == 0) ? 0.0 : boundaries_[li - 1];
        const double layer_hi = boundaries_[li];

        if (layer.vacuum) {
            x = (mu > 0.0) ? layer_hi + 1e-12 : layer_lo - 1e-12;
        } else {
            MaterialXsTable::Lookup lk;
            double sigma_s;
            double sigma_a;
            if (use_table) {
                lk = xs_[li].lookup(e);
                sigma_s = lk.sigma_scatter;
                sigma_a = lk.sigma_absorb;
            } else {
                sigma_s = layer.material.sigma_scatter(e);
                sigma_a = layer.material.sigma_absorb(e);
            }
            const double sigma_t = sigma_s + sigma_a;
            if (sigma_t <= 0.0) {
                x = (mu > 0.0) ? layer_hi + 1e-12 : layer_lo - 1e-12;
            } else {
                const double path = rng.exponential(sigma_t);
                const double x_new = x + mu * path;
                if (x_new > layer_hi || x_new < layer_lo) {
                    x = (mu > 0.0) ? layer_hi + 1e-12 : layer_lo - 1e-12;
                } else {
                    x = x_new;
                    // Implicit capture: bank the absorbed share in this
                    // layer, keep scattering with the surviving weight.
                    ++r.collisions;
                    const double captured = w * (sigma_a / sigma_t);
                    acc += captured;
                    r.absorbed_w_by_layer[li] += captured;
                    w *= sigma_s / sigma_t;
                    if (!roulette_survives(w, config_.weight_floor,
                                           config_.weight_survival, rng)) {
                        ++r.absorbed;
                        ++r.absorbed_by_layer[li];
                        r.absorbed_w += acc;
                        r.absorbed_w2 += acc * acc;
                        return;
                    }
                    const double a =
                        use_table
                            ? xs_[li].sample_scatter_mass(lk, rng)
                            : layer.material.sample_scatter_mass(e, sigma_s,
                                                                 rng);
                    if (e > config_.thermal_floor_ev) {
                        const double mu_cm = rng.uniform(-1.0, 1.0);
                        const double a1 = a + 1.0;
                        e *= (a * a + 1.0 + 2.0 * a * mu_cm) / (a1 * a1);
                    }
                    if (e <= config_.thermal_floor_ev) {
                        e = config_.maxwellian_kt_ev *
                            (rng.exponential(1.0) + rng.exponential(1.0));
                    }
                    mu = rng.uniform(-1.0, 1.0);
                    if (mu == 0.0) mu = 1e-12;
                }
            }
        }

        if (x >= total_) {
            tally_exit(true);
            return;
        }
        if (x <= 0.0) {
            tally_exit(false);
            return;
        }
    }
    // Scatter budget exceeded: remaining weight counts as absorbed where the
    // history stalled, matching the analog kLost-folds-into-absorption rule.
    ++r.lost;
    const std::size_t li = layer_at(x);
    r.absorbed_w_by_layer[li] += w;
    acc += w;
    r.absorbed_w += acc;
    r.absorbed_w2 += acc * acc;
}

template <typename SampleEnergy>
LayeredResult LayeredTransport::run_histories(SampleEnergy&& sample,
                                              std::uint64_t n,
                                              stats::Rng& rng) const {
    const core::obs::Span span("transport.layered", "transport");
    const bool implicit = config_.mode == TransportMode::kImplicitCapture;
    if (implicit && (!(config_.weight_floor > 0.0) ||
                     !(config_.weight_survival >= config_.weight_floor))) {
        throw std::invalid_argument(
            "LayeredTransport: need 0 < weight_floor <= weight_survival");
    }
    LayeredResult merged = core::parallel::parallel_for_reduce<LayeredResult>(
        n, config_.threads, rng,
        [this, &sample, implicit](std::uint64_t, std::uint64_t count,
                                  stats::Rng& stream) {
            LayeredResult result;
            result.absorbed_by_layer.assign(layers_.size(), 0);
            result.absorbed_w_by_layer.assign(layers_.size(), 0.0);
            if (implicit) {
                for (std::uint64_t i = 0; i < count; ++i) {
                    transport_one_implicit(sample(stream), stream, result);
                }
            } else {
                for (std::uint64_t i = 0; i < count; ++i) {
                    record(result, transport_one(sample(stream), stream));
                }
            }
            return result;
        },
        [](LayeredResult& acc, const LayeredResult& p) { acc.merge(p); });

    // Batch-granularity telemetry, shared with the slab engine.
    namespace obs = core::obs;
    static auto& histories = obs::Registry::global().counter("transport.histories");
    static auto& collisions = obs::Registry::global().counter("transport.collisions");
    static auto& table_collisions =
        obs::Registry::global().counter("transport.collisions_xs_table");
    static auto& exact_collisions =
        obs::Registry::global().counter("transport.collisions_xs_exact");
    static auto& runs = obs::Registry::global().counter("transport.runs");
    histories.add(merged.total);
    collisions.add(merged.collisions);
    (config_.use_xs_table ? table_collisions : exact_collisions)
        .add(merged.collisions);
    runs.add(1);
    return merged;
}

LayeredResult LayeredTransport::run_monoenergetic(double energy_ev,
                                                  std::uint64_t n,
                                                  stats::Rng& rng) const {
    return run_histories([energy_ev](stats::Rng&) { return energy_ev; }, n,
                         rng);
}

LayeredResult LayeredTransport::run_spectrum(const Spectrum& spectrum,
                                             std::uint64_t n,
                                             stats::Rng& rng) const {
    spectrum.prepare_sampling();
    if (config_.mode == TransportMode::kImplicitCapture) {
        return run_histories(
            [&spectrum](stats::Rng& stream) {
                return spectrum.sample_energy_fast(stream);
            },
            n, rng);
    }
    return run_histories(
        [&spectrum](stats::Rng& stream) { return spectrum.sample_energy(stream); },
        n, rng);
}

}  // namespace tnr::physics
